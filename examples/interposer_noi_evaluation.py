"""The paper's headline experiment in one script: NetSmith vs experts.

Compares the frozen NetSmith 4x5 designs against the expert-designed
interposer topologies (Kite family, Folded Torus, Butter Donut, Double
Butterfly) on topology metrics AND simulated uniform-random traffic, then
prints a Fig. 1 / Fig. 6-style report.

    python examples/interposer_noi_evaluation.py
"""

from repro.experiments import MCLB, NDBT, roster, routed_entry
from repro.sim import latency_throughput_curve, uniform_random
from repro.topology import average_hops, bisection_bandwidth, diameter

RATES = [0.02, 0.06, 0.10, 0.14, 0.18, 0.22, 0.26, 0.30]


def main() -> None:
    print(f"{'topology':<20} {'class':<8} {'hops':>5} {'diam':>4} {'biBW':>4} "
          f"{'zero-load':>10} {'saturation':>11}")
    print("-" * 70)
    for cls in ("small", "medium", "large"):
        for entry in roster(cls, 20, include_lpbt=False, allow_generate=False):
            topo = entry.topology
            table = routed_entry(entry)
            curve = latency_throughput_curve(
                table,
                uniform_random(20),
                RATES,
                link_class=cls,
                warmup=300,
                measure=1200,
            )
            print(
                f"{topo.name:<20} {cls:<8} {average_hops(topo):5.2f} "
                f"{diameter(topo):>4} {bisection_bandwidth(topo):>4} "
                f"{curve.zero_load_latency_ns:7.1f} ns "
                f"{curve.saturation_throughput_ns:7.3f} p/n/ns"
            )
    print("\n(NS-* rows use MCLB routing; expert rows use NDBT, as in the paper)")


if __name__ == "__main__":
    main()
