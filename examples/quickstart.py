"""Quickstart: discover a topology, route it, and inspect the result.

Runs in well under a minute: a 3x4 interposer with medium links, latency-
optimized, MCLB-routed, deadlock-free VC assignment, and the headline
metrics printed at the end.

    python examples/quickstart.py
"""

from repro import (
    Layout,
    NetSmithConfig,
    assign_vcs,
    average_hops,
    bisection_bandwidth,
    build_routing_table,
    diameter,
    generate_latop,
    mclb_route,
    sparsest_cut,
)
from repro.routing import channel_loads
from repro.topology import ascii_art


def main() -> None:
    # 1. Describe the physical substrate: router grid, link budget, radix.
    layout = Layout(rows=3, cols=4)
    config = NetSmithConfig(
        layout=layout,
        link_class="medium",  # Kite taxonomy: up to (2,0) links
        radix=4,
        diameter_bound=4,
    )

    # 2. Discover a latency-optimized topology (Table I's LatOp).
    print("solving LatOp MILP (a few seconds)...")
    result = generate_latop(config, time_limit=60)
    topo = result.topology
    print(f"status={result.status}  gap={result.mip_gap:.1%}")
    print(ascii_art(topo))

    # 3. Route it: MCLB minimizes the maximum channel load.
    routed = mclb_route(topo, time_limit=30)
    print(f"MCLB max channel load: {routed.max_channel_load:.0f}")

    # 4. Deadlock-free VC assignment (DFSSSP-style acyclic layering).
    vca = assign_vcs(routed.routes, seed=0)
    print(f"escape VCs required: {vca.num_vcs}")

    # 5. The deployable artifact: a validated routing table.
    table = build_routing_table(routed.routes, vca)
    table.validate()

    # 6. Headline metrics.
    print(f"links:        {topo.num_links}")
    print(f"avg hops:     {average_hops(topo):.3f}")
    print(f"diameter:     {diameter(topo)}")
    print(f"bisection BW: {bisection_bandwidth(topo)}")
    print(f"sparsest cut: {sparsest_cut(topo).value:.4f}")
    load = channel_loads(routed.routes)
    print(f"saturation bound (routed): "
          f"{load.saturation_injection(topo.n):.2f} flits/node/cycle")


if __name__ == "__main__":
    main()
