"""Full-system flavour: PARSEC-profile speedups on real routed NoIs.

A compact version of the paper's Fig. 8: three workloads spanning the
L2-MPKI range, mesh baseline vs Folded Torus vs the frozen NetSmith
medium design, closed-loop request/response simulation, and the
execution-time model on top.

    python examples/parsec_speedup.py
"""

from repro.core import netsmith_topology
from repro.experiments import MCLB, NDBT, routed_table
from repro.fullsys import run_workload, workload
from repro.topology import expert_topology


def main() -> None:
    mesh_tab = routed_table(expert_topology("Mesh", 20), NDBT)
    contenders = {
        "FoldedTorus": (routed_table(expert_topology("FoldedTorus", 20), NDBT), "medium"),
        "NS-LatOp-medium": (
            routed_table(netsmith_topology("latop", "medium", 20), MCLB),
            "medium",
        ),
    }

    print(f"{'workload':<15} {'topology':<18} {'pkt latency':>12} "
          f"{'speedup':>8} {'lat. red.':>9}")
    print("-" * 66)
    for wname in ("blackscholes", "ferret", "canneal"):
        w = workload(wname)
        base = run_workload(mesh_tab, w, link_class="small",
                            warmup=400, measure=1500)
        print(f"{wname:<15} {'Mesh (baseline)':<18} "
              f"{base.avg_packet_latency_ns:9.1f} ns {1.0:8.3f} {'-':>9}")
        for tname, (tab, cls) in contenders.items():
            r = run_workload(tab, w, link_class=cls, warmup=400, measure=1500)
            print(
                f"{wname:<15} {tname:<18} {r.avg_packet_latency_ns:9.1f} ns "
                f"{r.speedup_over(base):8.3f} "
                f"{r.latency_reduction_over(base):8.1%}"
            )
        print()
    print("expected shape: sensitivity grows with L2 MPKI "
          "(blackscholes < ferret < canneal), NetSmith leads")


if __name__ == "__main__":
    main()
