"""Regenerate every frozen artifact from scratch (long-running).

Drives the full generation pass — expert signature reconstructions,
NS LatOp/SCOp/ShufOpt at 20 routers, LatOp at 30/48 — then freezes the
results into the package data files.  Budget 1-2 hours on one core.

    python examples/generate_topologies.py
"""

import runpy
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
SCRIPTS = os.path.join(HERE, "..", "scripts")

if __name__ == "__main__":
    print("Stage 1/2: generating artifacts (resumable; ~1-2h cold)...")
    runpy.run_path(os.path.join(SCRIPTS, "generate_all.py"), run_name="__main__")
    print("Stage 2/2: freezing into package data files...")
    runpy.run_path(os.path.join(SCRIPTS, "freeze_artifacts.py"), run_name="__main__")
    print("done — frozen designs now served by repro.core.netsmith_topology")
