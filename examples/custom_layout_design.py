"""NetSmith on a *non-standard* substrate (the paper's generality claim).

The paper's Section II-A notes the 4x5 layout "does not take away from
NetSmith's generality": any layout and radix works.  This example designs
networks for an asymmetric 2x6 "ribbon" interposer at two radices, and
for a shuffle-dominated traffic profile (Section V-E's pattern-optimized
mode), showing how the discovered structure adapts.

    python examples/custom_layout_design.py
"""

import numpy as np

from repro import Layout, NetSmithConfig, generate_latop, average_hops, diameter
from repro.core import generate_shufopt
from repro.topology import ascii_art


def design(config: NetSmithConfig, title: str) -> None:
    print(f"=== {title} ===")
    result = generate_latop(config, time_limit=45)
    topo = result.topology
    print(ascii_art(topo))
    print(f"avg hops {average_hops(topo):.3f}, diameter {diameter(topo)}, "
          f"gap {result.mip_gap:.1%}\n")


def main() -> None:
    ribbon = Layout(rows=2, cols=6)

    # Radix matters: the same substrate at radix 3 vs radix 4.
    design(
        NetSmithConfig(layout=ribbon, link_class="medium", radix=3,
                       diameter_bound=5),
        "2x6 ribbon, medium links, radix 3",
    )
    design(
        NetSmithConfig(layout=ribbon, link_class="medium", radix=4,
                       diameter_bound=4),
        "2x6 ribbon, medium links, radix 4",
    )

    # Traffic-aware design: optimize for the shuffle permutation.
    print("=== 2x6 ribbon, shuffle-optimized (Section V-E mode) ===")
    result = generate_shufopt(
        NetSmithConfig(layout=ribbon, link_class="medium", radix=3,
                       diameter_bound=5),
        time_limit=45,
    )
    topo = result.topology
    print(ascii_art(topo))
    # weighted avg hops under the shuffle pattern vs uniform
    from repro.core import shuffle_weights

    w = shuffle_weights(ribbon, uniform_floor=0.0)
    d = topo.hop_matrix()
    shuffle_hops = float((d * w).sum() / w.sum())
    print(f"uniform avg hops {average_hops(topo):.3f}; "
          f"shuffle-pattern avg hops {shuffle_hops:.3f}")


if __name__ == "__main__":
    main()
