"""Recovery scenario-grid benchmark: cold sweep vs cached rerun.

Runs the ``recovery`` experiment's full flap grid (topologies x PARSEC
workloads x link/router flap scenarios, fast budgets) of windowed
closed-loop simulations with timeout/retry active against a fresh cache
directory, then runs it again and asserts the rerun is 100% cache hits —
the resumability contract, exercised through the newest task family
(``recovery``).  Also pins the experiment's headline contract: every
link-repair scenario reports a *finite* time-to-drain.

Results land in ``BENCH_recovery.json`` (schema: benchmarks/conftest):
cold/warm wall seconds, grid shape, and the rerun's cache counters.
"""

import tempfile
import time

from repro.experiments.recovery import (
    DEFAULT_TOPOLOGIES,
    DEFAULT_WORKLOADS,
    recovery_grid,
)
from repro.runner import Runner


def _grid(cache_dir: str, out_dir: str):
    with Runner(parallel=1, cache_dir=cache_dir) as runner:
        t0 = time.perf_counter()
        result = recovery_grid(runner=runner, fast=True, out_dir=out_dir)
        return time.perf_counter() - t0, result, runner.stats


def test_recovery_grid_cold_then_cached(once, bench_record):
    def harness():
        with tempfile.TemporaryDirectory() as tmp:
            cold_s, cold, _ = _grid(tmp + "/cache", tmp + "/artifacts")
            warm_s, warm, stats = _grid(tmp + "/cache", tmp + "/artifacts")
            return cold_s, cold, warm_s, warm, stats

    cold_s, cold, warm_s, warm, stats = once(harness)

    print(f"\nrecovery grid: {len(cold.cells)} scenario cells over "
          f"{len(DEFAULT_TOPOLOGIES)} topologies x "
          f"{len(DEFAULT_WORKLOADS)} workloads")
    for c in cold.cells:
        print(f"  {c.topology:<14} {c.workload:<14} {c.scenario:<11} "
              f"drain={c.metrics.time_to_drain:.0f} "
              f"settle={c.metrics.settling_time:.0f} "
              f"failed={c.failed} retried={c.retried}")
    print(f"cold {cold_s:.1f}s | cached rerun {warm_s:.1f}s | {stats.summary()}")

    assert [c.as_dict() for c in warm.cells] == [
        c.as_dict() for c in cold.cells
    ], "cached rerun changed the grid's numbers"
    assert stats.misses == 0, (
        f"cached rerun recomputed {stats.misses} task(s); "
        "the scenario grid must be 100% cache hits on an immediate rerun"
    )
    link_cells = [c for c in cold.cells if c.scenario == "linkflap"]
    assert link_cells, "grid lost its link-flap scenarios"
    for c in link_cells:
        assert c.metrics.time_to_drain != float("inf"), (
            f"{c.topology}/{c.workload}: backlog never drained after the "
            "link came back up"
        )

    bench_record(
        cells=len(cold.cells),
        topologies=len(DEFAULT_TOPOLOGIES),
        workloads=len(DEFAULT_WORKLOADS),
        cold_wall_s=round(cold_s, 3),
        cached_wall_s=round(warm_s, 3),
        rerun_hits=stats.hits,
        rerun_misses=stats.misses,
        worst_drain_cycles=max(
            c.metrics.time_to_drain for c in cold.cells
        ),
    )
