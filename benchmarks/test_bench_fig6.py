"""Fig. 6: synthetic-traffic latency/throughput curves (20-router NoIs)."""

import pytest

from repro.experiments import fig6_curves


def _print_result(res):
    print(f"\nFig. 6 ({res.traffic} traffic) — saturation throughput ranking")
    for name, sat in res.saturation_ranking():
        curve = res.curves[name]
        print(
            f"  {name:<18} class={curve.link_class:<7} "
            f"zero-load={curve.zero_load_latency_ns:5.1f} ns  "
            f"sat={sat:.3f} pkts/node/ns"
        )


def test_fig6a_coherence_traffic(once):
    res = once(
        fig6_curves, "coherence", allow_generate=False,
        warmup=300, measure=1200,
    )
    _print_result(res)

    ranking = dict(res.saturation_ranking())
    # Paper: LPBT variants perform poorly; Kite best among experts; the
    # saturation order matches the analytical expectation.
    experts = {n: v for n, v in ranking.items() if not n.startswith(("NS-", "LPBT"))}
    lpbts = {n: v for n, v in ranking.items() if n.startswith("LPBT")}
    if lpbts and experts:
        assert max(lpbts.values()) <= max(experts.values()) + 1e-9

    # NetSmith outperforms expert-designed topologies at every scale.
    ratio = res.best_netsmith_vs_best_expert()
    print(f"best NS / best expert saturation: {ratio:.2f}x (paper: 1.18-1.75x)")
    assert ratio > 1.0


def test_fig6b_memory_traffic(once):
    res = once(
        fig6_curves, "memory", allow_generate=False,
        warmup=300, measure=1200,
    )
    _print_result(res)

    # Paper: memory traffic saturates well beneath coherence levels
    # (hot-spot contention binds before the sparsest cut).
    coh = fig6_curves(
        "coherence", link_classes=("medium",), allow_generate=False,
        warmup=300, measure=1200,
    )
    for name, curve in res.curves.items():
        if name in coh.curves:
            assert (
                curve.saturation_rate <= coh.curves[name].saturation_rate + 1e-9
            ), name
