"""Benchmark configuration.

Every benchmark regenerates one paper artifact (see DESIGN.md's
experiment index) and *prints* the rows/series the paper reports, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report.  Expensive sweeps run exactly once per session
(``benchmark.pedantic(rounds=1)``): the timing of interest is the
end-to-end harness cost, not micro-op statistics.

Perf-tracking benchmarks additionally record machine-readable numbers
through the ``bench_record`` fixture.  Records group by bench module: a
test in ``test_bench_<name>.py`` lands in ``BENCH_<name>.json`` (next to
this file, or ``$BENCH_<NAME>_JSON``), written at session end with a
versioned schema so the perf trajectory is tracked across PRs — CI
uploads the files as artifacts (``bench-engine`` and ``bench-fullsys``
jobs).
"""

import json
import os
import platform
import time

import pytest

#: bench-file stem (module name minus ``test_bench_``) ->
#: {benchmark name -> recorded fields (wall times, speedup ratios, ...)}.
_RECORDS = {}


def run_once(benchmark, fn, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def require_parallel():
    """Fail loudly when a parallel-speedup benchmark got a degenerate pool.

    Call with what the runner's maps actually fanned out to
    (:meth:`repro.runner.Runner.effective_parallel`): 1 on a 1-core box
    or when the platform silently refused to spawn a process pool.  A
    speedup measured against a 1-worker "parallel" leg is a measurement
    of nothing — recording it as a passing result once hid a 1.05x
    "speedup" in BENCH_generation.json — so the benchmark must FAIL,
    not skip or pass, and the record must carry the effective count for
    post-hoc audit.
    """

    def _check(effective_workers: int, context: str = "") -> None:
        if effective_workers < 2:
            pytest.fail(
                f"degenerate worker pool: parallel leg ran with "
                f"{effective_workers} effective worker(s)"
                f"{context and f' ({context})'}; a parallel-speedup floor "
                "cannot be measured here and a 1-worker baseline must "
                "not be recorded as a passing result"
            )

    return _check


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


def _module_stem(node) -> str:
    name = node.module.__name__.rpartition(".")[2]
    prefix = "test_bench_"
    return name[len(prefix):] if name.startswith(prefix) else name


@pytest.fixture
def bench_record(request):
    """Record machine-readable results for the current benchmark.

    Call as ``bench_record(wall_s=..., speedup=..., **anything_json)``;
    fields merge under the test's name in the module's
    ``BENCH_<name>.json``.
    """
    stem = _module_stem(request.node)

    def _record(**fields):
        _RECORDS.setdefault(stem, {}).setdefault(
            request.node.name, {}
        ).update(fields)

    return _record


def bench_json_path(stem: str) -> str:
    return os.environ.get(
        f"BENCH_{stem.upper()}_JSON",
        os.path.join(os.path.dirname(__file__), f"BENCH_{stem}.json"),
    )


def pytest_sessionfinish(session, exitstatus):
    for stem, records in sorted(_RECORDS.items()):
        if not records:
            continue
        doc = {
            "schema": 1,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "benchmarks": records,
        }
        path = bench_json_path(stem)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n[{stem} benchmark results written to {path}]")
