"""Benchmark configuration.

Every benchmark regenerates one paper artifact (see DESIGN.md's
experiment index) and *prints* the rows/series the paper reports, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report.  Expensive sweeps run exactly once per session
(``benchmark.pedantic(rounds=1)``): the timing of interest is the
end-to-end harness cost, not micro-op statistics.

Engine benchmarks additionally record machine-readable perf numbers
through the ``bench_record`` fixture; at session end they are written to
``BENCH_engine.json`` (next to this file, or ``$BENCH_ENGINE_JSON``) so
the perf trajectory is tracked across PRs — CI uploads the file as an
artifact.
"""

import json
import os
import platform
import time

import pytest

#: benchmark name -> recorded fields (wall times, speedup ratios, ...).
_ENGINE_RECORDS = {}


def run_once(benchmark, fn, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


@pytest.fixture
def bench_record(request):
    """Record machine-readable results for the current benchmark.

    Call as ``bench_record(wall_s=..., speedup=..., **anything_json)``;
    fields merge under the test's name in ``BENCH_engine.json``.
    """

    def _record(**fields):
        _ENGINE_RECORDS.setdefault(request.node.name, {}).update(fields)

    return _record


def bench_json_path() -> str:
    return os.environ.get(
        "BENCH_ENGINE_JSON",
        os.path.join(os.path.dirname(__file__), "BENCH_engine.json"),
    )


def pytest_sessionfinish(session, exitstatus):
    if not _ENGINE_RECORDS:
        return
    doc = {
        "schema": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": _ENGINE_RECORDS,
    }
    path = bench_json_path()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n[engine benchmark results written to {path}]")
