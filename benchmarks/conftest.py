"""Benchmark configuration.

Every benchmark regenerates one paper artifact (see DESIGN.md's
experiment index) and *prints* the rows/series the paper reports, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report.  Expensive sweeps run exactly once per session
(``benchmark.pedantic(rounds=1)``): the timing of interest is the
end-to-end harness cost, not micro-op statistics.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
