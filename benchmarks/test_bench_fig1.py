"""Fig. 1: latency vs saturation-throughput scatter (analytical)."""

from repro.experiments import fig1_points, pareto_front


def test_fig1_scatter(once):
    points = once(fig1_points, 20, allow_generate=False)

    print("\nFig. 1 points (avg hops vs saturation bound, flits/node/cycle)")
    for p in sorted(points, key=lambda p: (p.link_class, p.avg_hops)):
        marker = "solid(NS)" if p.is_netsmith else "hollow"
        print(
            f"  {p.name:<18} {p.link_class:<7} hops={p.avg_hops:5.2f} "
            f"sat={p.saturation_bound:5.3f} [{marker}]"
        )

    front = pareto_front(points)
    front_names = {p.name for p in front}
    print(f"Pareto frontier: {sorted(front_names)}")

    # Paper: NetSmith points populate the frontier; the only expert design
    # that may reach it is Kite-Small.
    non_ns_front = {n for n in front_names if not n.startswith("NS-")}
    assert non_ns_front <= {"Kite-Small"}, non_ns_front
    assert any(n.startswith("NS-") for n in front_names)

    # Strict dominance in medium/large: best NS beats best expert on BOTH
    # axes (paper Fig. 1's headline).
    for cls in ("medium", "large"):
        cls_pts = [p for p in points if p.link_class == cls]
        ns_best_hops = min(p.avg_hops for p in cls_pts if p.is_netsmith)
        ex_best_hops = min(p.avg_hops for p in cls_pts if not p.is_netsmith)
        ns_best_sat = max(p.saturation_bound for p in cls_pts if p.is_netsmith)
        ex_best_sat = max(p.saturation_bound for p in cls_pts if not p.is_netsmith)
        assert ns_best_hops < ex_best_hops
        assert ns_best_sat >= ex_best_sat * 0.99
