"""Scale benchmark: sparse representations vs router count.

Two measurements back the sparse-at-scale refactor:

* **Incremental SA APSP** — the same annealing run (identical seed,
  steps, config) with ``apsp="incremental"`` vs ``apsp="full"`` at
  n=256.  The two modes share one RNG call sequence and exact integer
  distances, so the resulting links and objective are asserted
  *bit-identical*; the floor asserts the incremental mode is >= 3x
  faster (each move recomputes only the affected rows/columns of the
  hop matrix instead of all pairs).
* **Per-layer timings vs n** — graph metrics (sparse multi-source BFS),
  destination-tree routing into a CSR table, fast-engine compilation
  from that table, and a short incremental anneal, at n in {64, 256,
  1024}.  No floor: these rows make scale regressions attributable
  across PRs.

Results land in ``BENCH_scale.json`` (schema: benchmarks/conftest).
"""

import time

from repro.core.netsmith import NetSmithConfig
from repro.core.search import anneal_topology
from repro.routing.dest_tree import bfs_dest_table
from repro.sim.fastnet import CompiledNetwork
from repro.topology import Layout, average_hops, diameter

APSP_SPEEDUP_FLOOR = 3.0
APSP_GRID = (16, 16)  # n = 256, the floor's contract point
APSP_STEPS = 150

SCALE_GRIDS = ((8, 8), (16, 16), (32, 32))
SCALE_SA_STEPS = 30


def _anneal(rows, cols, steps, apsp, seed=1):
    cfg = NetSmithConfig(
        layout=Layout(rows=rows, cols=cols), link_class="medium", radix=4
    )
    t0 = time.perf_counter()
    result = anneal_topology(
        cfg, objective="latency", steps=steps, seed=seed, apsp=apsp
    )
    return time.perf_counter() - t0, result


def test_incremental_apsp_speedup(once, bench_record):
    rows, cols = APSP_GRID

    def harness():
        full_s, full = _anneal(rows, cols, APSP_STEPS, "full")
        inc_s, inc = _anneal(rows, cols, APSP_STEPS, "incremental")
        return full_s, full, inc_s, inc

    full_s, full, inc_s, inc = once(harness)
    speedup = full_s / inc_s

    n = rows * cols
    print(f"\nSA APSP at n={n} ({APSP_STEPS} steps):")
    print(f"  full        {full_s:7.2f}s  objective {full.objective:.1f}")
    print(f"  incremental {inc_s:7.2f}s  objective {inc.objective:.1f}")
    print(f"  speedup {speedup:.2f}x (floor {APSP_SPEEDUP_FLOOR}x)")

    # Bit-identical results: same RNG sequence, exact integer distances.
    assert inc.objective == full.objective, (
        f"incremental APSP changed the SA objective: "
        f"{inc.objective!r} != {full.objective!r}"
    )
    assert sorted(inc.topology.directed_links) == sorted(
        full.topology.directed_links
    ), "incremental APSP changed the SA search trajectory"

    bench_record(
        n_routers=n,
        sa_steps=APSP_STEPS,
        full_wall_s=round(full_s, 3),
        incremental_wall_s=round(inc_s, 3),
        speedup=round(speedup, 3),
        floor=APSP_SPEEDUP_FLOOR,
        objective=full.objective,
    )
    assert speedup >= APSP_SPEEDUP_FLOOR, (
        f"incremental SA APSP only {speedup:.2f}x faster than full "
        f"recompute at n={n} (floor {APSP_SPEEDUP_FLOOR}x)"
    )


def test_scale_timings(once, bench_record):
    def harness():
        rows_out = []
        for rows, cols in SCALE_GRIDS:
            n = rows * cols
            sa_s, seed_result = _anneal(rows, cols, SCALE_SA_STEPS, "incremental")
            topo = seed_result.topology

            t0 = time.perf_counter()
            hops = average_hops(topo)
            diam = diameter(topo)
            metric_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            table = bfs_dest_table(topo, max_vcs=14)
            route_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            CompiledNetwork(table)
            compile_s = time.perf_counter() - t0

            rows_out.append({
                "n_routers": n,
                "sa_steps": SCALE_SA_STEPS,
                "sa_wall_s": round(sa_s, 3),
                "metric_wall_s": round(metric_s, 4),
                "route_wall_s": round(route_s, 3),
                "compile_wall_s": round(compile_s, 3),
                "avg_hops": round(hops, 4),
                "diameter": diam,
                "num_vcs": table.num_vcs,
            })
        return rows_out

    rows_out = once(harness)

    print("\nper-layer wall time vs n (seconds):")
    print(f"{'n':>6} {'sa(30)':>8} {'metrics':>8} {'route':>8} "
          f"{'compile':>8} {'vcs':>4}")
    for r in rows_out:
        print(f"{r['n_routers']:>6} {r['sa_wall_s']:>8.2f} "
              f"{r['metric_wall_s']:>8.3f} {r['route_wall_s']:>8.2f} "
              f"{r['compile_wall_s']:>8.2f} {r['num_vcs']:>4}")

    bench_record(grids=[f"{r}x{c}" for r, c in SCALE_GRIDS], rows=rows_out)
