"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Triangle-inequality (NetSmith) vs port-mapping (LPBT) hop encodings:
   same instance, same budget — solution quality and model size.
2. Asymmetric vs symmetric links (Table I C9).
3. Diameter bound C8 on vs off (time to first incumbent proxy).
4. MILP vs simulated-annealing search (what the exact method buys).
"""

import time

import pytest

from repro.core import (
    LPBTConfig,
    NetSmithConfig,
    anneal_topology,
    build_distance_formulation,
    build_lpbt_model,
    generate_latop,
    generate_lpbt,
)
from repro.topology import Layout, average_hops

GRID = Layout(rows=2, cols=4)  # 8 routers: big enough to differentiate


def test_ablation_formulation_encoding(once):
    """NetSmith's distance encoding finds equal-or-better topologies than
    LPBT's port-mapping encoding under the same small budget, with a much
    smaller model (the paper's III-C finding in miniature)."""

    def run():
        ns_cfg = NetSmithConfig(
            layout=GRID, link_class="small", radix=3, diameter_bound=4
        )
        ns_handles = build_distance_formulation(ns_cfg)
        lp_model, _, _ = build_lpbt_model(
            LPBTConfig(layout=GRID, link_class="small", radix=3)
        )
        ns = generate_latop(ns_cfg, time_limit=30)
        lp = generate_lpbt(
            LPBTConfig(layout=GRID, link_class="small", radix=3), time_limit=30
        )
        return ns_handles.model.num_vars, lp_model.num_vars, ns, lp

    ns_vars, lp_vars, ns, lp = once(run)
    ns_hops = average_hops(ns.topology)
    lp_hops = average_hops(lp.topology)
    print(
        f"\nAblation 1 — encoding: NetSmith vars={ns_vars} hops={ns_hops:.3f} "
        f"gap={ns.mip_gap:.1%} | LPBT vars={lp_vars} hops={lp_hops:.3f} "
        f"gap={lp.mip_gap:.1%}"
    )
    assert ns_vars < lp_vars
    assert ns_hops <= lp_hops + 1e-9


def test_ablation_symmetric_links(once):
    """Paper III-B: symmetric links cost <3% latency, so the asymmetric
    optimum is (weakly) better, and the symmetric one is close."""

    def run():
        asym = generate_latop(
            NetSmithConfig(layout=GRID, link_class="small", radix=3,
                           diameter_bound=4),
            time_limit=40,
        )
        sym = generate_latop(
            NetSmithConfig(layout=GRID, link_class="small", radix=3,
                           symmetric=True, diameter_bound=4),
            time_limit=40,
        )
        return asym, sym

    asym, sym = once(run)
    print(
        f"\nAblation 2 — symmetry: asym obj={asym.objective:.0f} "
        f"sym obj={sym.objective:.0f} "
        f"(penalty {(sym.objective / asym.objective - 1):.1%})"
    )
    assert asym.objective <= sym.objective + 1e-9
    assert sym.objective <= asym.objective * 1.10  # small penalty only


def test_ablation_diameter_bound(once):
    """Paper III-A(d): bounding the diameter (C8) helps the solver; at
    minimum it must not worsen the optimum when the bound is loose."""

    def run():
        tight = generate_latop(
            NetSmithConfig(layout=GRID, link_class="small", radix=3,
                           diameter_bound=3),
            time_limit=40,
        )
        loose = generate_latop(
            NetSmithConfig(layout=GRID, link_class="small", radix=3,
                           diameter_bound=6),
            time_limit=40,
        )
        return tight, loose

    tight, loose = once(run)
    print(
        f"\nAblation 3 — diameter bound: tight(3) obj={tight.objective:.0f} "
        f"t={tight.solve_time_s:.1f}s | loose(6) obj={loose.objective:.0f} "
        f"t={loose.solve_time_s:.1f}s"
    )
    # a tight-but-feasible bound cannot *improve* the true optimum
    assert tight.objective >= loose.objective - 1e-9


def test_ablation_milp_vs_sa(once):
    """What the exact formulation buys over local search: SA must get
    close (it's our scalability fallback) but never beat a proven MILP
    optimum."""

    def run():
        milp = generate_latop(
            NetSmithConfig(layout=GRID, link_class="small", radix=3,
                           diameter_bound=4),
            time_limit=40,
        )
        sa = anneal_topology(
            NetSmithConfig(layout=GRID, link_class="small", radix=3),
            objective="latency", steps=2500, seed=4,
        )
        return milp, sa

    milp, sa = once(run)
    print(
        f"\nAblation 4 — MILP obj={milp.objective:.0f} ({milp.status}) vs "
        f"SA obj={sa.objective:.0f}"
    )
    assert sa.objective >= milp.objective - 1e-9
    assert sa.objective <= milp.objective * 1.15
