"""Supervised-executor overhead and chaos-recovery wall-clock benchmark.

Two questions, both about the fault-tolerant execution layer (PR 9):

1. What does supervision *cost* on a healthy run?  The same sweep is
   fanned through the supervised pool with and without a retry policy
   armed; the overhead ratio must stay small — supervision is a
   sliding-window ``wait()`` loop over the same futures, not a second
   scheduler.
2. What does recovery *cost* under faults?  A chaos run with a worker
   crash and a transient exception injected must converge to the exact
   fault-free curve, and the wall-clock tax of pool restart + retries
   is recorded so the perf trajectory of the recovery path is tracked
   across PRs.

Results land in ``BENCH_supervision.json`` (schema: benchmarks/conftest):
wall seconds per leg, overhead ratio, and the chaos leg's RunHealth
counters.
"""

import tempfile
import time

from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.runner import ChaosSpec, Runner, TaskRetryPolicy
from repro.runner.tasks import TrafficSpec, sim_point_payload
from repro.topology import Layout, Topology

RATES = (0.02, 0.06, 0.12)
BUDGET = dict(warmup=80, measure=200, seed=0)


def _table():
    layout = Layout(rows=2, cols=3)
    edges = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)]
    topo = Topology.from_undirected(layout, edges, name="mesh2x3", link_class="small")
    routes = ndbt_route(topo, seed=0)
    return build_routing_table(routes, assign_vcs(routes, seed=0))


def _points(curve):
    return [
        (p.offered_rate, p.avg_latency_cycles, p.throughput_packets_node_cycle)
        for p in curve.points
    ]


def _sweep(table, cache_dir, retry=None, chaos=None, parallel=2):
    with Runner(
        parallel=parallel, cache_dir=cache_dir, retry=retry, chaos=chaos
    ) as runner:
        t0 = time.perf_counter()
        curve = runner.curve(
            table, TrafficSpec.uniform(6), RATES, link_class="small", **BUDGET
        )
        return time.perf_counter() - t0, curve, runner.health


def test_supervision_overhead_and_chaos_recovery(once, bench_record,
                                                 require_parallel):
    table = _table()
    payloads = [
        sim_point_payload(table, TrafficSpec.uniform(6), r, **BUDGET)
        for r in RATES
    ]

    def harness():
        with tempfile.TemporaryDirectory() as tmp:
            bare_s, bare, _ = _sweep(table, tmp + "/bare")
            sup_s, sup, _ = _sweep(
                table, tmp + "/sup",
                retry=TaskRetryPolicy(timeout=30.0, retries=2),
            )
            chaos = ChaosSpec.select(
                payloads, seed=1, crash=1, exc=1, fail_attempts=1
            )
            chaos_s, chaotic, health = _sweep(
                table, tmp + "/chaos",
                retry=TaskRetryPolicy(timeout=30.0, retries=3,
                                      backoff=0.01, max_pool_restarts=10),
                chaos=chaos,
            )
            return bare_s, bare, sup_s, sup, chaos_s, chaotic, health

    bare_s, bare, sup_s, sup, chaos_s, chaotic, health = once(harness)
    overhead = sup_s / bare_s if bare_s else float("inf")

    print(f"\nsupervision: bare {bare_s:.2f}s | supervised {sup_s:.2f}s "
          f"(x{overhead:.2f}) | chaos recovery {chaos_s:.2f}s")
    print(f"chaos leg: {health.summary()}")

    assert _points(sup) == _points(bare), (
        "arming a retry policy changed a fault-free sweep's numbers"
    )
    assert _points(chaotic) == _points(bare), (
        "chaos recovery did not converge to the fault-free curve"
    )
    assert health.retries >= 1, "injected transient never retried"
    # The injected crash is recovered either by pool restart or, on a
    # degenerate 1-worker pool, never fires in-worker; only require it
    # when the pool really fanned out.
    if health.inline_fallbacks == 0 and health.pool_restarts:
        assert health.crashes >= 1
    # Supervision on a healthy sweep must not balloon the wall clock.
    # The sweep itself is seconds-scale; allow generous CI noise.
    assert overhead < 3.0, (
        f"supervised sweep took {overhead:.2f}x the bare sweep"
    )

    bench_record(
        bare_wall_s=round(bare_s, 3),
        supervised_wall_s=round(sup_s, 3),
        overhead_ratio=round(overhead, 3),
        chaos_wall_s=round(chaos_s, 3),
        chaos_retries=health.retries,
        chaos_crashes=health.crashes,
        chaos_pool_restarts=health.pool_restarts,
        chaos_quarantined=health.quarantined,
        rates=len(RATES),
    )
