"""Table II: topology metrics at 20 (and, when frozen, 30) routers."""

import pytest

from repro.experiments import format_table, table2


def test_table2_20_routers(once):
    rows = once(table2, 20, allow_generate=False)
    print("\n" + format_table(rows, 20))

    by_name = {(r.link_class, r.measured.name): r for r in rows}

    # Exact-construction row must match the paper exactly.
    ft = by_name[("medium", "FoldedTorus")].measured
    assert (ft.num_links, ft.diameter, ft.bisection_bw) == (40, 4, 10)
    assert abs(ft.avg_hops - 2.32) < 0.01

    # NetSmith wins per class: lowest avg hops among the class's cast
    # (paper: NS-LatOp leads every class; at 'small' Kite ties closely,
    # so allow a 1% band there).
    for cls, tol in (("small", 1.01), ("medium", 1.0), ("large", 1.0)):
        cls_rows = [r for r in rows if r.link_class == cls]
        ns = min(
            r.measured.avg_hops
            for r in cls_rows
            if r.measured.name.startswith("NS-LatOp")
        )
        best_other = min(
            r.measured.avg_hops
            for r in cls_rows
            if not r.measured.name.startswith("NS-")
        )
        assert ns <= best_other * tol, f"{cls}: NS {ns} vs expert {best_other}"

    # Every measured row with a paper reference stays within loose bands.
    for r in rows:
        if r.paper is None:
            continue
        links, diam, hops, bw = r.paper
        assert abs(r.measured.avg_hops - hops) < 0.25, r.measured.name
        assert abs(r.measured.num_links - links) <= 4, r.measured.name


@pytest.mark.slow
def test_table2_30_routers(once):
    try:
        rows = once(table2, 30, allow_generate=False, exact_cuts=False)
    except KeyError:
        pytest.skip("30-router artifacts not frozen in this build")
    print("\n" + format_table(rows, 30))
    for cls in ("small", "medium", "large"):
        cls_rows = [r for r in rows if r.link_class == cls]
        if not cls_rows:
            continue
        ns = [r for r in cls_rows if r.measured.name.startswith("NS-")]
        others = [r for r in cls_rows if not r.measured.name.startswith("NS-")]
        if ns and others:
            assert min(r.measured.avg_hops for r in ns) <= min(
                r.measured.avg_hops for r in others
            ) * 1.02
