"""Engine benchmark: flat-array fast engine vs the reference simulator.

Runs the fig6-style uniform-traffic sweep (4x5 grid, medium link class,
fig6 budgets and rates, stop-after-saturation) with both engines,
verifies the curves are bit-identical, and reports the wall-clock
speedup.  PR 2's engine was bounded at ~2.3x aggregate by shared
RNG-draw-order work (one scalar destination closure call and one scalar
size draw per packet); the trace-fed engine pre-generates injection
events in vectorized chunks and shares one compiled network across all
rate points, which clears the >=3x aggregate target.  The assertion
floor is 3x (low-load points, where the worklist/sleep machinery
additionally skips idle cycles outright, must clear 4x); the measured
ratios are printed and persisted to ``BENCH_engine.json`` either way.
"""

import time

from repro.experiments.fig6 import DEFAULT_RATES
from repro.experiments.registry import roster, routed_entry
from repro.sim import latency_throughput_curve, run_point, uniform_random

REPS = 3  # interleaved repetitions; min cancels scheduler noise

#: Asserted speedup floors (conservative vs typical measurements, so the
#: benchmark stays meaningful under CI timer noise).
AGGREGATE_FLOOR = 3.0
LOW_LOAD_FLOOR = 4.0


def _sweep(table, engine):
    return latency_throughput_curve(
        table, uniform_random(20), DEFAULT_RATES,
        warmup=400, measure=1500, seed=0, engine=engine,
    )


def _timed_sweeps(table):
    best = {"reference": float("inf"), "fast": float("inf")}
    curves = {}
    for _ in range(REPS):
        for engine in ("reference", "fast"):
            t0 = time.perf_counter()
            curves[engine] = _sweep(table, engine)
            best[engine] = min(best[engine], time.perf_counter() - t0)
    return best, curves


def test_engine_speedup_fig6_medium(once, bench_record):
    entries = roster("medium", 20, allow_generate=False)
    tables = [(e.name, routed_entry(e, seed=0)) for e in entries]

    def harness():
        return {name: _timed_sweeps(table) for name, table in tables}

    results = once(harness)

    print("\nEngine speedup — fig6-style uniform sweep (4x5, medium class)")
    tot_ref = tot_fast = 0.0
    per_topology = {}
    for name, (best, curves) in results.items():
        # equal results: point-for-point identical curves
        ref_pts = curves["reference"].points
        fast_pts = curves["fast"].points
        assert len(ref_pts) == len(fast_pts), name
        for pa, pb in zip(ref_pts, fast_pts):
            assert pa == pb, name
        ratio = best["reference"] / best["fast"]
        tot_ref += best["reference"]
        tot_fast += best["fast"]
        per_topology[name] = {
            "reference_s": best["reference"],
            "fast_s": best["fast"],
            "speedup": ratio,
        }
        print(f"  {name:<18} reference={best['reference']*1e3:7.1f} ms  "
              f"fast={best['fast']*1e3:7.1f} ms  speedup={ratio:4.2f}x")
    agg = tot_ref / tot_fast
    print(f"  {'AGGREGATE':<18} reference={tot_ref*1e3:7.1f} ms  "
          f"fast={tot_fast*1e3:7.1f} ms  speedup={agg:4.2f}x")
    bench_record(
        workload="fig6 medium uniform sweep (4x5)",
        reference_s=tot_ref,
        fast_s=tot_fast,
        speedup=agg,
        floor=AGGREGATE_FLOOR,
        per_topology=per_topology,
    )
    assert agg >= AGGREGATE_FLOOR, (
        f"fast engine speedup regressed: {agg:.2f}x < {AGGREGATE_FLOOR}x"
    )


def test_engine_speedup_low_load_point(once, bench_record):
    """At sub-saturation operating points the trace and the sleep
    machinery compound: precomputed arrivals plus skipped idle cycles
    clear 4x+."""
    entry = roster("medium", 20, allow_generate=False)[0]
    table = routed_entry(entry, seed=0)

    def harness():
        best = {"reference": float("inf"), "fast": float("inf")}
        stats = {}
        for _ in range(REPS):
            for engine in ("reference", "fast"):
                t0 = time.perf_counter()
                stats[engine] = run_point(
                    table, uniform_random(20), 0.02,
                    warmup=400, measure=1500, seed=0, engine=engine,
                )
                best[engine] = min(best[engine], time.perf_counter() - t0)
        return best, stats

    best, stats = once(harness)
    assert stats["reference"] == stats["fast"]
    ratio = best["reference"] / best["fast"]
    print(f"\nlow-load point (rate 0.02): reference={best['reference']*1e3:.1f} ms "
          f"fast={best['fast']*1e3:.1f} ms  speedup={ratio:.2f}x")
    bench_record(
        workload="single low-load point (rate 0.02)",
        reference_s=best["reference"],
        fast_s=best["fast"],
        speedup=ratio,
        floor=LOW_LOAD_FLOOR,
    )
    assert ratio >= LOW_LOAD_FLOOR, f"low-load speedup regressed: {ratio:.2f}x"
