"""Engine benchmark: flat-array fast engine vs the reference simulator.

Runs the fig6-style uniform-traffic sweep (4x5 grid, medium link class,
fig6 budgets and rates, stop-after-saturation) with both engines,
verifies the curves are bit-identical, and reports the wall-clock
speedup.  PR 2's engine was bounded at ~2.3x aggregate by shared
RNG-draw-order work (one scalar destination closure call and one scalar
size draw per packet); the trace-fed engine pre-generates injection
events in vectorized chunks and shares one compiled network across all
rate points, which clears the >=3x aggregate target.  The assertion
floor is 3x (low-load points, where the worklist/sleep machinery
additionally skips idle cycles outright, must clear 4x); the measured
ratios are printed and persisted to ``BENCH_engine.json`` either way.

The batched multi-replica benchmark adds the third engine: all
``BATCH_SEEDS x len(DEFAULT_RATES)`` lanes of one topology advanced as
a single SoA batch, in exact mode (bit-identical per-lane, asserted)
and turbo mode (relaxed cross-replica draw order, KS-validated by
``tests/test_batch.py``), which must clear a 10x aggregate floor over
the reference.  Every record carries ``mode`` and ``batch_shape``
fields so BENCH_engine.json distinguishes the exact and turbo rows.
"""

import time

from repro.experiments.fig6 import DEFAULT_RATES
from repro.experiments.registry import roster, routed_entry
from repro.sim import (
    latency_throughput_curve,
    run_batch,
    run_point,
    uniform_random,
)

REPS = 3  # interleaved repetitions; min cancels scheduler noise

#: Asserted speedup floors (conservative vs typical measurements, so the
#: benchmark stays meaningful under CI timer noise).
AGGREGATE_FLOOR = 3.0
LOW_LOAD_FLOOR = 4.0

#: Batched-engine benchmark: seed replicas per rate, and the floors for
#: the two batch modes against the per-replica reference cost.  Turbo
#: (relaxed draw-order, fused SoA loop over all lanes) must clear 10x;
#: the exact batch (same per-replica loop, shared compile + trace
#: machinery) is a sanity floor, with the real exact no-regression pin
#: being the 3x aggregate test above.
BATCH_SEEDS = 16
TURBO_FLOOR = 10.0
EXACT_BATCH_FLOOR = 2.0
BATCH_REPS = 2  # the exact leg is ~10s/rep; min of 2 bounds the wall clock


def _sweep(table, engine):
    return latency_throughput_curve(
        table, uniform_random(20), DEFAULT_RATES,
        warmup=400, measure=1500, seed=0, engine=engine,
    )


def _timed_sweeps(table):
    best = {"reference": float("inf"), "fast": float("inf")}
    curves = {}
    for _ in range(REPS):
        for engine in ("reference", "fast"):
            t0 = time.perf_counter()
            curves[engine] = _sweep(table, engine)
            best[engine] = min(best[engine], time.perf_counter() - t0)
    return best, curves


def test_engine_speedup_fig6_medium(once, bench_record):
    entries = roster("medium", 20, allow_generate=False)
    tables = [(e.name, routed_entry(e, seed=0)) for e in entries]

    def harness():
        return {name: _timed_sweeps(table) for name, table in tables}

    results = once(harness)

    print("\nEngine speedup — fig6-style uniform sweep (4x5, medium class)")
    tot_ref = tot_fast = 0.0
    per_topology = {}
    for name, (best, curves) in results.items():
        # equal results: point-for-point identical curves
        ref_pts = curves["reference"].points
        fast_pts = curves["fast"].points
        assert len(ref_pts) == len(fast_pts), name
        for pa, pb in zip(ref_pts, fast_pts):
            assert pa == pb, name
        ratio = best["reference"] / best["fast"]
        tot_ref += best["reference"]
        tot_fast += best["fast"]
        per_topology[name] = {
            "reference_s": best["reference"],
            "fast_s": best["fast"],
            "speedup": ratio,
        }
        print(f"  {name:<18} reference={best['reference']*1e3:7.1f} ms  "
              f"fast={best['fast']*1e3:7.1f} ms  speedup={ratio:4.2f}x")
    agg = tot_ref / tot_fast
    print(f"  {'AGGREGATE':<18} reference={tot_ref*1e3:7.1f} ms  "
          f"fast={tot_fast*1e3:7.1f} ms  speedup={agg:4.2f}x")
    bench_record(
        workload="fig6 medium uniform sweep (4x5)",
        mode="exact",
        batch_shape=[1, len(DEFAULT_RATES)],
        reference_s=tot_ref,
        fast_s=tot_fast,
        speedup=agg,
        floor=AGGREGATE_FLOOR,
        per_topology=per_topology,
    )
    assert agg >= AGGREGATE_FLOOR, (
        f"fast engine speedup regressed: {agg:.2f}x < {AGGREGATE_FLOOR}x"
    )


def test_engine_speedup_low_load_point(once, bench_record):
    """At sub-saturation operating points the trace and the sleep
    machinery compound: precomputed arrivals plus skipped idle cycles
    clear 4x+."""
    entry = roster("medium", 20, allow_generate=False)[0]
    table = routed_entry(entry, seed=0)

    def harness():
        best = {"reference": float("inf"), "fast": float("inf")}
        stats = {}
        for _ in range(REPS):
            for engine in ("reference", "fast"):
                t0 = time.perf_counter()
                stats[engine] = run_point(
                    table, uniform_random(20), 0.02,
                    warmup=400, measure=1500, seed=0, engine=engine,
                )
                best[engine] = min(best[engine], time.perf_counter() - t0)
        return best, stats

    best, stats = once(harness)
    assert stats["reference"] == stats["fast"]
    ratio = best["reference"] / best["fast"]
    print(f"\nlow-load point (rate 0.02): reference={best['reference']*1e3:.1f} ms "
          f"fast={best['fast']*1e3:.1f} ms  speedup={ratio:.2f}x")
    bench_record(
        workload="single low-load point (rate 0.02)",
        mode="exact",
        batch_shape=[1, 1],
        reference_s=best["reference"],
        fast_s=best["fast"],
        speedup=ratio,
        floor=LOW_LOAD_FLOOR,
    )
    assert ratio >= LOW_LOAD_FLOOR, f"low-load speedup regressed: {ratio:.2f}x"


def test_engine_speedup_batched_multi_replica(once, bench_record):
    """Batched multi-replica engine on the fig6 medium sweep: S seed
    replicas x every DEFAULT_RATE of one routed topology, advanced as
    one SoA batch.  The reference cost is one measured single-seed
    full-grid reference sweep scaled by S (the reference engine shares
    nothing across seeds, so its cost is linear in replicas); both
    batch legs run all S x R lanes with no early stop, so the
    comparison is grid-for-grid.  Turbo must clear ``TURBO_FLOOR``;
    the exact batch's first-seed lanes are asserted bit-identical to
    the per-replica fast engine."""
    entry = roster("medium", 20, allow_generate=False)[0]
    table = routed_entry(entry, seed=0)
    traffic = uniform_random(20)
    rates = [float(r) for r in DEFAULT_RATES]
    lanes = [(r, s) for s in range(BATCH_SEEDS) for r in rates]
    budget = dict(warmup=400, measure=1500)

    def harness():
        best = {"reference": float("inf"), "exact": float("inf"),
                "turbo": float("inf")}
        sample = {}
        for _ in range(BATCH_REPS):
            t0 = time.perf_counter()
            latency_throughput_curve(
                table, traffic, rates, seed=0, engine="reference",
                stop_after_saturation=False, **budget,
            )
            best["reference"] = min(best["reference"],
                                    time.perf_counter() - t0)
            for mode in ("exact", "turbo"):
                t0 = time.perf_counter()
                sample[mode] = run_batch(
                    table, traffic, lanes, mode=mode, **budget,
                )
                best[mode] = min(best[mode], time.perf_counter() - t0)
        return best, sample

    best, sample = once(harness)

    for i, r in enumerate(rates):  # first-seed slice of the exact batch
        want = run_point(table, traffic, r, seed=0, engine="fast", **budget)
        assert sample["exact"][i] == want, r

    ref_agg = best["reference"] * BATCH_SEEDS
    turbo_speedup = ref_agg / best["turbo"]
    exact_speedup = ref_agg / best["exact"]
    shape = [BATCH_SEEDS, len(rates)]
    print(f"\nbatched multi-replica sweep ({entry.name}, "
          f"{shape[0]}x{shape[1]} lanes)")
    print(f"  reference {best['reference']:.2f}s/seed -> "
          f"{ref_agg:.1f}s for {BATCH_SEEDS} seeds")
    print(f"  exact batch {best['exact']:.2f}s  speedup "
          f"{exact_speedup:.2f}x")
    print(f"  turbo batch {best['turbo']:.2f}s  speedup "
          f"{turbo_speedup:.2f}x")
    bench_record(
        workload=f"fig6 medium batched sweep ({entry.name})",
        mode="turbo",
        batch_shape=shape,
        reference_per_seed_s=best["reference"],
        reference_s=ref_agg,
        exact_batch_s=best["exact"],
        turbo_s=best["turbo"],
        exact_batch_speedup=exact_speedup,
        speedup=turbo_speedup,
        floor=TURBO_FLOOR,
        exact_batch_floor=EXACT_BATCH_FLOOR,
    )
    assert turbo_speedup >= TURBO_FLOOR, (
        f"turbo batch speedup {turbo_speedup:.2f}x < {TURBO_FLOOR}x "
        f"aggregate over the reference on {shape} lanes"
    )
    assert exact_speedup >= EXACT_BATCH_FLOOR, (
        f"exact batch speedup {exact_speedup:.2f}x < {EXACT_BATCH_FLOOR}x"
    )
