"""Fig. 9: power and area relative to mesh."""

import math

from repro.experiments import fig9_rows, ns_large_vs_small_dynamic


def test_fig9_power_area(once):
    rows = once(fig9_rows, allow_generate=False)

    print("\nFig. 9 — power/area normalized to mesh (lower is better)")
    for r in rows:
        n = r.normalized
        print(
            f"  {r.name:<18} static={n['static_power']:.2f} "
            f"dynamic={n['dynamic_power']:.2f} total={n['total_power']:.2f} | "
            f"router-area={n['router_area']:.2f} wire-area={n['wire_area']:.2f}"
        )

    # Paper: leakage roughly flat (same routers; modest wire-repeater
    # variation), wire area dominates, all NoIs tiny vs interposer.
    for r in rows:
        assert 0.8 < r.normalized["static_power"] < 1.6, r.name
        assert r.raw.wire_area_mm2 > r.raw.router_area_mm2, r.name
        assert r.raw.interposer_area_fraction < 0.03, r.name

    # Paper: NetSmith-large ~17% lower dynamic power than NetSmith-small
    # (slower clock on longer links); we accept a generous band.
    ratio = ns_large_vs_small_dynamic(rows)
    if not math.isnan(ratio):
        print(f"NS large/small dynamic-power ratio: {ratio:.2f} (paper ~0.83)")
        assert 0.6 < ratio < 1.0

    # NetSmith's aggressive link usage costs wire area vs experts in the
    # same class (the paper's stated overhead).
    by_name = {r.name: r for r in rows}
    if "NS-LatOp-large" in by_name and "DoubleButterfly" in by_name:
        assert (
            by_name["NS-LatOp-large"].normalized["wire_area"]
            >= by_name["DoubleButterfly"].normalized["wire_area"]
        )
