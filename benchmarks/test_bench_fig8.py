"""Fig. 8: PARSEC speedups and packet-latency reductions vs mesh."""

import numpy as np
import pytest

from repro.experiments import fig8_results
from repro.fullsys.workloads import PARSEC


def test_fig8_parsec(once):
    # Subset of benchmarks spanning the MPKI range keeps the bench under
    # a few minutes; the slow variant covers all twelve.
    subset = [w for w in PARSEC if w.name in
              ("blackscholes", "raytrace", "ferret", "streamcluster", "canneal")]
    res = once(
        fig8_results,
        workloads=subset,
        warmup=400,
        measure=1500,
        allow_generate=False,
        max_entries_per_class=3,
    )

    print("\nFig. 8 — speedup over mesh (bars) / latency reduction (markers)")
    names = sorted(res.geomean)
    for row in res.rows:
        print(f"  {row.workload}:")
        for n in names:
            print(
                f"    {n:<18} speedup={row.speedups[n]:.3f} "
                f"latency-red={row.latency_reductions[n]:+.1%}"
            )
    print(f"  GEOMEAN: { {n: round(res.geomean[n], 3) for n in names} }")

    # Paper: all topologies beat mesh; sensitivity grows with MPKI;
    # NetSmith always posts the largest latency reduction.
    assert all(v > 1.0 for v in res.geomean.values())

    by_wl = {r.workload: r for r in res.rows}
    low = max(by_wl["blackscholes"].speedups.values())
    high = max(by_wl["canneal"].speedups.values())
    assert high > low

    assert res.netsmith_always_best_latency()

    # NetSmith leads the geomean — allowing the Kite-Small near-tie the
    # paper itself reports (within 1%; our compressed model can flip the
    # fourth decimal under simulation noise).
    best = res.best_topology()
    print(f"best geomean topology: {best}")
    best_v = max(res.geomean.values())
    ns_best = max(v for k, v in res.geomean.items() if k.startswith("NS-"))
    assert ns_best >= best_v - 0.005
    if not best.startswith("NS-"):
        assert best == "Kite-Small"


@pytest.mark.slow
def test_fig8_parsec_full(once):
    res = once(
        fig8_results, warmup=600, measure=2500, allow_generate=False,
    )
    print("\nFig. 8 (all 12 PARSEC) GEOMEAN:")
    for n, v in sorted(res.geomean.items(), key=lambda kv: -kv[1]):
        print(f"  {n:<18} {v:.3f}")
    best_v = max(res.geomean.values())
    ns_best = max(v for k, v in res.geomean.items() if k.startswith("NS-"))
    assert ns_best >= best_v - 0.005
    best = res.best_topology()
    if not best.startswith("NS-"):
        assert best == "Kite-Small"
