"""Generation-pipeline benchmark: serial vs runner-parallel portfolio.

Runs the same design-space sweep — a small layout grid, two link
classes, portfolio strategy (SA wave + budget-capped exact wave) —
through one worker and through all cores, and reports the aggregate
wall-clock speedup.  Generation is the repo's newest runner workload:
before the pipeline, every MILP solve and annealing run executed
serially in-process; this benchmark tracks what fanning them out buys.

The asserted floor is 2x, conservative for the typical 4-core CI runner
(portfolio waves are embarrassingly parallel, but the second wave's
exact solves are time-limit-bound, so the ideal ratio is roughly the
worker count minus pool-startup overhead).  The parallel leg's
*effective* worker count — what the pool actually fanned out to, not
what was configured — is recorded and asserted >= 2: a degenerate
1-worker "parallel" leg (1-core box, pool spawn refused) FAILS the
benchmark outright rather than recording a meaningless ~1x speedup as
a passing result, which is exactly how an earlier run shipped a 1.05x
"speedup" measured against itself.

Time-limited exact solves are *not* asserted bit-identical across
worker counts (solver progress under a wall-clock budget depends on
machine load — unlike simulation tasks, whose payloads fully determine
their results); both runs are asserted to produce valid radix- and
class-respecting topologies for every point.

Results land in ``BENCH_generation.json`` (schema: benchmarks/conftest).
"""

import time

from repro.pipeline import design_grid, generate_points
from repro.runner import Runner
from repro.runner.executor import default_workers

SPEEDUP_FLOOR = 2.0

#: Small grids: big enough that exact solves do real work inside the
#: budget, small enough that the serial leg stays minutes-scale.
GRIDS = ("3x4", "4x4", "3x5", "4x5")
LINK_CLASSES = ("small", "medium")

POINTS = design_grid(
    GRIDS,
    link_classes=LINK_CLASSES,
    objectives=("latency",),
    strategies=("portfolio",),
    time_limit=5.0,
    sa_steps=1200,
    diameter_bound=5,
    use_frozen=False,  # measure real generation, not registry lookups
)


def _sweep(workers: int):
    with Runner(parallel=workers, no_cache=True) as runner:
        timings = {}
        t0 = time.perf_counter()
        results = generate_points(POINTS, runner=runner, timings=timings)
        wall = time.perf_counter() - t0
        return wall, runner.effective_parallel, results, timings


def test_generation_portfolio_parallel_speedup(once, bench_record, require_parallel):
    workers = default_workers()

    def harness():
        serial_s, _, serial_results, serial_waves = _sweep(1)
        parallel_s, effective, parallel_results, parallel_waves = _sweep(0)
        return (serial_s, parallel_s, effective, serial_results,
                parallel_results, serial_waves, parallel_waves)

    (serial_s, parallel_s, effective, serial_results, parallel_results,
     serial_waves, parallel_waves) = once(harness)
    speedup = serial_s / parallel_s

    print(f"\ngeneration portfolio sweep: {len(POINTS)} points "
          f"({len(GRIDS)} grids x {len(LINK_CLASSES)} classes)")
    print(f"{'point':<28} {'serial obj':>10} {'parallel obj':>12}")
    for p, s, q in zip(POINTS, serial_results, parallel_results):
        print(f"{p.label():<28} {s.objective:>10.1f} {q.objective:>12.1f}")
    print(f"serial {serial_s:.1f}s | parallel({workers}w configured, "
          f"{effective}w effective) {parallel_s:.1f}s "
          f"| speedup {speedup:.2f}x")

    for results in (serial_results, parallel_results):
        for p, r in zip(POINTS, results):
            r.topology.check(radix=p.radix, link_class=p.link_class)

    exact_wave_workers = int(parallel_waves.get("wave2_workers", 0))
    bench_record(
        points=len(POINTS),
        n_routers=sorted({p.n for p in POINTS}),
        workers=workers,
        effective_workers=effective,
        exact_wave_workers=exact_wave_workers,
        serial_wall_s=round(serial_s, 3),
        parallel_wall_s=round(parallel_s, 3),
        serial_wave_s={k: round(v, 3) for k, v in serial_waves.items()},
        parallel_wave_s={k: round(v, 3) for k, v in parallel_waves.items()},
        speedup=round(speedup, 3),
        floor=SPEEDUP_FLOOR,
    )
    require_parallel(effective, context=f"{workers} configured")
    # The exact wave is where the degenerate-fanout blind spot lived:
    # an aggregate guard passes when wave 1 fans out but the exact
    # solves serialize, so the wave-2 fanout is guarded on its own.
    require_parallel(exact_wave_workers,
                     context="portfolio exact wave-2 fanout")
    assert speedup >= SPEEDUP_FLOOR, (
        f"runner-parallel portfolio only {speedup:.2f}x faster than serial "
        f"(floor {SPEEDUP_FLOOR}x with {effective} effective workers)"
    )
