"""Robustness scenario-grid benchmark: cold sweep vs cached rerun.

Runs the ``robustness`` experiment's full fault x traffic grid (three
topologies x three fault schedules x three traffic scenarios, fast
budgets) against a fresh cache directory, then runs it again and asserts
the rerun is 100% cache hits — the resumability contract the runner
makes for every task family, exercised here through the newest one
(fault-carrying ``sat_search``/``sim_point`` payloads).

Results land in ``BENCH_robustness.json`` (schema: benchmarks/conftest):
cold/warm wall seconds, grid shape, and the rerun's cache counters.
"""

import tempfile
import time

from repro.experiments.robustness import DEFAULT_TOPOLOGIES, robustness_grid
from repro.runner import Runner


def _grid(cache_dir: str, out_dir: str):
    with Runner(parallel=1, cache_dir=cache_dir) as runner:
        t0 = time.perf_counter()
        result = robustness_grid(runner=runner, fast=True, out_dir=out_dir)
        return time.perf_counter() - t0, result, runner.stats


def test_robustness_grid_cold_then_cached(once, bench_record):
    def harness():
        with tempfile.TemporaryDirectory() as tmp:
            cold_s, cold, _ = _grid(tmp + "/cache", tmp + "/artifacts")
            warm_s, warm, stats = _grid(tmp + "/cache", tmp + "/artifacts")
            return cold_s, cold, warm_s, warm, stats

    cold_s, cold, warm_s, warm, stats = once(harness)

    print(f"\nrobustness grid: {len(cold.cells)} scenario cells over "
          f"{len(DEFAULT_TOPOLOGIES)} topologies")
    for name, cell in cold.ranking():
        print(f"  {name:<18} worst retained {cell.retained:.3f} "
              f"({cell.fault} x {cell.traffic})")
    print(f"cold {cold_s:.1f}s | cached rerun {warm_s:.1f}s | {stats.summary()}")

    assert [c.as_dict() for c in warm.cells] == [
        c.as_dict() for c in cold.cells
    ], "cached rerun changed the grid's numbers"
    assert stats.misses == 0, (
        f"cached rerun recomputed {stats.misses} task(s); "
        "the scenario grid must be 100% cache hits on an immediate rerun"
    )

    bench_record(
        cells=len(cold.cells),
        topologies=len(DEFAULT_TOPOLOGIES),
        cold_wall_s=round(cold_s, 3),
        cached_wall_s=round(warm_s, 3),
        rerun_hits=stats.hits,
        rerun_misses=stats.misses,
    )
