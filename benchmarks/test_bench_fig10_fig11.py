"""Fig. 10 (shuffle traffic / ShufOpt) and Fig. 11 (48-router scaling)."""

import pytest

from repro.experiments import fig10_curves, fig11_points


def test_fig10_shuffle_traffic(once):
    res = once(
        fig10_curves, link_classes=("medium",), allow_generate=False,
        warmup=300, measure=1200,
    )
    print("\nFig. 10 — shuffle traffic saturation (medium class)")
    ranked = sorted(
        res.curves.items(), key=lambda kv: -kv[1].saturation_throughput_ns
    )
    for name, curve in ranked:
        print(f"  {name:<20} sat={curve.saturation_throughput_ns:.3f} pkts/node/ns")

    has_shufopt = any(n.startswith("NS-ShufOpt") for n in res.curves)
    if not has_shufopt:
        pytest.skip("ShufOpt topology not frozen in this build")
    # Paper: the shuffle-optimized topology outperforms all other
    # solutions under its pattern.
    assert res.shufopt_wins("medium"), ranked[0][0]


@pytest.mark.slow
def test_fig11_48_router_scaling(once):
    res = once(
        fig11_points, allow_generate=False, warmup=250, measure=800,
    )
    if not any(p.name.startswith("NS-") for p in res.points):
        pytest.skip("48-router NetSmith topologies not frozen in this build")

    print("\nFig. 11 — 48-router (8x6) uniform-random saturation")
    for p in sorted(res.points, key=lambda p: (p.link_class, -p.saturation_packets_node_ns)):
        print(
            f"  {p.name:<18} {p.link_class:<7} "
            f"sat={p.saturation_packets_node_ns:.3f} pkts/node/ns"
        )
    for cls in ("small", "medium", "large"):
        gain = res.ns_gain(cls)
        print(f"  NS gain over best expert ({cls}): {gain:.2f}x "
              f"(paper: 1.18/1.56/1.67)")
        # NetSmith continues to outperform at scale.
        if gain == gain:  # not NaN
            assert gain > 0.99
