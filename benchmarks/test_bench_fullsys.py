"""Closed-loop engine benchmark: fast full-system engine vs reference.

Runs the Fig. 8-style PARSEC sweep over the medium-class roster (plus
the mesh baseline) with both closed-loop engines, verifies the
:class:`~repro.fullsys.speedup.WorkloadResult` values are bit-identical,
and reports the wall-clock speedup.  The fast engine shares the
open-loop engine's compiled-network + worklist/sleep machinery and
replays the reference's scalar demand/destination draws from raw PCG64
words; low-MPKI benchmarks (mostly-idle networks, where sleeping routers
skip whole cycles) clear 4x+, while MLP-saturated high-MPKI benchmarks
are arbitration-bound and land near 2.5x.  The asserted aggregate floor
is 3x (measured ~3.5x); per-pair ratios are printed and persisted to
``BENCH_fullsys.json`` either way.
"""

import time

from repro.experiments.registry import NDBT, roster, routed_entry, routed_table
from repro.fullsys import PARSEC
from repro.fullsys.speedup import run_workload
from repro.topology import expert_topology

REPS = 3  # interleaved repetitions; min cancels scheduler noise

#: Benchmarks spanning the MPKI (and therefore demand-rate) range —
#: the same subset the fig8 experiment and report use at fast budgets.
WORKLOADS = ("blackscholes", "ferret", "streamcluster", "canneal")

#: Asserted speedup floors (conservative vs typical measurements, so the
#: benchmark stays meaningful under CI timer noise).
AGGREGATE_FLOOR = 3.0
LOW_MPKI_FLOOR = 4.0

BUDGET = dict(warmup=400, measure=1500, seed=0)


def _timed_runs(table, workload):
    best = {"reference": float("inf"), "fast": float("inf")}
    results = {}
    for _ in range(REPS):
        for engine in ("reference", "fast"):
            t0 = time.perf_counter()
            results[engine] = run_workload(
                table, workload, engine=engine, **BUDGET
            )
            best[engine] = min(best[engine], time.perf_counter() - t0)
    return best, results


def test_closed_loop_speedup_parsec_medium(once, bench_record):
    mesh_table = routed_table(expert_topology("Mesh", 20), NDBT, seed=0)
    entries = roster("medium", 20, allow_generate=False)
    tables = [("Mesh", mesh_table)] + [
        (e.name, routed_entry(e, seed=0)) for e in entries
    ]
    workloads = [w for w in PARSEC if w.name in WORKLOADS]

    def harness():
        return {
            (w.name, name): _timed_runs(table, w)
            for w in workloads
            for name, table in tables
        }

    results = once(harness)

    print("\nClosed-loop engine speedup — PARSEC medium sweep (4x5)")
    tot_ref = tot_fast = 0.0
    low_ref = low_fast = 0.0
    per_pair = {}
    for (wname, tname), (best, res) in results.items():
        # equal results: bit-identical WorkloadResult either engine
        assert res["reference"] == res["fast"], (wname, tname)
        ratio = best["reference"] / best["fast"]
        tot_ref += best["reference"]
        tot_fast += best["fast"]
        if wname == "blackscholes":
            low_ref += best["reference"]
            low_fast += best["fast"]
        per_pair[f"{wname}/{tname}"] = {
            "reference_s": best["reference"],
            "fast_s": best["fast"],
            "speedup": ratio,
        }
        print(f"  {wname:<14} {tname:<18} "
              f"reference={best['reference']*1e3:7.1f} ms  "
              f"fast={best['fast']*1e3:7.1f} ms  speedup={ratio:4.2f}x")
    agg = tot_ref / tot_fast
    low = low_ref / low_fast
    print(f"  {'AGGREGATE':<33} reference={tot_ref*1e3:7.1f} ms  "
          f"fast={tot_fast*1e3:7.1f} ms  speedup={agg:4.2f}x")
    print(f"  {'LOW-MPKI (blackscholes)':<33} "
          f"reference={low_ref*1e3:7.1f} ms  "
          f"fast={low_fast*1e3:7.1f} ms  speedup={low:4.2f}x")
    bench_record(
        workload="fig8 PARSEC medium sweep (4x5, 4 benchmarks)",
        reference_s=tot_ref,
        fast_s=tot_fast,
        speedup=agg,
        floor=AGGREGATE_FLOOR,
        low_mpki_speedup=low,
        low_mpki_floor=LOW_MPKI_FLOOR,
        per_pair=per_pair,
    )
    assert agg >= AGGREGATE_FLOOR, (
        f"closed-loop fast engine speedup regressed: "
        f"{agg:.2f}x < {AGGREGATE_FLOOR}x"
    )
    assert low >= LOW_MPKI_FLOOR, (
        f"low-MPKI closed-loop speedup regressed: "
        f"{low:.2f}x < {LOW_MPKI_FLOOR}x"
    )
