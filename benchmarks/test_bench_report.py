"""End-to-end report generation (the EXPERIMENTS.md body)."""

from repro.experiments import generate_report


def test_generate_report_fast(once):
    text = once(generate_report, True)
    print("\n" + text[:2000] + "\n...[truncated]...")
    # every section must be present
    for section in ("Table II", "Fig. 1", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9"):
        assert section in text
    # measured Folded Torus row must carry the exact paper numbers
    assert "| medium | FoldedTorus | 40 (40) | 4 (4) | 2.32 (2.32) | 10 (10) |" in text
