"""Fig. 7: isolating topology vs routing benefits (large class)."""

from repro.experiments import fig7_bars, mclb_gain_summary


def test_fig7_topology_vs_routing(once):
    bars = once(fig7_bars, "large", allow_generate=False, warmup=250, measure=900)

    print("\nFig. 7 — large topologies, NDBT vs MCLB (flits/node/cycle bounds)")
    for b in bars:
        print(
            f"  {b.topology:<18} {b.routing:<5} measured={b.measured_saturation:.3f} "
            f"cut={b.cut_bound:.3f} occ={b.occupancy_bound:.3f} "
            f"routed={b.routed_bound:.3f} binding={b.binding_bound}"
        )

    gains = mclb_gain_summary(bars)
    print(f"MCLB/NDBT measured gains: { {k: round(v, 2) for k, v in gains.items()} }")

    # Paper: MCLB routing improves observed saturation on every topology
    # it is compared on (allowing simulation noise of a few percent).
    assert gains, "need at least one NDBT/MCLB pair"
    assert all(g >= 0.95 for g in gains.values())
    assert any(g > 1.0 for g in gains.values())

    # Paper: NetSmith's bounds (and measured throughput) exceed experts'.
    ns = [b for b in bars if b.topology.startswith("NS-")]
    experts_mclb = [
        b for b in bars if not b.topology.startswith("NS-") and b.routing == "mclb"
    ]
    assert ns and experts_mclb
    best_ns = max(b.measured_saturation for b in ns)
    best_ex = max(b.measured_saturation for b in experts_mclb)
    assert best_ns >= best_ex * 0.99

    # Paper: expert topologies are cut-bound, NetSmith occupancy-bound.
    for b in ns:
        assert b.binding_bound == "occupancy" or b.cut_bound > 1.0
