"""Fig. 4 (example LatOp-medium topology) and Fig. 5 (solver progress)."""

import pytest

from repro.experiments import fig4_render, fig5_curves


def test_fig4_topology_rendering(once):
    res = once(fig4_render, 20, allow_generate=False)
    print("\n" + res.rendering)
    # the rendered example must be a valid medium-class radix-4 design
    res.topology.check(radix=4, link_class="medium")
    u, v = res.cut.partition
    assert len(u) + len(v) == 20
    assert res.cut.value > 0


def test_fig5_gap_vs_time_reduced(once):
    """Reduced-scale (3x4) gap curves; full scale is the slow variant."""
    res = once(fig5_curves, time_limit=15.0)
    print("\nFig. 5 (reduced 3x4 instance) — objective-bounds gap vs time")
    for label, curve in res.curves.items():
        xs, ys = curve.series()
        tail = ", ".join(f"({x:.1f}s, {y:.0%})" for x, y in zip(xs[-3:], ys[-3:]))
        print(f"  {label:<7} final gap {curve.final_gap():.0%}   tail: {tail}")
    # Structural checks: every class yields a finite, weakly-tightening
    # gap curve.  (The paper's small<medium<large convergence *ordering*
    # is a 4x5-scale phenomenon — asserted in the full-scale variant
    # below; at 3x4 the search spaces are too close to separate.)
    for label, curve in res.curves.items():
        xs, ys = curve.series()
        finite = ys[ys == ys]
        assert finite.size >= 1, label
        assert finite[-1] <= finite[0] + 1e-9, label
        assert finite[-1] < 1.0, label


@pytest.mark.slow
def test_fig5_gap_vs_time_full_scale(once):
    """Paper-scale 4x5 curves via the HiGHS time-limit ladder."""
    res = once(
        fig5_curves, backend="scipy", time_limit=60.0, full_scale=True,
        diameter_bound=5,
    )
    print("\nFig. 5 (full 4x5) — gap ladder")
    for label, curve in res.curves.items():
        for s in curve.samples:
            inc = f"{s.incumbent:.0f}" if s.incumbent is not None else "-"
            print(f"  {label:<7} t={s.time_s:>5.1f}s gap={s.gap:7.2%} inc={inc}")
    assert all(c.samples for c in res.curves.values())
    # Paper: the smaller the link-length limit, the faster the
    # convergence (small closes its gap before large at 4x5 scale).
    finals = {label: c.final_gap() for label, c in res.curves.items()}
    print(f"final gaps: { {k: round(v, 3) for k, v in finals.items()} }")
    assert finals["small"] <= finals["large"] + 0.02
