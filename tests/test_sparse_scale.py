"""Sparse-at-scale stack: CSR tables, bfs policy, incremental APSP,
hierarchical generation, sim-cutoff evaluation, cache compression.

Everything here pins an equivalence or a contract introduced by the
sparse refactor:

* ``IncrementalAPSP`` is bitwise-equal to the full recompute across
  random link swaps, and ``anneal_topology`` produces identical results
  under either ``apsp`` mode;
* ``CSRRoutingTable`` round-trips losslessly and rejects tables that
  are not destination-consistent;
* the ``bfs`` policy yields validated shortest-path tables, compiles
  through the worker codec, and simulates bit-identically to its dict
  twin on both engines;
* hierarchical generation is deterministic, radix/class-clean, and
  atomic in the staged pipeline;
* ``evaluate_tables`` honors ``sim_cutoff``;
* the cache stores large entries compressed and reads both forms.
"""

import math
import os

import numpy as np
import pytest

from repro.core.apsp import IncrementalAPSP, full_apsp
from repro.core.netsmith import NetSmithConfig
from repro.core.search import anneal_topology
from repro.pipeline import DesignPoint, evaluate_tables, generate_points
from repro.routing.dest_tree import bfs_dest_table, layer_destinations
from repro.routing.tables import CSRRoutingTable
from repro.runner import tasks as _tasks
from repro.runner.cache import MISS, COMPRESS_THRESHOLD, ResultCache
from repro.sim import FastNetworkSimulator, NetworkSimulator, uniform_random
from repro.topology import Layout, Topology


def _sa_topology(rows, cols, seed=0, steps=200, link_class="medium"):
    cfg = NetSmithConfig(
        layout=Layout(rows=rows, cols=cols), link_class=link_class, radix=4
    )
    return anneal_topology(cfg, steps=steps, seed=seed).topology


class TestIncrementalAPSP:
    def test_random_swaps_bitwise_equal_to_full(self):
        rng = np.random.default_rng(3)
        topo = _sa_topology(4, 5, seed=3)
        adj = topo.adj.copy()
        tracker = IncrementalAPSP(adj)
        links = sorted(topo.directed_links)
        n = topo.n
        for _ in range(40):
            da, db = links[int(rng.integers(len(links)))]
            cands = [
                (a, b)
                for a in range(n)
                for b in range(n)
                if a != b and not adj[a, b] and (a, b) != (da, db)
            ]
            aa, ab = cands[int(rng.integers(len(cands)))]
            adj[da, db] = False
            adj[aa, ab] = True
            got = tracker.candidate(adj, (da, db), (aa, ab))
            want = full_apsp(adj)
            # Bitwise: distances are small exact integers in float64.
            assert np.array_equal(got, want, equal_nan=True)
            if rng.random() < 0.5:
                tracker.commit()
                links.remove((da, db))
                links.append((aa, ab))
            else:
                adj[aa, ab] = False
                adj[da, db] = True

    def test_anneal_modes_identical(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=4, cols=5), link_class="medium", radix=4
        )
        inc = anneal_topology(cfg, steps=300, seed=5, apsp="incremental")
        full = anneal_topology(cfg, steps=300, seed=5, apsp="full")
        assert inc.objective == full.objective
        assert sorted(inc.topology.directed_links) == sorted(
            full.topology.directed_links
        )

    def test_unknown_mode_rejected(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=2, cols=2), link_class="medium", radix=4
        )
        with pytest.raises(ValueError, match="apsp"):
            anneal_topology(cfg, steps=1, apsp="nope")


class TestCSRRoutingTable:
    def test_bfs_table_roundtrip_lossless(self):
        topo = _sa_topology(4, 5, seed=1)
        table = bfs_dest_table(topo, max_vcs=8)
        assert isinstance(table, CSRRoutingTable)
        dict_twin = table.to_table()
        back = CSRRoutingTable.from_table(dict_twin)
        assert back.to_table().next_hop == dict_twin.next_hop
        assert back.to_table().flow_vc == dict_twin.flow_vc
        assert back.num_vcs == table.num_vcs
        assert np.array_equal(back.next_matrix(), table.next_matrix())

    def test_from_table_rejects_source_dependent_routing(self):
        from repro.core.mclb import mclb_route
        from repro.routing import assign_vcs, build_routing_table

        topo = _sa_topology(4, 5, seed=2)
        routes = mclb_route(topo, time_limit=5.0).routes
        table = build_routing_table(routes, assign_vcs(routes, max_vcs=8))
        # MCLB balances per (src, dst), so some router forwards one
        # destination differently depending on source.
        with pytest.raises(ValueError, match="destination-consistent"):
            CSRRoutingTable.from_table(table)

    def test_hop_and_vc_raise_keyerror_like_dict_tables(self):
        topo = _sa_topology(4, 5, seed=1)
        table = bfs_dest_table(topo, max_vcs=8)
        with pytest.raises(KeyError):
            table.vc(0, 0)  # diagonal flow does not exist
        with pytest.raises(KeyError):
            # the destination's own row has no onward hop
            table.hop(7, 0, 7)


class TestBfsPolicy:
    def test_routes_are_validated_shortest_paths(self):
        topo = _sa_topology(4, 5, seed=4)
        table = bfs_dest_table(topo, max_vcs=8)
        table.validate()
        d = topo.hop_matrix()
        n = topo.n
        for s in range(n):
            for t in range(n):
                if s == t:
                    continue
                assert len(table.route_of(s, t)) - 1 == int(d[s, t])

    def test_layering_is_deadlock_free_per_layer(self):
        from repro.routing.dest_tree import (
            _dest_dependency_edges,
            bfs_dest_hops,
        )
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import connected_components

        topo = _sa_topology(4, 5, seed=4)
        n = topo.n
        next_dst = bfs_dest_hops(topo)
        layer_of, num_layers = layer_destinations(next_dst, n, max_vcs=8)
        assert 1 <= num_layers <= 8
        for layer in range(num_layers):
            heads, tails = [], []
            for t in np.nonzero(layer_of == layer)[0]:
                h, tl = _dest_dependency_edges(next_dst, int(t), n)
                heads.append(h)
                tails.append(tl)
            heads = np.concatenate(heads)
            tails = np.concatenate(tails)
            chans, inv = np.unique(
                np.concatenate([heads, tails]), return_inverse=True
            )
            g = csr_matrix(
                (
                    np.ones(heads.size, dtype=np.int8),
                    (inv[: heads.size], inv[heads.size:]),
                ),
                shape=(chans.size, chans.size),
            )
            ncomp = connected_components(
                g, directed=True, connection="strong", return_labels=False
            )
            assert ncomp == chans.size, f"cycle in layer {layer}"

    def test_layering_cutoff_ships_single_vc(self):
        topo = _sa_topology(4, 5, seed=4)
        table = bfs_dest_table(topo, max_vcs=8, layering_cutoff=4)
        assert table.num_vcs == 1

    def test_disconnected_topology_rejected(self):
        lay = Layout(rows=2, cols=2)
        # 0 -> 1 -> 2 -> 3 with no way back
        topo = Topology(lay, [(0, 1), (1, 2), (2, 3)], name="dag")
        with pytest.raises(ValueError, match="strongly connected"):
            bfs_dest_table(topo)

    def test_codec_roundtrip_through_worker(self):
        topo = _sa_topology(4, 5, seed=6)
        topo.link_class = "medium"
        payload = _tasks.routing_payload(topo, policy="bfs", seed=0, max_vcs=8)
        doc = _tasks.routing_task(payload)
        assert doc["format"] == "csr"
        table = _tasks.decode_table(doc)
        assert isinstance(table, CSRRoutingTable)
        direct = bfs_dest_table(topo, max_vcs=8)
        assert np.array_equal(table.next_matrix(), direct.next_matrix())
        assert np.array_equal(table.flow_vc, direct.flow_vc)
        assert table.num_vcs == direct.num_vcs

    def test_csr_and_dict_twin_simulate_bit_identically(self):
        topo = _sa_topology(4, 5, seed=7)
        csr_table = bfs_dest_table(topo, max_vcs=8)
        dict_table = csr_table.to_table()
        traffic = uniform_random(topo.n)
        for engine in (FastNetworkSimulator, NetworkSimulator):
            a = engine(csr_table, traffic, 0.15, seed=3).run(150, 400)
            b = engine(dict_table, traffic, 0.15, seed=3).run(150, 400)
            assert a == b, engine.__name__


class TestHierarchical:
    def test_generate_deterministic_and_clean(self):
        p = DesignPoint(
            rows=8, cols=8, strategy="hierarchical", objective="latency",
            time_limit=3.0, sa_steps=80, seed=0,
        )
        p.validate()
        a = p.generate()
        b = p.generate()
        assert a.status == "hierarchical"
        assert a.topology.name == "NS-HIER-LatOp-medium"
        assert math.isfinite(a.objective)
        a.topology.check(radix=4, link_class="medium")
        assert sorted(a.topology.directed_links) == sorted(
            b.topology.directed_links
        )
        assert a.objective == b.objective

    def test_explicit_cluster_shape(self):
        p = DesignPoint(
            rows=8, cols=8, strategy="hierarchical", cluster_rows=2,
            cluster_cols=2, time_limit=1.0, sa_steps=40,
        )
        p.validate()
        g = p.generate()
        g.topology.check(radix=4, link_class="medium")

    def test_bad_configurations_rejected(self):
        base = dict(rows=8, cols=8, strategy="hierarchical")
        with pytest.raises(ValueError, match="divide"):
            DesignPoint(**base, cluster_rows=3).validate()
        with pytest.raises(ValueError, match="latency"):
            DesignPoint(
                rows=8, cols=8, strategy="hierarchical",
                objective="shuffle",
            ).validate()
        with pytest.raises(ValueError, match="radix"):
            DesignPoint(**base, radix=2).validate()
        with pytest.raises(ValueError, match="asymmetric"):
            DesignPoint(**base, symmetric=True).validate()
        with pytest.raises(ValueError, match="diameter_bound"):
            DesignPoint(**base, diameter_bound=6).validate()
        with pytest.raises(ValueError, match="at least 2 clusters"):
            DesignPoint(
                rows=4, cols=4, strategy="hierarchical",
                cluster_rows=4, cluster_cols=4,
            ).validate()

    def test_atomic_in_staged_pipeline(self):
        p = DesignPoint(
            rows=8, cols=8, strategy="hierarchical", time_limit=1.0,
            sa_steps=40,
        )
        (res,) = generate_points([p])
        assert res.status == "hierarchical"
        direct = p.generate()
        assert sorted(res.topology.directed_links) == sorted(
            direct.topology.directed_links
        )

    def test_point_codec_roundtrip(self):
        p = DesignPoint(
            rows=16, cols=16, strategy="hierarchical", cluster_rows=4,
            cluster_cols=4,
        )
        assert DesignPoint.from_dict(p.as_dict()) == p
        # canonical() keeps the fields hierarchical generation reads
        c = p.canonical()
        assert (c.cluster_rows, c.cluster_cols) == (4, 4)
        assert c.max_iterations == 0
        # other strategies neutralize the cluster shape
        sa = DesignPoint(rows=4, cols=5, strategy="sa", cluster_rows=2)
        assert sa.canonical().cluster_rows is None


class TestSimCutoff:
    def test_tables_above_cutoff_skip_saturation(self):
        topo = _sa_topology(4, 5, seed=8)
        topo.link_class = "medium"
        table = bfs_dest_table(topo, max_vcs=8)
        low, high = evaluate_tables(
            [table, table], ["medium", "medium"],
            warmup=50, measure=150, iters=2, sim_cutoff=10,
        )
        # n=20 > 10: both skipped (same table twice keeps it cheap)
        assert math.isnan(low.saturation) and math.isnan(high.saturation)
        assert low.robustness is None
        assert math.isfinite(low.avg_hops) and low.diameter > 0
        (sim,) = evaluate_tables(
            [table], ["medium"], warmup=50, measure=150, iters=2,
            sim_cutoff=64,
        )
        assert math.isfinite(sim.saturation) and sim.saturation > 0


class TestCacheCompression:
    def test_large_values_compress_and_roundtrip(self, tmp_path):
        c = ResultCache(str(tmp_path))
        small, big = {"x": 1}, {"arr": list(range(40000))}
        c.put("aa" * 32, small)
        c.put("bb" * 32, big)
        assert os.path.exists(c.path_for("aa" * 32))
        assert os.path.exists(c.zpath_for("bb" * 32))
        assert not os.path.exists(c.path_for("bb" * 32))
        import json

        raw = len(json.dumps({"key": "bb" * 32, "value": big}))
        assert raw > COMPRESS_THRESHOLD
        assert os.path.getsize(c.zpath_for("bb" * 32)) < raw // 2
        assert c.get("aa" * 32) == small
        assert c.get("bb" * 32) == big

    def test_twin_form_removed_on_rewrite(self, tmp_path):
        c = ResultCache(str(tmp_path))
        key = "cc" * 32
        c.put(key, {"arr": list(range(40000))})
        zp = c.zpath_for(key)
        assert os.path.exists(zp)
        c.put(key, {"x": 2})
        assert not os.path.exists(zp)
        assert c.get(key) == {"x": 2}

    def test_corrupted_compressed_entry_is_error_miss(self, tmp_path):
        c = ResultCache(str(tmp_path))
        key = "dd" * 32
        c.put(key, {"arr": list(range(40000))})
        with open(c.zpath_for(key), "wb") as fh:
            fh.write(b"not zlib")
        assert c.get(key) is MISS
        assert c.stats.errors == 1
        assert not os.path.exists(c.zpath_for(key))

    def test_delete_removes_either_form(self, tmp_path):
        c = ResultCache(str(tmp_path))
        key = "ee" * 32
        c.put(key, {"arr": list(range(40000))})
        c.delete(key)
        assert c.get(key) is MISS
