"""Fault-injection differential suite for the supervised runner.

The contract under test: any sweep run under injected faults — worker
crashes, task hangs, transient exceptions, torn cache writes — completes
with results bit-identical to the fault-free run, with RunHealth
counters matching the injected fault counts; poison payloads are
quarantined with structured failure artifacts while the rest of the
wave completes; and a SIGINT-killed sweep resumes from the journal with
100% cache hits for everything it finished.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.runner import (
    ChaosError,
    ChaosSpec,
    ParallelExecutor,
    QuarantineError,
    Runner,
    TaskFailure,
    TaskRetryPolicy,
    TornCache,
    TrafficSpec,
    payload_fingerprint,
    task_key,
)
from repro.runner import journal as journal_mod
from repro.runner.chaos import chaos_call
from repro.runner.tasks import sim_point_payload
from repro.topology import Layout, Topology

RATES = (0.02, 0.06, 0.12, 0.2, 0.3)
BUDGET = dict(warmup=80, measure=200, seed=0)

#: Generous retry budgets for fault tests: the *counters* prove how many
#: retries actually happened; the budget just must not get in the way.
LENIENT = dict(retries=3, backoff=0.01, max_pool_restarts=10)


@pytest.fixture(scope="module")
def table():
    layout = Layout(rows=2, cols=3)
    edges = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)]
    topo = Topology.from_undirected(layout, edges, name="mesh2x3", link_class="small")
    routes = ndbt_route(topo, seed=0)
    return build_routing_table(routes, assign_vcs(routes, seed=0))


@pytest.fixture(scope="module")
def payloads(table):
    return [
        sim_point_payload(
            table, TrafficSpec.uniform(6), rate,
            BUDGET["warmup"], BUDGET["measure"], BUDGET["seed"], {},
            engine="fast",
        )
        for rate in RATES
    ]


@pytest.fixture(scope="module")
def live_payloads(payloads):
    """Payloads the wave-scheduled sweep actually executes.

    The curve saturates at 0.12 and retires at the end of that wave, so
    the 0.3 point is never submitted — a fault injected on it would
    never fire.  Counter-equality tests must pick victims from here.
    """
    return payloads[:4]


@pytest.fixture(scope="module")
def baseline(table, tmp_path_factory):
    """The fault-free serial curve every chaotic run must reproduce."""
    with Runner(parallel=1,
                cache_dir=str(tmp_path_factory.mktemp("baseline"))) as r:
        return curve_points(r.curve(
            table, TrafficSpec.uniform(6), RATES, **BUDGET,
        ))


def curve_points(curve):
    return [
        (p.offered_rate, p.avg_latency_cycles,
         p.throughput_packets_node_cycle, p.saturated)
        for p in curve.points
    ]


def chaotic_curve(table, tmp_path, chaos, retry=None, parallel=2):
    runner = Runner(
        parallel=parallel, cache_dir=str(tmp_path / "cache"),
        retry=retry or TaskRetryPolicy(**LENIENT), chaos=chaos,
    )
    with runner:
        curve = runner.curve(table, TrafficSpec.uniform(6), RATES, **BUDGET)
        return curve_points(curve), runner.health


# ---------------------------------------------------------------------------
# policy / spec plumbing
# ---------------------------------------------------------------------------

def test_retry_policy_validates_and_round_trips():
    p = TaskRetryPolicy(timeout=2.5, retries=4, backoff=0.1, max_pool_restarts=5)
    assert TaskRetryPolicy.from_dict(p.as_dict()) == p
    assert p.key() == (2.5, 4, 0.1, 5)
    with pytest.raises(ValueError):
        TaskRetryPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        TaskRetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        TaskRetryPolicy(backoff=-0.1)
    with pytest.raises(ValueError):
        TaskRetryPolicy(max_pool_restarts=-1)


def test_retry_policy_backoff_is_deterministic_and_capped():
    p = TaskRetryPolicy(backoff=0.5)
    assert p.delay(0) == 0.0
    assert p.delay(1) == 0.5
    assert p.delay(2) == 1.0
    assert p.delay(30) == pytest.approx(5.0)  # BACKOFF_CAP


def test_chaos_select_is_deterministic_and_disjoint(payloads):
    a = ChaosSpec.select(payloads, seed=0, crash=1, hang=1, exc=2, delay=1)
    b = ChaosSpec.select(payloads, seed=0, crash=1, hang=1, exc=2, delay=1)
    assert a == b
    classes = [set(a.crash), set(a.hang), set(a.exc), set(a.delay)]
    assert sum(len(c) for c in classes) == len(set().union(*classes)) == 5
    assert ChaosSpec.select(payloads, seed=1, exc=2).exc != a.exc or True
    with pytest.raises(ValueError):
        ChaosSpec.select(payloads, exc=len(payloads) + 1)


def test_chaos_call_injects_only_below_fail_attempts(payloads):
    spec = ChaosSpec.select(payloads, seed=0, exc=1, fail_attempts=2)
    victim = next(p for p in payloads if payload_fingerprint(p) in spec.exc)
    with pytest.raises(ChaosError):
        chaos_call(spec, 0, lambda p: "ran", victim)
    with pytest.raises(ChaosError):
        chaos_call(spec, 1, lambda p: "ran", victim)
    assert chaos_call(spec, 2, lambda p: "ran", victim) == "ran"
    bystander = next(p for p in payloads if payload_fingerprint(p) not in spec.exc)
    assert chaos_call(spec, 0, lambda p: "ran", bystander) == "ran"


# ---------------------------------------------------------------------------
# differential: injected faults, bit-identical results, matching counters
# ---------------------------------------------------------------------------

def test_transient_exceptions_differential(table, live_payloads, baseline, tmp_path):
    chaos = ChaosSpec.select(live_payloads, seed=0, exc=2)
    points, health = chaotic_curve(table, tmp_path, chaos)
    assert points == baseline
    # Each victim fails exactly once (fail_attempts=1) then succeeds.
    assert health.retries == 2
    assert health.quarantined == 0
    assert health.crashes == 0 and health.timeouts == 0


def test_worker_crash_recovery_differential(table, live_payloads, baseline, tmp_path):
    chaos = ChaosSpec.select(live_payloads, seed=0, crash=1)
    points, health = chaotic_curve(table, tmp_path, chaos)
    assert points == baseline
    assert health.crashes >= 1
    assert health.pool_restarts >= 1
    assert health.quarantined == 0
    # The completed results of the collapsed wave were kept, not redone:
    # only the crash victim was ever charged a retry.
    assert health.retries <= 1


def test_hang_timeout_retry_differential(table, live_payloads, baseline, tmp_path):
    chaos = ChaosSpec.select(live_payloads, seed=0, hang=1, hang_s=30.0)
    retry = TaskRetryPolicy(timeout=2.0, **LENIENT)
    t0 = time.monotonic()
    points, health = chaotic_curve(table, tmp_path, chaos, retry=retry)
    # Far less than the 30s hang: the deadline reclaimed the worker.
    assert time.monotonic() - t0 < 20.0
    assert points == baseline
    assert health.timeouts == 1
    assert health.pool_restarts >= 1
    assert health.quarantined == 0


def test_combined_chaos_fig6_style_differential(table, live_payloads, baseline, tmp_path):
    """The flagship acceptance test: crashes, hangs, transient
    exceptions, and delays all at once — same curve, counted faults."""
    chaos = ChaosSpec.select(
        live_payloads, seed=3, crash=1, hang=1, exc=1, delay=1, hang_s=30.0,
    )
    retry = TaskRetryPolicy(timeout=2.5, **LENIENT)
    points, health = chaotic_curve(table, tmp_path, chaos, retry=retry)
    assert points == baseline
    assert health.quarantined == 0
    assert health.retries >= 1  # at least the injected exception
    assert health.crashes >= 1
    assert health.timeouts == 1


# ---------------------------------------------------------------------------
# quarantine: poison tasks fail loudly, the wave completes
# ---------------------------------------------------------------------------

def test_poison_task_quarantined_wave_completes(table, live_payloads, tmp_path):
    # fail_attempts beyond any budget: the victim is a true poison task.
    chaos = ChaosSpec.select(live_payloads, seed=0, exc=1, fail_attempts=99)
    runner = Runner(
        parallel=2, cache_dir=str(tmp_path / "cache"),
        retry=TaskRetryPolicy(retries=1, backoff=0.0), chaos=chaos,
    )
    with runner:
        with pytest.raises(QuarantineError) as ei:
            runner.curve(table, TrafficSpec.uniform(6), RATES, **BUDGET)
        failures = ei.value.failures
        assert len(failures) == 1
        f = failures[0]
        assert f.kind == "error"
        assert f.attempts == 2  # first try + one retry
        assert f.task == "sim_point"
        assert len(f.tracebacks) == 2
        assert "ChaosError" in f.tracebacks[-1]
        assert payload_fingerprint is not None and f.payload_hash in chaos.exc
        # Structured failure artifact on disk.
        artifact = os.path.join(
            str(tmp_path / "cache"), "failures", f"{f.key}.json",
        )
        with open(artifact) as fh:
            doc = json.load(fh)
        assert doc["attempts"] == 2 and doc["kind"] == "error"
        assert doc["key"] == f.key
        # The rest of the wave completed and was cached before the raise.
        assert runner.stats.puts >= 1
        assert runner.health.quarantined == 1

    # A clean rerun on the same cache recomputes only the poisoned point.
    with Runner(parallel=1, cache_dir=str(tmp_path / "cache")) as r2:
        r2.curve(table, TrafficSpec.uniform(6), RATES, **BUDGET)
        assert r2.health.quarantined == 0
        assert r2.stats.hits >= 1


def test_quarantine_return_mode_yields_task_failures(table, payloads, tmp_path):
    chaos = ChaosSpec.select(payloads, seed=0, exc=1, fail_attempts=99)
    runner = Runner(
        parallel=2, cache_dir=str(tmp_path / "cache"),
        retry=TaskRetryPolicy(retries=0, backoff=0.0), chaos=chaos,
    )
    with runner:
        results = runner.run_tasks("sim_point", payloads, quarantine="return")
        fails = [r for r in results if isinstance(r, TaskFailure)]
        assert len(fails) == 1 and fails[0].attempts == 1
        assert len(results) == len(payloads)
        assert runner.failures == fails
        with pytest.raises(ValueError):
            runner.run_tasks("sim_point", payloads, quarantine="nonsense")


# ---------------------------------------------------------------------------
# degradation: repeated collapse falls back to inline execution
# ---------------------------------------------------------------------------

def test_inline_degradation_after_repeated_collapse(table, live_payloads, baseline,
                                                    tmp_path):
    # A poison crasher with a tiny restart budget: the pool is written
    # off, and the inline path (pid-guarded injectors never fire in the
    # supervisor) still completes every payload correctly.
    chaos = ChaosSpec.select(live_payloads, seed=0, crash=1, fail_attempts=99)
    retry = TaskRetryPolicy(retries=5, backoff=0.0, max_pool_restarts=1)
    points, health = chaotic_curve(table, tmp_path, chaos, retry=retry)
    assert points == baseline
    assert health.pool_restarts == 2  # budget 1 + the final write-off
    assert health.inline_fallbacks >= 1
    assert health.quarantined == 0


# ---------------------------------------------------------------------------
# torn cache writes: discovered, evicted, recomputed, repopulated
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["truncate", "garbage"])
def test_torn_cache_writes_evicted_and_repopulated(table, payloads, baseline,
                                                   tmp_path, mode):
    keys = [task_key("sim_point", p) for p in payloads]
    torn = keys[:2]
    cache = TornCache(str(tmp_path / "cache"), torn=torn, mode=mode)
    with Runner(parallel=1, cache=cache) as r1:
        points = curve_points(r1.curve(
            table, TrafficSpec.uniform(6), RATES, **BUDGET,
        ))
        assert points == baseline
    torn_count = cache.torn_writes
    assert torn_count >= 1  # sweeps can retire past saturation; >=1 torn

    # Second run discovers the torn entries: evicted, recomputed,
    # repopulated — and the results still match.
    cache2 = TornCache(str(tmp_path / "cache"), torn=())
    with Runner(parallel=1, cache=cache2) as r2:
        points = curve_points(r2.curve(
            table, TrafficSpec.uniform(6), RATES, **BUDGET,
        ))
        assert points == baseline
        assert r2.stats.errors == torn_count
        assert r2.health.cache_evictions == torn_count
        assert r2.stats.puts == torn_count

    # Third run: fully healed, 100% hits.
    with Runner(parallel=1, cache_dir=str(tmp_path / "cache")) as r3:
        points = curve_points(r3.curve(
            table, TrafficSpec.uniform(6), RATES, **BUDGET,
        ))
        assert points == baseline
        assert r3.stats.misses == 0 and r3.stats.errors == 0


# ---------------------------------------------------------------------------
# journal: declared/done scanning, torn lines, SIGINT resume
# ---------------------------------------------------------------------------

def test_journal_scan_classifies_and_skips_torn_lines(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with open(path, "w") as fh:
        fh.write(json.dumps({"ev": "run", "version": 1}) + "\n")
        fh.write(json.dumps({"ev": "wave", "task": "t", "keys": ["a", "b", "c"]}) + "\n")
        fh.write(json.dumps({"ev": "done", "key": "a"}) + "\n")
        fh.write(json.dumps({"ev": "quarantined", "key": "b"}) + "\n")
        fh.write('{"ev": "done", "key": "c"')  # torn mid-write
    scan = journal_mod.scan(path)
    assert scan["done"] == {"a"}
    assert scan["quarantined"] == {"b"}
    assert scan["interrupted"] == {"c"}
    assert journal_mod.scan(str(tmp_path / "missing.jsonl"))["done"] == set()


_SIGINT_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.runner import ChaosSpec, Runner, TaskRetryPolicy, TrafficSpec
from repro.runner.tasks import sim_point_payload
from repro.topology import Layout, Topology

layout = Layout(rows=2, cols=3)
edges = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)]
topo = Topology.from_undirected(layout, edges, name="mesh2x3", link_class="small")
routes = ndbt_route(topo, seed=0)
table = build_routing_table(routes, assign_vcs(routes, seed=0))
payloads = [
    sim_point_payload(table, TrafficSpec.uniform(6), r, 80, 200, 0, {{}},
                      engine="fast")
    for r in (0.02, 0.06, 0.12, 0.2, 0.3)
]
# Delay every task so the parent can SIGINT us mid-wave.
chaos = ChaosSpec.select(payloads, seed=0, delay=len(payloads), delay_s=0.35)
runner = Runner(parallel=2, cache_dir={cache!r}, chaos=chaos)
print("READY", flush=True)
runner.curve(table, TrafficSpec.uniform(6), (0.02, 0.06, 0.12, 0.2, 0.3),
             warmup=80, measure=200, seed=0)
print("FINISHED", flush=True)
"""


def test_sigint_killed_sweep_resumes_from_journal(table, baseline, tmp_path):
    cache_dir = str(tmp_path / "cache")
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    script = _SIGINT_CHILD.format(src=src, cache=cache_dir)
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    journal_path = os.path.join(cache_dir, journal_mod.JOURNAL_NAME)
    try:
        # Wait until at least one task has been journaled done, then
        # kill the run mid-wave.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                pytest.fail("child finished before it could be interrupted")
            if journal_mod.scan(journal_path)["done"]:
                break
            time.sleep(0.05)
        else:
            pytest.fail("child never journaled a completed task")
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode != 0  # it really was killed mid-run

    # Scan before the resuming Runner truncates the journal.
    scan = journal_mod.scan(journal_path)
    done = set(scan["done"])
    assert done  # the parent waited for this

    with Runner(parallel=1, cache_dir=cache_dir) as r:
        points = curve_points(r.curve(
            table, TrafficSpec.uniform(6), RATES, **BUDGET,
        ))
        assert points == baseline
        # Every task the killed run completed is a cache hit (resumed);
        # nothing it finished is recomputed.
        assert r.health.resumed == len(done)
        assert r.stats.hits == len(done)
        assert r.health.interrupted == len(scan["interrupted"])


# ---------------------------------------------------------------------------
# executor plumbing satellites
# ---------------------------------------------------------------------------

def test_atexit_registered_once_across_pool_restarts(payloads, monkeypatch):
    import atexit as atexit_mod

    registered = []
    monkeypatch.setattr(
        atexit_mod, "register",
        lambda fn, *a, **k: registered.append(fn) or fn,
    )
    import repro.runner.executor as executor_mod
    monkeypatch.setattr(executor_mod.atexit, "register", atexit_mod.register)

    chaos = ChaosSpec.select(payloads, seed=0, crash=1, fail_attempts=2)
    ex = ParallelExecutor(
        2, retry=TaskRetryPolicy(**LENIENT), chaos=chaos,
    )
    try:
        outcomes = ex.map_outcomes(_double, list(range(6)))
        assert outcomes == [x * 2 for x in range(6)]
        assert ex.health.pool_restarts == 0
        # Force real restarts through the crash path on sim payloads.
        ex2 = ParallelExecutor(2, retry=TaskRetryPolicy(**LENIENT), chaos=chaos)
        ex2.map_outcomes(_identity, payloads)
        assert ex2.health.pool_restarts >= 1
        assert registered.count(ex2.close) == 1
        ex2.close()
    finally:
        ex.close()
    assert registered.count(ex.close) == 1


def _double(x):
    return x * 2


def _identity(p):
    return {"echo": True}


def test_map_raises_quarantine_error_with_failures():
    ex = ParallelExecutor(2, retry=TaskRetryPolicy(retries=1, backoff=0.0))
    try:
        with pytest.raises(QuarantineError) as ei:
            ex.map(_poison_four, list(range(6)))
        assert len(ei.value.failures) == 1
        assert ei.value.failures[0].attempts == 2
        assert ex.health.quarantined == 1
    finally:
        ex.close()


def _poison_four(x):
    if x == 4:
        raise ValueError("poison")
    return x


# ---------------------------------------------------------------------------
# CLI: quarantined runs exit non-zero with a failure table
# ---------------------------------------------------------------------------

def test_cli_quarantined_run_exits_2_with_failure_table(
    table, tmp_path, monkeypatch, capsys,
):
    from repro import cli
    from repro.runner import tasks as rtasks
    from repro.topology import save

    topo_path = str(tmp_path / "mesh2x3.json")
    save(table.topology, topo_path)

    real_fn, decode = rtasks.TASK_FUNCTIONS["sim_point"]

    def poisoned(payload):
        # Poison the FIRST rate of the sweep: the tiny mesh saturates
        # early and the wave scheduler retires the curve at saturation,
        # so later rates are never guaranteed to execute.
        if abs(payload["rate"] - 0.1) < 1e-9:
            raise RuntimeError("injected cell failure")
        return real_fn(payload)

    monkeypatch.setitem(rtasks.TASK_FUNCTIONS, "sim_point", (poisoned, decode))
    rc = cli.main([
        "simulate", topo_path, "--policy", "ndbt",
        "--points", "4", "--max-rate", "0.4",
        "--warmup", "80", "--measure", "200",
        "--task-retries", "1", "--health",
        "--cache-dir", str(tmp_path / "cache"),
    ])
    assert rc == 2
    err = capsys.readouterr().err
    assert "quarantined" in err
    assert "sim_point" in err  # the per-cell failure table names the task
    assert "injected cell failure" in err
    assert "health:" in err  # --health still reports on failure

    # The healthy rates were cached before the quarantine surfaced: the
    # failure artifact directory exists alongside them.
    failures_dir = tmp_path / "cache" / "failures"
    assert failures_dir.is_dir() and list(failures_dir.glob("*.json"))
