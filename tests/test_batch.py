"""Batched multi-replica engine suite: exact differential + turbo KS gate.

Two contracts from ``repro.sim.batch``:

* **exact mode** is *bit-identical* to running each ``(rate, seed)``
  lane through the per-replica fast engine — pinned here across traffic
  patterns, rates, and seeds, and through the batched sweep helpers
  (``latency_throughput_curves_batch``, ``find_saturation_batch``).

* **turbo mode** relaxes cross-replica draw-order compatibility and is
  validated *statistically*: per-point two-sample Kolmogorov–Smirnov
  tests on the latency and throughput distributions across seed
  replicas, turbo vs the reference distribution, at ``ALPHA = 0.01``
  (fixed seeds, so the suite is deterministic — these exact p-values
  are pinned green).  The reference samples are drawn through exact
  mode, i.e. the fast engine, which ``tests/test_fastnet.py`` pins
  bit-identical to the reference oracle; one anchor test here
  re-checks that chain directly against ``NetworkSimulator``.

The KS gate covers stationary traffic plus the bursty (``mmpp``) and
long-range-dependent (``lrd``) burst modulations, because turbo's
per-lane RNG relaxation must not disturb the shared burst gates.
"""

import pytest

from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.sim import (
    BATCH_MODES,
    ENGINES,
    CompiledNetwork,
    FastNetworkSimulator,
    NetworkSimulator,
    TurboNetworkSimulator,
    find_saturation,
    find_saturation_batch,
    hotspot,
    latency_throughput_curve,
    latency_throughput_curves_batch,
    resolve_engine,
    run_batch,
    run_point,
    shuffle_pattern,
    uniform_random,
)
from repro.sim.burst import BurstSpec
from repro.topology import LAYOUT_4X5, folded_torus

#: Significance level for the turbo KS gate.  With fixed seeds every
#: p-value below is deterministic; a failure means the turbo engine's
#: distributions actually moved, not statistical bad luck.
ALPHA = 0.01

N = LAYOUT_4X5.n


def _table():
    topo = folded_torus(LAYOUT_4X5)
    routes = ndbt_route(topo, seed=0)
    vca = assign_vcs(routes, max_vcs=8, seed=0)
    return build_routing_table(routes, vca)


@pytest.fixture(scope="module")
def table():
    return _table()


# ---------------------------------------------------------------------------
# Exact mode: bit-identical to the per-replica fast engine.
# ---------------------------------------------------------------------------


class TestExactDifferential:
    RATES = (0.05, 0.15, 0.30)
    SEEDS = (0, 1)
    BUDGET = dict(warmup=150, measure=400)

    def _patterns(self):
        return [
            uniform_random(N),
            shuffle_pattern(N),
            hotspot(N, LAYOUT_4X5.mc_routers()),
            uniform_random(N).with_burst(
                BurstSpec(kind="mmpp", p_on=0.1, p_off=0.3)
            ),
        ]

    @pytest.mark.parametrize("pattern_idx", range(4))
    def test_lanes_bit_identical(self, table, pattern_idx):
        traffic = self._patterns()[pattern_idx]
        lanes = [(r, s) for s in self.SEEDS for r in self.RATES]
        batched = run_batch(table, traffic, lanes, mode="exact", **self.BUDGET)
        compiled = CompiledNetwork.for_table(table)
        for (rate, seed), got in zip(lanes, batched):
            want = FastNetworkSimulator(
                table, traffic, rate, seed=seed, compiled=compiled
            ).run(**self.BUDGET)
            assert got == want, (traffic.name, rate, seed)

    def test_curves_batch_matches_per_seed_curve(self, table):
        traffic = uniform_random(N)
        rates = [0.05, 0.15, 0.30]
        seeds = [0, 1, 2]
        curves = latency_throughput_curves_batch(
            table, traffic, rates, seeds, mode="exact", **self.BUDGET
        )
        for s in seeds:
            want = latency_throughput_curve(
                table, traffic, rates, seed=s, **self.BUDGET
            )
            assert curves[s] == want, s

    def test_find_saturation_batch_matches_per_seed(self, table):
        traffic = uniform_random(N)
        seeds = [0, 1]
        kw = dict(iters=4, warmup=200, measure=500)
        sats = find_saturation_batch(table, traffic, seeds, **kw)
        for s in seeds:
            assert sats[s] == find_saturation(table, traffic, seed=s, **kw), s


# ---------------------------------------------------------------------------
# Turbo mode: statistical validation (two-sample KS per point).
# ---------------------------------------------------------------------------

#: Traffic gates the KS suite must cover: stationary, bursty (mmpp),
#: and long-range-dependent on/off sources.
GATES = {
    "stationary": None,
    "mmpp": BurstSpec(kind="mmpp", p_on=0.1, p_off=0.3),
    "lrd": BurstSpec(kind="lrd", p_on=0.1, p_off=0.25, alpha=1.4),
}


class TestTurboKSValidation:
    RATES = (0.06, 0.12)
    SEEDS = tuple(range(10))
    BUDGET = dict(warmup=200, measure=600)

    @pytest.mark.parametrize("gate", sorted(GATES))
    def test_latency_and_throughput_distributions(self, table, gate):
        from scipy.stats import ks_2samp

        traffic = uniform_random(N).with_burst(GATES[gate])
        lanes = [(r, s) for r in self.RATES for s in self.SEEDS]
        ref = run_batch(table, traffic, lanes, mode="exact", **self.BUDGET)
        turbo = run_batch(table, traffic, lanes, mode="turbo", **self.BUDGET)
        k = len(self.SEEDS)
        for i, rate in enumerate(self.RATES):
            r_pts = ref[i * k:(i + 1) * k]
            t_pts = turbo[i * k:(i + 1) * k]
            lat = ks_2samp(
                [p.avg_latency_cycles for p in r_pts],
                [p.avg_latency_cycles for p in t_pts],
            )
            thr = ks_2samp(
                [p.throughput_packets_node_cycle for p in r_pts],
                [p.throughput_packets_node_cycle for p in t_pts],
            )
            assert lat.pvalue >= ALPHA, (gate, rate, "latency", lat.pvalue)
            assert thr.pvalue >= ALPHA, (gate, rate, "throughput", thr.pvalue)

    def test_reference_anchor(self, table):
        """The KS reference leg (exact mode = fast engine) really is the
        reference distribution: fast == reference oracle, bit-for-bit."""
        traffic = uniform_random(N)
        a = run_point(table, traffic, 0.1, warmup=100, measure=250,
                      seed=0, engine="reference")
        b = run_batch(table, traffic, [(0.1, 0)], warmup=100, measure=250,
                      mode="exact")[0]
        assert a == b
        assert isinstance(
            NetworkSimulator(table, traffic, 0.1), NetworkSimulator
        )


# ---------------------------------------------------------------------------
# Turbo semantics: lane invariance, registry, restrictions.
# ---------------------------------------------------------------------------


class TestTurboSemantics:
    BUDGET = dict(warmup=150, measure=400)

    def test_lane_invariance(self, table):
        """A lane's turbo result is independent of its batchmates."""
        traffic = uniform_random(N)
        alone = run_batch(table, traffic, [(0.12, 3)], mode="turbo",
                          **self.BUDGET)[0]
        mixed = run_batch(
            table, traffic, [(0.05, 0), (0.12, 3), (0.30, 1)],
            mode="turbo", **self.BUDGET,
        )[1]
        assert alone == mixed

    def test_engine_registry(self):
        assert ENGINES["turbo"] is TurboNetworkSimulator
        assert resolve_engine("turbo") is TurboNetworkSimulator
        assert BATCH_MODES == ("exact", "turbo")

    def test_run_point_engine_turbo_is_deterministic(self, table):
        traffic = uniform_random(N)
        a = run_point(table, traffic, 0.1, seed=2, engine="turbo",
                      **self.BUDGET)
        b = run_point(table, traffic, 0.1, seed=2, engine="turbo",
                      **self.BUDGET)
        assert a == b

    def test_single_use(self, table):
        sim = TurboNetworkSimulator(table, uniform_random(N), 0.1, seed=0)
        sim.run(100, 200)
        with pytest.raises(RuntimeError, match="single-use"):
            sim.run(100, 200)

    def test_zero_rate_zero_stats(self, table):
        st = TurboNetworkSimulator(table, uniform_random(N), 0.0).run(100, 300)
        assert st.offered_packets == 0 and st.ejected_packets == 0
        assert st.cycles == 300

    def test_turbo_rejects_faults(self, table):
        from repro.faults import parse_faults

        faults = parse_faults("500:link_down:0-1")
        with pytest.raises(ValueError, match="fault"):
            run_batch(table, uniform_random(N), [(0.1, 0)], 100, 200,
                      mode="turbo", faults=faults)
        with pytest.raises(ValueError, match="fault"):
            TurboNetworkSimulator(table, uniform_random(N), 0.1,
                                  faults=faults)

    def test_unknown_mode_rejected(self, table):
        with pytest.raises(ValueError, match="unknown batch mode"):
            run_batch(table, uniform_random(N), [(0.1, 0)], 100, 200,
                      mode="warp")

    def test_exact_mode_accepts_faults(self, table):
        from repro.faults import parse_faults

        faults = parse_faults("250:link_down:0-1")
        st = run_batch(table, uniform_random(N), [(0.1, 0)], 100, 300,
                       mode="exact", faults=faults)[0]
        want = FastNetworkSimulator(
            table, uniform_random(N), 0.1, seed=0, faults=faults
        ).run(100, 300)
        assert st == want


# ---------------------------------------------------------------------------
# Runner integration: batched task family + per-point cache identity.
# ---------------------------------------------------------------------------


class TestRunnerBatch:
    BUDGET = dict(warmup=150, measure=400)

    def test_exact_batch_populates_per_point_cache(self, table, tmp_path):
        """Exact batch lanes land under the fast engine's ``sim_point``
        keys, so per-point lookups (and ``Runner.curve``) hit them."""
        from repro.runner import Runner
        from repro.runner.tasks import TrafficSpec

        spec = TrafficSpec.uniform(N)
        rates = [0.05, 0.15]
        with Runner(parallel=1, cache_dir=str(tmp_path)) as r:
            batched = r.batch_points(
                table, spec, [(rt, 0) for rt in rates], mode="exact",
                **self.BUDGET,
            )
            curve = r.curve(table, spec, rates, seed=0, **self.BUDGET)
            hits = r.stats.hits
        assert hits >= len(rates)
        for st, p in zip(batched, curve.points):
            assert st.avg_latency_cycles == p.avg_latency_cycles

    def test_turbo_batch_single_lane_roundtrip(self, table, tmp_path):
        from repro.runner import Runner
        from repro.runner.tasks import TrafficSpec

        spec = TrafficSpec.uniform(N)
        with Runner(parallel=1, cache_dir=str(tmp_path)) as r:
            first = r.batch_points(
                table, spec, [(0.05, 0), (0.12, 1)], mode="turbo",
                **self.BUDGET,
            )
            again = r.batch_points(
                table, spec, [(0.12, 1)], mode="turbo", **self.BUDGET,
            )
            hits = r.stats.hits
        assert hits >= 1
        assert again[0] == first[1]

    def test_multi_seed_curves_matches_direct_batch(self, table, tmp_path):
        from repro.runner import Runner
        from repro.runner.tasks import TrafficSpec

        rates = [0.05, 0.15, 0.30]
        seeds = [0, 1]
        with Runner(parallel=1, cache_dir=str(tmp_path)) as r:
            curves = r.multi_seed_curves(
                table, TrafficSpec.uniform(N), rates, seeds, mode="exact",
                **self.BUDGET,
            )
        direct = latency_throughput_curves_batch(
            table, uniform_random(N), rates, seeds, mode="exact",
            **self.BUDGET,
        )
        assert set(curves) == set(seeds)
        for s in seeds:
            assert curves[s] == direct[s], s
