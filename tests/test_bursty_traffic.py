"""Bursty traffic: MMPP on/off and storm gates, spec to engine.

Covers the :mod:`repro.sim.burst` layer (spec validation, the CLI
parser, gate-sequence determinism, stationary-mean normalization) and
the engine-level contract: a bursty pattern runs bit-identically on the
reference and fast engines, alone and combined with fault schedules.
The vectorized-vs-scalar draw-order differential for bursty
:class:`~repro.sim.trace.TraceStream` lives in
``tests/test_traffic_vectorized.py`` next to its stationary twin.
"""

import numpy as np
import pytest

from repro.experiments.registry import NDBT, routed_table
from repro.faults import central_link_faults
from repro.sim import (
    BURST_KINDS,
    BurstSpec,
    BurstState,
    CompiledNetwork,
    FastNetworkSimulator,
    NetworkSimulator,
    hotspot,
    parse_burst,
    uniform_random,
)
from repro.topology import expert_topology


# ---------------------------------------------------------------------------
# Spec objects and the CLI parser
# ---------------------------------------------------------------------------

class TestBurstSpec:
    def test_kinds(self):
        assert set(BURST_KINDS) == {"mmpp", "storm", "lrd"}
        with pytest.raises(ValueError, match="unknown burst kind"):
            BurstSpec(kind="tsunami", p_on=0.2, p_off=0.2)

    @pytest.mark.parametrize("alpha", [1.0, 0.5, -2.0])
    def test_lrd_needs_heavy_tail_with_finite_mean(self, alpha):
        with pytest.raises(ValueError, match="alpha > 1"):
            BurstSpec(kind="lrd", p_on=0.2, p_off=0.2, alpha=alpha)
        # the shape is inert for the Markov kinds
        BurstSpec(kind="mmpp", p_on=0.2, p_off=0.2, alpha=alpha)

    def test_lrd_sojourns_hit_their_mean_exactly(self):
        """The bisection solves the discrete truncated-Pareto mean."""
        from repro.sim.burst import _pareto_xm

        for mean, alpha in [(5.0, 1.5), (10.0, 1.2), (50.0, 1.8)]:
            trunc = max(64, int(np.ceil(50.0 * mean)))
            xm = _pareto_xm(mean, alpha, trunc)
            k = np.arange(1, trunc)
            got = 1.0 + np.minimum(1.0, (xm / k) ** alpha).sum()
            assert got == pytest.approx(mean, rel=1e-9)

    @pytest.mark.parametrize("p_on,p_off", [(0.0, 0.2), (0.2, 0.0), (1.5, 0.2)])
    def test_probabilities_must_be_in_unit_interval(self, p_on, p_off):
        with pytest.raises(ValueError, match="transition probabilities"):
            BurstSpec(kind="mmpp", p_on=p_on, p_off=p_off)

    def test_negative_scales_rejected(self):
        with pytest.raises(ValueError, match="off_scale"):
            BurstSpec(kind="mmpp", p_on=0.2, p_off=0.2, off_scale=-0.1)
        with pytest.raises(ValueError, match="on_scale"):
            BurstSpec(kind="mmpp", p_on=0.2, p_off=0.2, on_scale=-1.0)

    def test_duty_cycle(self):
        spec = BurstSpec(kind="mmpp", p_on=0.1, p_off=0.3)
        assert spec.duty_cycle == pytest.approx(0.25)

    @pytest.mark.parametrize("off_scale", [0.0, 0.1, 0.5])
    def test_default_on_scale_preserves_the_mean(self, off_scale):
        spec = BurstSpec(kind="mmpp", p_on=0.1, p_off=0.3, off_scale=off_scale)
        duty = spec.duty_cycle
        mean = duty * spec.resolved_on_scale + (1 - duty) * spec.off_scale
        assert mean == pytest.approx(1.0)
        assert spec.max_scale == spec.resolved_on_scale

    def test_explicit_on_scale_wins(self):
        spec = BurstSpec(kind="storm", p_on=0.2, p_off=0.2, on_scale=3.5)
        assert spec.resolved_on_scale == 3.5

    def test_key_and_dict_roundtrip(self):
        spec = BurstSpec(
            kind="storm", p_on=0.1, p_off=0.4, on_scale=2.0,
            off_scale=0.25, seed=9,
        )
        assert BurstSpec.from_dict(spec.as_dict()) == spec
        assert BurstSpec(*spec.key()) == spec


class TestParseBurst:
    def test_bare_kind_gets_defaults(self):
        spec = parse_burst("mmpp")
        assert spec == BurstSpec(kind="mmpp", p_on=0.2, p_off=0.2)
        assert spec.on_scale is None

    def test_full_spec(self):
        spec = parse_burst("storm:0.1,0.3,2.5,0.1,7")
        assert spec == BurstSpec(
            kind="storm", p_on=0.1, p_off=0.3, on_scale=2.5,
            off_scale=0.1, seed=7,
        )

    def test_auto_on_scale(self):
        spec = parse_burst("mmpp:0.1,0.3,auto,0.1")
        assert spec.on_scale is None
        assert spec.off_scale == 0.1

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed burst spec"):
            parse_burst("mmpp:zero")
        with pytest.raises(ValueError, match="unknown burst kind"):
            parse_burst("blizzard:0.2,0.2")


# ---------------------------------------------------------------------------
# Gate sequences
# ---------------------------------------------------------------------------

class TestBurstState:
    def test_chains_start_off(self):
        for kind in BURST_KINDS:
            spec = BurstSpec(kind=kind, p_on=0.2, p_off=0.2, off_scale=0.25)
            row0 = spec.state(8).row(0)
            assert np.all(row0 == spec.off_scale)

    def test_rows_matrix_matches_row_calls(self):
        spec = BurstSpec(kind="mmpp", p_on=0.3, p_off=0.3, seed=4)
        a, b = spec.state(6), spec.state(6)
        block = a.rows(40, 90)
        assert block.shape == (50, 6)
        for i in range(50):
            assert np.array_equal(block[i], b.row(40 + i))

    def test_replay_is_deterministic_and_order_independent(self):
        spec = BurstSpec(kind="mmpp", p_on=0.2, p_off=0.4, seed=1)
        fwd, rnd = spec.state(5), spec.state(5)
        rows_fwd = [fwd.row(t) for t in range(200)]
        # a consumer that jumps straight to cycle 150 reads the same rows
        assert np.array_equal(rnd.row(150), rows_fwd[150])
        for t in (0, 199, 37):
            assert np.array_equal(rnd.row(t), rows_fwd[t])

    def test_storm_gates_every_node_together(self):
        spec = BurstSpec(kind="storm", p_on=0.3, p_off=0.3, seed=2)
        rows = spec.state(10).rows(0, 400)
        assert np.all(rows == rows[:, :1])  # all columns identical
        assert {v for v in np.unique(rows)} == {0.0, spec.resolved_on_scale}

    def test_mmpp_nodes_desynchronize(self):
        spec = BurstSpec(kind="mmpp", p_on=0.3, p_off=0.3, seed=2)
        rows = spec.state(10).rows(0, 400)
        assert not np.all(rows == rows[:, :1])

    @pytest.mark.parametrize("kind", BURST_KINDS)
    @pytest.mark.parametrize("off_scale", [0.0, 0.2])
    def test_stationary_mean_matches_nominal_rate(self, kind, off_scale):
        """The mean-preserving normalization, measured: the realized
        gate average over a long horizon is the nominal rate (scale 1)."""
        spec = BurstSpec(
            kind=kind, p_on=0.2, p_off=0.2, off_scale=off_scale, seed=5
        )
        mean = float(spec.state(8).rows(0, 20000).mean())
        assert mean == pytest.approx(1.0, abs=0.06)


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------

def _table(name, n):
    return routed_table(expert_topology(name, n), NDBT)


def _pair(table, pat, rate, seed, faults=None, chunk=None):
    ref = NetworkSimulator(table, pat, rate, seed=seed, faults=faults)
    cls = FastNetworkSimulator
    if chunk is not None:
        cls = type("TinyChunks", (cls,), {"trace_chunk_cycles": chunk})
    fast = cls(
        table, pat, rate, seed=seed,
        compiled=CompiledNetwork.for_table(table), faults=faults,
    )
    return ref, fast


@pytest.mark.parametrize("topo_name,n", [("Mesh", 16), ("FoldedTorus", 20)])
@pytest.mark.parametrize("kind", BURST_KINDS)
def test_engines_agree_on_bursty_uniform(topo_name, n, kind):
    table = _table(topo_name, n)
    pat = uniform_random(n).with_burst(
        BurstSpec(kind=kind, p_on=0.15, p_off=0.25, seed=6)
    )
    ref, fast = _pair(table, pat, 0.06, seed=9)
    assert fast.run(100, 400) == ref.run(100, 400)


def test_engines_agree_on_incast_storm():
    """The robustness experiment's incast scenario: hotspot + storm."""
    n = 16
    table = _table("Mesh", n)
    pat = hotspot(n, [5], 0.6).with_burst(
        BurstSpec(kind="storm", p_on=0.1, p_off=0.2, seed=2)
    )
    ref, fast = _pair(table, pat, 0.05, seed=1)
    assert fast.run(100, 400) == ref.run(100, 400)


def test_engines_agree_on_burst_plus_faults():
    """Bursty traffic across fault epochs — both axes at once."""
    table = _table("Mesh", 16)
    sched = central_link_faults(table.topology, 2, cycle=150)
    pat = uniform_random(16).with_burst(
        BurstSpec(kind="mmpp", p_on=0.2, p_off=0.2, seed=3)
    )
    ref, fast = _pair(table, pat, 0.06, seed=4, faults=sched)
    assert fast.run(100, 400) == ref.run(100, 400)


def test_small_trace_chunks_preserve_bursty_equivalence():
    """Gate rows must survive chunk boundaries at awkward strides."""
    table = _table("Mesh", 16)
    pat = uniform_random(16).with_burst(
        BurstSpec(kind="mmpp", p_on=0.25, p_off=0.25, seed=8)
    )
    ref, fast = _pair(table, pat, 0.06, seed=2, chunk=13)
    assert fast.run(80, 320) == ref.run(80, 320)


def test_unnormalized_gate_suppresses_offered_load():
    """With an explicit ``on_scale=1`` (no mean-preserving boost) the
    OFF periods genuinely remove load: offered packets land near the
    duty-cycle fraction of the stationary twin's."""
    n = 16
    table = _table("Mesh", n)
    spec = BurstSpec(kind="mmpp", p_on=0.1, p_off=0.3, on_scale=1.0, seed=7)
    plain = NetworkSimulator(
        table, uniform_random(n), 0.08, seed=5
    ).run(0, 1000)
    bursty = NetworkSimulator(
        table, uniform_random(n).with_burst(spec), 0.08, seed=5
    ).run(0, 1000)
    ratio = bursty.offered_packets / plain.offered_packets
    assert 0.1 < ratio < 0.45, ratio  # duty cycle is 0.25
