"""Differential suite: the fast engine must match the reference engine
bit-for-bit, plus regression pins for the corrected throughput accounting
and the ``find_saturation`` base-probe fix, plus the compiled-network
reuse and trace chunk-boundary invariants."""

import numpy as np
import pytest

from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.sim import (
    ENGINES,
    CompiledNetwork,
    FastNetworkSimulator,
    NetworkSimulator,
    bit_complement,
    find_saturation,
    hotspot,
    latency_throughput_curve,
    memory_traffic,
    neighbor,
    resolve_engine,
    run_point,
    shuffle_pattern,
    tornado,
    transpose,
    uniform_random,
)
from repro.topology import LAYOUT_4X5, Layout, folded_torus, mesh


def _table(layout, seed=0):
    topo = folded_torus(layout)
    routes = ndbt_route(topo, seed=seed)
    # The registry's size-scaled VC budget: 8 layers suffice up to 30
    # routers, irregular 48-router networks can need a few more.
    vca = assign_vcs(routes, max_vcs=8 if topo.n <= 30 else 14, seed=seed)
    return build_routing_table(routes, vca)


LAYOUT_8X6 = Layout(rows=8, cols=6)


@pytest.fixture(scope="module")
def table_4x5():
    return _table(LAYOUT_4X5)


@pytest.fixture(scope="module")
def table_8x6():
    return _table(LAYOUT_8X6)


def _patterns(layout):
    n = layout.n
    return [
        uniform_random(n),
        memory_traffic(layout),
        shuffle_pattern(n),
        bit_complement(n),
        transpose(layout),
        tornado(layout),
        neighbor(layout),
        hotspot(n, layout.mc_routers()),
    ]


class TestEngineRegistry:
    def test_engines_registered(self):
        assert ENGINES["reference"] is NetworkSimulator
        assert ENGINES["fast"] is FastNetworkSimulator

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp")


class TestDifferential4x5:
    """Identical SimStats across all seven traffic patterns (plus the
    hotspot mixture), several rates, and several seeds on the 4x5 grid."""

    @pytest.mark.parametrize("pattern_idx", range(8))
    def test_all_patterns_low_and_high_load(self, table_4x5, pattern_idx):
        traffic = _patterns(LAYOUT_4X5)[pattern_idx]
        for rate in (0.03, 0.15, 0.30):
            a = run_point(table_4x5, traffic, rate, warmup=200, measure=500,
                          seed=0, engine="reference")
            b = run_point(table_4x5, traffic, rate, warmup=200, measure=500,
                          seed=0, engine="fast")
            assert a == b, (traffic.name, rate)

    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_seeds(self, table_4x5, seed):
        traffic = uniform_random(20)
        for rate in (0.08, 0.25):
            a = run_point(table_4x5, traffic, rate, warmup=200, measure=500,
                          seed=seed, engine="reference")
            b = run_point(table_4x5, traffic, rate, warmup=200, measure=500,
                          seed=seed, engine="fast")
            assert a == b

    def test_multi_packet_per_cycle_rates(self, table_4x5):
        """Rates above 1.0 inject several packets per node per cycle."""
        traffic = uniform_random(20)
        a = run_point(table_4x5, traffic, 1.5, warmup=100, measure=300,
                      seed=3, engine="reference")
        b = run_point(table_4x5, traffic, 1.5, warmup=100, measure=300,
                      seed=3, engine="fast")
        assert a == b

    def test_extra_hop_latency_and_buffers(self, table_4x5):
        traffic = uniform_random(20)
        for kw in ({"extra_hop_latency": 4}, {"vc_buffer_flits": 9},
                   {"router_latency": 1, "link_latency": 2}):
            a = run_point(table_4x5, traffic, 0.1, warmup=150, measure=400,
                          seed=0, engine="reference", **kw)
            b = run_point(table_4x5, traffic, 0.1, warmup=150, measure=400,
                          seed=0, engine="fast", **kw)
            assert a == b, kw

    def test_curves_identical(self, table_4x5):
        traffic = uniform_random(20)
        rates = [0.02, 0.1, 0.2, 0.3, 0.4]
        a = latency_throughput_curve(table_4x5, traffic, rates,
                                     warmup=200, measure=500,
                                     engine="reference")
        b = latency_throughput_curve(table_4x5, traffic, rates,
                                     warmup=200, measure=500, engine="fast")
        assert len(a.points) == len(b.points)
        for pa, pb in zip(a.points, b.points):
            assert pa == pb


@pytest.mark.slow
class TestDifferential8x6:
    @pytest.mark.parametrize("pattern_idx", range(8))
    def test_all_patterns(self, table_8x6, pattern_idx):
        traffic = _patterns(LAYOUT_8X6)[pattern_idx]
        for rate in (0.05, 0.2):
            a = run_point(table_8x6, traffic, rate, warmup=150, measure=400,
                          seed=0, engine="reference")
            b = run_point(table_8x6, traffic, rate, warmup=150, measure=400,
                          seed=0, engine="fast")
            assert a == b, (traffic.name, rate)

    def test_seed_sweep_uniform(self, table_8x6):
        traffic = uniform_random(48)
        for seed in (0, 5):
            a = run_point(table_8x6, traffic, 0.12, warmup=150, measure=400,
                          seed=seed, engine="reference")
            b = run_point(table_8x6, traffic, 0.12, warmup=150, measure=400,
                          seed=seed, engine="fast")
            assert a == b


class TestFastEngineBehaviour:
    def test_drain_conserves_packets(self, table_4x5):
        """With injection switched off, every in-flight packet ejects."""
        sim = FastNetworkSimulator(table_4x5, uniform_random(20), 0.1, seed=1)
        sim.run(200, 600)
        assert sim.in_flight >= 0
        sim.rate = 0.0
        for _ in range(5000):
            sim.step()
            if sim.in_flight == 0:
                break
        assert sim.in_flight == 0

    def test_step_equivalent_to_run_segments(self, table_4x5):
        """Single-cycle stepping crosses wheel/sleep state correctly."""
        traffic = uniform_random(20)
        a = FastNetworkSimulator(table_4x5, traffic, 0.12, seed=2)
        stats_a = a.run(150, 350)
        b = FastNetworkSimulator(table_4x5, traffic, 0.12, seed=2)
        for _ in range(150):
            b.step()
        b.measuring = True
        b.measure_start = b.cycle
        for _ in range(350):
            b.step()
        b.measuring = False
        assert stats_a.ejected_packets == b.ejected
        assert stats_a.latency_sum == b.lat_sum
        assert stats_a.offered_packets == b.offered


class TestThroughputAccounting:
    """Regression pins for the corrected accepted-throughput accounting."""

    def test_warmup_born_packets_count_toward_throughput(self, table_4x5):
        """Packets born during warmup but delivered inside the window
        count toward ejected/ejected_flits — but not toward latency."""
        sim = NetworkSimulator(table_4x5, uniform_random(20), 0.2, seed=0)
        sim.run(300, 200)
        # At a contended rate with a short window, deliveries always
        # outnumber latency samples: warmup-born packets drain into the
        # measurement window.
        assert sim.ejected > sim.lat_count

    def test_engines_agree_on_accounting(self, table_4x5):
        a = run_point(table_4x5, uniform_random(20), 0.25,
                      warmup=300, measure=400, seed=0, engine="reference")
        b = run_point(table_4x5, uniform_random(20), 0.25,
                      warmup=300, measure=400, seed=0, engine="fast")
        assert a.ejected_packets == b.ejected_packets
        assert a.ejected_flits == b.ejected_flits
        assert a.latency_count == b.latency_count

    def test_throughput_not_understated_at_saturation(self, table_4x5):
        """Beyond saturation the network still delivers at (roughly) its
        capacity; with the old window-born-only accounting the reported
        throughput collapsed far below it."""
        st = run_point(table_4x5, uniform_random(20), 0.6,
                       warmup=400, measure=800, seed=0)
        # Accepted throughput stays a substantial fraction of the
        # saturation rate (~0.2 for the NDBT-routed 4x5 folded torus).
        assert st.throughput_packets_node_cycle > 0.1


class TestCompiledNetworkReuse:
    def test_for_table_memoizes(self, table_4x5):
        a = CompiledNetwork.for_table(table_4x5)
        b = CompiledNetwork.for_table(table_4x5)
        assert a is b
        assert a.table is table_4x5

    def test_two_runs_from_one_compile_match_fresh_sims(self, table_4x5):
        """A shared compile is pure: reusing it across runs yields
        exactly what two fresh simulators (and the reference) yield."""
        compiled = CompiledNetwork(table_4x5)
        traffic = uniform_random(20)
        stats_shared = [
            FastNetworkSimulator(
                table_4x5, traffic, rate, seed=4, compiled=compiled
            ).run(200, 500)
            for rate in (0.1, 0.3)
        ]
        stats_fresh = [
            FastNetworkSimulator(table_4x5, traffic, rate, seed=4).run(200, 500)
            for rate in (0.1, 0.3)
        ]
        stats_ref = [
            NetworkSimulator(table_4x5, traffic, rate, seed=4).run(200, 500)
            for rate in (0.1, 0.3)
        ]
        assert stats_shared == stats_fresh == stats_ref

    def test_mismatched_compile_rejected(self, table_4x5, table_8x6):
        compiled = CompiledNetwork(table_8x6)
        with pytest.raises(ValueError, match="different table"):
            FastNetworkSimulator(
                table_4x5, uniform_random(20), 0.1, compiled=compiled
            )

    def test_curve_and_saturation_share_the_table_memo(self, table_4x5):
        """Sweeps and searches attach one compile to the table and keep
        reusing it (the per-(table, traffic) amortization the sweep
        stack rides on)."""
        table_4x5.__dict__.pop("_compiled_network", None)
        traffic = uniform_random(20)
        latency_throughput_curve(table_4x5, traffic, [0.05, 0.1],
                                 warmup=100, measure=200)
        first = table_4x5.__dict__.get("_compiled_network")
        assert first is not None
        find_saturation(table_4x5, traffic, iters=2, warmup=100, measure=200)
        assert table_4x5.__dict__.get("_compiled_network") is first


class TestTraceChunkBoundaries:
    def test_tiny_chunks_bit_identical(self, table_4x5):
        """Forcing a chunk boundary every 11 cycles (warmup and measure
        not multiples of it) must not change a single stat."""
        traffic = memory_traffic(LAYOUT_4X5)
        ref = run_point(table_4x5, traffic, 0.2, warmup=205, measure=411,
                        seed=6, engine="reference")
        sim = FastNetworkSimulator(table_4x5, traffic, 0.2, seed=6)
        sim.trace_chunk_cycles = 11
        assert sim.run(205, 411) == ref

    def test_single_hotspot_pattern_differential(self, table_4x5):
        """Single-hotspot traffic exercises the trace's scalar-emulation
        path (numpy's consume-nothing integers(1) special case) inside
        the full engine."""
        traffic = hotspot(20, [4], 0.6)
        a = run_point(table_4x5, traffic, 0.15, warmup=200, measure=500,
                      seed=2, engine="reference")
        b = run_point(table_4x5, traffic, 0.15, warmup=200, measure=500,
                      seed=2, engine="fast")
        assert a == b


class TestFindSaturationMemoization:
    def test_no_rate_simulated_twice(self, table_4x5, monkeypatch):
        import repro.sim.sweep as sweep_mod

        traffic = uniform_random(20)
        seen = []
        real = sweep_mod.run_point

        def counting(table, tr, rate, **kw):
            seen.append(rate)
            return real(table, tr, rate, **kw)

        monkeypatch.setattr(sweep_mod, "run_point", counting)
        sat = sweep_mod.find_saturation(table_4x5, traffic, lo=0.01, hi=1.0,
                                        iters=4, warmup=150, measure=300)
        assert 0.0 < sat <= 1.0
        assert len(seen) == len(set(seen)), f"duplicate probes: {seen}"
        # lo + hi + at most `iters` bisection midpoints
        assert len(seen) <= 2 + 4


class TestFindSaturationBaseProbe:
    def test_saturated_base_returns_zero(self, table_4x5):
        """A `lo` probe that already fails the acceptance floor must
        yield 0.0, not `lo` echoed back as capacity."""
        # lo far above capacity: the base probe itself is saturated.
        sat = find_saturation(table_4x5, uniform_random(20),
                              lo=0.8, hi=1.0, iters=2,
                              warmup=200, measure=500)
        assert sat == 0.0

    def test_normal_search_unaffected(self, table_4x5):
        sat = find_saturation(table_4x5, uniform_random(20),
                              lo=0.01, hi=1.0, iters=4,
                              warmup=200, measure=500)
        assert 0.05 < sat < 0.8
