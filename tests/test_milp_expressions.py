"""Unit tests for the MILP expression algebra."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp import EQ, GE, LE, Constraint, LinExpr, Model, Var, quicksum


@pytest.fixture
def model():
    return Model("t")


class TestLinExprAlgebra:
    def test_var_plus_var(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        e = x + y
        assert e.coeffs == {0: 1.0, 1: 1.0}
        assert e.const == 0.0

    def test_var_plus_scalar(self, model):
        x = model.add_var("x")
        e = x + 3
        assert e.coeffs == {0: 1.0}
        assert e.const == 3.0

    def test_radd_scalar(self, model):
        x = model.add_var("x")
        e = 3 + x
        assert e.const == 3.0

    def test_subtraction(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        e = x - y - 2
        assert e.coeffs == {0: 1.0, 1: -1.0}
        assert e.const == -2.0

    def test_rsub(self, model):
        x = model.add_var("x")
        e = 5 - x
        assert e.coeffs == {0: -1.0}
        assert e.const == 5.0

    def test_negation(self, model):
        x = model.add_var("x")
        e = -(x + 1)
        assert e.coeffs == {0: -1.0}
        assert e.const == -1.0

    def test_scalar_multiply(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        e = 2 * (x + 3 * y + 1)
        assert e.coeffs == {0: 2.0, 1: 6.0}
        assert e.const == 2.0

    def test_cancellation_removes_term(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        e = (x + y) - x
        assert 0 not in e.coeffs
        assert e.coeffs == {1: 1.0}

    def test_iadd_accumulates(self, model):
        x = model.add_var("x")
        e = LinExpr()
        e += x
        e += x
        assert e.coeffs == {0: 2.0}

    def test_value_evaluation(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        e = 2 * x - y + 4
        assert e.value([3.0, 1.0]) == pytest.approx(9.0)

    def test_copy_is_independent(self, model):
        x = model.add_var("x")
        e = x + 1
        e2 = e.copy()
        e2 += x
        assert e.coeffs == {0: 1.0}
        assert e2.coeffs == {0: 2.0}


class TestConstraints:
    def test_le_constraint(self, model):
        x = model.add_var("x")
        c = x <= 5
        assert isinstance(c, Constraint)
        assert c.sense == LE
        lo, hi = c.bounds()
        assert lo == -math.inf and hi == 5.0

    def test_ge_constraint(self, model):
        x = model.add_var("x")
        c = x >= 2
        lo, hi = c.bounds()
        assert lo == 2.0 and hi == math.inf

    def test_eq_constraint(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        c = x + y == 7
        lo, hi = c.bounds()
        assert lo == hi == 7.0

    def test_expr_vs_expr(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        c = x + 1 <= y + 4
        lo, hi = c.bounds()
        assert hi == 3.0
        assert c.expr.coeffs == {0: 1.0, 1: -1.0}

    def test_var_identity_eq_is_bool(self, model):
        x = model.add_var("x")
        assert (x == x) is True


class TestQuicksum:
    def test_empty(self):
        e = quicksum([])
        assert e.coeffs == {} and e.const == 0.0

    def test_mixed(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        e = quicksum([x, 2 * y, 3, x])
        assert e.coeffs == {0: 2.0, 1: 2.0}
        assert e.const == 3.0


@settings(max_examples=60, deadline=None)
@given(
    coefs=st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1, max_size=6
    ),
    point=st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=6, max_size=6
    ),
)
def test_property_linearity(coefs, point):
    """value(a*e) == a*value(e) and value(e1+e2) == value(e1)+value(e2)."""
    m = Model("h")
    xs = [m.add_var(f"x{i}") for i in range(6)]
    e = quicksum(c * x for c, x in zip(coefs, xs))
    v = e.value(point)
    assert (2.5 * e).value(point) == pytest.approx(2.5 * v, rel=1e-9, abs=1e-9)
    assert (e + e).value(point) == pytest.approx(2 * v, rel=1e-9, abs=1e-9)
    assert (e - e).value(point) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(consts=st.lists(st.integers(min_value=-100, max_value=100), min_size=2, max_size=5))
def test_property_sum_of_constants(consts):
    e = quicksum(consts)
    assert e.const == sum(consts)
    assert e.coeffs == {}
