"""Tests for the network simulator: conservation, latency, saturation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.sim import (
    CONTROL_FLITS,
    DATA_FLITS,
    MEAN_FLITS_PER_PACKET,
    NetworkSimulator,
    find_saturation,
    latency_throughput_curve,
    memory_traffic,
    run_point,
    shuffle_pattern,
    uniform_random,
)
from repro.topology import LAYOUT_4X5, Layout, Topology, folded_torus, mesh


@pytest.fixture(scope="module")
def ft_table():
    ft = folded_torus(LAYOUT_4X5)
    routes = ndbt_route(ft, seed=0)
    return build_routing_table(routes, assign_vcs(routes, seed=0))


@pytest.fixture(scope="module")
def mesh_table():
    m = mesh(LAYOUT_4X5)
    routes = ndbt_route(m, seed=0)
    return build_routing_table(routes, assign_vcs(routes, seed=0))


class TestPacketModel:
    def test_flit_sizes(self):
        assert CONTROL_FLITS == 1
        assert DATA_FLITS == 9
        assert MEAN_FLITS_PER_PACKET == 5.0


class TestBasicSimulation:
    def test_low_load_latency_near_zero_load(self, ft_table):
        st1 = run_point(ft_table, uniform_random(20), 0.01, warmup=300, measure=800)
        st2 = run_point(ft_table, uniform_random(20), 0.02, warmup=300, measure=800)
        assert st1.avg_latency_cycles == pytest.approx(
            st2.avg_latency_cycles, rel=0.25
        )

    def test_zero_load_latency_sane(self, ft_table):
        """Zero-load latency ~ hops * (serialization + pipeline) within
        a loose band: must be > per-hop minimum and < 3x estimate."""
        st = run_point(ft_table, uniform_random(20), 0.01, warmup=300, measure=800)
        lat = st.avg_latency_cycles
        # FT avg 2.32 hops, ~3 cyc/hop pipeline+link, +2*5 serialization
        assert 10 < lat < 80

    def test_throughput_tracks_offered_at_low_load(self, ft_table):
        st = run_point(ft_table, uniform_random(20), 0.05, warmup=300, measure=1500)
        assert st.throughput_packets_node_cycle == pytest.approx(0.05, rel=0.15)

    def test_accepted_counts_all_window_deliveries(self, ft_table):
        """Accepted throughput counts every packet ejected during the
        measurement window; latency samples only window-born packets
        (the corrected accounting — ejections can outnumber samples)."""
        st = run_point(ft_table, uniform_random(20), 0.2, warmup=300, measure=300)
        assert st.ejected_packets >= st.latency_count
        assert st.ejected_flits >= st.ejected_packets  # >= 1 flit each

    def test_packet_conservation(self, ft_table):
        """No packet is created or destroyed: in_flight accounts for all
        injected minus ejected."""
        sim = NetworkSimulator(ft_table, uniform_random(20), 0.05, seed=1)
        sim.run(200, 800)
        total_created = sim._pid
        assert sim.in_flight >= 0
        # drain: with injection off, everything in flight must eject
        sim.rate = 0.0
        for _ in range(4000):
            sim.step()
            if sim.in_flight == 0:
                break
        assert sim.in_flight == 0

    def test_seed_determinism(self, ft_table):
        a = run_point(ft_table, uniform_random(20), 0.1, warmup=200, measure=600, seed=5)
        b = run_point(ft_table, uniform_random(20), 0.1, warmup=200, measure=600, seed=5)
        assert a.avg_latency_cycles == b.avg_latency_cycles
        assert a.ejected_packets == b.ejected_packets

    def test_different_seeds_differ(self, ft_table):
        a = run_point(ft_table, uniform_random(20), 0.1, warmup=200, measure=600, seed=1)
        b = run_point(ft_table, uniform_random(20), 0.1, warmup=200, measure=600, seed=2)
        assert a.ejected_packets != b.ejected_packets

    def test_latency_increases_with_load(self, ft_table):
        lats = []
        for rate in (0.02, 0.10, 0.16):
            st = run_point(ft_table, uniform_random(20), rate, warmup=300, measure=1000)
            lats.append(st.avg_latency_cycles)
        assert lats[0] < lats[1] < lats[2]

    def test_extra_hop_latency_raises_latency(self, ft_table):
        base = run_point(ft_table, uniform_random(20), 0.02, warmup=200, measure=600)
        slow = run_point(
            ft_table, uniform_random(20), 0.02, warmup=200, measure=600,
            extra_hop_latency=4,
        )
        assert slow.avg_latency_cycles > base.avg_latency_cycles + 3


@pytest.mark.slow
class TestSaturation:
    def test_saturation_below_routed_bound(self, ft_table):
        """Input-queued networks saturate below the analytical routed
        bound (Karol et al.; the paper's Fig. 7 gap)."""
        from repro.routing import channel_loads, ndbt_route

        ft = folded_torus(LAYOUT_4X5)
        bound_flits = channel_loads(ndbt_route(ft, seed=0)).saturation_injection(20)
        bound_packets = bound_flits / MEAN_FLITS_PER_PACKET
        sat = find_saturation(ft_table, uniform_random(20), warmup=200, measure=700)
        assert 0.3 * bound_packets < sat <= bound_packets * 1.1

    def test_mesh_saturates_before_folded_torus(self, ft_table, mesh_table):
        sat_m = find_saturation(mesh_table, uniform_random(20), warmup=200, measure=700)
        sat_f = find_saturation(ft_table, uniform_random(20), warmup=200, measure=700)
        assert sat_f > sat_m

    def test_memory_traffic_saturates_earlier(self, ft_table):
        """Fig. 6b: hot-spot memory traffic binds tighter than uniform."""
        sat_u = find_saturation(ft_table, uniform_random(20), warmup=200, measure=700)
        sat_m = find_saturation(
            ft_table, memory_traffic(LAYOUT_4X5), warmup=200, measure=700
        )
        assert sat_m < sat_u


class TestSweep:
    def test_curve_stops_after_saturation(self, ft_table):
        curve = latency_throughput_curve(
            ft_table, uniform_random(20), rates=[0.02, 0.1, 0.3, 0.5, 0.9],
            warmup=200, measure=600,
        )
        sat_flags = [p.saturated for p in curve.points]
        if any(sat_flags):
            assert sat_flags[-1]  # sweep stopped at first saturation
            assert not any(sat_flags[:-1])

    def test_clock_scaling(self, ft_table):
        curve = latency_throughput_curve(
            ft_table, uniform_random(20), rates=[0.05],
            link_class="medium", warmup=200, measure=600,
        )
        p = curve.points[0]
        assert p.latency_ns(3.0) == pytest.approx(p.avg_latency_cycles / 3.0)
        assert curve.clock_ghz == 3.0

    def test_zero_load_property(self, ft_table):
        curve = latency_throughput_curve(
            ft_table, uniform_random(20), rates=[0.02, 0.05],
            warmup=200, measure=600,
        )
        assert curve.zero_load_latency_cycles == curve.points[0].avg_latency_cycles


class TestTrafficPatterns:
    def test_uniform_never_self(self):
        tp = uniform_random(20)
        rng = np.random.default_rng(0)
        for src in range(20):
            for _ in range(50):
                assert tp.destination(src, rng) != src

    def test_memory_targets_mc_columns(self):
        tp = memory_traffic(LAYOUT_4X5)
        mcs = set(LAYOUT_4X5.mc_routers())
        rng = np.random.default_rng(0)
        for src in range(20):
            for _ in range(20):
                assert tp.destination(src, rng) in mcs

    def test_shuffle_deterministic_dests(self):
        tp = shuffle_pattern(20)
        rng = np.random.default_rng(0)
        assert tp.destination(3, rng) == 6
        assert tp.destination(12, rng) == (2 * 12 + 1) % 20

    def test_packet_size_mix(self):
        tp = uniform_random(20)
        rng = np.random.default_rng(0)
        sizes = [tp.packet_size(rng) for _ in range(600)]
        data_frac = sum(1 for s in sizes if s == DATA_FLITS) / len(sizes)
        assert 0.4 < data_frac < 0.6

    def test_demand_matrix_rows_sum_one(self):
        tp = uniform_random(8)
        w = tp.demand_matrix()
        assert np.allclose(w.sum(axis=1), 1.0, atol=0.05)
