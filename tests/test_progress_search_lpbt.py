"""Tests for solver-progress recording, SA search, and the LPBT baseline."""

import math

import numpy as np
import pytest

from repro.core import (
    LPBTConfig,
    NetSmithConfig,
    anneal_topology,
    build_lpbt_model,
    generate_latop,
    generate_lpbt,
    record_progress_bnb,
    record_progress_scipy,
)
from repro.topology import Layout, average_hops, sparsest_cut


TINY = Layout(rows=2, cols=3)


class TestProgressRecording:
    def test_bnb_curve_has_samples(self):
        cfg = NetSmithConfig(layout=TINY, link_class="small", radix=3, diameter_bound=4)
        curve = record_progress_bnb(cfg, time_limit=15, progress_interval=0.0)
        assert len(curve.samples) >= 1
        assert curve.samples[-1].gap <= curve.samples[0].gap + 1e-9

    def test_bnb_final_gap_near_zero_on_tiny(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=2, cols=2), link_class="small", radix=2,
            diameter_bound=3,
        )
        curve = record_progress_bnb(cfg, time_limit=30, progress_interval=0.0)
        assert curve.final_gap() < 0.3  # 2x2 instance should close most gap

    def test_time_to_gap(self):
        from repro.core import GapCurve, GapSample

        c = GapCurve("t", [GapSample(1.0, 0.5, None), GapSample(2.0, 0.05, 10.0)])
        assert c.time_to_gap(0.10) == 2.0
        assert c.time_to_gap(0.01) is None

    def test_scipy_ladder(self):
        cfg = NetSmithConfig(layout=TINY, link_class="small", radix=3, diameter_bound=4)
        curve = record_progress_scipy(cfg, time_points=(2.0, 6.0))
        assert 1 <= len(curve.samples) <= 2
        assert curve.samples[-1].incumbent is not None


class TestAnnealTopology:
    def test_latency_objective_valid_result(self):
        cfg = NetSmithConfig(layout=Layout(rows=3, cols=4), link_class="medium")
        res = anneal_topology(cfg, objective="latency", steps=800, seed=1)
        res.topology.check(radix=4, link_class="medium")
        assert res.status == "heuristic"
        assert math.isfinite(res.objective)

    def test_close_to_milp_on_tiny(self):
        """Ablation: SA should land within ~10% of the exact optimum."""
        cfg = NetSmithConfig(layout=TINY, link_class="small", radix=3, diameter_bound=4)
        exact = generate_latop(cfg, time_limit=60)
        sa = anneal_topology(
            NetSmithConfig(layout=TINY, link_class="small", radix=3),
            objective="latency", steps=1500, seed=2,
        )
        assert sa.objective <= exact.objective * 1.10 + 1e-9
        assert sa.objective >= exact.objective - 1e-9  # MILP is a true bound

    def test_initial_seed_respected(self):
        cfg = NetSmithConfig(layout=TINY, link_class="small", radix=3, diameter_bound=4)
        base = generate_latop(cfg, time_limit=60)
        sa = anneal_topology(
            NetSmithConfig(layout=TINY, link_class="small", radix=3),
            objective="latency", steps=100, seed=3, initial=base.topology,
        )
        assert sa.objective <= base.objective + 1e-9  # can only improve

    def test_sparsest_cut_objective(self):
        cfg = NetSmithConfig(layout=TINY, link_class="small", radix=3)
        res = anneal_topology(cfg, objective="sparsest_cut", steps=300, seed=1)
        assert res.objective == pytest.approx(
            sparsest_cut(res.topology, exact=True).value
        )

    def test_sparsest_cut_large_n_rejected(self):
        cfg = NetSmithConfig(layout=Layout(rows=6, cols=5), link_class="small")
        with pytest.raises(ValueError):
            anneal_topology(cfg, objective="sparsest_cut", steps=10)


class TestLPBT:
    def test_tiny_hops_instance(self):
        cfg = LPBTConfig(layout=Layout(rows=2, cols=2), link_class="small", radix=2)
        res = generate_lpbt(cfg, time_limit=30)
        assert res.topology.is_connected()
        assert res.topology.max_radix() <= 2

    def test_power_objective_sparser(self):
        """The power objective charges for placing wires, so it should
        never use more links than the hops objective on the same grid."""
        hops = generate_lpbt(
            LPBTConfig(layout=Layout(rows=2, cols=2), link_class="small",
                       radix=2, objective="hops"),
            time_limit=30,
        )
        power = generate_lpbt(
            LPBTConfig(layout=Layout(rows=2, cols=2), link_class="small",
                       radix=2, objective="power"),
            time_limit=30,
        )
        assert power.topology.num_directed_links <= hops.topology.num_directed_links

    def test_model_size_explodes_with_n(self):
        """The structural disadvantage the paper exploits: LPBT's var
        count grows ~n^2 * |L| while NetSmith's grows ~n^2 * radix."""
        small_m, _, _ = build_lpbt_model(
            LPBTConfig(layout=Layout(rows=2, cols=2), link_class="small")
        )
        big_m, _, _ = build_lpbt_model(
            LPBTConfig(layout=Layout(rows=2, cols=4), link_class="small")
        )
        from repro.core import build_distance_formulation

        ns = build_distance_formulation(
            NetSmithConfig(layout=Layout(rows=2, cols=4), link_class="small",
                           diameter_bound=5)
        )
        assert big_m.num_vars > 4 * small_m.num_vars
        assert big_m.num_vars > ns.model.num_vars

    def test_bad_objective_rejected(self):
        with pytest.raises(ValueError):
            build_lpbt_model(
                LPBTConfig(layout=Layout(rows=2, cols=2), objective="latency")
            )
