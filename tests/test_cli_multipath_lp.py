"""Tests for the CLI, fractional multipath MCLB, and LP export."""

import json
import os

import pytest

from repro.cli import main
from repro.core import mclb_route, mclb_route_multipath
from repro.milp import MAXIMIZE, Model, quicksum
from repro.topology import LAYOUT_4X5, Layout, Topology, folded_torus, save


class TestMultipathMCLB:
    def test_fractional_lower_bounds_integral(self):
        ft = folded_torus(LAYOUT_4X5)
        frac = mclb_route_multipath(ft, time_limit=60)
        integral = mclb_route(ft, time_limit=60)
        assert frac.max_channel_load <= integral.max_channel_load + 1e-6

    def test_shares_sum_to_one(self):
        ft = folded_torus(LAYOUT_4X5)
        frac = mclb_route_multipath(ft, time_limit=60)
        by_flow = {}
        for (sd, p), w in frac.weights.items():
            by_flow[sd] = by_flow.get(sd, 0.0) + w
        for sd, total in by_flow.items():
            assert total == pytest.approx(1.0, abs=1e-4), sd

    def test_channel_loads_match_objective(self):
        ft = folded_torus(LAYOUT_4X5)
        frac = mclb_route_multipath(ft, time_limit=60)
        loads = frac.channel_loads()
        assert max(loads.values()) == pytest.approx(
            frac.max_channel_load, abs=1e-5
        )

    def test_flow_paths_accessor(self):
        ft = folded_torus(LAYOUT_4X5)
        frac = mclb_route_multipath(ft, time_limit=60)
        fp = frac.flow_paths(0, 7)
        assert fp
        assert all(p[0] == 0 and p[-1] == 7 for p, _ in fp)


class TestLPExport:
    def test_lp_string_structure(self):
        m = Model("demo", sense=MAXIMIZE)
        x = m.add_binary("x")
        y = m.add_integer("y", ub=5)
        m.add_constr(x + 2 * y <= 7, name="cap")
        m.set_objective(3 * x + y)
        text = m.to_lp_string()
        assert "Maximize" in text
        assert "cap:" in text
        assert "Binaries" in text and "Generals" in text
        assert "End" in text

    def test_write_lp(self, tmp_path):
        m = Model("demo")
        x = m.add_var("x", ub=1)
        m.set_objective(x)
        p = tmp_path / "model.lp"
        m.write_lp(str(p))
        assert p.read_text().startswith("\\ demo")


class TestCLI:
    def test_evaluate_expert(self, capsys):
        assert main(["evaluate", "FoldedTorus"]) == 0
        out = capsys.readouterr().out
        assert "avg hops" in out and "2.31" in out

    def test_evaluate_json_file(self, tmp_path, capsys):
        t = Topology.from_undirected(
            Layout(rows=1, cols=4), [(0, 1), (1, 2), (2, 3), (0, 3)], name="ringy"
        )
        p = tmp_path / "t.json"
        save(t, str(p))
        assert main(["evaluate", str(p), "--routers", "4"]) == 0
        assert "ringy" in capsys.readouterr().out

    def test_evaluate_unknown_topology(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "Hypercube"])

    def test_generate_sa_and_save(self, tmp_path, capsys):
        out = tmp_path / "gen.json"
        rc = main([
            "generate", "--rows", "2", "--cols", "3", "--radix", "3",
            "--objective", "sa", "--sa-steps", "300", "--out", str(out),
        ])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["rows"] == 2 and data["cols"] == 3

    def test_route_command(self, capsys):
        assert main(["route", "FoldedTorus", "--policy", "ndbt"]) == 0
        out = capsys.readouterr().out
        assert "max_load" in out and "vcs=" in out

    def test_simulate_command(self, capsys):
        rc = main([
            "simulate", "FoldedTorus", "--points", "2", "--max-rate", "0.08",
            "--warmup", "100", "--measure", "300",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "saturation throughput" in out

    def test_ns_spec(self, capsys):
        assert main(["evaluate", "ns:latop:medium"]) == 0
        assert "avg hops" in capsys.readouterr().out
