"""Unit + property tests for topology metrics (hops, cuts, bounds)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    LAYOUT_4X5,
    Layout,
    Topology,
    average_hops,
    bisection_bandwidth,
    cut_throughput_bound,
    diameter,
    folded_torus,
    hop_histogram,
    link_length_histogram,
    mesh,
    occupancy_throughput_bound,
    saturation_bound,
    sparsest_cut,
    summarize,
    total_wire_length,
)


@pytest.fixture(scope="module")
def ft20():
    return folded_torus(LAYOUT_4X5)


@pytest.fixture(scope="module")
def mesh20():
    return mesh(LAYOUT_4X5)


class TestHopStats:
    def test_ring_average(self):
        lay = Layout(rows=1, cols=4)
        t = Topology.from_undirected(lay, [(0, 1), (1, 2), (2, 3), (0, 3)])
        # symmetric 4-ring: distances 1,2,1 from every node -> avg 4/3
        assert average_hops(t) == pytest.approx(4 / 3)
        assert diameter(t) == 2

    def test_mesh_4x5_known_values(self, mesh20):
        # 4x5 mesh: avg Manhattan distance, diameter 7
        assert diameter(mesh20) == 7
        assert average_hops(mesh20) == pytest.approx(3.0, abs=0.01)

    def test_folded_torus_matches_table2(self, ft20):
        """Table II: Folded Torus = 40 links, diam 4, avg 2.32, BW 10."""
        assert ft20.num_links == 40
        assert diameter(ft20) == 4
        assert average_hops(ft20) == pytest.approx(2.32, abs=0.005)
        assert bisection_bandwidth(ft20) == 10

    def test_disconnected_average_inf(self):
        lay = Layout(rows=1, cols=3)
        t = Topology(lay, [(0, 1), (1, 0)])
        assert average_hops(t) == math.inf
        with pytest.raises(ValueError):
            diameter(t)

    def test_hop_histogram_sums_to_pairs(self, ft20):
        h = hop_histogram(ft20)
        assert sum(h.values()) == 20 * 19
        assert set(h) == {1, 2, 3, 4}


class TestCuts:
    def test_bisection_of_ring(self):
        lay = Layout(rows=1, cols=4)
        t = Topology.from_undirected(lay, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert bisection_bandwidth(t) == 2

    def test_bisection_odd_n_raises(self):
        lay = Layout(rows=1, cols=3)
        t = Topology.from_undirected(lay, [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            bisection_bandwidth(t)

    def test_sparsest_cut_line_graph(self):
        # 1x4 path: sparsest cut splits in the middle: 1 edge / (2*2)
        lay = Layout(rows=1, cols=4)
        t = Topology.from_undirected(lay, [(0, 1), (1, 2), (2, 3)])
        cut = sparsest_cut(t, exact=True)
        assert cut.value == pytest.approx(1 / 4)
        assert cut.exact

    def test_sparsest_cut_partition_valid(self, ft20):
        cut = sparsest_cut(ft20, exact=True)
        u, v = cut.partition
        assert len(u) + len(v) == 20
        assert set(u).isdisjoint(v)

    def test_asymmetric_direction_minimum(self):
        # one-way heavy: U->V has 2 links, V->U has 1
        lay = Layout(rows=1, cols=4)
        t = Topology(
            lay,
            [(0, 1), (1, 0), (0, 2), (2, 3), (3, 2), (3, 1), (1, 3), (2, 0)],
        )
        cut = sparsest_cut(t, exact=True)
        assert cut.value > 0  # computes without error; min-direction logic

    def test_heuristic_close_to_exact_on_20(self, ft20):
        exact = sparsest_cut(ft20, exact=True).value
        heur = sparsest_cut(ft20, exact=False, restarts=24, seed=1).value
        assert heur >= exact - 1e-12  # heuristic can only overestimate
        assert heur <= exact * 1.5 + 1e-9

    def test_heuristic_bisection_close(self, ft20):
        exact = bisection_bandwidth(ft20, exact=True)
        heur = bisection_bandwidth(ft20, exact=False, restarts=24, seed=1)
        assert heur >= exact


class TestBounds:
    def test_cut_bound_formula(self, ft20):
        cut = sparsest_cut(ft20, exact=True)
        assert cut_throughput_bound(ft20) == pytest.approx(19 * cut.value)

    def test_occupancy_bound_formula(self, ft20):
        expect = ft20.num_directed_links / (20 * average_hops(ft20))
        assert occupancy_throughput_bound(ft20) == pytest.approx(expect)

    def test_saturation_is_min(self, ft20):
        assert saturation_bound(ft20) == pytest.approx(
            min(cut_throughput_bound(ft20), occupancy_throughput_bound(ft20))
        )


class TestWireAccounting:
    def test_mesh_link_histogram(self, mesh20):
        h = link_length_histogram(mesh20)
        assert h[(1, 0)] == 31  # all mesh links are unit-length

    def test_total_wire_mesh(self, mesh20):
        assert total_wire_length(mesh20) == pytest.approx(62.0)  # 31 duplex * 2

    def test_folded_torus_has_length2(self, ft20):
        h = link_length_histogram(ft20)
        assert (2, 0) in h


class TestSummarize:
    def test_row_fields(self, ft20):
        s = summarize(ft20)
        assert s.name == "FoldedTorus"
        assert s.as_row()[1:] == (40, 4, 2.32, 10, round(s.sparsest_cut_value, 4))


def _random_connected(data, max_n=8):
    rows = data.draw(st.integers(2, 3))
    cols = data.draw(st.integers(2, 3))
    lay = Layout(rows=rows, cols=cols)
    n = lay.n
    # ring backbone + random extras guarantees strong connectivity
    links = {(i, (i + 1) % n) for i in range(n)} | {((i + 1) % n, i) for i in range(n)}
    extra = data.draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=10,
        )
    )
    return Topology(lay, list(links | extra))


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_property_avg_hops_at_least_one(data):
    t = _random_connected(data)
    assert average_hops(t) >= 1.0
    assert diameter(t) >= 1


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_property_adding_link_never_hurts_hops(data):
    t = _random_connected(data)
    before = average_hops(t)
    absent = [
        (i, j)
        for i in range(t.n)
        for j in range(t.n)
        if i != j and not t.has_link(i, j)
    ]
    if absent:
        t2 = t.with_link(*absent[0])
        assert average_hops(t2) <= before + 1e-12


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_property_sparsest_cut_le_scaled_bisection(data):
    """sparsest <= bisection/(n/2)^2 since bisections are a subset of cuts."""
    t = _random_connected(data)
    if t.n % 2:
        return
    sc = sparsest_cut(t, exact=True).value
    bb = bisection_bandwidth(t, exact=True)
    assert sc <= bb / (t.n / 2) ** 2 + 1e-12
