"""Tests for big-M linearization helpers (the Table I C4/C5 encodings)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp import (
    Model,
    add_and_equality,
    add_max_equality,
    add_max_upper_bound,
    add_min_equality,
    affine_if_then,
    quicksum,
)


class TestAffineIfThen:
    def test_then_branch(self):
        m = Model()
        b = m.add_binary("b")
        m.add_constr(b >= 1)
        o = affine_if_then(b, then_value=1.0, else_value=99.0)
        m.set_objective(o)
        res = m.solve()
        assert res.value(o) == pytest.approx(1.0)

    def test_else_branch(self):
        m = Model()
        b = m.add_binary("b")
        m.add_constr(b <= 0)
        o = affine_if_then(b, then_value=1.0, else_value=99.0)
        m.set_objective(o)
        res = m.solve()
        assert res.value(o) == pytest.approx(99.0)

    def test_rejects_non_binary(self):
        m = Model()
        x = m.add_integer("x", ub=3)
        with pytest.raises(ValueError):
            affine_if_then(x, 1.0, 2.0)


class TestMinEquality:
    @pytest.mark.parametrize("fixed", [(3, 7, 5), (9, 2, 4), (6, 6, 6)])
    def test_min_of_fixed_values(self, fixed):
        m = Model()
        t = m.add_var("t", lb=0, ub=100)
        terms = []
        for k, val in enumerate(fixed):
            v = m.add_integer(f"v{k}", lb=val, ub=val)
            terms.append(v)
        add_min_equality(m, t, terms, big_m=200)
        # objective pulls t UP, so only the equality encoding holds it down
        m.set_objective(-t)
        res = m.solve()
        assert res.value(t) == pytest.approx(min(fixed))

    def test_min_holds_under_minimization_too(self):
        m = Model()
        t = m.add_var("t", lb=0, ub=100)
        a = m.add_integer("a", lb=4, ub=4)
        b = m.add_integer("b", lb=9, ub=9)
        add_min_equality(m, t, [a, b], big_m=200)
        m.set_objective(t)
        res = m.solve()
        assert res.value(t) == pytest.approx(4.0)

    def test_empty_terms_raises(self):
        m = Model()
        t = m.add_var("t")
        with pytest.raises(ValueError):
            add_min_equality(m, t, [], big_m=10)

    @settings(max_examples=25, deadline=None)
    @given(vals=st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=5))
    def test_property_min_equality(self, vals):
        m = Model()
        t = m.add_var("t", lb=0, ub=100)
        terms = [m.add_integer(f"v{k}", lb=v, ub=v) for k, v in enumerate(vals)]
        add_min_equality(m, t, terms, big_m=200)
        m.set_objective(-t)
        res = m.solve()
        assert res.value(t) == pytest.approx(min(vals))


class TestMaxEquality:
    def test_max_of_fixed_values(self):
        m = Model()
        t = m.add_var("t", lb=0, ub=100)
        a = m.add_integer("a", lb=3, ub=3)
        b = m.add_integer("b", lb=8, ub=8)
        add_max_equality(m, t, [a, b], big_m=200)
        m.set_objective(t)  # pulls t down; equality encoding holds it up
        res = m.solve()
        assert res.value(t) == pytest.approx(8.0)

    def test_max_upper_bound_minmax(self):
        """The MCLB O1 idiom: minimize t subject to t >= each load."""
        m = Model()
        t = m.add_var("t", lb=0, ub=100)
        loads = [m.add_integer(f"l{k}", lb=v, ub=v) for k, v in enumerate((2, 11, 7))]
        add_max_upper_bound(m, t, loads)
        m.set_objective(t)
        res = m.solve()
        assert res.value(t) == pytest.approx(11.0)


class TestAndEquality:
    @pytest.mark.parametrize(
        "bits,expect", [((1, 1, 1), 1), ((1, 0, 1), 0), ((0, 0, 0), 0)]
    )
    def test_and_of_fixed_bits(self, bits, expect):
        m = Model()
        t = m.add_binary("t")
        ops = []
        for k, bit in enumerate(bits):
            b = m.add_binary(f"b{k}")
            m.add_constr(b == bit)
            ops.append(b)
        add_and_equality(m, t, ops)
        # push t to the wrong value; constraints must pin the right one
        m.set_objective(-t if expect == 0 else t)
        res = m.solve()
        assert res.value(t) == pytest.approx(expect)
