"""Design-space pipeline: differential identity, portfolio, caching,
annealing invariants, and layout generalization."""

import json
import os

import pytest

from repro.core import NetSmithConfig, anneal_topology, generate_latop
from repro.core.pregenerated import netsmith_topology
from repro.core.scop import generate_scop
from repro.pipeline import (
    DesignPoint,
    design_grid,
    explore,
    generate_point,
    generate_points,
    route_topologies,
)
from repro.runner import Runner
from repro.topology import Layout, parse_layout, standard_layout

SA_STEPS = 250  # enough to rewire meaningfully, cheap enough for CI


def links_of(topo):
    return sorted(topo.directed_links)


# ---------------------------------------------------------------------------
# differential: staged generation == direct calls
# ---------------------------------------------------------------------------

def test_pipeline_sa_bit_identical_to_direct_anneal():
    # The frozen 4x5 grid, exercised live (use_frozen off).
    point = DesignPoint(
        rows=4, cols=5, link_class="medium", objective="latency",
        strategy="sa", sa_steps=SA_STEPS, seed=5, use_frozen=False,
    )
    direct = anneal_topology(
        NetSmithConfig(layout=Layout(4, 5), link_class="medium"),
        objective="latency", steps=SA_STEPS, seed=5,
    )
    staged = generate_point(point)
    assert links_of(staged.topology) == links_of(direct.topology)
    assert staged.objective == direct.objective
    assert staged.status == "heuristic"


def test_pipeline_milp_bit_identical_to_direct_latop():
    point = DesignPoint(
        rows=3, cols=3, link_class="medium", objective="latency",
        strategy="milp", time_limit=30.0, diameter_bound=4, use_frozen=False,
    )
    direct = generate_latop(
        NetSmithConfig(layout=Layout(3, 3), link_class="medium", diameter_bound=4),
        time_limit=30.0,
    )
    staged = generate_point(point)
    assert links_of(staged.topology) == links_of(direct.topology)
    assert staged.objective == direct.objective


@pytest.mark.slow
def test_pipeline_scop_bit_identical_to_direct_scop():
    cfg = NetSmithConfig(layout=Layout(3, 3), link_class="small", diameter_bound=4)
    direct, _diag = generate_scop(cfg, time_limit=20.0, max_iterations=4)
    point = DesignPoint(
        rows=3, cols=3, link_class="small", objective="sparsest_cut",
        strategy="milp", time_limit=20.0, diameter_bound=4,
        max_iterations=4, use_frozen=False,
    )
    staged = generate_point(point)
    assert links_of(staged.topology) == links_of(direct.topology)


def test_pipeline_frozen_matches_registry_4x5():
    # The frozen 4x5 configurations are served verbatim through the
    # pipeline, identical to the direct netsmith_topology call.
    for cls in ("small", "medium", "large"):
        point = DesignPoint(
            rows=4, cols=5, link_class=cls, objective="latency",
            strategy="milp",
        )
        staged = generate_point(point)
        assert staged.status == "frozen"
        assert links_of(staged.topology) == links_of(
            netsmith_topology("latop", cls, 20)
        )


def test_netsmith_topology_falls_back_through_pipeline():
    # Unregistered configuration: the live fallback runs the pipeline's
    # generation stage (SA strategy keeps it cheap) on a generalized grid.
    topo = netsmith_topology("latop", "medium", 12, strategy="sa")
    assert topo.n == 12
    assert topo.name == "NS-LatOp-medium"
    topo.check(radix=4, link_class="medium")


# ---------------------------------------------------------------------------
# portfolio semantics
# ---------------------------------------------------------------------------

def test_portfolio_beats_or_matches_both_halves():
    # Default backend (HiGHS): SA and the exact solve run as
    # complementary strategies; best-wins merge takes the better.
    common = dict(
        rows=3, cols=3, link_class="medium", objective="latency",
        time_limit=30.0, diameter_bound=4, sa_steps=SA_STEPS, use_frozen=False,
    )
    sa = generate_point(DesignPoint(strategy="sa", **common))
    milp = generate_point(DesignPoint(strategy="milp", **common))
    merged = generate_point(DesignPoint(strategy="portfolio", **common))
    assert merged.objective <= min(sa.objective, milp.objective)
    # best-wins: the merged result is one of the two halves
    assert links_of(merged.topology) in (
        links_of(sa.topology), links_of(milp.topology),
    )


def test_portfolio_seeds_bnb_initial_incumbent(monkeypatch):
    # With the bnb backend, the warm-started exact half must run
    # solve_bnb with the SA objective as its initial incumbent (the
    # MIP-start hook), and the merge can never lose to the SA half.
    seen = {}
    import repro.milp.branch_and_bound as bnb

    orig = bnb.solve_bnb

    def spy(model, **kw):
        seen["initial_incumbent"] = kw.get("initial_incumbent")
        return orig(model, **kw)

    point = DesignPoint(
        rows=2, cols=3, link_class="medium", objective="latency",
        strategy="portfolio", backend="bnb", time_limit=10.0,
        diameter_bound=3, sa_steps=SA_STEPS, use_frozen=False,
    )
    sa = generate_point(DesignPoint(**{**point.as_dict(), "strategy": "sa"}))
    # Model.solve imports solve_bnb from the module at call time, so the
    # monkeypatch intercepts the portfolio's exact half.
    monkeypatch.setattr(bnb, "solve_bnb", spy)
    merged = generate_point(point)
    assert seen.get("initial_incumbent") == sa.objective
    assert merged.objective <= sa.objective


# ---------------------------------------------------------------------------
# caching / resumability
# ---------------------------------------------------------------------------

def test_generation_and_routing_tasks_cache(tmp_path):
    point = DesignPoint(
        rows=2, cols=3, link_class="medium", objective="latency",
        strategy="sa", sa_steps=100, use_frozen=False,
    )
    with Runner(parallel=1, cache_dir=str(tmp_path)) as first:
        gen1 = generate_points([point], runner=first)[0]
        t1 = route_topologies([gen1.topology], runner=first)[0]
        assert first.stats.misses == 2 and first.stats.puts == 2

    with Runner(parallel=1, cache_dir=str(tmp_path)) as second:
        gen2 = generate_points([point], runner=second)[0]
        t2 = route_topologies([gen2.topology], runner=second)[0]
        assert second.stats.misses == 0 and second.stats.hits == 2
    assert links_of(gen1.topology) == links_of(gen2.topology)
    assert t1.next_hop == t2.next_hop
    assert t1.flow_vc == t2.flow_vc


def test_explore_rerun_is_all_cache_hits(tmp_path):
    points = design_grid(
        ["2x3", "3x3"], link_classes=("small",), objectives=("latency",),
        strategies=("sa",), sa_steps=100, use_frozen=False,
    )
    art = str(tmp_path / "artifacts")
    kw = dict(out_dir=art, eval_warmup=60, eval_measure=200, eval_iters=3)
    with Runner(parallel=1, cache_dir=str(tmp_path / "cache")) as first:
        res1 = explore(points, runner=first, **kw)
        assert first.stats.misses > 0
    with Runner(parallel=1, cache_dir=str(tmp_path / "cache")) as second:
        res2 = explore(points, runner=second, **kw)
        assert second.stats.misses == 0 and second.stats.hits > 0

    assert [r.name for r in res1.ranked()] == [r.name for r in res2.ranked()]
    assert [r.saturation_ns for r in res1.rows] == [
        r.saturation_ns for r in res2.rows
    ]
    # artifacts: one JSON per point plus the per-config and latest rankings
    files = sorted(os.listdir(art))
    assert "ranking.json" in files and len(files) == len(points) + 2
    point_files = [f for f in files if not f.startswith("ranking")]
    doc = json.load(open(os.path.join(art, point_files[0])))
    assert {
        "point", "evaluation_config", "topology", "generation", "metrics"
    } <= set(doc)


def test_sa_shuffle_points_are_labeled_shufopt():
    point = DesignPoint(
        rows=2, cols=3, link_class="medium", objective="shuffle",
        strategy="sa", sa_steps=80, use_frozen=False,
    )
    result = generate_point(point)
    assert result.topology.name == "NS-SA-ShufOpt-medium"


def test_generation_key_ignores_fields_the_strategy_never_reads():
    from repro.runner import tasks as runner_tasks, task_key

    def key(p):
        return task_key("generation", runner_tasks.generation_payload(p))

    base = dict(
        rows=3, cols=3, link_class="small", objective="latency",
        sa_steps=200, use_frozen=False,
    )
    # SA units: exact-solve budget/backend are irrelevant
    assert key(DesignPoint(strategy="sa", time_limit=5.0, **base)) == key(
        DesignPoint(strategy="sa", time_limit=300.0, backend="bnb", **base)
    )
    # MILP units: sa_steps and the RNG seed are irrelevant
    m1 = DesignPoint(strategy="milp", seed=0, **base)
    m2 = DesignPoint(strategy="milp", seed=3, **{**base, "sa_steps": 999})
    assert key(m1) == key(m2)
    # ...but consumed fields still separate keys
    assert key(DesignPoint(strategy="sa", **base)) != key(
        DesignPoint(strategy="sa", **{**base, "sa_steps": 999})
    )


def test_routing_cache_shared_across_topology_names(tmp_path):
    from repro.topology import Topology

    layout = Layout(2, 3)
    edges = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)]
    a = Topology.from_undirected(layout, edges, name="alpha", link_class="small")
    b = Topology.from_undirected(layout, edges, name="beta", link_class="small")
    with Runner(parallel=1, cache_dir=str(tmp_path)) as runner:
        # one batch: identical link sets dedupe to a single compilation
        ta, tb = route_topologies([a, b], policy="ndbt", runner=runner)
        assert runner.stats.puts == 1
        # a later call is a pure cache hit
        tc = route_topologies([a], policy="ndbt", runner=runner)[0]
        assert runner.stats.puts == 1 and runner.stats.hits == 1
    # ...while each table keeps its caller's identity
    assert ta.topology.name == "alpha" and tb.topology.name == "beta"
    assert tc.topology.name == "alpha"
    assert ta.next_hop == tb.next_hop


def test_record_progress_bnb_survives_unreachable_diameter_seed():
    from repro.core.progress import record_progress_bnb

    # diameter 1 is unreachable at radix 4 on 12 routers: the seeding
    # anneal fails, and the recording must fall back to unseeded.
    cfg = NetSmithConfig(layout=Layout(3, 4), link_class="medium", diameter_bound=1)
    curve = record_progress_bnb(cfg, time_limit=2.0, label="impossible")
    assert curve.label == "impossible"  # completed without raising


def test_generation_failure_surfaces_solver_error():
    # A hopeless budget: the MILP finds no incumbent, and the raised
    # error must carry the solver's message, not just "failed".
    point = DesignPoint(
        rows=4, cols=5, link_class="medium", objective="latency",
        strategy="milp", time_limit=0.01, use_frozen=False,
    )
    with pytest.raises(RuntimeError) as exc:
        generate_points([point])
    assert point.label() in str(exc.value)
    assert "RuntimeError" in str(exc.value) or "solve failed" in str(exc.value)


def test_explore_skips_infeasible_scop_points():
    points = design_grid(
        ["6x6"], objectives=("sparsest_cut",), strategies=("sa",),
        sa_steps=50, use_frozen=False,
    )
    res = explore(points, eval_warmup=40, eval_measure=100, eval_iters=2)
    assert res.rows == []
    assert len(res.skipped) == 1
    assert "sparsest-cut" in res.skipped[0][1]


# ---------------------------------------------------------------------------
# annealing invariants (property-style across seeds)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(5))
def test_anneal_preserves_radix_and_strong_connectivity(seed):
    cfg = NetSmithConfig(layout=Layout(4, 5), link_class="medium", radix=4)
    result = anneal_topology(cfg, objective="latency", steps=150, seed=seed)
    topo = result.topology
    # check() raises on radix / link-class / connectivity violations
    topo.check(radix=4, link_class="medium")
    assert topo.is_connected()
    assert int(topo.out_degree().max()) <= 4
    assert int(topo.in_degree().max()) <= 4


@pytest.mark.parametrize("seed", (0, 1))
def test_anneal_symmetric_mode_keeps_radix(seed):
    cfg = NetSmithConfig(
        layout=Layout(3, 4), link_class="medium", radix=4, symmetric=True
    )
    result = anneal_topology(cfg, objective="latency", steps=120, seed=seed)
    result.topology.check(radix=4, link_class="medium")


def test_anneal_from_initial_preserves_invariants():
    cfg = NetSmithConfig(layout=Layout(3, 4), link_class="small", radix=4)
    first = anneal_topology(cfg, objective="latency", steps=80, seed=0)
    second = anneal_topology(
        cfg, objective="latency", steps=80, seed=1, initial=first.topology
    )
    second.topology.check(radix=4, link_class="small")


def test_anneal_honors_explicit_diameter_bound():
    # SA must not silently ship a bound-violating topology: the bound
    # enters the cost and the final result is checked.
    cfg = NetSmithConfig(
        layout=Layout(4, 5), link_class="medium", radix=4, diameter_bound=5
    )
    result = anneal_topology(cfg, objective="latency", steps=400, seed=0)
    d = result.topology.hop_matrix()
    assert float(d.max()) <= 5


def test_anneal_accepts_initial_with_out_of_class_links():
    # An initial topology generated under a longer link class carries
    # links outside the small class's valid set; the anneal must run
    # (moves can drop them), not crash indexing the candidate mask.
    layout = Layout(3, 4)
    large = anneal_topology(
        NetSmithConfig(layout=layout, link_class="large", radix=4),
        objective="latency", steps=60, seed=0,
    )
    cfg = NetSmithConfig(layout=layout, link_class="small", radix=4)
    try:
        result = anneal_topology(
            cfg, objective="latency", steps=200, seed=1, initial=large.topology
        )
    except ValueError as exc:
        # acceptable outcome: the final check names the surviving
        # out-of-class links, as the pre-incremental implementation did
        assert "exceeding class" in str(exc)
    else:
        result.topology.check(radix=4, link_class="small")


# ---------------------------------------------------------------------------
# generalized layouts / design grid
# ---------------------------------------------------------------------------

def test_standard_layout_generalizes_beyond_presets():
    assert (standard_layout(20).rows, standard_layout(20).cols) == (4, 5)
    assert (standard_layout(36).rows, standard_layout(36).cols) == (6, 6)
    assert (standard_layout(12).rows, standard_layout(12).cols) == (3, 4)
    assert (standard_layout(7).rows, standard_layout(7).cols) == (1, 7)
    with pytest.raises(ValueError):
        standard_layout(1)


def test_parse_layout_and_design_grid():
    lay = parse_layout("6x6")
    assert (lay.rows, lay.cols) == (6, 6)
    with pytest.raises(ValueError):
        parse_layout("six-by-six")
    points = design_grid(
        ["4x5", (6, 6)], link_classes=("small", "medium"),
        objectives=("latency",), strategies=("sa",), seeds=(0, 1),
    )
    assert len(points) == 8
    assert len({p.label() for p in points}) == 8


def test_design_point_codec_roundtrip():
    point = DesignPoint(
        rows=6, cols=6, link_class="large", objective="shuffle",
        strategy="portfolio", radix=3, diameter_bound=6, seed=2,
        time_limit=12.5, sa_steps=321, backend="bnb", use_frozen=False,
    )
    assert DesignPoint.from_dict(point.as_dict()) == point


def test_design_point_validation():
    with pytest.raises(ValueError):
        DesignPoint(rows=4, cols=5, objective="bandwidth").validate()
    with pytest.raises(ValueError):
        DesignPoint(rows=4, cols=5, strategy="genetic").validate()
    with pytest.raises(ValueError):
        DesignPoint(rows=6, cols=6, objective="sparsest_cut").validate()
    with pytest.raises(ValueError):
        DesignPoint(rows=4, cols=5, radix=0).validate()
