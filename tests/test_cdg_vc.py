"""Tests for CDG construction and deadlock-free VC assignment."""

import networkx as nx
import pytest

from repro.routing import (
    assign_vcs,
    build_cdg,
    build_routing_table,
    find_cycle,
    is_acyclic,
    ndbt_route,
    path_dependencies,
    paths_are_deadlock_free,
    single_shortest_paths,
    validate_assignment,
)
from repro.routing.paths import PathSet
from repro.topology import LAYOUT_4X5, Layout, Topology, folded_torus, mesh


class TestCDG:
    def test_path_dependencies(self):
        deps = path_dependencies((0, 1, 2, 3))
        assert deps == [(((0, 1)), ((1, 2))), (((1, 2)), ((2, 3)))]

    def test_single_hop_no_deps(self):
        assert path_dependencies((0, 1)) == []

    def test_build_cdg_nodes_are_channels(self):
        g = build_cdg([(0, 1, 2)])
        assert g.has_edge((0, 1), (1, 2))

    def test_cycle_detected_in_ring_routes(self):
        # routes that chase each other around a 4-ring
        paths = [(0, 1, 2), (1, 2, 3), (2, 3, 0), (3, 0, 1)]
        g = build_cdg(paths)
        assert not is_acyclic(g)
        cyc = find_cycle(g)
        assert cyc is not None and len(cyc) >= 3

    def test_acyclic_routes(self):
        paths = [(0, 1, 2), (0, 1, 3)]
        assert paths_are_deadlock_free(paths)

    def test_find_cycle_none_for_dag(self):
        g = build_cdg([(0, 1, 2)])
        assert find_cycle(g) is None


class TestVCAssignment:
    def test_ring_needs_two_vcs(self):
        lay = Layout(rows=1, cols=4)
        t = Topology(lay, [(0, 1), (1, 2), (2, 3), (3, 0)])
        routes = single_shortest_paths(t, seed=0)
        vca = assign_vcs(routes, seed=0)
        assert vca.num_vcs >= 2
        validate_assignment(routes, vca)

    def test_folded_torus_four_vcs(self):
        """Paper IV-A: 4 VCs suffice for all 20-router configurations,
        with Folded Torus binding the minimum at 4."""
        ft = folded_torus(LAYOUT_4X5)
        routes = ndbt_route(ft, seed=0)
        vca = assign_vcs(routes, seed=0)
        assert 2 <= vca.num_vcs <= 4
        validate_assignment(routes, vca)

    def test_mesh_within_paper_vc_budget(self):
        """Paper IV-A: 4 VCs suffice for every 20-router configuration.
        Mesh monotone paths still mix turn directions, so layers > 1."""
        m = mesh(LAYOUT_4X5)
        routes = ndbt_route(m, seed=0)
        vca = assign_vcs(routes, seed=0)
        assert vca.num_vcs <= 4
        validate_assignment(routes, vca)

    def test_every_layer_acyclic(self):
        ft = folded_torus(LAYOUT_4X5)
        routes = ndbt_route(ft, seed=1)
        vca = assign_vcs(routes, seed=1)
        for layer in vca.layers:
            assert is_acyclic(build_cdg(layer))

    def test_layer_weights_balanced(self):
        ft = folded_torus(LAYOUT_4X5)
        routes = ndbt_route(ft, seed=0)
        vca = assign_vcs(routes, seed=0)
        w = vca.layer_weights()
        if len(w) > 1:
            assert max(w) - min(w) <= max(w)  # sanity: no empty layers
            assert min(w) > 0

    def test_multi_path_input_rejected(self):
        m = mesh(LAYOUT_4X5)
        from repro.routing import enumerate_shortest_paths

        full = enumerate_shortest_paths(m)
        with pytest.raises(ValueError):
            assign_vcs(full)

    def test_max_vcs_enforced(self):
        lay = Layout(rows=1, cols=4)
        t = Topology(lay, [(0, 1), (1, 2), (2, 3), (3, 0)])
        routes = single_shortest_paths(t, seed=0)
        with pytest.raises(RuntimeError):
            assign_vcs(routes, max_vcs=1)


class TestRoutingTable:
    def test_table_routes_all_flows(self):
        ft = folded_torus(LAYOUT_4X5)
        routes = ndbt_route(ft, seed=0)
        vca = assign_vcs(routes, seed=0)
        table = build_routing_table(routes, vca)
        table.validate()
        assert table.num_vcs == vca.num_vcs

    def test_route_of_matches_source_paths(self):
        ft = folded_torus(LAYOUT_4X5)
        routes = ndbt_route(ft, seed=0)
        table = build_routing_table(routes)
        for (s, d), plist in routes.paths.items():
            assert table.route_of(s, d) == plist[0]

    def test_vc_consistency(self):
        ft = folded_torus(LAYOUT_4X5)
        routes = ndbt_route(ft, seed=0)
        vca = assign_vcs(routes, seed=0)
        table = build_routing_table(routes, vca)
        for (s, d), vc in vca.assignment.items():
            assert table.vc(s, d) == vc

    def test_default_single_vc(self):
        m = mesh(LAYOUT_4X5)
        routes = ndbt_route(m, seed=0)
        table = build_routing_table(routes)
        assert table.num_vcs == 1
        assert table.vc(0, 1) == 0
