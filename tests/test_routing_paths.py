"""Tests for shortest-path enumeration and NDBT routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    doubles_back_horizontally,
    enumerate_shortest_paths,
    ndbt_paths,
    ndbt_route,
    single_shortest_paths,
)
from repro.topology import LAYOUT_4X5, Layout, Topology, folded_torus, mesh


@pytest.fixture(scope="module")
def mesh20():
    return mesh(LAYOUT_4X5)


class TestEnumeration:
    def test_all_pairs_present(self, mesh20):
        ps = enumerate_shortest_paths(mesh20)
        assert len(ps.paths) == 20 * 19
        ps.validate()

    def test_path_lengths_match_distance(self, mesh20):
        ps = enumerate_shortest_paths(mesh20)
        d = mesh20.hop_matrix()
        for (s, t), plist in ps.paths.items():
            for p in plist:
                assert len(p) - 1 == int(d[s, t])

    def test_mesh_path_count_combinatorial(self, mesh20):
        """#shortest paths in a mesh = C(dx+dy, dx)."""
        ps = enumerate_shortest_paths(mesh20)
        # (0,0) -> (2,1): C(3,1) = 3 paths
        assert len(ps[(0, LAYOUT_4X5.router_at(2, 1))]) == 3
        # (0,0) -> (1,1): 2 paths
        assert len(ps[(0, LAYOUT_4X5.router_at(1, 1))]) == 2

    def test_max_paths_cap(self, mesh20):
        ps = enumerate_shortest_paths(mesh20, max_paths_per_pair=2)
        assert all(len(v) <= 2 for v in ps.paths.values())

    def test_disconnected_raises(self):
        lay = Layout(rows=1, cols=3)
        t = Topology(lay, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            enumerate_shortest_paths(t)

    def test_links_of(self, mesh20):
        ps = enumerate_shortest_paths(mesh20)
        p = ps[(0, 2)][0]
        links = ps.links_of(p)
        assert len(links) == len(p) - 1
        assert links[0][0] == 0 and links[-1][1] == 2

    def test_single_paths_deterministic(self, mesh20):
        a = single_shortest_paths(mesh20, seed=7)
        b = single_shortest_paths(mesh20, seed=7)
        assert a.paths == b.paths
        assert all(len(v) == 1 for v in a.paths.values())

    def test_flat_listing(self, mesh20):
        ps = enumerate_shortest_paths(mesh20, max_paths_per_pair=4)
        flat = ps.flat()
        assert len(flat) == ps.total_paths


class TestNDBT:
    def test_double_back_detection(self, mesh20):
        # east then west: doubles back
        p = (0, 1, 0)
        assert doubles_back_horizontally(mesh20, p)
        # monotone east: fine
        assert not doubles_back_horizontally(mesh20, (0, 1, 2))
        # vertical moves don't count
        assert not doubles_back_horizontally(mesh20, (0, 5, 10))

    def test_ndbt_filters_mesh_keeps_all(self, mesh20):
        """Mesh shortest paths are monotone: NDBT removes nothing."""
        full = enumerate_shortest_paths(mesh20)
        nd = ndbt_paths(mesh20)
        assert nd.total_paths == full.total_paths

    def test_ndbt_filters_folded_torus(self):
        ft = folded_torus(LAYOUT_4X5)
        full = enumerate_shortest_paths(ft)
        nd = ndbt_paths(ft)
        assert nd.total_paths <= full.total_paths
        nd.validate()

    def test_ndbt_route_single_and_valid(self):
        ft = folded_torus(LAYOUT_4X5)
        r = ndbt_route(ft, seed=3)
        assert all(len(v) == 1 for v in r.paths.values())
        r.validate()

    def test_ndbt_fallback_when_all_double_back(self):
        """A directed ring forces double-backs; the fallback must keep
        the network routable."""
        lay = Layout(rows=1, cols=4)
        t = Topology(lay, [(0, 1), (1, 2), (2, 3), (3, 0)])
        nd = ndbt_paths(t)
        assert all(len(v) >= 1 for v in nd.paths.values())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_route_seed_determinism(seed):
    ft = folded_torus(LAYOUT_4X5)
    assert ndbt_route(ft, seed=seed).paths == ndbt_route(ft, seed=seed).paths
