"""Tests for the DSENT-substitute power/area model (Fig. 9 behaviours)."""

import pytest

from repro.power import INTERPOSER_AREA_MM2, analyze, compare_to_mesh
from repro.topology import LAYOUT_4X5, expert_topology, folded_torus, mesh


@pytest.fixture(scope="module")
def mesh20():
    return mesh(LAYOUT_4X5)


@pytest.fixture(scope="module")
def ft20():
    return folded_torus(LAYOUT_4X5)


class TestPowerModel:
    def test_breakdown_positive(self, mesh20):
        pa = analyze(mesh20)
        assert pa.static_power_mw > 0
        assert pa.dynamic_power_mw > 0
        assert pa.total_power_mw == pytest.approx(
            pa.static_power_mw + pa.dynamic_power_mw
        )

    def test_leakage_flat_across_same_router_count(self, mesh20, ft20):
        """Paper: leakage 'more or less the same' — same 20 routers;
        only the wire-repeater share differs."""
        a = analyze(mesh20)
        b = analyze(ft20)
        assert b.static_power_mw == pytest.approx(a.static_power_mw, rel=0.35)

    def test_more_wire_more_dynamic_at_same_clock(self, mesh20, ft20):
        a = analyze(mesh20, clock_ghz=3.0)
        b = analyze(ft20, clock_ghz=3.0)
        assert b.dynamic_power_mw > a.dynamic_power_mw

    def test_slower_clock_cuts_dynamic(self, ft20):
        fast = analyze(ft20, clock_ghz=3.6)
        slow = analyze(ft20, clock_ghz=2.7)
        assert slow.dynamic_power_mw == pytest.approx(
            fast.dynamic_power_mw * 2.7 / 3.6
        )
        assert slow.static_power_mw == fast.static_power_mw

    def test_activity_scales_dynamic_only(self, ft20):
        lo = analyze(ft20, activity=0.1)
        hi = analyze(ft20, activity=0.4)
        assert hi.dynamic_power_mw == pytest.approx(4 * lo.dynamic_power_mw)
        assert hi.static_power_mw == lo.static_power_mw


class TestAreaModel:
    def test_wire_area_dominates(self, mesh20):
        """Paper: 'total wire area is the dominant fraction'."""
        pa = analyze(mesh20)
        assert pa.wire_area_mm2 > pa.router_area_mm2

    def test_interposer_fraction_small(self, ft20):
        """Paper: NetSmith NoIs are under 3% of interposer area."""
        assert analyze(ft20).interposer_area_fraction < 0.03

    def test_radix_quadratic_router_area(self, mesh20):
        a4 = analyze(mesh20, radix=4)
        a8 = analyze(mesh20, radix=8)
        assert a8.router_area_mm2 == pytest.approx(4 * a4.router_area_mm2)


class TestNormalization:
    def test_self_normalization_is_unity(self, mesh20):
        pa = analyze(mesh20)
        norm = pa.normalized_to(pa)
        assert all(v == pytest.approx(1.0) for v in norm.values())

    def test_compare_to_mesh_keys(self, mesh20, ft20):
        out = compare_to_mesh([ft20], mesh20)
        assert "FoldedTorus" in out
        assert set(out["FoldedTorus"]) == {
            "static_power", "dynamic_power", "total_power",
            "router_area", "wire_area", "total_area",
        }

    def test_longer_links_cost_area(self, mesh20, ft20):
        out = compare_to_mesh([ft20], mesh20)
        assert out["FoldedTorus"]["wire_area"] > 1.0
