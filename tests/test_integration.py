"""End-to-end integration tests: the full NetSmith pipeline.

Each test exercises multiple subsystems together, the way the examples
and benchmarks do: generate -> validate -> route -> VC-assign -> simulate
-> analyze, on instances small enough to be fast but large enough that
the coupling is real.
"""

import math

import numpy as np
import pytest

from repro.core import (
    NetSmithConfig,
    anneal_topology,
    generate_latop,
    mclb_route,
    netsmith_topology,
)
from repro.experiments import MCLB, NDBT, routed_table
from repro.fullsys import run_workload, workload
from repro.power import analyze
from repro.routing import (
    assign_vcs,
    build_routing_table,
    channel_loads,
    enumerate_shortest_paths,
    ndbt_route,
    paths_are_deadlock_free,
    validate_assignment,
)
from repro.sim import (
    InstrumentedSimulator,
    find_saturation,
    measure_activity,
    run_point,
    uniform_random,
)
from repro.topology import (
    LAYOUT_4X5,
    Layout,
    average_hops,
    expert_topology,
    loads,
    dumps,
    sparsest_cut,
)


class TestGenerateRouteSimulate:
    """The quickstart pipeline on a 2x4 substrate."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=2, cols=4), link_class="medium", radix=3,
            diameter_bound=4,
        )
        gen = generate_latop(cfg, time_limit=45)
        routed = mclb_route(gen.topology, time_limit=30)
        vca = assign_vcs(routed.routes, seed=0)
        table = build_routing_table(routed.routes, vca)
        return cfg, gen, routed, vca, table

    def test_generated_is_valid(self, pipeline):
        cfg, gen, *_ = pipeline
        gen.topology.check(radix=cfg.radix, link_class=cfg.link_class)

    def test_routes_respect_topology(self, pipeline):
        *_, routed, vca, table = pipeline[1:], None, None  # readability
        cfg, gen, routed, vca, table = pipeline
        routed.routes.validate()
        table.validate()

    def test_vc_layers_deadlock_free(self, pipeline):
        cfg, gen, routed, vca, table = pipeline
        validate_assignment(routed.routes, vca)
        for layer in vca.layers:
            assert paths_are_deadlock_free(layer)

    def test_simulates_without_deadlock(self, pipeline):
        cfg, gen, routed, vca, table = pipeline
        sim = InstrumentedSimulator(
            table, uniform_random(8), 0.1, watchdog_cycles=3000, seed=0
        )
        stats = sim.run(300, 900)
        assert stats.ejected_packets > 0
        assert math.isfinite(stats.avg_latency_cycles)

    def test_mclb_load_matches_sim_bottleneck(self, pipeline):
        """The channel MCLB predicts as most loaded should be among the
        hottest simulated channels near saturation."""
        cfg, gen, routed, vca, table = pipeline
        analysis = channel_loads(routed.routes)
        predicted = {
            ch for ch, l in analysis.loads.items() if l == analysis.max_load
        }
        sim = InstrumentedSimulator(table, uniform_random(8), 0.25, seed=0)
        sim.run(300, 1200)
        hottest = {ch for ch, _ in sim.report().hottest_channels(8)}
        assert predicted & hottest or analysis.max_load <= 2


class TestFrozenArtifactsPipeline:
    """Frozen NetSmith designs must survive the whole toolchain."""

    @pytest.mark.parametrize("cls", ["small", "medium", "large"])
    def test_latop_designs_end_to_end(self, cls):
        topo = netsmith_topology("latop", cls, 20, allow_generate=False)
        topo.check(radix=4, link_class=cls)
        table = routed_table(topo, MCLB, use_cache=False)
        table.validate()
        stats = run_point(table, uniform_random(20), 0.05, warmup=200, measure=600)
        assert stats.ejected_packets > 0

    def test_latop_beats_mesh_everywhere(self):
        mesh_t = expert_topology("Mesh", 20)
        for cls in ("small", "medium", "large"):
            ns = netsmith_topology("latop", cls, 20, allow_generate=False)
            assert average_hops(ns) < average_hops(mesh_t)
            assert sparsest_cut(ns).value > sparsest_cut(mesh_t).value

    def test_serialization_roundtrip_through_pipeline(self):
        topo = netsmith_topology("latop", "medium", 20, allow_generate=False)
        clone = loads(dumps(topo))
        assert np.array_equal(clone.adj, topo.adj)
        # the clone routes identically
        r1 = ndbt_route(topo, seed=3)
        r2 = ndbt_route(clone, seed=3)
        assert r1.paths == r2.paths


class TestSimToPowerHandoff:
    def test_activity_feeds_power_model(self):
        topo = expert_topology("FoldedTorus", 20)
        table = routed_table(topo, NDBT)
        act = measure_activity(table, uniform_random(20), 0.1,
                               warmup=200, measure=600)
        pa = analyze(topo, activity=act)
        assert pa.dynamic_power_mw > 0
        # higher load -> more activity -> more dynamic power
        act_hi = measure_activity(table, uniform_random(20), 0.16,
                                  warmup=200, measure=600)
        assert analyze(topo, activity=act_hi).dynamic_power_mw > pa.dynamic_power_mw


class TestFullSystemPipeline:
    def test_workload_on_generated_topology(self):
        """Close the loop: a freshly generated topology through the
        full-system model."""
        sa = anneal_topology(
            NetSmithConfig(layout=LAYOUT_4X5, link_class="medium"),
            objective="latency", steps=600, seed=8,
        )
        table = routed_table(sa.topology, MCLB, use_cache=False)
        res = run_workload(table, workload("ferret"), link_class="medium",
                           warmup=300, measure=900)
        assert res.cpi > workload("ferret").base_cpi
        assert res.avg_packet_latency_ns > 0


@pytest.mark.slow
class TestSaturationConsistency:
    def test_measured_saturation_below_analytical(self):
        """For every frozen design: simulated saturation must respect the
        analytical routed bound (sanity coupling of sim and analysis)."""
        from repro.sim import MEAN_FLITS_PER_PACKET

        topo = netsmith_topology("latop", "medium", 20, allow_generate=False)
        table = routed_table(topo, MCLB)
        paths = {}
        for s in range(20):
            for d in range(20):
                if s != d:
                    paths[(s, d)] = [table.route_of(s, d)]
        from repro.routing.paths import PathSet

        bound_flits = channel_loads(
            PathSet(topology=topo, paths=paths)
        ).saturation_injection(20)
        sat_pkts = find_saturation(table, uniform_random(20),
                                   warmup=200, measure=600)
        assert sat_pkts * MEAN_FLITS_PER_PACKET <= bound_flits * 1.15
