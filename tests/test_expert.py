"""Tests for expert baseline topologies and reconstruction machinery."""

import pytest

from repro.topology import (
    LAYOUT_4X5,
    LAYOUT_8X6,
    RADIX,
    Signature,
    Topology,
    average_hops,
    bisection_bandwidth,
    butter_donut,
    diameter,
    double_butterfly,
    expert_topology,
    experts_for_class,
    folded_torus,
    kite,
    mesh,
    reconstruct,
)
from repro.topology import expert_data
from repro.topology.expert import EXPERT_FAMILIES


class TestMesh:
    def test_structure(self):
        m = mesh(LAYOUT_4X5)
        assert m.num_links == 31
        assert m.is_symmetric
        assert m.max_radix() <= RADIX

    def test_valid_small_class(self):
        mesh(LAYOUT_4X5).check(radix=RADIX, link_class="small")


class TestFoldedTorus:
    def test_degree_exactly_four(self):
        ft = folded_torus(LAYOUT_4X5)
        assert all(d == 4 for d in ft.out_degree())
        assert all(d == 4 for d in ft.in_degree())

    def test_medium_class_valid(self):
        folded_torus(LAYOUT_4X5).check(radix=RADIX, link_class="medium")

    def test_scales_to_8x6(self):
        ft = folded_torus(LAYOUT_8X6)
        assert ft.n == 48
        ft.check(radix=RADIX, link_class="medium")
        assert ft.num_links == 96  # degree-4 torus on 48 nodes


class TestPatternGenerators:
    @pytest.mark.parametrize("gen", [butter_donut, double_butterfly])
    def test_valid_and_connected(self, gen):
        t = gen(LAYOUT_4X5)
        t.check(radix=RADIX, link_class="large")

    @pytest.mark.parametrize("gen", [butter_donut, double_butterfly])
    def test_scales_to_48(self, gen):
        t = gen(LAYOUT_8X6)
        t.check(radix=RADIX, link_class="large")

    def test_kite_small_valid(self):
        t = kite(LAYOUT_4X5, "small")
        t.check(radix=RADIX, link_class="small")

    def test_kite_rejects_bad_size(self):
        with pytest.raises(ValueError):
            kite(LAYOUT_4X5, "gigantic")


class TestExpertRegistry:
    def test_families_cover_all_classes(self):
        assert set(EXPERT_FAMILIES.values()) == {"small", "medium", "large"}

    def test_expert_topology_mesh(self):
        assert expert_topology("Mesh", 20).num_links == 31

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            expert_topology("Hypercube", 20)

    def test_experts_for_class(self):
        larges = experts_for_class("large", 20)
        names = {t.name for t in larges}
        assert "ButterDonut" in names and "Kite-Large" in names

    def test_frozen_lookup_preferred(self):
        key = ("UnitTestTopo", 20)
        try:
            expert_data.register("UnitTestTopo", 20, [(0, 1), (1, 2)])
            assert expert_data.lookup("UnitTestTopo", 20) == [(0, 1), (1, 2)]
        finally:
            expert_data.FROZEN.pop(key, None)

    def test_frozen_expert_matches_signature_when_registered(self):
        """If the generation pass registered Kite-Small, it must be close
        to the published Table II row."""
        frozen = expert_data.lookup("Kite-Small", 20)
        if frozen is None:
            pytest.skip("Kite-Small reconstruction not registered")
        t = Topology.from_undirected(LAYOUT_4X5, frozen, link_class="small")
        t.check(radix=RADIX, link_class="small")
        assert t.num_links == 38
        assert abs(average_hops(t) - 2.38) < 0.05
        assert abs(bisection_bandwidth(t) - 8) <= 1


class TestReconstruction:
    def test_reconstruct_tiny_signature(self):
        """Match a signature we know is achievable: the folded torus's."""
        ft = folded_torus(LAYOUT_4X5)
        sig = Signature(
            num_links=40,
            diameter=4,
            avg_hops=round(average_hops(ft), 2),
            bisection_bw=10,
        )
        edges, cost = reconstruct(
            LAYOUT_4X5, "medium", sig, steps=1500, restarts=1, seed=2,
            initial=[tuple(sorted(e)) for e in ft.directed_links],
        )
        assert cost < 2.0  # starts at the answer; must stay there
        t = Topology.from_undirected(LAYOUT_4X5, edges)
        assert t.is_connected()
        assert t.max_radix() <= RADIX
