"""Runner subsystem: parallel==serial, caching, corruption fallback."""

import json
import os

import numpy as np
import pytest

from repro.runner import (
    MISS,
    CurveJob,
    ParallelExecutor,
    ResultCache,
    Runner,
    SaturationJob,
    TrafficSpec,
    canonical_json,
    config_hash,
    decode_table,
    derive_seed,
    encode_table,
    task_key,
)
from repro.runner import tasks as runner_tasks
from repro.runner.artifacts import _BUILDERS, generate_all
from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.sim import find_saturation, latency_throughput_curve, uniform_random
from repro.topology import Layout, Topology

RATES = (0.02, 0.06, 0.12, 0.2, 0.3)
BUDGET = dict(warmup=80, measure=200, seed=0)


@pytest.fixture(scope="module")
def table():
    """A small 2x3 mesh: cheap to simulate, real enough to saturate."""
    layout = Layout(rows=2, cols=3)
    edges = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)]
    topo = Topology.from_undirected(layout, edges, name="mesh2x3", link_class="small")
    routes = ndbt_route(topo, seed=0)
    return build_routing_table(routes, assign_vcs(routes, seed=0))


@pytest.fixture(scope="module")
def serial_curve(table):
    return latency_throughput_curve(
        table, uniform_random(6), RATES, name="mesh2x3", link_class="small", **BUDGET
    )


# ---------------------------------------------------------------------------
# hashing
# ---------------------------------------------------------------------------

def test_config_hash_ignores_dict_order_and_numpy_typing():
    a = {"x": 1, "y": [1, 2, 3], "z": {"k": 2.5}}
    b = {"z": {"k": np.float64(2.5)}, "y": (np.int64(1), 2, 3), "x": np.int32(1)}
    assert config_hash(a) == config_hash(b)
    assert config_hash(a) != config_hash({**a, "x": 2})


def test_canonical_json_rejects_unhashable_types():
    with pytest.raises(TypeError):
        canonical_json(object())


def test_derive_seed_deterministic_and_distinct():
    assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)
    seeds = {derive_seed(0, "point", i) for i in range(100)}
    assert len(seeds) == 100
    assert all(0 <= s < 2**31 for s in seeds)
    assert derive_seed(1, "point", 0) != derive_seed(0, "point", 0)


# ---------------------------------------------------------------------------
# codecs
# ---------------------------------------------------------------------------

def test_table_codec_roundtrip(table):
    doc = encode_table(table)
    back = decode_table(json.loads(json.dumps(doc)))
    assert back.next_hop == table.next_hop
    assert back.flow_vc == table.flow_vc
    assert back.num_vcs == table.num_vcs
    assert sorted(back.topology.directed_links) == sorted(
        table.topology.directed_links
    )
    assert encode_table(back) == doc  # canonical: stable under roundtrip


@pytest.mark.parametrize("kind", ["uniform", "shuffle", "bit_complement"])
def test_traffic_spec_roundtrip_n_nodes(kind):
    spec = TrafficSpec(kind=kind, n_nodes=6)
    back = TrafficSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
    assert back == spec
    pattern = back.build()
    rng = np.random.default_rng(0)
    for src in range(6):
        d = pattern.destination(src, rng)
        assert 0 <= d < 6 and d != src


def test_traffic_spec_layout_kinds():
    layout = Layout(rows=2, cols=3)
    for spec in (
        TrafficSpec.memory(layout),
        TrafficSpec.transpose(layout),
        TrafficSpec.tornado(layout),
        TrafficSpec.neighbor(layout),
    ):
        pattern = TrafficSpec.from_dict(spec.as_dict()).build()
        rng = np.random.default_rng(1)
        assert 0 <= pattern.destination(0, rng) < 6


# ---------------------------------------------------------------------------
# parallel == serial
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_curve_bit_identical_to_serial(table, serial_curve, workers, tmp_path):
    runner = Runner(parallel=workers, cache_dir=str(tmp_path))
    parallel = runner.curve(
        table, TrafficSpec.uniform(6), RATES,
        name="mesh2x3", link_class="small", **BUDGET,
    )
    assert parallel == serial_curve


def test_parallel_saturation_identical_to_serial(table, tmp_path):
    serial = find_saturation(
        table, uniform_random(6), warmup=80, measure=200, seed=0
    )
    runner = Runner(parallel=2, cache_dir=str(tmp_path))
    [sat] = runner.saturations([
        SaturationJob(
            table=table, traffic=TrafficSpec.uniform(6), name="mesh2x3",
            warmup=80, measure=200, seed=0,
        )
    ])
    assert sat == serial


def test_executor_serial_fallback_matches():
    ex1 = ParallelExecutor(workers=1)
    ex4 = ParallelExecutor(workers=4)
    payloads = list(range(20))
    assert ex1.map(_square, payloads) == ex4.map(_square, payloads)


def _square(x):
    return x * x


# ---------------------------------------------------------------------------
# caching
# ---------------------------------------------------------------------------

def test_cache_hit_returns_without_resimulating(table, serial_curve, tmp_path, monkeypatch):
    kwargs = dict(name="mesh2x3", link_class="small", **BUDGET)
    first = Runner(parallel=1, cache_dir=str(tmp_path))
    curve1 = first.curve(table, TrafficSpec.uniform(6), RATES, **kwargs)
    assert first.stats.hits == 0 and first.stats.misses > 0

    # A fresh Runner on the same cache dir must not simulate at all:
    # poison the task function so any execution attempt blows up.
    def boom(payload):
        raise AssertionError("sim_point executed despite cached result")

    monkeypatch.setitem(
        runner_tasks.TASK_FUNCTIONS, "sim_point", (boom, runner_tasks.stats_from_dict)
    )
    second = Runner(parallel=1, cache_dir=str(tmp_path))
    curve2 = second.curve(table, TrafficSpec.uniform(6), RATES, **kwargs)
    assert curve2 == curve1 == serial_curve
    assert second.stats.misses == 0 and second.stats.hits == first.stats.misses


def test_cache_distinguishes_configs(table, tmp_path):
    runner = Runner(parallel=1, cache_dir=str(tmp_path))
    runner.curve(table, TrafficSpec.uniform(6), RATES, **BUDGET)
    runner.curve(table, TrafficSpec.uniform(6), RATES,
                 warmup=80, measure=200, seed=1)  # different seed
    assert runner.stats.hits == 0  # nothing shared between the two configs


def test_corrupted_cache_entry_falls_back_to_recompute(table, tmp_path):
    kwargs = dict(name="mesh2x3", link_class="small", **BUDGET)
    runner = Runner(parallel=1, cache_dir=str(tmp_path))
    curve1 = runner.curve(table, TrafficSpec.uniform(6), RATES, **kwargs)

    entries = sorted(tmp_path.rglob("*.json"))
    assert entries
    entries[0].write_text("{ not json !!")
    entries[1].write_text(json.dumps({"unexpected": "shape"}))

    again = Runner(parallel=1, cache_dir=str(tmp_path))
    curve2 = again.curve(table, TrafficSpec.uniform(6), RATES, **kwargs)
    assert curve2 == curve1
    assert again.stats.errors == 2  # both bad entries detected...
    assert again.stats.misses == 2  # ...recomputed...
    assert again.stats.puts == 2  # ...and rewritten

    third = Runner(parallel=1, cache_dir=str(tmp_path))
    curve3 = third.curve(table, TrafficSpec.uniform(6), RATES, **kwargs)
    assert curve3 == curve1 and third.stats.misses == 0


@pytest.mark.parametrize("tear", ["truncate", "garbage"])
def test_cache_corruption_evicts_both_storage_forms(tmp_path, tear):
    """Truncated and garbage entries — plain ``.json`` and compressed
    ``.json.z`` alike — are counted as errors+misses, unlinked, and
    repopulated (the torn-write failure mode chaos.TornCache injects)."""
    from repro.runner.cache import COMPRESS_THRESHOLD

    cache = ResultCache(str(tmp_path))
    k_small, k_big = "aa" * 32, "bb" * 32
    small = {"v": 1}
    big = {"blob": list(range(COMPRESS_THRESHOLD))}  # serializes > threshold
    cache.put(k_small, small)
    cache.put(k_big, big)
    paths = (cache.path_for(k_small), cache.zpath_for(k_big))
    for path in paths:
        assert os.path.exists(path)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            if tear == "truncate":
                fh.write(data[: len(data) // 2])
            else:
                fh.write(b"\x00\xffgarbage\xfe")

    before = cache.stats.errors
    assert cache.get(k_small) is MISS
    assert cache.get(k_big) is MISS
    assert cache.stats.errors == before + 2  # both torn entries detected
    for path in paths:
        assert not os.path.exists(path)  # evicted, not left to re-fail

    cache.put(k_small, small)
    cache.put(k_big, big)
    assert cache.get(k_small) == small
    assert cache.get(k_big) == big


def test_no_cache_escape_hatch(table, serial_curve, tmp_path):
    runner = Runner(parallel=1, cache_dir=str(tmp_path), no_cache=True)
    curve = runner.curve(
        table, TrafficSpec.uniform(6), RATES,
        name="mesh2x3", link_class="small", **BUDGET,
    )
    assert curve == serial_curve
    assert runner.cache is None
    assert not any(tmp_path.rglob("*.json"))  # nothing written


def test_cache_atomicity_sentinel(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = config_hash({"probe": 1})
    assert cache.get(key) is MISS
    cache.put(key, {"v": None})
    assert cache.get(key) == {"v": None}  # cached None-bearing values survive
    assert not [p for p in tmp_path.rglob(".tmp-*")]  # no temp droppings


def test_routed_table_disk_cache(table, tmp_path, monkeypatch):
    from repro.experiments import registry

    topo = table.topology
    first = Runner(parallel=1, cache_dir=str(tmp_path))
    t1 = registry.routed_table(
        topo, registry.NDBT, seed=0, use_cache=False, runner=first
    )
    assert first.stats.puts == 1

    # A fresh process must get the table from disk without re-routing.
    # (`routing_task` resolves the policy from repro.routing at call
    # time, so patching the package attribute intercepts any route.)
    import repro.routing

    def boom(*a, **kw):
        raise AssertionError("routing executed despite cached table")

    monkeypatch.setattr(repro.routing, "ndbt_route", boom)
    second = Runner(parallel=1, cache_dir=str(tmp_path))
    t2 = registry.routed_table(
        topo, registry.NDBT, seed=0, use_cache=False, runner=second
    )
    assert second.stats.hits == 1
    assert t2.next_hop == t1.next_hop
    assert t2.flow_vc == t1.flow_vc
    assert t2.num_vcs == t1.num_vcs
    t2.validate()

    # A different seed is a different configuration (no false hits).
    monkeypatch.undo()
    third = Runner(parallel=1, cache_dir=str(tmp_path))
    registry.routed_table(topo, registry.NDBT, seed=1, use_cache=False, runner=third)
    assert third.stats.hits == 0


# ---------------------------------------------------------------------------
# artifact orchestration (builders stubbed: the real ones run for hours)
# ---------------------------------------------------------------------------

def test_generate_all_resumes_and_records_failures(tmp_path, monkeypatch):
    calls = []

    def fake_recon(payload):
        calls.append(payload["link_class"])
        if payload["signature"][0] == 36:  # Kite-Large + ButterDonut rows
            raise RuntimeError("synthetic failure")
        return {"edges": [[0, 1]], "cost": 0.0}

    monkeypatch.setitem(_BUILDERS, "recon", fake_recon)
    runner = Runner(parallel=1, cache_dir=str(tmp_path / "cache"))
    out = tmp_path / "gen"
    logs = []
    counts = generate_all(str(out), runner=runner, only=["experts20"],
                          log=logs.append)
    assert counts == {"done": 3, "skipped": 0, "failed": 2}
    frozen = json.loads((out / "experts20.json").read_text())
    assert set(frozen) == {"Kite-Small", "Kite-Medium", "DoubleButterfly"}
    # The failure summary is loud and carries the full worker traceback,
    # not just repr(exc).
    joined = "\n".join(logs)
    assert "2 artifact(s) FAILED" in joined
    assert "RuntimeError: synthetic failure" in joined
    assert "Traceback (most recent call last)" in joined

    # Rerun: finished entries skip, failures retry (cache was evicted).
    calls.clear()
    counts2 = generate_all(str(out), runner=runner, only=["experts20"],
                           log=logs.append)
    assert counts2 == {"done": 0, "skipped": 3, "failed": 2}
    assert len(calls) == 2  # only the failed tasks re-ran


def test_artifact_cache_key_matches_runner_keys():
    payload = {"kind": "recon", "version": 1}
    assert task_key("artifact", payload) == task_key("artifact", dict(payload))
    assert task_key("artifact", payload) != task_key("sim_point", payload)


# ---------------------------------------------------------------------------
# closed-loop jobs (the Fig. 8 full-system sweep unit)
# ---------------------------------------------------------------------------

CL_BUDGET = dict(warmup=100, measure=300, seed=0)


def _cl_workloads():
    from repro.fullsys import PARSEC

    return [w for w in PARSEC if w.name in ("blackscholes", "canneal")]


@pytest.fixture(scope="module")
def serial_rows(table):
    from repro.fullsys import parsec_sweep

    return parsec_sweep({"self": table}, table, workloads=_cl_workloads(),
                        **CL_BUDGET)


@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_closed_loop_bit_identical_to_serial(
    table, serial_rows, workers, tmp_path
):
    from repro.fullsys import parsec_sweep

    with Runner(parallel=workers, cache_dir=str(tmp_path)) as runner:
        rows = parsec_sweep({"self": table}, table, workloads=_cl_workloads(),
                            runner=runner, **CL_BUDGET)
    assert rows == serial_rows


def test_closed_loop_cache_hit_skips_simulation(table, tmp_path, monkeypatch):
    from repro.runner import ClosedLoopJob

    w = _cl_workloads()[0]
    job = ClosedLoopJob(table=table, workload=w, **CL_BUDGET)
    first = Runner(parallel=1, cache_dir=str(tmp_path))
    [r1] = first.closed_loops([job])
    assert first.stats.misses == 1 and first.stats.hits == 0

    def boom(payload):
        raise AssertionError("closed_loop executed despite cached result")

    monkeypatch.setitem(
        runner_tasks.TASK_FUNCTIONS, "closed_loop",
        (boom, runner_tasks.workload_result_from_dict),
    )
    second = Runner(parallel=1, cache_dir=str(tmp_path))
    [r2] = second.closed_loops([job])
    assert r2 == r1
    assert second.stats.hits == 1 and second.stats.misses == 0


def test_closed_loop_cache_distinguishes_configs(table, tmp_path):
    from repro.runner import ClosedLoopJob

    wa, wb = _cl_workloads()
    runner = Runner(parallel=1, cache_dir=str(tmp_path))
    runner.closed_loops([ClosedLoopJob(table=table, workload=wa, **CL_BUDGET)])
    assert runner.stats.misses == 1
    # different workload profile, seed, engine, or budget => new entries
    runner.closed_loops([ClosedLoopJob(table=table, workload=wb, **CL_BUDGET)])
    runner.closed_loops([ClosedLoopJob(table=table, workload=wa, warmup=100,
                                       measure=300, seed=7)])
    runner.closed_loops([ClosedLoopJob(table=table, workload=wa,
                                       engine="reference", **CL_BUDGET)])
    assert runner.stats.misses == 4
    # exact repeat => pure hit
    runner.closed_loops([ClosedLoopJob(table=table, workload=wa, **CL_BUDGET)])
    assert runner.stats.misses == 4 and runner.stats.hits == 1


def test_closed_loop_engines_share_results_not_cache_keys(table, tmp_path):
    """Both engines produce identical WorkloadResults but cache under
    distinct keys (engine is part of the payload identity)."""
    from repro.runner import ClosedLoopJob

    w = _cl_workloads()[0]
    runner = Runner(parallel=1, cache_dir=str(tmp_path))
    [fast] = runner.closed_loops(
        [ClosedLoopJob(table=table, workload=w, engine="fast", **CL_BUDGET)]
    )
    [ref] = runner.closed_loops(
        [ClosedLoopJob(table=table, workload=w, engine="reference", **CL_BUDGET)]
    )
    assert fast == ref
    assert runner.stats.misses == 2 and runner.stats.hits == 0
