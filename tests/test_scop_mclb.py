"""Tests for SCOp (lazy sparsest-cut) and MCLB routing MILPs."""

import numpy as np
import pytest

from repro.core import (
    NetSmithConfig,
    exhaustive_cut_constraints,
    generate_scop,
    mclb_route,
)
from repro.core.netsmith import build_distance_formulation
from repro.milp import MAXIMIZE
from repro.routing import channel_loads, enumerate_shortest_paths, single_shortest_paths
from repro.topology import Layout, Topology, folded_torus, LAYOUT_4X5, sparsest_cut


@pytest.fixture(scope="module")
def scop_tiny():
    cfg = NetSmithConfig(
        layout=Layout(rows=2, cols=3), link_class="small", radix=3, diameter_bound=4
    )
    return generate_scop(cfg, time_limit=30, max_iterations=15)


class TestSCOp:
    def test_converges(self, scop_tiny):
        gen, diag = scop_tiny
        assert diag.claimed_b <= diag.true_b + 1e-6

    def test_objective_is_true_sparsest_cut(self, scop_tiny):
        gen, _ = scop_tiny
        actual = sparsest_cut(gen.topology, exact=True).value
        assert gen.objective == pytest.approx(actual)

    def test_valid_topology(self, scop_tiny):
        gen, _ = scop_tiny
        gen.topology.check(radix=3, link_class="small")

    def test_lazy_matches_exhaustive_on_tiny(self):
        """Ablation: lazy cut generation reaches the same optimum as
        materializing every C6 row (2x2 grid: 8 cuts)."""
        cfg = NetSmithConfig(
            layout=Layout(rows=2, cols=2), link_class="small", radix=2,
            diameter_bound=3,
        )
        lazy, _ = generate_scop(cfg, time_limit=20, max_iterations=20)

        h = build_distance_formulation(cfg, sense=MAXIMIZE)
        b = h.model.add_var("B", lb=0.0, ub=4.0)
        n_cuts = exhaustive_cut_constraints(h, b)
        assert n_cuts == (1 << (cfg.layout.n - 1)) - 1
        h.model.set_objective(b - 1e-4 * h.total_hops)
        res = h.model.solve(time_limit=20)
        assert res.ok
        exhaustive_topo = h.extract_topology(res)
        exhaustive_b = sparsest_cut(exhaustive_topo, exact=True).value
        assert lazy.objective == pytest.approx(exhaustive_b, abs=1e-6)

    def test_too_large_raises(self):
        cfg = NetSmithConfig(layout=Layout(rows=6, cols=5), link_class="small")
        with pytest.raises(ValueError):
            generate_scop(cfg, time_limit=1)

    def test_exhaustive_cap(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=4, cols=5), link_class="small", diameter_bound=5
        )
        h = build_distance_formulation(cfg, sense=MAXIMIZE)
        b = h.model.add_var("B", lb=0.0)
        with pytest.raises(ValueError):
            exhaustive_cut_constraints(h, b, max_n=12)


class TestMCLB:
    def test_never_worse_than_random(self):
        ft = folded_torus(LAYOUT_4X5)
        rand_load = channel_loads(single_shortest_paths(ft, seed=0)).max_load
        res = mclb_route(ft, time_limit=60)
        assert res.max_channel_load <= rand_load + 1e-9

    def test_folded_torus_reaches_cut_bound(self):
        """MCLB on FT achieves max load 12 -> saturation 20/12, exactly
        the sparsest-cut bound (the Fig. 7 'approaches tighter bound'
        behaviour)."""
        ft = folded_torus(LAYOUT_4X5)
        res = mclb_route(ft, time_limit=60)
        assert res.max_channel_load == pytest.approx(12.0)

    def test_routes_are_single_minimal_paths(self):
        ft = folded_torus(LAYOUT_4X5)
        res = mclb_route(ft, time_limit=60)
        res.routes.validate()
        assert all(len(v) == 1 for v in res.routes.paths.values())

    def test_objective_equals_recomputed_load(self):
        ft = folded_torus(LAYOUT_4X5)
        res = mclb_route(ft, time_limit=60)
        assert channel_loads(res.routes).max_load == pytest.approx(
            res.max_channel_load
        )

    def test_weighted_demand(self):
        lay = Layout(rows=1, cols=4)
        t = Topology.from_undirected(lay, [(0, 1), (1, 2), (2, 3), (0, 3)])
        w = np.zeros((4, 4))
        w[0, 2] = 1.0
        w[1, 3] = 1.0
        res = mclb_route(t, weights=w, time_limit=30)
        assert res.max_channel_load <= 1.0 + 1e-9  # disjoint two-hop routes exist

    def test_fractional_mode(self):
        ft = folded_torus(LAYOUT_4X5)
        res = mclb_route(ft, time_limit=60, fractional=True)
        assert res.max_channel_load <= 12.0 + 1e-6  # LP bound <= MIP bound
        res.routes.validate()

    def test_precomputed_pathset_accepted(self):
        ft = folded_torus(LAYOUT_4X5)
        ps = enumerate_shortest_paths(ft, max_paths_per_pair=8)
        res = mclb_route(ft, path_set=ps, time_limit=60)
        assert res.num_paths_considered == ps.total_paths
