"""Backend agreement and branch-and-bound progress behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp import MAXIMIZE, OPTIMAL, Model, quicksum


def _random_milp(seed: int, n_vars: int = 4, n_cons: int = 4) -> Model:
    rng = np.random.default_rng(seed)
    m = Model(f"rand{seed}")
    xs = []
    for i in range(n_vars):
        if rng.random() < 0.5:
            xs.append(m.add_binary(f"b{i}"))
        else:
            xs.append(m.add_integer(f"i{i}", ub=int(rng.integers(2, 8))))
    for _ in range(n_cons):
        coefs = rng.integers(-3, 4, size=n_vars)
        rhs = int(rng.integers(1, 12))
        m.add_constr(quicksum(int(c) * x for c, x in zip(coefs, xs)) <= rhs)
    obj_coefs = rng.integers(-5, 6, size=n_vars)
    m.set_objective(quicksum(int(c) * x for c, x in zip(obj_coefs, xs)))
    return m


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_bnb_matches_scipy_on_random_milps(self, seed):
        m1 = _random_milp(seed)
        m2 = _random_milp(seed)
        r1 = m1.solve(backend="scipy")
        r2 = m2.solve(backend="bnb", time_limit=20)
        assert r1.status == r2.status or (r1.ok and r2.ok)
        if r1.ok and r2.ok:
            assert r1.objective == pytest.approx(r2.objective, abs=1e-6)

    def test_bnb_maximize(self):
        m = Model(sense=MAXIMIZE)
        x = m.add_integer("x", ub=9)
        y = m.add_integer("y", ub=9)
        m.add_constr(3 * x + 5 * y <= 22)
        m.set_objective(2 * x + 3 * y)
        res = m.solve(backend="bnb", time_limit=20)
        ref = Model(sense=MAXIMIZE)
        x2 = ref.add_integer("x", ub=9)
        y2 = ref.add_integer("y", ub=9)
        ref.add_constr(3 * x2 + 5 * y2 <= 22)
        ref.set_objective(2 * x2 + 3 * y2)
        assert res.objective == pytest.approx(ref.solve().objective)

    def test_bnb_infeasible(self):
        m = Model()
        x = m.add_integer("x", ub=3)
        m.add_constr(x >= 5)
        res = m.solve(backend="bnb", time_limit=10)
        assert res.status == "infeasible"

    def test_bnb_pure_lp(self):
        m = Model()
        x = m.add_var("x", ub=4)
        m.add_constr(x <= 2.5)
        m.set_objective(-x)
        res = m.solve(backend="bnb", time_limit=10)
        assert res.objective == pytest.approx(-2.5)


class TestProgress:
    def _knapsack(self, n=12, seed=3):
        rng = np.random.default_rng(seed)
        m = Model(sense=MAXIMIZE)
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        w = rng.integers(1, 20, size=n)
        v = rng.integers(1, 20, size=n)
        m.add_constr(quicksum(int(a) * x for a, x in zip(w, xs)) <= int(w.sum() // 3))
        m.set_objective(quicksum(int(a) * x for a, x in zip(v, xs)))
        return m

    def test_progress_events_emitted(self):
        m = self._knapsack()
        events = []
        m.progress_callback = events.append
        res = m.solve(backend="bnb", time_limit=15, progress_interval=0.0)
        assert res.ok
        assert len(events) >= 1
        assert all(e.time_s >= 0 for e in events)

    def test_progress_gap_reaches_zero_on_optimal(self):
        m = self._knapsack(n=8)
        res = m.solve(backend="bnb", time_limit=15, progress_interval=0.0)
        assert res.status == OPTIMAL
        assert res.progress[-1].gap == pytest.approx(0.0, abs=1e-6)

    def test_progress_gap_weakly_decreasing_at_end(self):
        m = self._knapsack(n=14, seed=5)
        res = m.solve(backend="bnb", time_limit=15, progress_interval=0.0)
        gaps = [e.gap for e in res.progress if np.isfinite(e.gap)]
        assert gaps, "expected at least one finite-gap sample"
        assert gaps[-1] <= gaps[0] + 1e-9

    def test_node_limit_terminates(self):
        m = self._knapsack(n=16, seed=9)
        res = m.solve(backend="bnb", time_limit=60, max_nodes=5)
        assert res.status in ("optimal", "feasible", "no_solution")
