"""Fault-injection scenario matrix: schedules, re-routing, both engines.

Three layers, mirroring the contract in docs/ARCHITECTURE.md
("Robustness scenarios"):

* unit tests for the declarative schedule objects (canonical sorting,
  epoch expansion, serialization, the CLI parser, the centrality-based
  convenience constructors);
* a parametrized differential matrix — topology x fault schedule x
  traffic — asserting the fast engine reproduces the reference engine's
  SimStats bit-exactly, ``lost_packets`` included, wherever the fast
  path claims equivalence;
* property/invariant tests where bit-exactness is not the claim:
  survivor tables route exactly the live same-component pairs over live
  fabric with acyclic per-VC CDGs (randomized schedules, many seeds),
  packets are conserved across fault epochs, and delivered fraction is
  monotone non-increasing as nested dead-link sets grow.
"""

import pytest

from repro.experiments.registry import NDBT, routed_table
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    FaultTimeline,
    central_link_faults,
    central_router_fault,
    parse_faults,
    survivor_table,
)
from repro.routing import build_cdg, is_acyclic
from repro.sim import (
    BurstSpec,
    CompiledNetwork,
    FastNetworkSimulator,
    NetworkSimulator,
    hotspot,
    uniform_random,
)
from repro.topology import expert_topology


def _table(name, n):
    return routed_table(expert_topology(name, n), NDBT)


def _duplex_pairs(topo):
    return sorted({
        (min(u, v), max(u, v))
        for (u, v) in topo.directed_links
        if topo.has_link(v, u)
    })


# ---------------------------------------------------------------------------
# Schedule objects
# ---------------------------------------------------------------------------

class TestFaultSchedule:
    def test_events_sort_canonically(self):
        a = FaultEvent(300, "link_down", (1, 2))
        b = FaultEvent(100, "router_down", (4,))
        sched = FaultSchedule.of([a, b])
        assert sched.events == (b, a)
        assert sched.key() == ((100, "router_down", (4,)), (300, "link_down", (1, 2)))

    def test_bad_kind_and_targets_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0, "meteor", (1,))
        with pytest.raises(ValueError, match="cycle"):
            FaultEvent(-1, "router_down", (1,))
        with pytest.raises(ValueError, match="target"):
            FaultEvent(0, "link_down", (1,))
        with pytest.raises(ValueError, match="target"):
            FaultEvent(0, "router_down", (1, 2))
        assert set(FAULT_KINDS) == {
            "link_down", "link_up", "router_down", "router_up"
        }

    def test_states_accumulate_and_recover(self):
        sched = FaultSchedule.of([
            FaultEvent(100, "link_down", (0, 1)),
            FaultEvent(100, "link_down", (1, 0)),
            FaultEvent(250, "router_down", (5,)),
            FaultEvent(400, "link_up", (0, 1)),
            FaultEvent(400, "link_up", (1, 0)),
        ])
        states = sched.states()
        assert [s[0] for s in states] == [0, 100, 250, 400]
        assert states[0] == (0, frozenset(), frozenset())
        assert states[1][1] == {(0, 1), (1, 0)}
        assert states[2] == (250, frozenset({(0, 1), (1, 0)}), frozenset({5}))
        assert states[3][1] == frozenset()
        assert states[3][2] == frozenset({5})

    def test_empty_schedule_state(self):
        sched = FaultSchedule()
        assert sched.is_empty
        assert sched.states() == [(0, frozenset(), frozenset())]

    def test_roundtrip_dict(self):
        sched = FaultSchedule.link_outage([(2, 7)], down_cycle=50, up_cycle=90)
        again = FaultSchedule.from_dict(sched.as_dict())
        assert again == sched
        assert again.key() == sched.key()

    def test_validate_against_topology(self):
        topo = expert_topology("Mesh", 16)
        central_link_faults(topo, 1).validate(topo)
        with pytest.raises(ValueError, match="absent"):
            FaultSchedule.link_outage([(0, 15)]).validate(topo)
        with pytest.raises(ValueError, match="out of range"):
            FaultSchedule.router_outage([99]).validate(topo)


class TestParseFaults:
    def test_link_events_expand_duplex(self):
        sched = parse_faults("500:link_down:2-7,1500:link_up:2-7")
        kinds = [(e.cycle, e.kind, e.target) for e in sched.events]
        assert (500, "link_down", (2, 7)) in kinds
        assert (500, "link_down", (7, 2)) in kinds
        assert (1500, "link_up", (2, 7)) in kinds
        assert len(sched.events) == 4

    def test_router_events(self):
        sched = parse_faults("800:router_down:4")
        assert sched.events == (FaultEvent(800, "router_down", (4,)),)

    @pytest.mark.parametrize("bad", ["oops", "10:link_down:3", "x:router_down:1"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError, match="malformed fault event"):
            parse_faults(bad)


class TestCentralFaults:
    def test_central_links_are_duplex_and_deterministic(self):
        topo = expert_topology("Mesh", 20)
        sched = central_link_faults(topo, 2, cycle=30)
        assert sched == central_link_faults(topo, 2, cycle=30)
        dead = sched.states()[-1][1]
        assert len(dead) == 4  # 2 full-duplex links
        for (u, v) in dead:
            assert (v, u) in dead
            assert topo.has_link(u, v)

    def test_central_router_is_max_degree(self):
        topo = expert_topology("Mesh", 20)
        (r,) = central_router_fault(topo).states()[-1][2]
        deg = topo.out_degree() + topo.in_degree()
        assert deg[r] == max(deg)


# ---------------------------------------------------------------------------
# Differential scenario matrix: reference == fast, bit for bit
# ---------------------------------------------------------------------------

def _schedules(topo):
    """The named fault scenarios of the differential matrix."""
    pair = _duplex_pairs(topo)[0]
    return {
        "empty": FaultSchedule(),
        "link-down": central_link_faults(topo, 1, cycle=150),
        "link-down-up": FaultSchedule.link_outage(
            [pair], down_cycle=100, up_cycle=250
        ),
        "router-down": central_router_fault(topo, cycle=150),
        "two-links": central_link_faults(topo, 2, cycle=120),
    }


def _traffics(topo):
    return {
        "uniform": uniform_random(topo.n),
        "hotspot": hotspot(topo.n, [1, topo.n - 2], 0.6),
        "mmpp": uniform_random(topo.n).with_burst(
            BurstSpec(kind="mmpp", p_on=0.15, p_off=0.25, seed=3)
        ),
    }


@pytest.mark.parametrize("topo_name,n", [("Mesh", 16), ("FoldedTorus", 20)])
@pytest.mark.parametrize(
    "sched_key", ["empty", "link-down", "link-down-up", "router-down", "two-links"]
)
@pytest.mark.parametrize("traffic_key", ["uniform", "hotspot", "mmpp"])
def test_engines_agree_bit_exactly(topo_name, n, sched_key, traffic_key):
    table = _table(topo_name, n)
    topo = table.topology
    sched = _schedules(topo)[sched_key]
    pat = _traffics(topo)[traffic_key]
    ref = NetworkSimulator(table, pat, 0.05, seed=7, faults=sched)
    fast = FastNetworkSimulator(
        table, pat, 0.05, seed=7,
        compiled=CompiledNetwork.for_table(table), faults=sched,
    )
    assert fast.run(100, 300) == ref.run(100, 300)


def test_empty_schedule_identical_to_no_faults():
    table = _table("Mesh", 16)
    pat = uniform_random(16)
    compiled = CompiledNetwork.for_table(table)
    for cls, kw in (
        (NetworkSimulator, {}),
        (FastNetworkSimulator, {"compiled": compiled}),
    ):
        plain = cls(table, pat, 0.08, seed=2, **kw).run(150, 400)
        empty = cls(table, pat, 0.08, seed=2, faults=FaultSchedule(), **kw).run(150, 400)
        assert empty == plain
        assert empty.lost_packets == 0


def test_small_trace_chunks_cross_fault_epochs():
    """Epoch swaps interact with every chunk boundary, not just cycle 0."""
    table = _table("Mesh", 16)
    topo = table.topology
    sched = _schedules(topo)["link-down-up"]
    pat = uniform_random(16)
    ref = NetworkSimulator(table, pat, 0.06, seed=5, faults=sched).run(80, 320)

    class TinyChunks(FastNetworkSimulator):
        trace_chunk_cycles = 17

    fast = TinyChunks(
        table, pat, 0.06, seed=5,
        compiled=CompiledNetwork.for_table(table), faults=sched,
    ).run(80, 320)
    assert fast == ref


def test_closed_loop_hooks_without_retry_rejected():
    """Installing closed-loop generation hooks on the open-loop fast
    engine under a fault schedule is a documented ValueError: an epoch
    swap would strand in-flight request transactions.  The supported
    path is a closed-loop simulator with a RetryPolicy."""
    table = _table("Mesh", 16)
    sched = central_link_faults(table.topology, 1)
    sim = FastNetworkSimulator(
        table, uniform_random(16), 0.05, seed=0,
        compiled=CompiledNetwork.for_table(table), faults=sched,
    )
    sim._closed_gen = lambda *a: a  # simulate closed-loop mode
    with pytest.raises(ValueError, match="closed-loop"):
        sim.run(10, 10)


# ---------------------------------------------------------------------------
# Invariants: conservation, survivor tables, monotonicity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("sched_key", ["link-down", "router-down", "two-links"])
def test_packet_conservation_across_epochs(engine, sched_key):
    """With measurement from cycle 0, every offered packet is ejected,
    lost to a fault, or still in flight — none created or destroyed."""
    table = _table("Mesh", 16)
    sched = _schedules(table.topology)[sched_key]
    pat = uniform_random(16)
    if engine == "reference":
        sim = NetworkSimulator(table, pat, 0.08, seed=11, faults=sched)
    else:
        sim = FastNetworkSimulator(
            table, pat, 0.08, seed=11,
            compiled=CompiledNetwork.for_table(table), faults=sched,
        )
    stats = sim.run(0, 400)
    if sched_key == "router-down":
        # generation attempts at the dead router are offered-and-lost, so
        # this scenario always exercises the lost counter; link outages
        # only lose packets caught in transit at the swap.
        assert stats.lost_packets > 0
    assert stats.offered_packets == (
        stats.ejected_packets + stats.lost_packets + sim.in_flight
    )


def _random_schedule(topo, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    pairs = _duplex_pairs(topo)
    events = []
    for _ in range(int(rng.integers(1, 4))):
        cycle = int(rng.integers(0, 500))
        if rng.random() < 0.7:
            u, v = pairs[int(rng.integers(len(pairs)))]
            events.append(FaultEvent(cycle, "link_down", (u, v)))
            events.append(FaultEvent(cycle, "link_down", (v, u)))
            if rng.random() < 0.5:
                up = cycle + int(rng.integers(50, 300))
                events.append(FaultEvent(up, "link_up", (u, v)))
                events.append(FaultEvent(up, "link_up", (v, u)))
        else:
            r = int(rng.integers(topo.n))
            events.append(FaultEvent(cycle, "router_down", (r,)))
    return FaultSchedule.of(events)


def _live_reachable_pairs(topo, dead_links, dead_routers):
    """Ordered (s, d) pairs connected over the live directed fabric."""
    live = [r for r in range(topo.n) if r not in dead_routers]
    adj = {r: [] for r in live}
    for (u, v) in topo.directed_links:
        if u in adj and v in adj and (u, v) not in dead_links:
            adj[u].append(v)
    pairs = set()
    for s in live:
        seen = {s}
        frontier = [s]
        while frontier:
            nxt = []
            for u in frontier:
                for v in adj[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        pairs.update((s, d) for d in seen if d != s)
    return pairs


@pytest.mark.parametrize("topo_name,n", [("Mesh", 16), ("FoldedTorus", 20)])
@pytest.mark.parametrize("seed", range(6))
def test_survivor_tables_route_live_pairs_deadlock_free(topo_name, n, seed):
    """Every epoch of a random schedule: flows == the live reachable
    pairs, every route uses only live fabric, per-VC CDGs are acyclic."""
    table = _table(topo_name, n)
    topo = table.topology
    sched = _random_schedule(topo, seed)
    timeline = FaultTimeline.for_table(table, sched)
    assert [e.start for e in timeline.epochs] == [s[0] for s in sched.states()]
    for epoch, (_, dead_links, dead_routers) in zip(
        timeline.epochs, sched.states()
    ):
        t = epoch.table
        assert set(t.flow_vc) == _live_reachable_pairs(
            topo, dead_links, dead_routers
        )
        per_vc = {}
        for (s, d) in t.flow_vc:
            path = t.route_of(s, d)
            for k in range(len(path) - 1):
                u, v = path[k], path[k + 1]
                assert topo.has_link(u, v)
                assert (u, v) not in dead_links, (s, d, path)
            assert not set(path) & dead_routers, (s, d, path)
            per_vc.setdefault(t.flow_vc[(s, d)], []).append(path)
        for vc, paths in per_vc.items():
            assert is_acyclic(build_cdg(paths)), f"cyclic CDG in VC {vc}"
        # constant VC space across the timeline (the engines swap tables
        # without resizing buffers)
        assert t.num_vcs == timeline.epochs[0].table.num_vcs


def test_survivor_table_of_disconnected_fabric_is_empty():
    topo = expert_topology("Mesh", 16)
    table = _table("Mesh", 16)
    # kill every link of router 0: it stays alive but unreachable
    dead = {(u, v) for (u, v) in topo.directed_links if 0 in (u, v)}
    st = survivor_table(table, frozenset(dead), frozenset())
    assert all(0 not in pair for pair in st.flow_vc)
    assert _live_reachable_pairs(topo, dead, frozenset()) == set(st.flow_vc)


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_delivered_fraction_monotone_in_dead_links(engine):
    """Nested dead-link sets: killing strictly more links never delivers
    a larger fraction of the offered load.

    The nested sets progressively sever every link of the most-central
    router, so the last set guarantees structural loss (its flows become
    unroutable), and the rate sits well below saturation so delivery is
    governed by reachability, not queueing dynamics — above the knee the
    claim is simply false (rerouting around a cut can *relieve* a
    congested hot link).
    """
    table = _table("Mesh", 16)
    topo = table.topology
    deg = topo.out_degree() + topo.in_degree()
    victim = int(min(range(topo.n), key=lambda i: (-int(deg[i]), i)))
    links = sorted(p for p in _duplex_pairs(topo) if victim in p)
    pat = uniform_random(16)
    compiled = CompiledNetwork.for_table(table)
    fractions = []
    for k in range(len(links) + 1):
        sched = (
            FaultSchedule.link_outage(links[:k], down_cycle=0)
            if k else FaultSchedule()
        )
        if engine == "reference":
            sim = NetworkSimulator(table, pat, 0.05, seed=3, faults=sched)
        else:
            sim = FastNetworkSimulator(
                table, pat, 0.05, seed=3, compiled=compiled, faults=sched,
            )
        fractions.append(sim.run(0, 500).delivered_fraction)
    assert fractions[-1] < 0.95  # the fully-severed set visibly loses
    for lo, hi in zip(fractions[1:], fractions):
        assert lo <= hi + 0.02, fractions
