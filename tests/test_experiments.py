"""Tests for the experiment harness (fast paths only; the full sweeps run
as benchmarks)."""

import math

import pytest

from repro.experiments import (
    MCLB,
    NDBT,
    PAPER_TABLE2_20,
    fig4_render,
    fig5_curves,
    fig9_rows,
    format_table,
    ns_large_vs_small_dynamic,
    pareto_front,
    roster,
    routed_table,
    table2,
)
from repro.experiments.fig1 import Fig1Point
from repro.topology import LAYOUT_4X5, expert_topology, folded_torus


class TestRegistry:
    def test_roster_medium_contains_ft_and_ns(self):
        entries = roster("medium", 20, allow_generate=False)
        names = {e.name for e in entries}
        assert "FoldedTorus" in names
        assert any(n.startswith("NS-LatOp") for n in names)

    def test_roster_policies(self):
        for e in roster("medium", 20, allow_generate=False):
            if e.name.startswith("NS-"):
                assert e.policy == MCLB
            elif not e.name.startswith("LPBT"):
                assert e.policy == NDBT

    def test_routed_table_cached(self):
        ft = folded_torus(LAYOUT_4X5)
        a = routed_table(ft, NDBT, seed=0)
        b = routed_table(ft, NDBT, seed=0)
        assert a is b

    def test_routed_table_mclb(self):
        ft = folded_torus(LAYOUT_4X5)
        t = routed_table(ft, MCLB, seed=0, use_cache=False)
        t.validate()

    def test_unknown_policy(self):
        ft = folded_torus(LAYOUT_4X5)
        with pytest.raises(ValueError):
            routed_table(ft, "xy-routing", use_cache=False)


class TestTable2:
    def test_rows_have_paper_references(self):
        rows = table2(20, link_classes=("medium",), allow_generate=False)
        refd = [r for r in rows if r.paper is not None]
        assert refd, "at least FoldedTorus must match a published row"

    def test_folded_torus_exact_match(self):
        rows = table2(20, link_classes=("medium",), allow_generate=False)
        ft = next(r for r in rows if r.measured.name == "FoldedTorus")
        links, diam, hops, bw = ft.paper
        assert ft.measured.num_links == links
        assert ft.measured.diameter == diam
        assert abs(ft.measured.avg_hops - hops) < 0.01
        assert ft.measured.bisection_bw == bw

    def test_format_table_contains_header(self):
        rows = table2(20, link_classes=("medium",), allow_generate=False)
        text = format_table(rows, 20)
        assert "Table II (20 routers)" in text
        assert "FoldedTorus" in text


class TestFig1:
    def test_pareto_front_logic(self):
        pts = [
            Fig1Point("A", "small", False, 2.0, 1.0, 1.0),
            Fig1Point("B", "small", False, 2.5, 0.8, 0.8),  # dominated by A
            Fig1Point("C", "small", True, 1.8, 0.9, 0.9),
        ]
        front = {p.name for p in pareto_front(pts)}
        assert front == {"A", "C"}


class TestFig4:
    def test_render_contains_cut(self):
        res = fig4_render(20, allow_generate=False)
        assert "sparsest cut value" in res.rendering
        u, v = res.cut.partition
        assert len(u) + len(v) == 20


@pytest.mark.slow
class TestFig5:
    def test_reduced_curves_structure(self):
        res = fig5_curves(time_limit=6.0)
        assert set(res.curves) == {"small", "medium", "large"}
        order = res.convergence_order()
        assert len(order) == 3
        # curves exist and gaps are weakly tightening (the paper's
        # convergence *ordering* is asserted at full scale in the bench)
        for curve in res.curves.values():
            assert curve.samples
            xs, ys = curve.series()
            finite = ys[ys == ys]
            if finite.size:
                assert finite[-1] <= finite[0] + 1e-9


class TestFig9:
    def test_rows_normalized_to_mesh(self):
        rows = fig9_rows(link_classes=("medium",), allow_generate=False)
        assert rows
        for r in rows:
            assert r.normalized["static_power"] == pytest.approx(1.0, rel=0.4)

    def test_ns_large_vs_small_dynamic_below_one(self):
        rows = fig9_rows(allow_generate=False)
        ratio = ns_large_vs_small_dynamic(rows)
        if not math.isnan(ratio):
            assert ratio < 1.0  # large runs at a slower clock
