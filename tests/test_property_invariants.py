"""Cross-cutting property-based tests: invariants that must hold for
*any* valid topology, not just the paper's.

Random strongly-connected topologies are generated on small grids, then
pushed through routing, VC assignment, analysis, and short simulations.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fullsys.config import TABLE4
from repro.routing import (
    assign_vcs,
    build_cdg,
    build_routing_table,
    channel_loads,
    enumerate_shortest_paths,
    is_acyclic,
    single_shortest_paths,
)
from repro.sim import NetworkSimulator, uniform_random
from repro.topology import (
    Layout,
    Topology,
    average_hops,
    bisection_bandwidth,
    occupancy_throughput_bound,
    sparsest_cut,
)


@st.composite
def connected_topologies(draw, max_rows=3, max_cols=3):
    rows = draw(st.integers(2, max_rows))
    cols = draw(st.integers(2, max_cols))
    lay = Layout(rows=rows, cols=cols)
    n = lay.n
    # bidirectional snake guarantees strong connectivity
    snake = []
    for y in range(rows):
        xs = range(cols) if y % 2 == 0 else range(cols - 1, -1, -1)
        snake.extend(lay.router_at(x, y) for x in xs)
    links = set()
    for k in range(n - 1):
        links.add((snake[k], snake[k + 1]))
        links.add((snake[k + 1], snake[k]))
    extra = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=2 * n,
        )
    )
    return Topology(lay, list(links | extra), name="prop")


COMMON = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(t=connected_topologies())
def test_paths_minimality_invariant(t):
    ps = enumerate_shortest_paths(t, max_paths_per_pair=8)
    ps.validate()  # checks minimality + link existence for every pair


@settings(**COMMON)
@given(t=connected_topologies())
def test_vc_layers_always_acyclic(t):
    routes = single_shortest_paths(t, seed=1)
    vca = assign_vcs(routes, max_vcs=10, seed=1)
    for layer in vca.layers:
        assert is_acyclic(build_cdg(layer))
    assert sum(len(l) for l in vca.layers) == t.n * (t.n - 1)


@settings(**COMMON)
@given(t=connected_topologies())
def test_occupancy_bound_vs_routed_bound(t):
    """Routed max-load bound can never exceed the occupancy bound (the
    occupancy bound assumes perfectly balanced loads)."""
    routes = single_shortest_paths(t, seed=2)
    routed = channel_loads(routes).saturation_injection(t.n)
    occ = occupancy_throughput_bound(t)
    assert routed <= occ * (1 + 1e-9)


@settings(**COMMON)
@given(t=connected_topologies())
def test_cut_value_positive_for_connected(t):
    assert sparsest_cut(t, exact=True).value > 0


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(t=connected_topologies(max_rows=2, max_cols=3), seed=st.integers(0, 100))
def test_simulation_packet_conservation(t, seed):
    """No packet is lost: after injection stops, the network drains."""
    routes = single_shortest_paths(t, seed=0)
    vca = assign_vcs(routes, max_vcs=10, seed=0)
    table = build_routing_table(routes, vca)
    sim = NetworkSimulator(table, uniform_random(t.n), 0.08, seed=seed)
    sim.run(100, 300)
    sim.rate = 0.0
    for _ in range(5000):
        sim.step()
        if sim.in_flight == 0:
            break
    assert sim.in_flight == 0


class TestTable4Config:
    def test_core_count(self):
        assert TABLE4.num_cores == 64

    def test_noi_matches_standard_layout(self):
        assert TABLE4.noi_routers == 20
        assert TABLE4.noi_dims == (4, 5)

    def test_concentration_figures(self):
        # 64 cores over 12 middle-column routers; 16 MCs over 8 outer
        assert TABLE4.cores_per_noi_router == pytest.approx(64 / 12)
        assert TABLE4.mcs_per_noi_router == pytest.approx(2.0)

    def test_vc_budgets(self):
        assert TABLE4.total_vcs == 10
        assert TABLE4.escape_vcs_mclb == 6
        assert TABLE4.escape_vcs_ndbt == 2

    def test_sim_constants_match_table4(self):
        from repro.sim import LINK_LATENCY, ROUTER_LATENCY
        from repro.sim.packet import LINK_WIDTH_BYTES

        assert ROUTER_LATENCY == TABLE4.router_latency_cycles
        assert LINK_WIDTH_BYTES == TABLE4.link_width_bytes
        assert LINK_LATENCY == 1

    def test_fullsys_uses_core_clock(self):
        from repro.fullsys import CORE_CLOCK_GHZ

        assert CORE_CLOCK_GHZ == TABLE4.core_clock_ghz
