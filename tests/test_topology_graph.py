"""Unit tests for the Topology type and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import LAYOUT_4X5, Layout, Topology, from_dict, loads, dumps, to_dict


@pytest.fixture
def ring():
    lay = Layout(rows=1, cols=4)
    return Topology(lay, [(0, 1), (1, 2), (2, 3), (3, 0)], name="ring")


class TestConstruction:
    def test_directed_links(self, ring):
        assert ring.num_directed_links == 4
        assert ring.num_links == 2  # full-duplex pairing convention
        assert ring.has_link(0, 1) and not ring.has_link(1, 0)

    def test_self_link_rejected(self):
        lay = Layout(rows=1, cols=3)
        with pytest.raises(ValueError, match="self-link"):
            Topology(lay, [(1, 1)])

    def test_out_of_range_rejected(self):
        lay = Layout(rows=1, cols=3)
        with pytest.raises(ValueError):
            Topology(lay, [(0, 3)])

    def test_from_undirected_symmetric(self):
        lay = Layout(rows=2, cols=2)
        t = Topology.from_undirected(lay, [(0, 1), (1, 3)])
        assert t.is_symmetric
        assert t.num_directed_links == 4
        assert t.num_links == 2

    def test_from_adjacency(self):
        lay = Layout(rows=1, cols=3)
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 2] = adj[2, 0] = True
        t = Topology.from_adjacency(lay, adj)
        assert t.directed_links == [(0, 1), (1, 2), (2, 0)]

    def test_from_adjacency_bad_shape(self):
        lay = Layout(rows=1, cols=3)
        with pytest.raises(ValueError):
            Topology.from_adjacency(lay, np.zeros((2, 2), dtype=bool))

    def test_from_adjacency_diagonal_rejected(self):
        lay = Layout(rows=1, cols=3)
        adj = np.eye(3, dtype=bool)
        with pytest.raises(ValueError):
            Topology.from_adjacency(lay, adj)


class TestDegreesAndNeighbors:
    def test_degrees(self, ring):
        assert ring.out_degree(0) == 1
        assert ring.in_degree(0) == 1
        assert ring.out_degree().tolist() == [1, 1, 1, 1]
        assert ring.max_radix() == 1

    def test_neighbors(self, ring):
        assert ring.neighbors_out(0) == [1]
        assert ring.neighbors_in(0) == [3]


class TestDistances:
    def test_hop_matrix_ring(self, ring):
        d = ring.hop_matrix()
        assert d[0, 1] == 1
        assert d[0, 3] == 3  # directed ring: the long way
        assert d[3, 0] == 1

    def test_connected(self, ring):
        assert ring.is_connected()

    def test_disconnected(self):
        lay = Layout(rows=1, cols=4)
        t = Topology(lay, [(0, 1), (1, 0)])
        assert not t.is_connected()

    def test_one_way_is_not_strongly_connected(self):
        lay = Layout(rows=1, cols=3)
        t = Topology(lay, [(0, 1), (1, 2)])
        assert not t.is_connected()


class TestMutation:
    def test_with_link(self, ring):
        t2 = ring.with_link(0, 2)
        assert t2.has_link(0, 2) and not ring.has_link(0, 2)

    def test_without_link(self, ring):
        t2 = ring.without_link(0, 1)
        assert not t2.has_link(0, 1)

    def test_reversed(self, ring):
        r = ring.reversed()
        assert r.has_link(1, 0) and not r.has_link(0, 1)


class TestValidation:
    def test_radix_violation_reported(self):
        lay = Layout(rows=1, cols=4)
        t = Topology(lay, [(0, 1), (0, 2), (0, 3), (1, 0), (2, 0), (3, 0)])
        problems = t.violations(radix=2)
        assert any("out-degree" in p for p in problems)

    def test_link_class_violation(self):
        t = Topology(LAYOUT_4X5, [(0, 2), (2, 0)], link_class="small")
        problems = t.violations()
        assert any("exceeding class" in p for p in problems)

    def test_check_raises(self):
        lay = Layout(rows=1, cols=4)
        t = Topology(lay, [(0, 1), (1, 0)], name="frag")
        with pytest.raises(ValueError, match="frag"):
            t.check()

    def test_valid_passes(self, ring):
        ring.check()  # no radix/class limits: only connectivity


class TestSerialization:
    def test_roundtrip_dict(self, ring):
        t2 = from_dict(to_dict(ring))
        assert t2.directed_links == ring.directed_links
        assert t2.name == ring.name
        assert (t2.layout.rows, t2.layout.cols) == (1, 4)

    def test_roundtrip_json(self, ring):
        t2 = loads(dumps(ring))
        assert np.array_equal(t2.adj, ring.adj)

    def test_save_load(self, ring, tmp_path):
        from repro.topology import load, save

        p = tmp_path / "topo.json"
        save(ring, str(p))
        t2 = load(str(p))
        assert t2.directed_links == ring.directed_links


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_undirected_always_symmetric(data):
    rows = data.draw(st.integers(2, 4))
    cols = data.draw(st.integers(2, 4))
    lay = Layout(rows=rows, cols=cols)
    n = lay.n
    edges = data.draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=12,
        )
    )
    t = Topology.from_undirected(lay, list(edges))
    assert t.is_symmetric
    assert t.num_directed_links % 2 == 0


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_serialization_roundtrip(data):
    rows = data.draw(st.integers(2, 4))
    cols = data.draw(st.integers(2, 4))
    lay = Layout(rows=rows, cols=cols)
    n = lay.n
    links = data.draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=16,
        )
    )
    t = Topology(lay, list(links))
    t2 = loads(dumps(t))
    assert np.array_equal(t.adj, t2.adj)
