"""Closed-loop fault tolerance: timeout/retry semantics under epoch swaps.

The contract under test, for BOTH closed-loop engines:

* **bit-identical behaviour** — the differential matrix (topologies x
  fault schedules x workload points x seeds) pins stats, per-node
  outstanding counts, and pending-reply heaps equal between the
  reference and fast engines, faults and retries active;
* **request conservation** — every issued request is completed, failed,
  or live (`issued == completed + failed + in_flight`), asserted by the
  engines themselves after every run and re-checked here;
* **deadlock freedom** — after the last repair, stopping demand drains
  every live transaction in bounded time (no request is stranded by an
  epoch swap);
* **retry monotonicity** — a larger retry budget never completes fewer
  requests on the same scenario;
* **targeted validation** — a fault schedule without a retry policy is
  a documented ``ValueError`` naming the fix, raised consistently from
  both engine constructors and the runner payload builders.
"""

import numpy as np
import pytest

from repro.experiments.registry import NDBT, routed_table
from repro.faults import FaultSchedule, central_link_faults, central_router_fault
from repro.fullsys.closedloop import (
    ClosedLoopSimulator,
    RetryPolicy,
    validate_closed_loop_faults,
)
from repro.fullsys.fastloop import FastClosedLoopSimulator
from repro.sim import uniform_random
from repro.sim.stats import WindowSample, recovery_metrics
from repro.topology import expert_topology

BUDGET = dict(warmup=120, measure=320)

RETRY = RetryPolicy(timeout=64, retries=5, backoff=8, seed=1)


def _table(name, n):
    return routed_table(expert_topology(name, n), NDBT)


def _flap(schedule_events, up_cycle):
    """A permanent-outage schedule plus matching recovery events."""
    from repro.faults import FaultEvent

    ups = [
        FaultEvent(up_cycle, e.kind.replace("_down", "_up"), e.target)
        for e in schedule_events
    ]
    return FaultSchedule.of(list(schedule_events) + ups)


def _schedules(topo):
    return {
        "linkflap": _flap(
            central_link_faults(topo, 1, cycle=150).events, 330
        ),
        "routerflap": _flap(
            central_router_fault(topo, cycle=160).events, 340
        ),
        "two-links": central_link_faults(topo, 2, cycle=170),
    }


def _pair(table, seed, faults, retry=RETRY, **kw):
    """Run both engines on identical inputs; return (ref, fast)."""
    n = table.topology.n
    params = dict(
        demand_rate=kw.pop("demand_rate", 0.03),
        mlp_per_node=kw.pop("mlp_per_node", 8),
        memory_fraction=kw.pop("memory_fraction", 0.4),
        seed=seed, retry=retry, faults=faults, **kw,
    )
    ref = ClosedLoopSimulator(table, uniform_random(n), **params)
    fast = FastClosedLoopSimulator(table, uniform_random(n), **params)
    return ref, fast


def _assert_mirrors(ref, fast):
    assert ref.outstanding == fast.outstanding
    assert sorted(ref.pending_replies) == sorted(fast.pending_replies)
    assert ref.issued == fast.issued
    assert ref.failed == fast.failed
    assert ref.retried == fast.retried
    assert sorted(ref.txn) == sorted(fast.txn)


def _assert_conservation(sim):
    assert sim.issued == sim.completed_total + sim.failed + len(sim.txn)
    assert sum(sim.outstanding) == len(sim.txn)


# ---------------------------------------------------------------------------
# The differential matrix: engines bit-identical under faults + retries
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize(
    "demand,memf", [(0.03, 0.4), (0.012, 0.7)], ids=["coherence", "memory"]
)
@pytest.mark.parametrize("sched_key", ["linkflap", "routerflap", "two-links"])
@pytest.mark.parametrize("topo_name,n", [("Mesh", 16), ("FoldedTorus", 20)])
def test_fault_matrix_engines_bit_identical(
    topo_name, n, sched_key, demand, memf, seed
):
    table = _table(topo_name, n)
    faults = _schedules(table.topology)[sched_key]
    ref, fast = _pair(
        table, seed, faults, demand_rate=demand, memory_fraction=memf
    )
    sref = ref.run_closed_loop(**BUDGET)
    sfast = fast.run_closed_loop(**BUDGET)
    assert sref == sfast
    _assert_mirrors(ref, fast)
    _assert_conservation(ref)
    _assert_conservation(fast)


def test_windowed_runs_bit_identical_under_faults():
    table = _table("Mesh", 16)
    faults = _schedules(table.topology)["linkflap"]
    ref, fast = _pair(table, 7, faults)
    wr = ref.run_windows(500, 50)
    wf = fast.run_windows(500, 50)
    assert wr == wf
    assert len(wr) == 10
    assert all(isinstance(w, WindowSample) for w in wr)
    # deltas reconcile with the engine totals
    assert sum(w.issued for w in wr) == ref.issued
    assert sum(w.failed for w in wr) == ref.failed
    assert wr[-1].backlog == sum(ref.outstanding)


def test_timeout_only_retries_without_faults():
    """A tight timeout fires retransmissions on congestion alone; the
    engines agree and nothing is lost."""
    table = _table("Mesh", 16)
    retry = RetryPolicy(timeout=24, retries=4, backoff=4, seed=2)
    ref, fast = _pair(table, 5, None, retry=retry, demand_rate=0.05)
    sref = ref.run_closed_loop(**BUDGET)
    sfast = fast.run_closed_loop(**BUDGET)
    assert sref == sfast
    assert ref.retried > 0
    _assert_mirrors(ref, fast)
    _assert_conservation(ref)


# ---------------------------------------------------------------------------
# Property tests: conservation, drain, monotonicity, random schedules
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine_cls", [ClosedLoopSimulator, FastClosedLoopSimulator])
def test_drains_to_zero_after_recovery(engine_cls):
    """Deadlock freedom: once the fault heals and demand stops, every
    live transaction completes or fails — none is stranded."""
    table = _table("Mesh", 16)
    faults = _schedules(table.topology)["linkflap"]
    sim = engine_cls(
        table, uniform_random(16), demand_rate=0.03, mlp_per_node=8,
        memory_fraction=0.4, seed=9, retry=RETRY, faults=faults,
    )
    sim.run_closed_loop(120, 320)  # past the repair at cycle 330... almost
    sim._run_span(40)  # definitely past it
    sim.demand_rate = 0.0
    for _ in range(40):
        if not sim.txn:
            break
        sim._run_span(50)
    assert not sim.txn, f"{len(sim.txn)} transactions stranded"
    assert sum(sim.outstanding) == 0
    assert sim.issued == sim.completed_total + sim.failed


def test_more_retries_never_complete_fewer():
    """Monotonicity of the retry budget on a fixed fault scenario."""
    table = _table("Mesh", 16)
    faults = _schedules(table.topology)["two-links"]
    done = []
    for retries in (0, 2, 5):
        sim = FastClosedLoopSimulator(
            table, uniform_random(16), demand_rate=0.03, mlp_per_node=8,
            memory_fraction=0.4, seed=4,
            retry=RetryPolicy(timeout=64, retries=retries, backoff=8, seed=1),
            faults=faults,
        )
        sim.run_closed_loop(120, 500)
        _assert_conservation(sim)
        done.append(sim.completed_total)
    assert done == sorted(done), f"completed not monotone in budget: {done}"


@pytest.mark.parametrize("case", range(4))
def test_random_fault_schedules_conserve_requests(case):
    """Randomized link/router flaps: whatever the epoch swaps drop, the
    retry path reclaims — conservation and engine agreement hold."""
    rng = np.random.default_rng(100 + case)
    table = _table("FoldedTorus", 20)
    topo = table.topology
    pairs = sorted({(min(u, v), max(u, v)) for (u, v) in topo.directed_links})
    picks = rng.choice(len(pairs), size=2, replace=False)
    down = int(rng.integers(130, 200))
    up = int(rng.integers(280, 380))
    sched = FaultSchedule.of(
        list(FaultSchedule.link_outage(
            [pairs[i] for i in picks], down_cycle=down, up_cycle=up
        ).events)
        + list(FaultSchedule.router_outage(
            [int(rng.integers(topo.n))], down_cycle=down + 20, up_cycle=up + 20
        ).events)
    )
    seed = int(rng.integers(1 << 16))
    ref, fast = _pair(table, seed, sched)
    sref = ref.run_closed_loop(**BUDGET)
    sfast = fast.run_closed_loop(**BUDGET)
    assert sref == sfast
    _assert_mirrors(ref, fast)
    _assert_conservation(ref)
    _assert_conservation(fast)


# ---------------------------------------------------------------------------
# Validation surface
# ---------------------------------------------------------------------------

class TestValidation:
    def test_faults_without_retry_rejected_by_both_engines(self):
        table = _table("Mesh", 16)
        faults = central_link_faults(table.topology, 1, cycle=50)
        for cls in (ClosedLoopSimulator, FastClosedLoopSimulator):
            with pytest.raises(ValueError, match="requires a RetryPolicy"):
                cls(table, uniform_random(16), demand_rate=0.02, faults=faults)

    def test_empty_schedule_needs_no_retry(self):
        validate_closed_loop_faults(FaultSchedule.of([]), None)
        validate_closed_loop_faults(None, None)

    def test_payload_builders_validate_client_side(self):
        from repro.fullsys.workloads import workload
        from repro.runner import tasks

        table = _table("Mesh", 16)
        faults = central_link_faults(table.topology, 1, cycle=50)
        w = workload("x264")
        with pytest.raises(ValueError, match="requires a RetryPolicy"):
            tasks.closed_loop_payload(
                table, w, None, 100, 200, 0, faults=faults, retry=None
            )
        with pytest.raises(ValueError, match="requires a RetryPolicy"):
            tasks.recovery_payload(
                table, w, None, faults, None, 500, 50, 0
            )

    def test_retry_policy_validates(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0)
        rp = RetryPolicy(timeout=96, retries=5, backoff=8, seed=3)
        assert RetryPolicy.from_dict(rp.as_dict()) == rp


# ---------------------------------------------------------------------------
# Recovery metrics (pure window math)
# ---------------------------------------------------------------------------

def _window(start, end, backlog, completed=10, rtt=50.0):
    return WindowSample(
        start=start, end=end, issued=completed, completed=completed,
        failed=0, retried=0, rtt_sum=rtt * completed,
        backlog=backlog, net_in_flight=backlog,
    )


class TestRecoveryMetrics:
    def test_finite_recovery(self):
        samples = (
            [_window(i * 50, (i + 1) * 50, 20) for i in range(4)]       # base
            + [_window(200 + i * 50, 250 + i * 50, 80, rtt=200.0)
               for i in range(4)]                                        # fault
            + [_window(400 + i * 50, 450 + i * 50, b, rtt=r)
               for i, (b, r) in enumerate([(60, 120.0), (24, 55.0),
                                           (21, 50.0)])]                 # heal
        )
        m = recovery_metrics(samples, fault_cycle=200, recovery_cycle=400)
        assert m.baseline_backlog == pytest.approx(20.0)
        assert m.time_to_drain == 100.0  # second post-repair window
        assert m.settling_time == 100.0
        assert m.recovered

    def test_never_drains_is_inf(self):
        samples = [_window(i * 50, (i + 1) * 50, 20) for i in range(4)] + [
            _window(200 + i * 50, 250 + i * 50, 90) for i in range(6)
        ]
        m = recovery_metrics(samples, fault_cycle=200, recovery_cycle=250)
        assert m.time_to_drain == float("inf")
        assert not m.recovered

    def test_no_completions_baseline_gives_nan_rtt(self):
        samples = [
            _window(0, 50, 10, completed=0),
            _window(50, 100, 10, completed=0),
            _window(100, 150, 10),
        ]
        m = recovery_metrics(samples, fault_cycle=100, recovery_cycle=100)
        assert m.baseline_rtt != m.baseline_rtt  # NaN
        assert m.settling_time == 50.0  # rtt criterion degrades to trivial
