"""Tests for channel-load analysis and throughput bounds."""

import numpy as np
import pytest

from repro.routing import (
    channel_loads,
    enumerate_shortest_paths,
    ndbt_route,
    single_shortest_paths,
    throughput_bounds,
)
from repro.topology import LAYOUT_4X5, Layout, Topology, folded_torus


class TestChannelLoads:
    def test_directed_ring_loads(self):
        """On a directed 4-ring every channel carries the same load:
        total link traversals / 4 channels = (4*(1+2+3))/4 = 6."""
        lay = Layout(rows=1, cols=4)
        t = Topology(lay, [(0, 1), (1, 2), (2, 3), (3, 0)])
        routes = single_shortest_paths(t, seed=0)
        la = channel_loads(routes)
        assert la.max_load == 6
        assert la.mean_load == pytest.approx(6.0)
        assert la.num_flows == 12

    def test_saturation_injection(self):
        lay = Layout(rows=1, cols=4)
        t = Topology(lay, [(0, 1), (1, 2), (2, 3), (3, 0)])
        la = channel_loads(single_shortest_paths(t, seed=0))
        assert la.saturation_injection(4) == pytest.approx(3 / 6)

    def test_weighted_loads(self):
        lay = Layout(rows=1, cols=3)
        t = Topology.from_undirected(lay, [(0, 1), (1, 2)])
        routes = single_shortest_paths(t, seed=0)
        w = np.zeros((3, 3))
        w[0, 2] = 2.0  # only one flow matters, doubled
        la = channel_loads(routes, weights=w)
        assert la.max_load == 2
        assert la.num_flows == 1

    def test_multi_path_rejected(self):
        ft = folded_torus(LAYOUT_4X5)
        full = enumerate_shortest_paths(ft)
        with pytest.raises(ValueError):
            channel_loads(full)

    def test_empty_loads(self):
        lay = Layout(rows=1, cols=3)
        t = Topology.from_undirected(lay, [(0, 1), (1, 2)])
        routes = single_shortest_paths(t, seed=0)
        la = channel_loads(routes, weights=np.zeros((3, 3)))
        assert la.max_load == 0
        assert la.saturation_injection(3) == float("inf")


class TestThroughputBounds:
    def test_bounds_ordering_folded_torus(self):
        """NDBT's random selection can't beat the best possible routed
        bound, which can't beat the topology-level bounds."""
        ft = folded_torus(LAYOUT_4X5)
        routes = ndbt_route(ft, seed=0)
        tb = throughput_bounds(ft, routes)
        assert tb.routed_bound <= min(tb.cut_bound, tb.occupancy_bound) + 1e-9
        assert tb.analytical == pytest.approx(min(tb.cut_bound, tb.occupancy_bound))
        assert tb.binding in ("cut", "occupancy")

    def test_folded_torus_cut_bound_value(self):
        """FT sparsest cut = 10/100 -> cut bound = 20 * 0.0833.. wait:
        the known exact sparsest-cut value is checked in metrics tests;
        here we pin the bound's consistency."""
        from repro.topology import sparsest_cut

        ft = folded_torus(LAYOUT_4X5)
        tb = throughput_bounds(ft, ndbt_route(ft, seed=0))
        assert tb.cut_bound == pytest.approx(19 * sparsest_cut(ft, exact=True).value)
