"""Unit tests for router layouts and the link-length taxonomy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    LAYOUT_4X5,
    LAYOUT_6X5,
    LAYOUT_8X6,
    LINK_CLASSES,
    Layout,
    class_max_length,
    standard_layout,
)


class TestLayoutBasics:
    def test_standard_sizes(self):
        assert LAYOUT_4X5.n == 20
        assert LAYOUT_6X5.n == 30
        assert LAYOUT_8X6.n == 48

    def test_row_major_positions(self):
        lay = LAYOUT_4X5
        assert lay.position(0) == (0, 0)
        assert lay.position(4) == (4, 0)
        assert lay.position(5) == (0, 1)
        assert lay.position(19) == (4, 3)

    def test_router_at_roundtrip(self):
        lay = LAYOUT_6X5
        for r in range(lay.n):
            x, y = lay.position(r)
            assert lay.router_at(x, y) == r

    def test_position_out_of_range(self):
        with pytest.raises(IndexError):
            LAYOUT_4X5.position(20)
        with pytest.raises(IndexError):
            LAYOUT_4X5.position(-1)

    def test_router_at_out_of_range(self):
        with pytest.raises(IndexError):
            LAYOUT_4X5.router_at(5, 0)

    def test_span_symmetric(self):
        lay = LAYOUT_4X5
        assert lay.span(0, 6) == lay.span(6, 0) == (1, 1)

    def test_length_euclidean(self):
        lay = LAYOUT_4X5
        assert lay.length(0, 2) == pytest.approx(2.0)
        assert lay.length(0, 6) == pytest.approx(math.sqrt(2))

    def test_standard_layout_lookup(self):
        assert standard_layout(20) is LAYOUT_4X5
        # non-preset counts get the most-square wider-than-tall grid
        assert (standard_layout(21).rows, standard_layout(21).cols) == (3, 7)
        with pytest.raises(ValueError):
            standard_layout(1)


class TestLinkClasses:
    def test_class_lengths_ordered(self):
        assert (
            class_max_length("small")
            < class_max_length("medium")
            < class_max_length("large")
        )

    def test_small_excludes_two_hop(self):
        links = set(LAYOUT_4X5.valid_links("small"))
        assert (0, 1) in links and (0, 6) in links
        assert (0, 2) not in links

    def test_medium_includes_20_and_02(self):
        links = set(LAYOUT_4X5.valid_links("medium"))
        assert (0, 2) in links  # (2,0) span
        assert (0, 10) in links  # (0,2) span
        assert (0, 7) not in links  # (2,1) span

    def test_large_includes_21(self):
        links = set(LAYOUT_4X5.valid_links("large"))
        assert (0, 7) in links  # (2,1)
        assert (0, 11) in links  # (1,2)
        assert (0, 3) not in links  # (3,0)

    def test_valid_links_are_directed_pairs(self):
        links = LAYOUT_4X5.valid_links("small")
        assert all((j, i) in set(links) for i, j in links)
        assert all(i != j for i, j in links)

    def test_counts_monotone_in_class(self):
        for lay in (LAYOUT_4X5, LAYOUT_6X5):
            s = len(lay.valid_links("small"))
            m = len(lay.valid_links("medium"))
            l = len(lay.valid_links("large"))
            assert s < m < l

    def test_link_class_of(self):
        lay = LAYOUT_4X5
        assert lay.link_class_of(0, 1) == "small"
        assert lay.link_class_of(0, 2) == "medium"
        assert lay.link_class_of(0, 7) == "large"
        with pytest.raises(ValueError):
            lay.link_class_of(0, 3)


class TestConcentration:
    def test_mc_routers_outer_columns(self):
        mcs = LAYOUT_4X5.mc_routers()
        assert len(mcs) == 8
        assert all(r % 5 in (0, 4) for r in mcs)

    def test_core_routers_complement(self):
        lay = LAYOUT_4X5
        assert sorted(lay.mc_routers() + lay.core_routers()) == list(range(20))


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(2, 8), cols=st.integers(2, 8))
def test_property_valid_links_within_length(rows, cols):
    lay = Layout(rows=rows, cols=cols)
    for cls, limit in LINK_CLASSES.items():
        maxlen = math.hypot(*limit) + 1e-9
        for i, j in lay.valid_links(cls):
            assert lay.length(i, j) <= maxlen


@settings(max_examples=30, deadline=None)
@given(rows=st.integers(2, 6), cols=st.integers(2, 6))
def test_property_position_bijective(rows, cols):
    lay = Layout(rows=rows, cols=cols)
    seen = {lay.position(r) for r in range(lay.n)}
    assert len(seen) == lay.n
