"""Tests for the closed-loop full-system model and speedup analysis."""

import math

import pytest

from repro.fullsys import (
    PARSEC,
    ClosedLoopSimulator,
    WorkloadProfile,
    demand_rate_for,
    geomean_speedups,
    run_workload,
    workload,
)
from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.sim import uniform_random
from repro.topology import LAYOUT_4X5, folded_torus, mesh


@pytest.fixture(scope="module")
def mesh_table():
    m = mesh(LAYOUT_4X5)
    r = ndbt_route(m, seed=0)
    return build_routing_table(r, assign_vcs(r, seed=0))


@pytest.fixture(scope="module")
def ft_table():
    ft = folded_torus(LAYOUT_4X5)
    r = ndbt_route(ft, seed=0)
    return build_routing_table(r, assign_vcs(r, seed=0))


class TestWorkloads:
    def test_twelve_benchmarks_no_vips(self):
        names = [w.name for w in PARSEC]
        assert len(names) == 12
        assert "vips" not in names
        assert "canneal" in names and "blackscholes" in names

    def test_sorted_by_mpki(self):
        mpkis = [w.l2_mpki for w in PARSEC]
        assert mpkis == sorted(mpkis)

    def test_lookup(self):
        assert workload("canneal").l2_mpki == pytest.approx(10.0)
        with pytest.raises(ValueError):
            workload("vips")

    def test_demand_rate_monotone_in_mpki(self):
        assert demand_rate_for(workload("canneal")) > demand_rate_for(
            workload("blackscholes")
        )

    def test_demand_rate_clamped(self):
        heavy = WorkloadProfile("synthetic", 100.0, 0.5, 1.0, 4.0)
        assert demand_rate_for(heavy) <= 0.45


class TestClosedLoop:
    def test_requests_complete(self, ft_table):
        sim = ClosedLoopSimulator(
            ft_table, uniform_random(20), demand_rate=0.05, mlp_per_node=8, seed=0
        )
        stats = sim.run_closed_loop(warmup=400, measure=1200)
        assert stats.completed_requests > 100
        assert math.isfinite(stats.avg_round_trip_cycles)

    def test_rtt_exceeds_one_way(self, ft_table):
        """Round trip includes request + service + data response."""
        sim = ClosedLoopSimulator(
            ft_table, uniform_random(20), demand_rate=0.03, mlp_per_node=4, seed=0
        )
        stats = sim.run_closed_loop(warmup=400, measure=1200)
        assert stats.avg_round_trip_cycles > 30

    def test_outstanding_bounded(self, ft_table):
        sim = ClosedLoopSimulator(
            ft_table, uniform_random(20), demand_rate=0.5, mlp_per_node=3, seed=0
        )
        for _ in range(600):
            sim.step()
            assert all(o <= 3 for o in sim.outstanding)

    def test_memory_fraction_routes_to_mcs(self, ft_table):
        sim = ClosedLoopSimulator(
            ft_table, uniform_random(20), demand_rate=0.1,
            memory_fraction=1.0, seed=0,
        )
        sim.run_closed_loop(warmup=100, measure=300)
        # all destinations were MCs; just assert it ran and completed some
        assert sim.completed >= 0


class TestSpeedupModel:
    def test_high_mpki_more_sensitive(self, mesh_table, ft_table):
        """canneal must gain more from a better network than
        blackscholes (the Fig. 8 scaling)."""
        bs_base = run_workload(mesh_table, workload("blackscholes"),
                               link_class="small", warmup=300, measure=1000)
        bs_ft = run_workload(ft_table, workload("blackscholes"),
                             link_class="medium", warmup=300, measure=1000)
        ca_base = run_workload(mesh_table, workload("canneal"),
                               link_class="small", warmup=300, measure=1000)
        ca_ft = run_workload(ft_table, workload("canneal"),
                             link_class="medium", warmup=300, measure=1000)
        assert ca_ft.speedup_over(ca_base) > bs_ft.speedup_over(bs_base)

    def test_latency_reduction_positive_for_better_topo(self, mesh_table, ft_table):
        w = workload("streamcluster")
        base = run_workload(mesh_table, w, link_class="small", warmup=300, measure=1000)
        ft = run_workload(ft_table, w, link_class="medium", warmup=300, measure=1000)
        assert ft.latency_reduction_over(base) > 0

    def test_self_speedup_is_one(self, mesh_table):
        w = workload("ferret")
        a = run_workload(mesh_table, w, link_class="small", warmup=300, measure=1000)
        assert a.speedup_over(a) == pytest.approx(1.0)

    def test_geomean(self):
        from repro.fullsys import Figure8Row

        rows = [
            Figure8Row("a", {"X": 1.1, "Y": 1.0}, {}),
            Figure8Row("b", {"X": 1.21, "Y": 1.0}, {}),
        ]
        gm = geomean_speedups(rows)
        assert gm["X"] == pytest.approx(math.sqrt(1.1 * 1.21))
        assert gm["Y"] == pytest.approx(1.0)
