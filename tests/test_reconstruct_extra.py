"""Additional tests for the reconstruction search internals."""

import numpy as np
import pytest

from repro.topology import LAYOUT_4X5, Layout, Signature, Topology, folded_torus
from repro.topology.reconstruct import (
    _balanced_cut_samples,
    _estimate_bisection,
    _random_valid_topology,
    anneal,
)
from repro.topology.metrics import bisection_bandwidth


class TestBisectionEstimator:
    def test_estimate_upper_bounds_exact(self):
        """The sampled estimator can only overestimate the true minimum."""
        ft = folded_torus(LAYOUT_4X5)
        masks = _balanced_cut_samples(20, LAYOUT_4X5, count=64, seed=0)
        est = _estimate_bisection(ft.adj, masks)
        assert est >= bisection_bandwidth(ft, exact=True)

    def test_geometric_cuts_included(self):
        """The horizontal split (the usual true bisection on grids) is in
        the sample set, so the estimate is exact for grid-regular nets."""
        ft = folded_torus(LAYOUT_4X5)
        masks = _balanced_cut_samples(20, LAYOUT_4X5, count=0, seed=0)
        est = _estimate_bisection(ft.adj, masks)
        assert est == bisection_bandwidth(ft, exact=True)  # 10, via row cut

    def test_masks_are_balanced(self):
        masks = _balanced_cut_samples(20, LAYOUT_4X5, count=32, seed=1)
        assert all(m.sum() == 10 for m in masks)


class TestRandomValidTopology:
    def test_respects_radix(self):
        rng = np.random.default_rng(0)
        allowed = LAYOUT_4X5.valid_links("small")
        edges = _random_valid_topology(LAYOUT_4X5, allowed, 38, 4, rng)
        deg = np.zeros(20, dtype=int)
        for a, b in edges:
            deg[a] += 1
            deg[b] += 1
        assert deg.max() <= 4

    def test_connected(self):
        rng = np.random.default_rng(1)
        allowed = LAYOUT_4X5.valid_links("medium")
        edges = _random_valid_topology(LAYOUT_4X5, allowed, 35, 4, rng)
        t = Topology.from_undirected(LAYOUT_4X5, edges)
        assert t.is_connected()


class TestAnnealMoves:
    def test_anneal_reaches_target_link_count(self):
        lay = Layout(rows=2, cols=4)
        allowed = lay.valid_links("small")

        def cost(t):
            return 0.0  # only the link-count term drives the search

        edges, c = anneal(lay, allowed, num_links=11, radix=3,
                          cost_fn=cost, steps=400, seed=3)
        assert len(edges) == 11
        assert c == pytest.approx(0.0)

    def test_anneal_optimizes_custom_cost(self):
        """Minimize diameter as a custom objective."""
        from repro.topology.metrics import diameter

        lay = Layout(rows=2, cols=4)
        allowed = lay.valid_links("medium")

        def cost(t):
            try:
                return float(diameter(t))
            except ValueError:
                return 1e9

        edges, c = anneal(lay, allowed, num_links=12, radix=4,
                          cost_fn=cost, steps=600, seed=5)
        t = Topology.from_undirected(lay, edges)
        assert diameter(t) <= 3
