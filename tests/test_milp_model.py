"""Unit tests for Model construction and the scipy/HiGHS backend."""

import numpy as np
import pytest

from repro.milp import (
    BINARY,
    CONTINUOUS,
    FEASIBLE,
    INFEASIBLE,
    INTEGER,
    MAXIMIZE,
    MINIMIZE,
    OPTIMAL,
    Model,
    quicksum,
)


class TestModelConstruction:
    def test_add_var_defaults(self):
        m = Model()
        x = m.add_var("x")
        assert x.domain == CONTINUOUS and x.lb == 0.0
        assert m.num_vars == 1

    def test_add_binary_bounds(self):
        m = Model()
        b = m.add_binary("b")
        assert b.domain == BINARY and (b.lb, b.ub) == (0.0, 1.0)

    def test_add_integer(self):
        m = Model()
        i = m.add_integer("i", lb=2, ub=9)
        assert i.domain == INTEGER and (i.lb, i.ub) == (2, 9)

    def test_add_vars_bulk(self):
        m = Model()
        vs = m.add_vars(5, prefix="y")
        assert len(vs) == 5 and vs[3].name == "y[3]"

    def test_add_constr_rejects_non_constraint(self):
        m = Model()
        x = m.add_var("x")
        with pytest.raises(TypeError):
            m.add_constr(x + 1)  # an expression, not a comparison

    def test_to_arrays_shapes(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_integer("y", ub=4)
        m.add_constr(x + y <= 3)
        m.add_constr(x - y >= -1)
        m.set_objective(x + 2 * y)
        c, c0, A, lo, hi, integrality, lb, ub = m.to_arrays()
        assert c.tolist() == [1.0, 2.0]
        assert A.shape == (2, 2)
        assert integrality.tolist() == [0, 1]

    def test_maximize_negates_in_arrays(self):
        m = Model(sense=MAXIMIZE)
        x = m.add_var("x", ub=2)
        m.set_objective(3 * x)
        c, c0, *_ = m.to_arrays()
        assert c.tolist() == [-3.0]


class TestScipySolve:
    def test_simple_lp(self):
        m = Model()
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constr(x + y <= 8)
        m.set_objective(-(x + 2 * y))  # maximize x+2y by minimizing negative
        res = m.solve()
        assert res.status == OPTIMAL
        assert res.objective == pytest.approx(-16.0)

    def test_simple_milp(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        m.add_constr(2 * x <= 7)
        m.set_objective(-x)
        res = m.solve()
        assert res.status == OPTIMAL
        assert res.value(x) == pytest.approx(3.0)

    def test_maximize_orientation(self):
        m = Model(sense=MAXIMIZE)
        x = m.add_integer("x", ub=5)
        m.add_constr(x <= 4)
        m.set_objective(x + 10)
        res = m.solve()
        assert res.objective == pytest.approx(14.0)

    def test_infeasible(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constr(x >= 2)
        res = m.solve()
        assert res.status == INFEASIBLE
        assert not res.ok

    def test_binary_knapsack(self):
        m = Model(sense=MAXIMIZE)
        values = [6, 10, 12]
        weights = [1, 2, 3]
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 5)
        m.set_objective(quicksum(v * x for v, x in zip(values, xs)))
        res = m.solve()
        assert res.objective == pytest.approx(22.0)  # items 2 and 3

    def test_value_of_expression(self):
        m = Model()
        x = m.add_integer("x", ub=3)
        m.add_constr(x >= 3)
        m.set_objective(x)
        res = m.solve()
        assert res.value(2 * x + 1) == pytest.approx(7.0)

    def test_value_without_solution_raises(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constr(x >= 2)
        res = m.solve()
        with pytest.raises(ValueError):
            res.value(x)

    def test_objective_constant_carried(self):
        m = Model()
        x = m.add_var("x", lb=1, ub=1)
        m.set_objective(x + 100)
        res = m.solve()
        assert res.objective == pytest.approx(101.0)

    def test_time_limit_returns_result(self):
        # tiny model: even with a 1ms budget we should get *some* status back
        m = Model()
        x = m.add_integer("x", ub=3)
        m.set_objective(x)
        res = m.solve(time_limit=0.001)
        assert res.status in (OPTIMAL, FEASIBLE, "no_solution")

    def test_unbounded_detected(self):
        m = Model()
        x = m.add_var("x")  # lb=0, no ub
        m.set_objective(-x)
        res = m.solve()
        assert res.status in ("unbounded", INFEASIBLE, "no_solution")
        assert not res.ok

    def test_equality_constraint(self):
        m = Model()
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constr(x + y == 6)
        m.add_constr(x - y == 2)
        m.set_objective(x)
        res = m.solve()
        assert res.value(x) == pytest.approx(4.0)
        assert res.value(y) == pytest.approx(2.0)

    def test_empty_constraints_model(self):
        m = Model()
        x = m.add_var("x", ub=2)
        m.set_objective(x)
        res = m.solve()
        assert res.status == OPTIMAL
        assert res.objective == pytest.approx(0.0)
