"""Differential suite: fast closed-loop engine vs the reference.

The fast engine's contract is *bit-identical* closed-loop behaviour:
same RNG draw order (demand/memory-fraction/destination draws replayed
from raw PCG64 words), same reply scheduling, same
:class:`~repro.fullsys.closedloop.ClosedLoopStats` — across topologies,
PARSEC workloads, seeds, traffic patterns (including the spec-less
custom-pattern fallback), and the engine-selection plumbing of
:func:`~repro.fullsys.speedup.run_workload`.
"""

import math

import pytest

from repro.fullsys import (
    PARSEC,
    ClosedLoopSimulator,
    FastClosedLoopSimulator,
    resolve_closed_loop_engine,
    validate_closed_loop,
    workload,
)
from repro.fullsys.speedup import demand_rate_for, run_workload
from repro.routing import assign_vcs, build_routing_table, ndbt_route
from repro.sim import uniform_random
from repro.sim.traffic import TrafficPattern, hotspot, memory_traffic, shuffle_pattern
from repro.topology import LAYOUT_4X5, Layout, Topology, folded_torus, mesh

#: Workloads spanning the MPKI (demand-rate / MLP) range.
WORKLOAD_NAMES = ("blackscholes", "x264", "streamcluster", "canneal")

BUDGET = dict(warmup=120, measure=350)


def _table(topo):
    routes = ndbt_route(topo, seed=0)
    return build_routing_table(routes, assign_vcs(routes, seed=0))


@pytest.fixture(scope="module")
def tables():
    small = Topology.from_undirected(
        Layout(rows=2, cols=3),
        [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)],
        name="mesh2x3",
        link_class="small",
    )
    return {
        "Mesh": _table(mesh(LAYOUT_4X5)),
        "FoldedTorus": _table(folded_torus(LAYOUT_4X5)),
        "mesh2x3": _table(small),
    }


def _pair(table, traffic_fn, seed, **kw):
    """Run both engines on identical inputs; return (ref, fast)."""
    ref = ClosedLoopSimulator(table, traffic_fn(), seed=seed, **kw)
    fast = FastClosedLoopSimulator(table, traffic_fn(), seed=seed, **kw)
    sref = ref.run_closed_loop(**BUDGET)
    sfast = fast.run_closed_loop(**BUDGET)
    return (ref, sref), (fast, sfast)


class TestDifferential:
    @pytest.mark.parametrize("topo_name", ["Mesh", "FoldedTorus", "mesh2x3"])
    @pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_parsec_workloads(self, tables, topo_name, workload_name, seed):
        table = tables[topo_name]
        w = workload(workload_name)
        n = table.topology.n
        kw = dict(
            demand_rate=demand_rate_for(w),
            mlp_per_node=int(round(w.mlp * 3.2)),
            memory_fraction=w.memory_fraction,
        )
        (ref, sref), (fast, sfast) = _pair(
            table, lambda: uniform_random(n), seed, **kw
        )
        assert sref == sfast
        assert ref.outstanding == fast.outstanding
        assert ref.cycle == fast.cycle
        assert sorted(ref.pending_replies) == sorted(fast.pending_replies)
        # in-flight accounting agrees and stays meaningful (each live
        # packet counted once; completed transactions fully retired)
        assert ref.in_flight == fast.in_flight >= 0

    @pytest.mark.parametrize("demand,memf,mlp", [
        (0.05, 0.5, 8),
        (0.3, 0.7, 10),   # MLP-saturated
        (0.45, 0.0, 6),   # no memory traffic (memf draw still consumed)
        (0.2, 1.0, 4),    # all-memory traffic
    ])
    def test_operating_points(self, tables, demand, memf, mlp):
        table = tables["FoldedTorus"]
        (ref, sref), (fast, sfast) = _pair(
            table, lambda: uniform_random(20), 0,
            demand_rate=demand, memory_fraction=memf, mlp_per_node=mlp,
        )
        assert sref == sfast
        assert ref.outstanding == fast.outstanding

    @pytest.mark.parametrize("pattern_fn", [
        lambda n, layout: uniform_random(n),
        lambda n, layout: memory_traffic(layout),
        lambda n, layout: shuffle_pattern(n),
        lambda n, layout: hotspot(n, [0, 7, 12], 0.6),
    ], ids=["uniform", "memory", "shuffle", "hotspot"])
    def test_traffic_patterns(self, tables, pattern_fn):
        """Every DestSpec kind (uniform/memory/table/hotspot) goes
        through the raw-word destination emulation."""
        table = tables["Mesh"]
        layout = table.topology.layout
        (ref, sref), (fast, sfast) = _pair(
            table, lambda: pattern_fn(20, layout), 3,
            demand_rate=0.15, memory_fraction=0.4, mlp_per_node=6,
        )
        assert sref == sfast
        assert ref.outstanding == fast.outstanding

    def test_custom_pattern_fallback(self, tables):
        """Spec-less patterns take the real-Generator fallback path and
        stay bit-identical."""
        table = tables["Mesh"]

        def make():
            def dest(src, rng):
                d = int(rng.integers(19))
                return d if d < src else d + 1

            return TrafficPattern("custom", 20, dest, dest_spec=None)

        (ref, sref), (fast, sfast) = _pair(
            table, make, 2,
            demand_rate=0.2, memory_fraction=0.5, mlp_per_node=8,
        )
        assert fast._closed_gen.__func__ is FastClosedLoopSimulator._generate_fallback
        assert sref == sfast
        assert ref.outstanding == fast.outstanding

    def test_explicit_mc_routers(self, tables):
        table = tables["Mesh"]
        mcs = [2, 9, 17]
        (ref, sref), (fast, sfast) = _pair(
            table, lambda: uniform_random(20), 1,
            demand_rate=0.25, memory_fraction=0.8, mlp_per_node=5,
            mc_routers=mcs,
        )
        assert sref == sfast
        assert ref.mc_routers == fast.mc_routers == mcs

    def test_stats_are_meaningful(self, tables):
        """Guard against vacuous equality: the runs actually complete
        requests and measure finite round trips."""
        (_, sref), (_, sfast) = _pair(
            tables["FoldedTorus"], lambda: uniform_random(20), 0,
            demand_rate=0.1, memory_fraction=0.5, mlp_per_node=8,
        )
        assert sref.completed_requests > 50
        assert math.isfinite(sref.avg_round_trip_cycles)
        assert sref.rtt_sum == sfast.rtt_sum > 0


class TestRunWorkloadEngine:
    def test_engine_parity_and_default(self, tables):
        table = tables["FoldedTorus"]
        w = workload("streamcluster")
        ref = run_workload(table, w, warmup=150, measure=400, engine="reference")
        fast = run_workload(table, w, warmup=150, measure=400, engine="fast")
        default = run_workload(table, w, warmup=150, measure=400)
        assert ref == fast == default  # fast is the default engine

    def test_resolve(self):
        assert resolve_closed_loop_engine("fast") is FastClosedLoopSimulator
        assert resolve_closed_loop_engine("reference") is ClosedLoopSimulator
        with pytest.raises(ValueError, match="unknown closed-loop engine"):
            resolve_closed_loop_engine("warp")


class TestValidation:
    @pytest.mark.parametrize("engine_cls", [
        ClosedLoopSimulator, FastClosedLoopSimulator,
    ])
    def test_bad_demand_rate(self, tables, engine_cls):
        for bad in (1.0, 1.5, -0.1):
            with pytest.raises(ValueError, match="demand_rate"):
                engine_cls(
                    tables["Mesh"], uniform_random(20), demand_rate=bad
                )

    @pytest.mark.parametrize("engine_cls", [
        ClosedLoopSimulator, FastClosedLoopSimulator,
    ])
    def test_empty_mc_routers(self, tables, engine_cls):
        with pytest.raises(ValueError, match="mc_routers is empty"):
            engine_cls(
                tables["Mesh"], uniform_random(20), demand_rate=0.1,
                mc_routers=[],
            )

    @pytest.mark.parametrize("engine_cls", [
        ClosedLoopSimulator, FastClosedLoopSimulator,
    ])
    def test_single_mc_router_cannot_serve_itself(self, tables, engine_cls):
        """The pre-fix crash: router 5 drawing a memory target from
        ``[m for m in [5] if m != 5]`` == []."""
        with pytest.raises(ValueError, match="no memory target"):
            engine_cls(
                tables["Mesh"], uniform_random(20), demand_rate=0.1,
                mc_routers=[5], memory_fraction=0.5,
            )

    def test_single_mc_ok_without_memory_traffic(self, tables):
        """memory_fraction=0 never draws a memory target, so a single
        MC is harmless — and both engines still agree."""
        (ref, sref), (fast, sfast) = _pair(
            tables["Mesh"], lambda: uniform_random(20), 0,
            demand_rate=0.2, memory_fraction=0.0, mlp_per_node=6,
            mc_routers=[5],
        )
        assert sref == sfast

    @pytest.mark.parametrize("engine_cls", [
        ClosedLoopSimulator, FastClosedLoopSimulator,
    ])
    def test_mc_router_out_of_range(self, tables, engine_cls):
        with pytest.raises(ValueError, match="outside"):
            engine_cls(
                tables["Mesh"], uniform_random(20), demand_rate=0.1,
                mc_routers=[3, 99],
            )

    def test_validate_helper_direct(self):
        validate_closed_loop(20, 0.3, 0.5, [0, 19], 8)
        with pytest.raises(ValueError, match="memory_fraction"):
            validate_closed_loop(20, 0.3, 1.2, [0, 19], 8)
        with pytest.raises(ValueError, match="mlp_per_node"):
            validate_closed_loop(20, 0.3, 0.5, [0, 19], 0)


class TestClosedLoopBehaviour:
    """The reference suite's behavioural properties hold on the fast
    engine too (it is the default under ``run_workload``)."""

    def test_outstanding_bounded(self, tables):
        sim = FastClosedLoopSimulator(
            tables["FoldedTorus"], uniform_random(20),
            demand_rate=0.5, mlp_per_node=3, seed=0,
        )
        for _ in range(60):
            for _ in range(10):
                sim.step()
            assert all(o <= 3 for o in sim.outstanding)

    def test_rtt_exceeds_one_way(self, tables):
        sim = FastClosedLoopSimulator(
            tables["FoldedTorus"], uniform_random(20),
            demand_rate=0.03, mlp_per_node=4, seed=0,
        )
        stats = sim.run_closed_loop(warmup=400, measure=1200)
        assert stats.avg_round_trip_cycles > 30
