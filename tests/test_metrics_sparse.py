"""Property test: sparse (CSR BFS) metrics == dense hop-matrix metrics.

The sparse paths are the scale-enabling default; the dense paths are the
historical oracle.  For random strongly-connected topologies at n in
{16, 64, 256} the two must agree exactly — average hops, diameter, and
the full hop histogram (distances are small exact integers, so there is
no tolerance to hide behind).
"""

import numpy as np
import pytest

from repro.topology import Layout, Topology, average_hops, diameter
from repro.topology.metrics import hop_histogram


def _random_connected(lay: Layout, rng: np.random.Generator) -> Topology:
    """Bidirectional boustrophedon ring (strong connectivity) plus
    random extra directed links."""
    n = lay.n
    snake = []
    for y in range(lay.rows):
        xs = range(lay.cols) if y % 2 == 0 else range(lay.cols - 1, -1, -1)
        snake.extend(lay.router_at(x, y) for x in xs)
    links = set()
    for k in range(n):
        a, b = snake[k], snake[(k + 1) % n]
        links.add((a, b))
        links.add((b, a))
    extra = max(n // 2, 4)
    for _ in range(extra):
        a = int(rng.integers(n))
        b = int(rng.integers(n))
        if a != b:
            links.add((a, b))
    return Topology(lay, sorted(links), name=f"rand-{lay.rows}x{lay.cols}")


@pytest.mark.parametrize("rows,cols", [(4, 4), (8, 8), (16, 16)])
def test_sparse_metrics_match_dense(rows, cols):
    lay = Layout(rows=rows, cols=cols)
    rng = np.random.default_rng(rows * 1000 + cols)
    for trial in range(8 if rows * cols <= 64 else 3):
        topo = _random_connected(lay, rng)
        ctx = f"{rows}x{cols} trial {trial}"
        assert average_hops(topo, method="sparse") == average_hops(
            topo, method="dense"
        ), ctx
        assert diameter(topo, method="sparse") == diameter(
            topo, method="dense"
        ), ctx
        assert hop_histogram(topo, method="sparse") == hop_histogram(
            topo, method="dense"
        ), ctx


def test_sparse_metrics_match_dense_sparse_ring():
    """Worst-case sparsity: the bare ring (diameter ~ n)."""
    lay = Layout(rows=4, cols=4)
    n = lay.n
    links = [(k, (k + 1) % n) for k in range(n)]
    links += [((k + 1) % n, k) for k in range(n)]
    topo = Topology(lay, sorted(set(links)), name="ring")
    assert average_hops(topo, "sparse") == average_hops(topo, "dense")
    assert diameter(topo, "sparse") == diameter(topo, "dense")
    assert hop_histogram(topo, "sparse") == hop_histogram(topo, "dense")
