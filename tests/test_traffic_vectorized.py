"""Property suite for the vectorized traffic paths.

Pins the tentpole invariant of the trace subsystem: batched destination
draws (`TrafficPattern.destinations`) and pre-generated traces
(`TraceStream`) replicate the scalar reference draw stream bit-exactly —
same values *and* the same final RNG stream position — for all eight
built-in patterns, across seeds, chunk sizes, and degenerate
configurations numpy special-cases (single-candidate bounds, rates
above 1.0)."""

import numpy as np
import pytest

from repro.sim import TraceStream
from repro.sim.traffic import (
    bit_complement,
    hotspot,
    memory_traffic,
    neighbor,
    shuffle_pattern,
    tornado,
    transpose,
    uniform_random,
)
from repro.topology import LAYOUT_4X5, Layout


def all_patterns(layout):
    n = layout.n
    return [
        uniform_random(n),
        memory_traffic(layout),
        shuffle_pattern(n),
        bit_complement(n),
        transpose(layout),
        tornado(layout),
        neighbor(layout),
        hotspot(n, layout.mc_routers()),
    ]


EDGE_PATTERNS = [
    hotspot(20, [3], 0.7),        # single hotspot: bound-1 no-consume path
    hotspot(20, [3, 11], 0.0),    # hot branch never taken (draw still burned)
    hotspot(20, [3, 11], 1.0),    # hot branch always taken
]


class TestDestinationsMatchScalarStream:
    @pytest.mark.parametrize("pattern_idx", range(8))
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_patterns_all_seeds(self, pattern_idx, seed):
        pat = all_patterns(LAYOUT_4X5)[pattern_idx]
        srcs = np.random.default_rng(seed + 50).integers(20, size=301)
        r_scalar = np.random.default_rng(seed)
        r_vec = np.random.default_rng(seed)
        scalar = [pat.destination(int(s), r_scalar) for s in srcs]
        vec = pat.destinations(srcs, r_vec)
        assert list(vec) == scalar
        # final stream positions coincide: further draws agree
        assert r_scalar.random() == r_vec.random()
        assert int(r_scalar.integers(19)) == int(r_vec.integers(19))

    @pytest.mark.parametrize("pat", EDGE_PATTERNS, ids=lambda p: p.name + str(p.dest_spec.hot_fraction))
    def test_degenerate_hotspots(self, pat):
        srcs = list(range(20)) * 5
        r_scalar = np.random.default_rng(7)
        r_vec = np.random.default_rng(7)
        scalar = [pat.destination(s, r_scalar) for s in srcs]
        vec = pat.destinations(srcs, r_vec)
        assert list(vec) == scalar
        assert r_scalar.random() == r_vec.random()

    def test_interleaved_scalar_and_vector_calls(self):
        """Batched and scalar draws can alternate freely: the half-word
        cache carried between them stays consistent."""
        pat = memory_traffic(LAYOUT_4X5)
        r_a = np.random.default_rng(21)
        r_b = np.random.default_rng(21)
        seq_a = []
        seq_b = []
        for round_ in range(4):
            seq_a.append(pat.destination(round_, r_a))
            seq_b.append(int(pat.destinations([round_], r_b)[0]))
            srcs = list(range(1, 20, 2))
            seq_a.extend(pat.destination(s, r_a) for s in srcs)
            seq_b.extend(int(d) for d in pat.destinations(srcs, r_b))
        assert seq_a == seq_b
        assert r_a.random() == r_b.random()

    def test_empty_batch_consumes_nothing(self):
        pat = uniform_random(20)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"]
        assert pat.destinations([], rng).size == 0
        assert rng.bit_generator.state["state"] == before


def reference_event_stream(pat, n, rate, seed, ncycles):
    """The (cycle, src, dst, size) stream the reference engine's
    ``_generate`` produces — scalar draws, verbatim order."""
    rng = np.random.default_rng(seed)
    whole = int(rate)
    frac = rate - whole
    out = []
    for c in range(ncycles):
        draws = rng.random(n)
        for node in range(n):
            count = whole + (1 if draws[node] < frac else 0)
            for _ in range(count):
                dst = pat.destination(node, rng)
                size = pat.packet_size(rng)
                out.append((c, node, dst, size))
    return out


def trace_event_stream(pat, n, rate, seed, ncycles, chunk_cycles):
    stream = TraceStream(
        pat, n, rate, np.random.default_rng(seed), chunk_cycles=chunk_cycles
    )
    out = []
    while stream.next_cycle < ncycles:
        _, cyc, src, dst, size = stream.next_chunk()
        out.extend(zip(cyc.tolist(), src.tolist(), dst.tolist(), size.tolist()))
    return [e for e in out if e[0] < ncycles]


class TestTraceStreamMatchesReference:
    @pytest.mark.parametrize("pattern_idx", range(8))
    def test_all_patterns_tiny_chunks(self, pattern_idx):
        """chunk_cycles=7 forces dozens of chunk boundaries (and
        half-word cache carries) across 150 cycles."""
        pat = all_patterns(LAYOUT_4X5)[pattern_idx]
        for rate in (0.07, 0.33):
            ref = reference_event_stream(pat, 20, rate, 5, 150)
            got = trace_event_stream(pat, 20, rate, 5, 150, chunk_cycles=7)
            assert got == ref, (pat.name, rate)

    @pytest.mark.parametrize("rate", [1.0, 1.5, 2.25])
    def test_super_unit_rates_scalar_path(self, rate):
        pat = uniform_random(20)
        ref = reference_event_stream(pat, 20, rate, 9, 60)
        got = trace_event_stream(pat, 20, rate, 9, 60, chunk_cycles=16)
        assert got == ref

    def test_single_hotspot_scalar_path(self):
        """bounds == 1 routes to scalar emulation (numpy's integers(1)
        consumes nothing) and still matches the reference stream."""
        pat = hotspot(20, [4], 0.6)
        stream = TraceStream(pat, 20, 0.2, np.random.default_rng(1))
        assert not stream._vec_ok
        ref = reference_event_stream(pat, 20, 0.2, 1, 120)
        got = trace_event_stream(pat, 20, 0.2, 1, 120, chunk_cycles=32)
        assert got == ref

    def test_vectorized_and_scalar_paths_agree(self):
        """The two generation paths consume the identical word stream."""
        for pat in (uniform_random(20), memory_traffic(LAYOUT_4X5),
                    hotspot(20, LAYOUT_4X5.mc_routers()), tornado(LAYOUT_4X5)):
            a = TraceStream(pat, 20, 0.25, np.random.default_rng(3), chunk_cycles=64)
            b = TraceStream(pat, 20, 0.25, np.random.default_rng(3), chunk_cycles=64)
            assert a._vec_ok
            b._vec_ok = False  # force scalar emulation
            for _ in range(4):
                ca = a.next_chunk()
                cb = b.next_chunk()
                assert ca[0] == cb[0]
                for xa, xb in zip(ca[1:], cb[1:]):
                    assert np.array_equal(xa, xb), pat.name

    def test_larger_grid_memory_pattern(self):
        lay = Layout(rows=8, cols=6)
        pat = memory_traffic(lay)
        ref = reference_event_stream(pat, 48, 0.15, 2, 90)
        got = trace_event_stream(pat, 48, 0.15, 2, 90, chunk_cycles=13)
        assert got == ref


def reference_bursty_stream(pat, n, rate, seed, ncycles):
    """The reference engine's ``_generate`` under a burst gate: the
    packet-draw RNG is untouched, an independent ``BurstState`` scales
    the per-(cycle, node) Bernoulli threshold, and effective rates
    above 1.0 inject their whole part unconditionally."""
    gate = pat.burst.state(n)
    rng = np.random.default_rng(seed)
    out = []
    for c in range(ncycles):
        draws = rng.random(n)
        g = gate.row(c)
        for node in range(n):
            eff = rate * g[node]
            count = int(eff) + (1 if draws[node] < eff - int(eff) else 0)
            for _ in range(count):
                dst = pat.destination(node, rng)
                size = pat.packet_size(rng)
                out.append((c, node, dst, size))
    return out


class TestBurstyTraceMatchesReference:
    MMPP = dict(kind="mmpp", p_on=0.2, p_off=0.2, seed=4)
    STORM = dict(kind="storm", p_on=0.15, p_off=0.3, seed=9)
    LRD = dict(kind="lrd", p_on=0.12, p_off=0.3, seed=4, alpha=1.4)

    def _spec(self, fields, **over):
        from repro.sim import BurstSpec

        return BurstSpec(**{**fields, **over})

    @pytest.mark.parametrize(
        "fields", [MMPP, STORM, LRD], ids=["mmpp", "storm", "lrd"]
    )
    def test_vectorized_path_tiny_chunks(self, fields):
        """rate * max_scale < 1 keeps the vectorized path eligible; the
        gate rows must line up with chunk boundaries at stride 7."""
        pat = uniform_random(20).with_burst(self._spec(fields))
        stream = TraceStream(pat, 20, 0.2, np.random.default_rng(5))
        assert stream._vec_ok  # on_scale resolves to <= 2.5 here
        ref = reference_bursty_stream(pat, 20, 0.2, 5, 150)
        got = trace_event_stream(pat, 20, 0.2, 5, 150, chunk_cycles=7)
        assert got == ref

    def test_bursty_hotspot_vectorized(self):
        pat = hotspot(20, [3, 11], 0.6).with_burst(self._spec(self.STORM))
        ref = reference_bursty_stream(pat, 20, 0.15, 2, 120)
        got = trace_event_stream(pat, 20, 0.15, 2, 120, chunk_cycles=13)
        assert got == ref

    def test_guard_breaks_to_scalar_path(self):
        """An ON-phase effective rate above 1.0 disqualifies the
        vectorized path (the whole part would be nonzero); the scalar
        fallback must still replicate the reference stream, multi-packet
        cycles included."""
        spec = self._spec(self.MMPP, on_scale=3.0)
        pat = uniform_random(20).with_burst(spec)
        rate = 0.5  # ON phase: eff = 1.5 -> whole part 1
        stream = TraceStream(pat, 20, rate, np.random.default_rng(6))
        assert not stream._vec_ok
        ref = reference_bursty_stream(pat, 20, rate, 6, 100)
        got = trace_event_stream(pat, 20, rate, 6, 100, chunk_cycles=16)
        assert got == ref
        assert any(e[0] == f[0] and e[1] == f[1]
                   for e, f in zip(ref, ref[1:]))  # multi-packet cycles hit

    def test_bursty_lrd_hotspot(self):
        """Heavy-tailed gates over a hotspot pattern: the self-similar
        scenario the recovery/robustness grids lean on."""
        pat = hotspot(20, [3, 11], 0.6).with_burst(self._spec(self.LRD))
        ref = reference_bursty_stream(pat, 20, 0.15, 2, 160)
        got = trace_event_stream(pat, 20, 0.15, 2, 160, chunk_cycles=11)
        assert got == ref

    def test_forced_scalar_agrees_with_vectorized(self):
        """Both generation paths consume the identical word stream under
        modulation, each against its own independent gate chain."""
        pat = uniform_random(20).with_burst(self._spec(self.MMPP))
        a = TraceStream(pat, 20, 0.25, np.random.default_rng(3), chunk_cycles=64)
        b = TraceStream(pat, 20, 0.25, np.random.default_rng(3), chunk_cycles=64)
        assert a._vec_ok
        b._vec_ok = False  # force scalar emulation
        for _ in range(4):
            ca = a.next_chunk()
            cb = b.next_chunk()
            assert ca[0] == cb[0]
            for xa, xb in zip(ca[1:], cb[1:]):
                assert np.array_equal(xa, xb)


class TestHotspotValidation:
    def test_empty_hotspots_rejected(self):
        with pytest.raises(ValueError, match="at least one router"):
            hotspot(20, [])

    @pytest.mark.parametrize("bad", [-0.1, 1.01, 5.0])
    def test_hot_fraction_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError, match="hot_fraction"):
            hotspot(20, [1, 2], bad)

    def test_boundary_fractions_accepted(self):
        assert hotspot(20, [1], 0.0).dest_spec.hot_fraction == 0.0
        assert hotspot(20, [1], 1.0).dest_spec.hot_fraction == 1.0

    def test_spec_rejects_via_runner_builder(self):
        from repro.runner import TrafficSpec

        with pytest.raises(ValueError):
            TrafficSpec.hotspot(20, ()).build()
