"""Tests for simulator instrumentation, extra traffic, and generators."""

import numpy as np
import pytest

from repro.routing import assign_vcs, build_routing_table, ndbt_route, single_shortest_paths
from repro.sim import (
    DeadlockError,
    InstrumentedSimulator,
    bit_complement,
    measure_activity,
    neighbor,
    tornado,
    transpose,
    uniform_random,
)
from repro.topology import (
    LAYOUT_4X5,
    Layout,
    Topology,
    average_hops,
    concentrated_mesh,
    folded_torus,
    mesh,
    ring,
    torus,
)


@pytest.fixture(scope="module")
def ft_table():
    ft = folded_torus(LAYOUT_4X5)
    r = ndbt_route(ft, seed=0)
    return build_routing_table(r, assign_vcs(r, seed=0))


class TestInstrumentation:
    def test_channel_utilization_in_unit_range(self, ft_table):
        sim = InstrumentedSimulator(ft_table, uniform_random(20), 0.1, seed=0)
        sim.run(200, 800)
        rep = sim.report()
        assert 0.0 < rep.mean_utilization <= 1.0
        assert rep.max_utilization <= 1.0 + 1e-9

    def test_utilization_grows_with_load(self, ft_table):
        def util(rate):
            sim = InstrumentedSimulator(ft_table, uniform_random(20), rate, seed=0)
            sim.run(200, 800)
            return sim.report().mean_utilization

        assert util(0.12) > util(0.03)

    def test_hottest_channels_sorted(self, ft_table):
        sim = InstrumentedSimulator(ft_table, uniform_random(20), 0.1, seed=0)
        sim.run(200, 800)
        hot = sim.report().hottest_channels(5)
        vals = [v for _, v in hot]
        assert vals == sorted(vals, reverse=True)

    def test_latency_percentiles_ordered(self, ft_table):
        sim = InstrumentedSimulator(ft_table, uniform_random(20), 0.08, seed=0)
        sim.run(200, 1000)
        pct = sim.report().latency_percentiles()
        assert pct[50] <= pct[90] <= pct[99]

    def test_measure_activity_helper(self, ft_table):
        a = measure_activity(ft_table, uniform_random(20), 0.1,
                             warmup=200, measure=600)
        assert 0.0 < a < 1.0

    def test_watchdog_fires_on_stuck_network(self):
        """A routing table that sends flows through a missing path would
        deadlock; emulate by a watchdog window shorter than any possible
        ejection gap under zero service: use a tiny window + burst."""
        ft = folded_torus(LAYOUT_4X5)
        r = ndbt_route(ft, seed=0)
        table = build_routing_table(r, assign_vcs(r, seed=0))
        sim = InstrumentedSimulator(
            table, uniform_random(20), 0.0, watchdog_cycles=5, seed=0
        )
        # plant a packet that never moves: inject into a source queue of a
        # node whose injection port we immediately block forever
        from repro.sim.packet import Packet

        sim.source_q[0].append(Packet(0, 0, 5, 9, 0, vc=table.vc(0, 5)))
        sim.in_flight += 1
        sim.inj_busy[0] = 10**9  # injection port never frees
        with pytest.raises(DeadlockError):
            for _ in range(50):
                sim.step()

    def test_healthy_network_never_trips_watchdog(self, ft_table):
        sim = InstrumentedSimulator(
            ft_table, uniform_random(20), 0.1, watchdog_cycles=2000, seed=0
        )
        sim.run(300, 1000)  # must not raise


class TestExtraTraffic:
    def test_bit_complement_involution(self):
        tp = bit_complement(20)
        rng = np.random.default_rng(0)
        for s in range(20):
            d = tp.destination(s, rng)
            if d == 19 - s:  # non-degenerate case
                assert tp.destination(d, rng) == s

    def test_transpose_square_grid(self):
        lay = Layout(rows=4, cols=4)
        tp = transpose(lay)
        rng = np.random.default_rng(0)
        # (1,2) -> (2,1)
        src = lay.router_at(1, 2)
        assert tp.destination(src, rng) == lay.router_at(2, 1)

    def test_tornado_half_way(self):
        tp = tornado(LAYOUT_4X5)
        rng = np.random.default_rng(0)
        src = LAYOUT_4X5.router_at(0, 1)
        assert tp.destination(src, rng) == LAYOUT_4X5.router_at(2, 1)

    def test_neighbor_wraps(self):
        tp = neighbor(LAYOUT_4X5)
        rng = np.random.default_rng(0)
        src = LAYOUT_4X5.router_at(4, 0)
        assert tp.destination(src, rng) == LAYOUT_4X5.router_at(0, 0)

    def test_no_self_destinations(self):
        rng = np.random.default_rng(1)
        for tp in (bit_complement(20), transpose(LAYOUT_4X5),
                   tornado(LAYOUT_4X5), neighbor(LAYOUT_4X5)):
            for s in range(20):
                assert tp.destination(s, rng) != s, tp.name


class TestGenerators:
    def test_ring_connected_low_degree(self):
        r = ring(LAYOUT_4X5)
        assert r.is_connected()
        assert r.max_radix() <= 2

    def test_torus_metrics_beat_mesh(self):
        t = torus(LAYOUT_4X5)
        m = mesh(LAYOUT_4X5)
        assert average_hops(t) < average_hops(m)
        assert t.num_links == 40

    def test_torus_violates_link_classes(self):
        t = torus(LAYOUT_4X5)
        assert any("exceeding class" in p
                   for p in t.violations(link_class="large"))

    def test_cmesh_connected(self):
        cm = concentrated_mesh(LAYOUT_4X5, concentration=2)
        assert cm.is_connected()

    def test_cmesh_trades_bisection_for_hops(self):
        """The paper's justification for omitting cmesh ("poor metrics"):
        the hub spine narrows the bisection relative to mesh even though
        long hub links save a few hops."""
        from repro.topology import bisection_bandwidth

        cm = concentrated_mesh(LAYOUT_4X5, concentration=2)
        m = mesh(LAYOUT_4X5)
        assert bisection_bandwidth(cm) <= bisection_bandwidth(m)

    def test_cmesh_bad_concentration(self):
        with pytest.raises(ValueError):
            concentrated_mesh(LAYOUT_4X5, concentration=0)
