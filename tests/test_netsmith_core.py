"""Tests for NetSmith's LatOp formulation (Table I encodings)."""

import numpy as np
import pytest

from repro.core import (
    NetSmithConfig,
    build_distance_formulation,
    generate_latop,
    generate_shufopt,
    shuffle_weights,
)
from repro.topology import Layout, average_hops, diameter


@pytest.fixture(scope="module")
def tiny_result():
    """2x3 grid, small links, radix 3 — solves to optimality in seconds."""
    cfg = NetSmithConfig(
        layout=Layout(rows=2, cols=3), link_class="small", radix=3, diameter_bound=4
    )
    return cfg, generate_latop(cfg, time_limit=60)


class TestLatOpTiny:
    def test_solves_to_optimal(self, tiny_result):
        _, res = tiny_result
        assert res.status == "optimal"
        assert res.proven_optimal

    def test_objective_equals_recomputed_hops(self, tiny_result):
        """The MILP's D variables must equal true shortest-path distances:
        objective == sum of hop-matrix entries."""
        _, res = tiny_result
        d = res.topology.hop_matrix()
        n = res.topology.n
        recomputed = d[~np.eye(n, dtype=bool)].sum()
        assert res.objective == pytest.approx(recomputed)

    def test_radix_respected(self, tiny_result):
        cfg, res = tiny_result
        assert res.topology.out_degree().max() <= cfg.radix
        assert res.topology.in_degree().max() <= cfg.radix

    def test_link_class_respected(self, tiny_result):
        cfg, res = tiny_result
        res.topology.check(radix=cfg.radix, link_class=cfg.link_class)

    def test_connected(self, tiny_result):
        _, res = tiny_result
        assert res.topology.is_connected()

    def test_diameter_bound_respected(self, tiny_result):
        cfg, res = tiny_result
        assert diameter(res.topology) <= cfg.resolved_diameter()

    def test_optimal_beats_ring(self, tiny_result):
        """With radix 3 on 6 nodes the optimum must beat a simple ring."""
        _, res = tiny_result
        assert average_hops(res.topology) < 1.5  # ring would be 1.8


class TestSymmetricMode:
    def test_symmetric_constraint(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=2, cols=3),
            link_class="small",
            radix=3,
            symmetric=True,
            diameter_bound=4,
        )
        res = generate_latop(cfg, time_limit=60)
        assert res.topology.is_symmetric

    def test_asymmetric_at_least_as_good(self):
        """Paper III-B: forcing symmetry costs a little latency, never
        improves it (same constraint set plus C9)."""
        asym = NetSmithConfig(
            layout=Layout(rows=2, cols=3), link_class="small", radix=3,
            diameter_bound=4,
        )
        sym = NetSmithConfig(
            layout=Layout(rows=2, cols=3), link_class="small", radix=3,
            symmetric=True, diameter_bound=4,
        )
        ra = generate_latop(asym, time_limit=60)
        rs = generate_latop(sym, time_limit=60)
        assert ra.objective <= rs.objective + 1e-9


class TestFormulationStructure:
    def test_handles_expose_vars(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=2, cols=2), link_class="small", radix=2,
            diameter_bound=3,
        )
        h = build_distance_formulation(cfg)
        n = cfg.layout.n
        assert len(h.d_vars) == n * (n - 1)
        assert len(h.m_vars) == len(cfg.layout.valid_links("small"))

    def test_unreachable_router_raises(self):
        """A 1x3 line under 'small' has in-links everywhere, but radix 0
        min_links... the no-incoming-candidate check needs a degenerate
        layout: single column with 'small' still has neighbors, so this
        guards the error path via monkeypatched valid links."""
        cfg = NetSmithConfig(
            layout=Layout(rows=1, cols=2), link_class="small", radix=1,
            diameter_bound=2,
        )
        h = build_distance_formulation(cfg)  # 2 nodes, link both ways exists
        assert len(h.m_vars) == 2

    def test_resolved_diameter_scales(self):
        small = NetSmithConfig(layout=Layout(rows=4, cols=5), link_class="small")
        big = NetSmithConfig(layout=Layout(rows=8, cols=6), link_class="small")
        assert big.resolved_diameter() >= small.resolved_diameter()

    def test_traffic_weights_validated(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=2, cols=2),
            link_class="small",
            traffic_weights=np.ones((3, 3)),
        )
        with pytest.raises(ValueError):
            build_distance_formulation(cfg)


class TestShuffleWeights:
    def test_shuffle_formula(self):
        lay = Layout(rows=4, cols=5)
        w = shuffle_weights(lay, uniform_floor=0.0)
        n = lay.n
        for src in range(n):
            dest = 2 * src if src < n // 2 else (2 * src + 1) % n
            if dest != src:
                assert w[src, dest] == pytest.approx(1.0)

    def test_diagonal_zero(self):
        w = shuffle_weights(Layout(rows=4, cols=5))
        assert np.all(np.diag(w) == 0)

    def test_shufopt_tiny_runs(self):
        cfg = NetSmithConfig(
            layout=Layout(rows=2, cols=3), link_class="small", radix=3,
            diameter_bound=4,
        )
        res = generate_shufopt(cfg, time_limit=60)
        assert res.topology.is_connected()
        assert res.topology.name.startswith("NS-ShufOpt")
