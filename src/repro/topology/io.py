"""Topology serialization and pretty-printing (Fig. 4 style ASCII plots)."""

from __future__ import annotations

import json
from typing import Union

from .graph import Topology
from .layout import Layout


def to_dict(topo: Topology) -> dict:
    return {
        "name": topo.name,
        "rows": topo.layout.rows,
        "cols": topo.layout.cols,
        "link_class": topo.link_class,
        "links": [[int(i), int(j)] for i, j in topo.directed_links],
    }


def from_dict(data: dict) -> Topology:
    layout = Layout(rows=int(data["rows"]), cols=int(data["cols"]))
    return Topology(
        layout,
        [(int(i), int(j)) for i, j in data["links"]],
        name=data.get("name", "topology"),
        link_class=data.get("link_class"),
    )


def dumps(topo: Topology) -> str:
    return json.dumps(to_dict(topo), indent=2)


def loads(text: str) -> Topology:
    return from_dict(json.loads(text))


def save(topo: Topology, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dumps(topo))


def load(path: str) -> Topology:
    with open(path) as fh:
        return loads(fh.read())


def ascii_art(topo: Topology) -> str:
    """Fig. 4-style rendering: router grid with link summary.

    Bidirectional links are listed once (``a <-> b``); unidirectional
    halves of asymmetric pairings as ``a --> b`` (matching the paper's
    solid vs dashed convention).
    """
    lay = topo.layout
    lines = [f"{topo.name}  ({lay.rows}x{lay.cols}, {topo.num_links} links)"]
    for y in range(lay.rows):
        lines.append(
            "  ".join(f"[{lay.router_at(x, y):>2}]" for x in range(lay.cols))
        )
    bidir, unidir = [], []
    seen = set()
    for i, j in topo.directed_links:
        if (j, i) in seen:
            continue
        if topo.has_link(j, i):
            bidir.append((min(i, j), max(i, j)))
            seen.add((i, j))
        else:
            unidir.append((i, j))
            seen.add((i, j))
    bidir = sorted(set(bidir))
    lines.append("bidirectional: " + ", ".join(f"{a}<->{b}" for a, b in bidir))
    if unidir:
        lines.append("unidirectional: " + ", ".join(f"{a}-->{b}" for a, b in sorted(unidir)))
    return "\n".join(lines)
