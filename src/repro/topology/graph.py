"""The directed :class:`Topology` object all subsystems operate on.

Topologies are directed because NetSmith treats asymmetric links as
first-class (paper Section III-A(c)): the outgoing half of a full-duplex
link resource may terminate at a different router than the incoming half.
A symmetric topology is simply one whose adjacency matrix equals its
transpose.

Link-resource counting follows Table II's convention: the number of
*links* is the number of full-duplex resources, i.e. ``directed_links / 2``
(every router port pairs one outgoing and one incoming wire).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from . import csr as _csr
from .layout import Layout

INF = float("inf")


class Topology:
    """A directed interposer network topology bound to a physical layout."""

    def __init__(
        self,
        layout: Layout,
        links: Iterable[Tuple[int, int]],
        name: str = "topology",
        link_class: Optional[str] = None,
    ):
        self.layout = layout
        self.name = name
        self.link_class = link_class
        n = layout.n
        adj = np.zeros((n, n), dtype=bool)
        for i, j in links:
            if i == j:
                raise ValueError(f"self-link at router {i}")
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"link ({i},{j}) out of range")
            adj[i, j] = True
        self.adj = adj
        self._dist: Optional[np.ndarray] = None
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._hop_stats: Optional[_csr.HopStats] = None

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_undirected(
        cls,
        layout: Layout,
        edges: Iterable[Tuple[int, int]],
        name: str = "topology",
        link_class: Optional[str] = None,
    ) -> "Topology":
        """Build a symmetric topology from undirected edges."""
        links = []
        for a, b in edges:
            links.append((a, b))
            links.append((b, a))
        return cls(layout, links, name=name, link_class=link_class)

    @classmethod
    def from_adjacency(
        cls,
        layout: Layout,
        adj: np.ndarray,
        name: str = "topology",
        link_class: Optional[str] = None,
    ) -> "Topology":
        t = cls(layout, [], name=name, link_class=link_class)
        a = np.asarray(adj, dtype=bool)
        if a.shape != (layout.n, layout.n):
            raise ValueError(f"adjacency shape {a.shape} != ({layout.n},{layout.n})")
        if a.diagonal().any():
            raise ValueError("self-links on diagonal")
        t.adj = a.copy()
        return t

    # -- basic properties ----------------------------------------------------------
    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def directed_links(self) -> List[Tuple[int, int]]:
        ii, jj = np.nonzero(self.adj)
        return list(zip(ii.tolist(), jj.tolist()))

    @property
    def num_directed_links(self) -> int:
        return int(self.adj.sum())

    @property
    def num_links(self) -> int:
        """Full-duplex link resources (Table II '# Links' convention)."""
        return self.num_directed_links // 2

    @property
    def is_symmetric(self) -> bool:
        return bool((self.adj == self.adj.T).all())

    def out_degree(self, i: Optional[int] = None):
        deg = self.adj.sum(axis=1)
        return int(deg[i]) if i is not None else deg.astype(int)

    def in_degree(self, i: Optional[int] = None):
        deg = self.adj.sum(axis=0)
        return int(deg[i]) if i is not None else deg.astype(int)

    def max_radix(self) -> int:
        """Largest per-router port usage (max of in/out degree over routers)."""
        if self.num_directed_links == 0:
            return 0
        return int(max(self.out_degree().max(), self.in_degree().max()))

    def neighbors_out(self, i: int) -> List[int]:
        return np.nonzero(self.adj[i])[0].tolist()

    def neighbors_in(self, j: int) -> List[int]:
        return np.nonzero(self.adj[:, j])[0].tolist()

    def has_link(self, i: int, j: int) -> bool:
        return bool(self.adj[i, j])

    # -- distances --------------------------------------------------------------------
    def hop_matrix(self) -> np.ndarray:
        """All-pairs minimum hop counts (``inf`` where unreachable).

        Materializes the dense n×n matrix; metric queries that only need
        aggregates should prefer :meth:`hop_stats`, which streams CSR
        BFS blocks and never allocates O(n²).
        """
        if self._dist is None:
            graph = csr_matrix(self.adj.astype(np.int8))
            self._dist = shortest_path(graph, method="D", unweighted=True)
        return self._dist

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(indptr, indices)`` CSR view of the adjacency."""
        if self._csr is None:
            self._csr = _csr.build_csr(self.adj)
        return self._csr

    def hop_stats(self) -> _csr.HopStats:
        """Cached all-pairs hop aggregates via CSR multi-source BFS."""
        if self._hop_stats is None:
            indptr, indices = self.csr()
            self._hop_stats = _csr.hop_stats(indptr, indices, self.n)
        return self._hop_stats

    def invalidate_cache(self) -> None:
        self._dist = None
        self._csr = None
        self._hop_stats = None

    def is_connected(self) -> bool:
        """Strong connectivity (every router reaches every other)."""
        if self._dist is not None:  # already paid for the dense matrix
            return bool(np.isfinite(self._dist).all())
        if self._hop_stats is not None:
            return self._hop_stats.connected
        indptr, indices = self.csr()
        rindptr, rindices = _csr.build_csr(self.adj.T)
        return _csr.is_strongly_connected(
            indptr, indices, rindptr, rindices, self.n
        )

    # -- mutation (returns new objects; Topology is conceptually immutable) ------------
    def with_link(self, i: int, j: int) -> "Topology":
        adj = self.adj.copy()
        adj[i, j] = True
        return Topology.from_adjacency(self.layout, adj, self.name, self.link_class)

    def without_link(self, i: int, j: int) -> "Topology":
        adj = self.adj.copy()
        adj[i, j] = False
        return Topology.from_adjacency(self.layout, adj, self.name, self.link_class)

    def reversed(self) -> "Topology":
        return Topology.from_adjacency(
            self.layout, self.adj.T, f"{self.name}-rev", self.link_class
        )

    # -- validation ----------------------------------------------------------------------
    def violations(
        self, radix: Optional[int] = None, link_class: Optional[str] = None
    ) -> List[str]:
        """Human-readable list of constraint violations (empty when valid)."""
        problems: List[str] = []
        if self.adj.diagonal().any():
            problems.append("self-links present")
        if radix is not None:
            out_bad = np.nonzero(self.out_degree() > radix)[0]
            in_bad = np.nonzero(self.in_degree() > radix)[0]
            for r in out_bad:
                problems.append(f"router {r} out-degree {self.out_degree(int(r))} > radix {radix}")
            for r in in_bad:
                problems.append(f"router {r} in-degree {self.in_degree(int(r))} > radix {radix}")
        cls = link_class or self.link_class
        if cls is not None:
            valid = set(self.layout.valid_links(cls))
            for i, j in self.directed_links:
                if (i, j) not in valid:
                    problems.append(
                        f"link ({i},{j}) spans {self.layout.span(i, j)}, "
                        f"exceeding class {cls!r}"
                    )
        if not self.is_connected():
            problems.append("not strongly connected")
        return problems

    def check(self, radix: Optional[int] = None, link_class: Optional[str] = None) -> None:
        problems = self.violations(radix=radix, link_class=link_class)
        if problems:
            raise ValueError(f"{self.name}: " + "; ".join(problems))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Topology({self.name!r}, {self.layout.rows}x{self.layout.cols}, "
            f"links={self.num_links})"
        )
