"""Topology performance metrics (paper Sections II-C/II-D, Table II).

* **Average hops / diameter** — from the all-pairs hop matrix, excluding
  self-pairs (Table II footnote).
* **Bisection bandwidth** — minimum, over *balanced* bipartitions, of the
  number of directed links crossing the cut; for asymmetric links the
  minimum of the two directions is taken (paper III-A(e)).
* **Sparsest cut** — the uniform-demand sparsest cut
  ``min over (U,V)`` of ``cross(U,V) / (|U| * |V|)``, the tightest
  cut-based throughput bound (Jyothi et al. [27]); exhaustively enumerated
  with vectorized bitmask chunks for n <= 22, heuristic (spectral +
  Kernighan–Lin refinement with restarts) above.

Throughput bounds (paper II-D, Fig. 7):

* **cut bound** — saturation injection rate (flits/node/cycle) implied by
  the sparsest cut under uniform traffic;
* **occupancy bound** — ``1 / avg_hops``-style bound implied by aggregate
  link occupancy under shortest-path routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .graph import Topology

_EXHAUSTIVE_LIMIT = 22
_CHUNK = 1 << 12

#: Above this size the spectral+KL cut heuristic (O(n²) per refinement
#: probe) is replaced by an O(E log n) Fiedler sweep cut.
_KL_LIMIT = 128


# ---------------------------------------------------------------------------
# Hop statistics
# ---------------------------------------------------------------------------
#
# ``method="sparse"`` (the default) streams CSR multi-source BFS blocks
# (:mod:`repro.topology.csr`) in O(n·E) time and O(n) memory per block;
# ``method="dense"`` is the historical all-pairs hop-matrix path, kept
# as the equivalence oracle.  Hop counts are small exact integers, so
# the two paths return bit-identical floats (the property suite asserts
# it over random connected topologies).

def average_hops(topo: Topology, method: str = "sparse") -> float:
    """Mean shortest-path hops over all ordered pairs, excluding self-pairs."""
    if method == "dense":
        d = topo.hop_matrix()
        n = topo.n
        off = d[~np.eye(n, dtype=bool)]
        if not np.isfinite(off).all():
            return float("inf")
        return float(off.mean())
    s = topo.hop_stats()
    if not s.connected:
        return float("inf")
    return float(s.total / s.pairs)


def diameter(topo: Topology, method: str = "sparse") -> int:
    if method == "dense":
        d = topo.hop_matrix()
        n = topo.n
        off = d[~np.eye(n, dtype=bool)]
        if not np.isfinite(off).all():
            raise ValueError(f"{topo.name}: disconnected; diameter undefined")
        return int(off.max())
    s = topo.hop_stats()
    if not s.connected:
        raise ValueError(f"{topo.name}: disconnected; diameter undefined")
    return int(s.max_hop)


def hop_histogram(topo: Topology, method: str = "sparse") -> Dict[int, int]:
    """Count of ordered pairs at each hop distance (the latency distribution)."""
    if method == "dense":
        d = topo.hop_matrix()
        n = topo.n
        off = d[~np.eye(n, dtype=bool)].astype(int)
        vals, counts = np.unique(off, return_counts=True)
        return {int(v): int(c) for v, c in zip(vals, counts)}
    return topo.hop_stats().histogram()


# ---------------------------------------------------------------------------
# Cut enumeration machinery
# ---------------------------------------------------------------------------

def _cut_scan(
    adj: np.ndarray,
    balanced_only: bool,
) -> Tuple[float, np.ndarray, float, np.ndarray]:
    """Vectorized exhaustive scan over all bipartitions with node 0 in U.

    Returns ``(best_sparsest_value, best_sparsest_mask,
    best_balanced_cross, best_balanced_mask)``; sparsest values are
    ``min_dir_cross / (|U| |V|)``.
    """
    n = adj.shape[0]
    a = adj.astype(np.float64)
    total_masks = 1 << (n - 1)
    bit_idx = np.arange(1, n)

    best_sparse = np.inf
    best_sparse_mask = None
    best_bal = np.inf
    best_bal_mask = None
    half = n // 2

    for start in range(0, total_masks, _CHUNK):
        masks = np.arange(start, min(start + _CHUNK, total_masks), dtype=np.int64)
        # membership[i, k] = node k in U for mask i; node 0 always in U.
        memb = np.zeros((masks.size, n), dtype=np.float64)
        memb[:, 0] = 1.0
        memb[:, 1:] = (masks[:, None] >> (bit_idx - 1)[None, :]) & 1
        sizes_u = memb.sum(axis=1)
        sizes_v = n - sizes_u
        valid = sizes_v > 0
        if not valid.any():
            continue
        # cross U->V = sum_{i in U, j in V} adj[i, j]
        from_u = memb @ a  # [mask, node] = # links from U into each node
        cross_uv = (from_u * (1.0 - memb)).sum(axis=1)
        to_u = memb @ a.T
        cross_vu = (to_u * (1.0 - memb)).sum(axis=1)
        cross = np.minimum(cross_uv, cross_vu)

        with np.errstate(divide="ignore", invalid="ignore"):
            sparse_vals = np.where(valid, cross / (sizes_u * sizes_v), np.inf)
        k = int(np.argmin(sparse_vals))
        if sparse_vals[k] < best_sparse:
            best_sparse = float(sparse_vals[k])
            best_sparse_mask = memb[k].astype(bool)

        bal = valid & (sizes_u == half)
        if bal.any():
            bal_cross = np.where(bal, cross, np.inf)
            k = int(np.argmin(bal_cross))
            if bal_cross[k] < best_bal:
                best_bal = float(bal_cross[k])
                best_bal_mask = memb[k].astype(bool)

    return best_sparse, best_sparse_mask, best_bal, best_bal_mask


def _kl_refine(
    adj: np.ndarray, memb: np.ndarray, objective: str, rng: np.random.Generator
) -> Tuple[float, np.ndarray]:
    """Greedy single-move refinement of a bipartition.

    ``objective`` is ``"sparsest"`` (minimize cross/(|U||V|), any sizes) or
    ``"bisection"`` (minimize cross, sizes locked).
    """
    n = adj.shape[0]
    memb = memb.copy()

    def value(m: np.ndarray) -> float:
        su = int(m.sum())
        if su == 0 or su == n:
            return np.inf
        cross_uv = adj[m][:, ~m].sum()
        cross_vu = adj[~m][:, m].sum()
        c = min(cross_uv, cross_vu)
        if objective == "sparsest":
            return c / (su * (n - su))
        return float(c)

    best = value(memb)
    improved = True
    while improved:
        improved = False
        order = rng.permutation(n)
        if objective == "bisection":
            # swap pairs to preserve balance
            us = [i for i in order if memb[i]]
            vs = [i for i in order if not memb[i]]
            for i in us:
                for j in vs:
                    memb[i], memb[j] = False, True
                    v = value(memb)
                    if v < best - 1e-12:
                        best = v
                        improved = True
                        break
                    memb[i], memb[j] = True, False
                if improved:
                    break
        else:
            for i in order:
                memb[i] = not memb[i]
                v = value(memb)
                if v < best - 1e-12:
                    best = v
                    improved = True
                else:
                    memb[i] = not memb[i]
    return best, memb


def _heuristic_cut(
    adj: np.ndarray, objective: str, restarts: int, seed: int
) -> Tuple[float, np.ndarray]:
    """Spectral seed + KL refinement with random restarts (n > 22 fallback)."""
    n = adj.shape[0]
    rng = np.random.default_rng(seed)
    sym = ((adj + adj.T) > 0).astype(np.float64)
    deg = sym.sum(axis=1)
    lap = np.diag(deg) - sym
    _, vecs = np.linalg.eigh(lap)
    fiedler = vecs[:, 1]

    seeds = []
    if objective == "bisection":
        order = np.argsort(fiedler)
        m = np.zeros(n, dtype=bool)
        m[order[: n // 2]] = True
        seeds.append(m)
        for _ in range(restarts):
            m = np.zeros(n, dtype=bool)
            m[rng.permutation(n)[: n // 2]] = True
            seeds.append(m)
    else:
        for thresh in np.quantile(fiedler, [0.25, 0.5, 0.75]):
            seeds.append(fiedler <= thresh)
        for _ in range(restarts):
            size = int(rng.integers(1, n))
            m = np.zeros(n, dtype=bool)
            m[rng.permutation(n)[:size]] = True
            seeds.append(m)

    best, best_m = np.inf, None
    for m in seeds:
        if m.all() or not m.any():
            continue
        v, refined = _kl_refine(adj, m, objective, rng)
        if v < best:
            best, best_m = v, refined
    return best, best_m


def _fiedler_vector(sym: np.ndarray, seed: int) -> np.ndarray:
    """Second Laplacian eigenvector, sparse when the size warrants it."""
    n = sym.shape[0]
    deg = sym.sum(axis=1)
    try:
        from scipy.sparse import csr_matrix as _sp_csr, diags
        from scipy.sparse.linalg import eigsh

        lap = diags(deg) - _sp_csr(sym)
        rng = np.random.default_rng(seed)
        _, vecs = eigsh(
            lap.tocsc(), k=2, sigma=-1e-3, which="LM",
            v0=rng.standard_normal(n),
        )
        return vecs[:, 1]
    except Exception:
        lap = np.diag(deg) - sym
        _, vecs = np.linalg.eigh(lap)
        return vecs[:, 1]


def _sweep_cut(
    adj: np.ndarray, objective: str, seed: int
) -> Tuple[float, np.ndarray]:
    """Fiedler sweep cut for large n (O(E log n) after the eigensolve).

    Orders nodes by the Fiedler vector and scans every prefix cut,
    maintaining both directed cross-edge counts incrementally as one
    node at a time moves into U.  ``objective`` selects the sparsest
    prefix (``"sparsest"``) or the balanced prefix (``"bisection"``).
    """
    n = adj.shape[0]
    sym = ((adj + adj.T) > 0).astype(np.float64)
    order = np.argsort(_fiedler_vector(sym, seed), kind="stable")
    memb = np.zeros(n, dtype=bool)
    cross_uv = 0  # directed links U -> V
    cross_vu = 0
    best = np.inf
    best_k = 1
    half = n // 2
    for k, x in enumerate(order[:-1], start=1):
        # moving x from V to U: U->x and x->U links stop crossing,
        # x's links to/from the remaining V start crossing (the x,x
        # diagonal is always zero, so no self-correction is needed).
        out_nbrs = adj[x]
        in_nbrs = adj[:, x]
        cross_uv += int(out_nbrs[~memb].sum()) - int(in_nbrs[memb].sum())
        cross_vu += int(in_nbrs[~memb].sum()) - int(out_nbrs[memb].sum())
        memb[x] = True
        c = min(cross_uv, cross_vu)
        if objective == "sparsest":
            v = c / (k * (n - k))
        elif k == half:
            v = float(c)
        else:
            continue
        if v < best:
            best, best_k = v, k
    best_memb = np.zeros(n, dtype=bool)
    best_memb[order[:best_k]] = True
    return float(best), best_memb


# ---------------------------------------------------------------------------
# Public cut metrics
# ---------------------------------------------------------------------------

@dataclass
class CutResult:
    """A cut and its value; ``members`` flags the U-side of the partition."""

    value: float
    members: np.ndarray
    exact: bool

    @property
    def partition(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        u = tuple(int(i) for i in np.nonzero(self.members)[0])
        v = tuple(int(i) for i in np.nonzero(~self.members)[0])
        return u, v


def sparsest_cut(
    topo: Topology, exact: Optional[bool] = None, restarts: int = 32, seed: int = 0
) -> CutResult:
    """Uniform-demand sparsest cut ``min cross(U,V)/(|U||V|)``."""
    n = topo.n
    if exact is None:
        exact = n <= _EXHAUSTIVE_LIMIT
    if exact:
        if n > _EXHAUSTIVE_LIMIT + 4:
            raise ValueError(f"exhaustive cut scan infeasible for n={n}")
        val, memb, _, _ = _cut_scan(topo.adj, balanced_only=False)
        return CutResult(val, memb, True)
    if n > _KL_LIMIT:
        val, memb = _sweep_cut(topo.adj, "sparsest", seed)
    else:
        val, memb = _heuristic_cut(topo.adj, "sparsest", restarts, seed)
    return CutResult(val, memb, False)


def bisection_bandwidth(
    topo: Topology, exact: Optional[bool] = None, restarts: int = 32, seed: int = 0
) -> int:
    """Minimum directed links crossing any balanced bipartition.

    Matches Table II's 'Bi. BW' column (reported instead of sparsest cut
    for comparability with prior work).  Requires even n.
    """
    n = topo.n
    if n % 2:
        raise ValueError("bisection undefined for odd router counts")
    if exact is None:
        exact = n <= _EXHAUSTIVE_LIMIT
    if exact:
        _, _, val, _ = _cut_scan(topo.adj, balanced_only=True)
    elif n > _KL_LIMIT:
        val, _ = _sweep_cut(topo.adj, "bisection", seed)
    else:
        val, _ = _heuristic_cut(topo.adj, "bisection", restarts, seed)
    return int(round(val))


# ---------------------------------------------------------------------------
# Throughput bounds (paper II-D / Fig. 7 solid lines)
# ---------------------------------------------------------------------------

def cut_throughput_bound(topo: Topology, **kw) -> float:
    """Saturation injection bound from the sparsest cut, flits/node/cycle.

    Under uniform all-to-all traffic at per-node injection rate ``x``,
    each of a node's ``n-1`` flows carries ``x/(n-1)``; the demand
    crossing a cut (U, V) is ``x * |U| * |V| / (n-1)`` against capacity
    ``cross(U, V)`` flits/cycle.  The bound is the minimum over cuts:
    ``x_max = (n-1) * sparsest_cut_value``.
    """
    return (topo.n - 1) * sparsest_cut(topo, **kw).value


def occupancy_throughput_bound(topo: Topology) -> float:
    """Link-occupancy saturation bound, flits/node/cycle.

    Every packet occupies ``avg_hops`` links on average under shortest-path
    routing; aggregate link capacity is ``num_directed_links`` flits/cycle,
    so per-node injection saturates at ``links / (n * avg_hops)``.  When
    channel loads are perfectly balanced this coincides with the routed
    max-channel-load bound ``(n-1) / max_load``.
    """
    h = average_hops(topo)
    return topo.num_directed_links / (topo.n * h)


def saturation_bound(topo: Topology, **kw) -> float:
    """The tighter of the cut and occupancy bounds (flits/node/cycle)."""
    return min(cut_throughput_bound(topo, **kw), occupancy_throughput_bound(topo))


# ---------------------------------------------------------------------------
# Link-length accounting (paper III-B and Fig. 9 wire analysis)
# ---------------------------------------------------------------------------

def link_length_histogram(topo: Topology) -> Dict[Tuple[int, int], int]:
    """Count of full-duplex link resources by (|dx|, |dy|) span.

    Asymmetric halves are paired arbitrarily for counting purposes; the
    histogram counts directed links / 2 per span bucket, so mixed-span
    pairings report half-integer totals rounded toward the longer span.
    """
    spans: Dict[Tuple[int, int], int] = {}
    for i, j in topo.directed_links:
        dx, dy = topo.layout.span(i, j)
        key = (max(dx, dy), min(dx, dy)) if dx < dy else (dx, dy)
        spans[key] = spans.get(key, 0) + 1
    return {k: v // 2 + (v % 2) for k, v in sorted(spans.items())}


def total_wire_length(topo: Topology) -> float:
    """Aggregate directed wire length in grid units (drives dynamic power)."""
    return float(
        sum(topo.layout.length(i, j) for i, j in topo.directed_links)
    )


@dataclass
class TopologyMetrics:
    """The Table II row for one topology."""

    name: str
    num_links: int
    diameter: int
    avg_hops: float
    bisection_bw: int
    sparsest_cut_value: float

    def as_row(self) -> Tuple:
        return (
            self.name,
            self.num_links,
            self.diameter,
            round(self.avg_hops, 2),
            self.bisection_bw,
            round(self.sparsest_cut_value, 4),
        )


def summarize(topo: Topology, **cut_kw) -> TopologyMetrics:
    """Compute the full Table II metric row for a topology."""
    return TopologyMetrics(
        name=topo.name,
        num_links=topo.num_links,
        diameter=diameter(topo),
        avg_hops=average_hops(topo),
        bisection_bw=bisection_bandwidth(topo, **cut_kw),
        sparsest_cut_value=sparsest_cut(topo, **cut_kw).value,
    )
