"""CSR adjacency and frontier-array BFS shared by every sparse layer.

Dense all-pairs machinery (``scipy.sparse.csgraph.shortest_path`` over a
dense adjacency, dict-of-deques BFS in the fault re-router) is O(n²)+
per call and walls the pipeline around 32x32 routers.  This module is
the one place the sparse replacements live:

* :func:`build_csr` — indptr/indices arrays from a dense boolean
  adjacency, row-major so each row's neighbor list is ascending (the
  same order every dense scan in the repo iterates);
* :func:`bfs_distances` — batched level-synchronous BFS from a block of
  sources using numpy frontier arrays, O(block·E) per call and exact:
  hop counts are small integers represented exactly in float64, so the
  distances are bit-identical to the dense ``shortest_path`` rows;
* :func:`bfs_tree` — single-source BFS that reproduces the classic
  ``deque`` + ascending-adjacency BFS *exactly* (same parents, same
  discovery order), so consumers that tie-break by "earliest dequeued
  parent, then smallest neighbor" (``faults.reroute``, the ``bfs``
  routing policy) can switch to arrays without changing one route;
* :func:`hop_stats` — streaming all-pairs hop aggregates (sum, max,
  histogram, reachability) without ever materializing the n×n matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

#: Sources per BFS batch in :func:`hop_stats`: large enough to amortize
#: numpy call overhead, small enough that the (block, n) distance slab
#: stays cache-friendly at n=4096.
_BLOCK = 64


def build_csr(adj: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(indptr, indices)`` of a dense boolean adjacency, rows ascending."""
    adj = np.asarray(adj, dtype=bool)
    n = adj.shape[0]
    ii, jj = np.nonzero(adj)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(ii, minlength=n), out=indptr[1:])
    return indptr, jj.astype(np.int64)


def _expand(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated neighbor lists of ``frontier``, in frontier order.

    Returns ``(neighbors, counts)`` where ``counts[k]`` is how many
    neighbors ``frontier[k]`` contributed (so ``np.repeat(x, counts)``
    aligns per-frontier data with ``neighbors``).
    """
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        return indices[:0], counts
    starts = indptr[frontier]
    cum = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    return indices[flat + np.repeat(starts, counts)], counts


def bfs_distances(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    n: int,
) -> np.ndarray:
    """Hop counts from each source to every node (``inf`` unreachable).

    Level-synchronous over all sources at once: the frontier is a flat
    list of (source-row, node) pairs, expanded through the CSR arrays
    and deduplicated per level with one ``unique`` over flat keys.
    """
    sources = np.asarray(sources, dtype=np.int64)
    b = sources.size
    dist = np.full((b, n), np.inf)
    rows = np.arange(b, dtype=np.int64)
    dist[rows, sources] = 0.0
    f_row, f_node = rows, sources
    level = 0
    while f_node.size:
        level += 1
        nbr, counts = _expand(indptr, indices, f_node)
        if nbr.size == 0:
            break
        nrow = np.repeat(f_row, counts)
        fresh = np.isinf(dist[nrow, nbr])
        if not fresh.any():
            break
        key = np.unique(nrow[fresh] * n + nbr[fresh])
        f_row, f_node = key // n, key % n
        dist[f_row, f_node] = level
    return dist


def bfs_tree(
    indptr: np.ndarray, indices: np.ndarray, source: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """FIFO BFS tree: ``(dist, parent)`` int64 arrays, -1 = unreached.

    Bit-compatible with the textbook ``deque`` BFS over ascending
    adjacency lists: a node's parent is its earliest-dequeued neighbor
    (ties broken by the parent's position in the previous frontier, then
    by ascending neighbor order within one parent), and each level's
    discovery order is preserved for the next expansion.
    """
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        nbr, counts = _expand(indptr, indices, frontier)
        if nbr.size == 0:
            break
        pars = np.repeat(frontier, counts)
        fresh = dist[nbr] < 0
        nbr, pars = nbr[fresh], pars[fresh]
        if nbr.size == 0:
            break
        # First occurrence of each target in expansion order == the
        # earliest-dequeued parent (stable sort keeps positions
        # ascending within a target group); re-sorting the first
        # positions recovers the FIFO discovery order.
        order = np.argsort(nbr, kind="stable")
        sorted_nbr = nbr[order]
        first = np.ones(sorted_nbr.size, dtype=bool)
        first[1:] = sorted_nbr[1:] != sorted_nbr[:-1]
        pos = np.sort(order[first])
        frontier = nbr[pos]
        dist[frontier] = level
        parent[frontier] = pars[pos]
    return dist, parent


@dataclass(frozen=True)
class HopStats:
    """All-pairs hop aggregates over ordered off-diagonal pairs."""

    n: int
    total: float  # sum of finite off-diagonal hop counts (exact integer)
    max_hop: int  # largest finite hop count (0 when n == 1)
    counts: np.ndarray  # histogram: counts[h] ordered pairs at h hops
    unreachable: int  # off-diagonal pairs with no path

    @property
    def connected(self) -> bool:
        return self.unreachable == 0

    @property
    def pairs(self) -> int:
        return self.n * (self.n - 1)

    def histogram(self) -> Dict[int, int]:
        return {
            int(h): int(c)
            for h, c in enumerate(self.counts.tolist())
            if c and h > 0
        }


def hop_stats(
    indptr: np.ndarray, indices: np.ndarray, n: int, block: int = _BLOCK
) -> HopStats:
    """Streaming all-pairs hop statistics in O(n·E) time, O(block·n) memory.

    ``total`` is exact (hop counts are integers and the running float64
    sum stays far below 2**53 for any n ≤ 4096 network), so metrics
    derived from it are bit-identical to the dense hop-matrix path.
    """
    total = 0.0
    max_hop = 0
    unreachable = 0
    counts = np.zeros(max(n, 1), dtype=np.int64)
    for start in range(0, n, block):
        sources = np.arange(start, min(start + block, n), dtype=np.int64)
        d = bfs_distances(indptr, indices, sources, n)
        d[np.arange(sources.size), sources] = np.inf  # mask self-pairs
        finite = np.isfinite(d)
        unreachable += int(d.size - sources.size - int(finite.sum()))
        if finite.any():
            hops = d[finite].astype(np.int64)
            total += float(hops.sum())
            max_hop = max(max_hop, int(hops.max()))
            counts[: n] += np.bincount(hops, minlength=n)[: n]
    return HopStats(
        n=n,
        total=total,
        max_hop=max_hop,
        counts=counts,
        unreachable=unreachable,
    )


def is_strongly_connected(
    indptr: np.ndarray,
    indices: np.ndarray,
    rindptr: np.ndarray,
    rindices: np.ndarray,
    n: int,
) -> bool:
    """Strong connectivity via two BFS passes (forward + reverse from 0)."""
    if n <= 1:
        return True
    fwd = bfs_distances(indptr, indices, np.array([0]), n)
    if np.isinf(fwd).any():
        return False
    rev = bfs_distances(rindptr, rindices, np.array([0]), n)
    return not np.isinf(rev).any()
