"""Signature-matching topology reconstruction by simulated annealing.

The expert topologies the paper compares against (Kite family, Butter
Donut, Double Butterfly) are published as figures, not edge lists.  What
*is* published is their metric signature — Table II's (#links, diameter,
average hops, bisection bandwidth).  This module searches the space of
valid symmetric topologies for one matching a requested signature, so the
frozen baselines in :mod:`repro.topology.expert_data` have exactly the
published properties and every downstream comparison is faithful.

The same machinery doubles as a general-purpose heuristic topology
optimizer (``anneal`` with a custom objective), used to cross-check MILP
results and to seed incumbents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .graph import Topology
from .layout import Layout
from .metrics import average_hops, bisection_bandwidth, diameter


@dataclass
class Signature:
    """Published metric tuple to match (Table II row)."""

    num_links: int
    diameter: int
    avg_hops: float
    bisection_bw: int


def _random_valid_topology(
    layout: Layout,
    allowed: Sequence[Tuple[int, int]],
    num_links: int,
    radix: int,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """A random connected symmetric edge set within the radix budget.

    Best-effort on the link count: near-saturated budgets (e.g. 38 of the
    40 possible radix-4 edges) may come up short; the annealer's
    link-count cost term closes the residual gap.
    """
    allowed = sorted({tuple(sorted(e)) for e in allowed if e[0] != e[1]})
    # Hamiltonian snake through the grid guarantees connectivity with unit
    # links (always in every allowed set) and degree <= 2.
    snake = []
    for y in range(layout.rows):
        xs = range(layout.cols) if y % 2 == 0 else range(layout.cols - 1, -1, -1)
        snake.extend(layout.router_at(x, y) for x in xs)
    edges = {tuple(sorted((snake[k], snake[k + 1]))) for k in range(len(snake) - 1)}
    deg = np.zeros(layout.n, dtype=int)
    for a, b in edges:
        deg[a] += 1
        deg[b] += 1
    pool = [e for e in allowed if e not in edges]
    rng.shuffle(pool)
    for a, b in pool:
        if len(edges) >= num_links:
            break
        if deg[a] < radix and deg[b] < radix:
            edges.add((a, b))
            deg[a] += 1
            deg[b] += 1
    return sorted(edges)


def _balanced_cut_samples(n: int, layout: Layout, count: int, seed: int) -> np.ndarray:
    """Candidate balanced bipartition masks for fast bisection estimation.

    Includes the geometric row/column splits (the usual true bisections on
    grid layouts) plus random balanced masks; the estimator
    ``min over samples`` upper-bounds the true bisection, which is enough
    gradient for annealing — exact verification happens at acceptance.
    """
    rng = np.random.default_rng(seed)
    masks = []
    memb = np.zeros(n, dtype=bool)
    for r in range(n):
        _, y = layout.position(r)
        memb[r] = y < layout.rows // 2
    masks.append(memb.copy())
    if layout.cols % 2 == 0:
        memb = np.zeros(n, dtype=bool)
        for r in range(n):
            x, _ = layout.position(r)
            memb[r] = x < layout.cols // 2
        masks.append(memb.copy())
    for _ in range(count):
        m = np.zeros(n, dtype=bool)
        m[rng.permutation(n)[: n // 2]] = True
        masks.append(m)
    return np.array(masks)


def _estimate_bisection(adj: np.ndarray, masks: np.ndarray) -> int:
    """min-direction crossing links over the sampled balanced cuts."""
    a = adj.astype(np.float64)
    memb = masks.astype(np.float64)
    cross_uv = ((memb @ a) * (1.0 - memb)).sum(axis=1)
    cross_vu = ((memb @ a.T) * (1.0 - memb)).sum(axis=1)
    return int(np.minimum(cross_uv, cross_vu).min())


def _signature_cost(
    topo: Topology,
    sig: Signature,
    bisection_masks: Optional[np.ndarray],
) -> float:
    """Distance of a topology's metrics from the target signature."""
    h = average_hops(topo)
    if not math.isfinite(h):
        return 1e9
    cost = abs(h - sig.avg_hops) * 100.0
    cost += abs(diameter(topo) - sig.diameter) * 10.0
    if bisection_masks is not None:
        est = _estimate_bisection(topo.adj, bisection_masks)
        cost += abs(est - sig.bisection_bw) * 10.0
    return cost


def anneal(
    layout: Layout,
    allowed: Sequence[Tuple[int, int]],
    num_links: int,
    radix: int,
    cost_fn: Callable[[Topology], float],
    steps: int = 4000,
    seed: int = 0,
    t0: float = 2.0,
    t1: float = 0.01,
    initial: Optional[Sequence[Tuple[int, int]]] = None,
) -> Tuple[List[Tuple[int, int]], float]:
    """Simulated annealing over symmetric edge sets of fixed cardinality.

    Moves are edge swaps, additions, and removals under the radix budget;
    deviation from ``num_links`` is charged into the cost (weight
    ``link_count_weight``), which handles near-saturated budgets where a
    fixed-cardinality move set would wedge.  Returns the best edge list
    and its cost (excluding the link-count term when it is zero).
    """
    link_count_weight = 50.0
    rng = np.random.default_rng(seed)
    allowed_set = sorted({tuple(sorted(e)) for e in allowed if e[0] != e[1]})
    if initial is not None:
        edges = sorted({tuple(sorted(e)) for e in initial})
    else:
        edges = _random_valid_topology(layout, allowed_set, num_links, radix, rng)

    def degrees(es):
        deg = np.zeros(layout.n, dtype=int)
        for a, b in es:
            deg[a] += 1
            deg[b] += 1
        return deg

    def full_cost(es) -> float:
        t = Topology.from_undirected(layout, es)
        return cost_fn(t) + link_count_weight * abs(len(es) - num_links)

    cur = list(edges)
    cur_cost = full_cost(cur)
    best, best_cost = list(cur), cur_cost

    for step in range(steps):
        temp = t0 * (t1 / t0) ** (step / max(steps - 1, 1))
        deg = degrees(cur)
        cur_set = set(cur)
        move = rng.random()
        trial = None
        if move < 0.70 and cur:  # swap
            out_idx = int(rng.integers(len(cur)))
            removed = cur[out_idx]
            deg2 = deg.copy()
            deg2[removed[0]] -= 1
            deg2[removed[1]] -= 1
            candidates = [
                e
                for e in allowed_set
                if e not in cur_set
                and e != removed
                and deg2[e[0]] < radix
                and deg2[e[1]] < radix
            ]
            if candidates:
                added = candidates[int(rng.integers(len(candidates)))]
                trial = cur[:out_idx] + cur[out_idx + 1 :] + [added]
        elif move < 0.85:  # add
            candidates = [
                e
                for e in allowed_set
                if e not in cur_set and deg[e[0]] < radix and deg[e[1]] < radix
            ]
            if candidates:
                trial = cur + [candidates[int(rng.integers(len(candidates)))]]
        elif cur:  # remove
            out_idx = int(rng.integers(len(cur)))
            trial = cur[:out_idx] + cur[out_idx + 1 :]
        if trial is None:
            continue
        t = Topology.from_undirected(layout, trial)
        if not t.is_connected():
            continue
        c = cost_fn(t) + link_count_weight * abs(len(trial) - num_links)
        if c < cur_cost or rng.random() < math.exp(-(c - cur_cost) / max(temp, 1e-9)):
            cur, cur_cost = trial, c
            if c < best_cost:
                best, best_cost = list(trial), c
                if best_cost <= 1e-9:
                    break
    return sorted(best), best_cost


def reconstruct(
    layout: Layout,
    link_class: str,
    sig: Signature,
    radix: int = 4,
    steps: int = 6000,
    seed: int = 0,
    restarts: int = 4,
    initial: Optional[Sequence[Tuple[int, int]]] = None,
    exact_bisection: Optional[bool] = None,
) -> Tuple[List[Tuple[int, int]], float]:
    """Search for a topology matching a published metric signature.

    Returns the best edge list found and its residual cost (0.0 means an
    exact signature match).
    """
    allowed = layout.valid_links(link_class)
    masks = _balanced_cut_samples(layout.n, layout, count=256, seed=seed)

    def cost(t: Topology) -> float:
        return _signature_cost(t, sig, masks)

    def verified_cost(edges: Sequence[Tuple[int, int]]) -> float:
        """Residual with the *exact* bisection (sampled one is an upper
        bound, so re-check candidates that look like matches)."""
        t = Topology.from_undirected(layout, edges)
        h = average_hops(t)
        resid = abs(h - sig.avg_hops) * 100.0
        resid += abs(diameter(t) - sig.diameter) * 10.0
        resid += abs(len(list(edges)) - sig.num_links) * 50.0
        use_exact = exact_bisection if exact_bisection is not None else layout.n <= 22
        resid += abs(bisection_bandwidth(t, exact=use_exact) - sig.bisection_bw) * 10.0
        return resid

    best_edges, best_cost = None, float("inf")
    for r in range(restarts):
        edges, _ = anneal(
            layout,
            allowed,
            sig.num_links,
            radix,
            cost,
            steps=steps,
            seed=seed + 1000 * r,
            initial=initial if r == 0 else None,
        )
        c = verified_cost(edges)
        if c < best_cost:
            best_edges, best_cost = edges, c
        if best_cost <= 1e-9:
            break
    assert best_edges is not None
    return best_edges, best_cost
