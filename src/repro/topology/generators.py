"""Additional classic topology generators.

The paper omits mesh and concentrated-mesh results as "repeatedly shown
to have poor metrics" — we provide them (plus a ring and an unfolded
torus) so that claim is *checkable* in this repo, and so users have
familiar reference points when designing for custom layouts.
"""

from __future__ import annotations

from typing import List, Tuple

from .graph import Topology
from .layout import Layout


def ring(layout: Layout) -> Topology:
    """Boustrophedon (snake) ring over the grid — minimal connectivity."""
    snake: List[int] = []
    for y in range(layout.rows):
        xs = range(layout.cols) if y % 2 == 0 else range(layout.cols - 1, -1, -1)
        snake.extend(layout.router_at(x, y) for x in xs)
    edges = [(snake[k], snake[(k + 1) % len(snake)]) for k in range(len(snake))]
    # the wrap edge spans the full first column; only valid when rows fit
    # the large budget — drop it (open chain) when it would be illegal
    last = edges[-1]
    if layout.length(*last) > 2.3:
        edges = edges[:-1]
    return Topology.from_undirected(layout, edges, name="Ring", link_class=None)


def torus(layout: Layout) -> Topology:
    """Plain (unfolded) torus: mesh + wraparound links.

    Wrap links span the full grid width/height, violating every Kite
    link-length class — included as the *infeasible* reference the folded
    torus approximates (its metrics bound what folding gives up).
    """
    edges = []
    for y in range(layout.rows):
        for x in range(layout.cols):
            edges.append(
                (layout.router_at(x, y), layout.router_at((x + 1) % layout.cols, y))
            )
            edges.append(
                (layout.router_at(x, y), layout.router_at(x, (y + 1) % layout.rows))
            )
    return Topology.from_undirected(layout, edges, name="Torus", link_class=None)


def concentrated_mesh(layout: Layout, concentration: int = 2) -> Topology:
    """Concentrated mesh: a mesh over every ``concentration``-th router
    column, with the skipped columns chained to their host router.

    This mirrors cmesh's resource profile at the NoI scale (fewer mesh
    routers, each serving a wider strip); the paper's claim that it
    underperforms misaligned designs is directly checkable against mesh
    and Kite via ``repro.topology.summarize``.
    """
    if concentration < 1:
        raise ValueError("concentration must be >= 1")
    edges: List[Tuple[int, int]] = []
    hubs = [x for x in range(0, layout.cols, concentration)]
    for y in range(layout.rows):
        # chain each non-hub column to its left hub
        for x in range(layout.cols):
            if x in hubs:
                continue
            host = max(h for h in hubs if h < x)
            prev = x - 1 if x - 1 >= host else host
            edges.append((layout.router_at(prev, y), layout.router_at(x, y)))
        # hub mesh: horizontal hub-to-hub (may exceed small class)
        for a, b in zip(hubs, hubs[1:]):
            edges.append((layout.router_at(a, y), layout.router_at(b, y)))
    for x in hubs:
        for y in range(layout.rows - 1):
            edges.append((layout.router_at(x, y), layout.router_at(x, y + 1)))
    return Topology.from_undirected(
        layout, sorted(set(tuple(sorted(e)) for e in edges)),
        name=f"CMesh-{concentration}", link_class=None,
    )
