"""Expert-designed NoI baseline topologies (paper Section II-A, Table II).

Two construction modes coexist:

* **Exact constructions** for topologies with unambiguous generative rules:
  mesh and folded torus.
* **Reconstructions** for Kite-Small/Medium/Large, Butter Donut and Double
  Butterfly, whose publications specify them only by figure.  We provide
  (a) deterministic pattern generators that scale to any grid (used for
  the 48-router Fig. 11 study, where the paper also "logically extends the
  design rules"), and (b) frozen edge lists in
  :mod:`repro.topology.expert_data` found by signature search
  (:mod:`repro.topology.reconstruct`) to match the published Table II
  metric tuples (#links, diameter, avg hops, bisection BW) exactly.
  ``expert_topology`` prefers the frozen lists when one exists for the
  requested size.

All expert topologies are symmetric (paper: only NetSmith/LPBT emit
asymmetric links) and respect the radix-4 NoI port budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .graph import Topology
from .layout import Layout, standard_layout

RADIX = 4  # NoI network ports per router (Table II link counts imply this)


# ---------------------------------------------------------------------------
# Exact constructions
# ---------------------------------------------------------------------------

def mesh(layout: Layout) -> Topology:
    """2D mesh on the router grid (the normalization baseline)."""
    edges = []
    for r in range(layout.n):
        x, y = layout.position(r)
        if x + 1 < layout.cols:
            edges.append((r, layout.router_at(x + 1, y)))
        if y + 1 < layout.rows:
            edges.append((r, layout.router_at(x, y + 1)))
    return Topology.from_undirected(layout, edges, name="Mesh", link_class="small")


def _folded_ring(k: int) -> List[Tuple[int, int]]:
    """Edges of a folded (interleaved) ring over positions 0..k-1.

    The folding keeps every hop span <= 2 grid cells, which is what makes
    a torus implementable within the *medium* link budget.
    """
    largest_odd = k - 1 if (k - 1) % 2 == 1 else k - 2
    order = list(range(0, k, 2)) + list(range(largest_odd, 0, -2))
    return [(order[i], order[(i + 1) % k]) for i in range(k)]


def folded_torus(layout: Layout) -> Topology:
    """Folded torus: folded rings along every row and every column."""
    edges = []
    for y in range(layout.rows):
        for a, b in _folded_ring(layout.cols):
            edges.append((layout.router_at(a, y), layout.router_at(b, y)))
    for x in range(layout.cols):
        for a, b in _folded_ring(layout.rows):
            edges.append((layout.router_at(x, a), layout.router_at(x, b)))
    return Topology.from_undirected(
        layout, edges, name="FoldedTorus", link_class="medium"
    )


# ---------------------------------------------------------------------------
# Pattern generators (scalable reconstructions)
# ---------------------------------------------------------------------------

def double_butterfly(layout: Layout) -> Topology:
    """Double Butterfly (Jerger et al., MICRO'14) pattern reconstruction.

    Horizontal backbones in every row plus butterfly crossings between
    adjacent row pairs spanning two columns ((2,1) links), with vertical
    stitches joining the two butterflies in the outer columns.
    """
    edges = set()
    for y in range(layout.rows):
        for x in range(layout.cols - 1):
            edges.add((layout.router_at(x, y), layout.router_at(x + 1, y)))
    # butterfly crossings between row pairs (0,1), (2,3), ...
    for y in range(0, layout.rows - 1, 2):
        for x in range(layout.cols - 2):
            edges.add((layout.router_at(x, y), layout.router_at(x + 2, y + 1)))
            edges.add((layout.router_at(x, y + 1), layout.router_at(x + 2, y)))
    # vertical stitches between butterfly pairs in the outer columns
    for y in range(1, layout.rows - 1, 2):
        for x in (0, layout.cols - 1):
            edges.add((layout.router_at(x, y), layout.router_at(x, y + 1)))
    t = Topology.from_undirected(
        layout, sorted(edges), name="DoubleButterfly", link_class="large"
    )
    return _trim_to_radix(t, RADIX)


def butter_donut(layout: Layout) -> Topology:
    """Butter Donut (Kannan et al., MICRO'15) pattern reconstruction.

    Butterfly crossings combined with folded-torus ("donut") wraps along
    the rows, keeping every link within the large ((2,1)) budget.
    """
    edges = set()
    # folded row rings give the donut wraps
    for y in range(layout.rows):
        for a, b in _folded_ring(layout.cols):
            edges.add((layout.router_at(a, y), layout.router_at(b, y)))
    # butterfly crossings between adjacent rows on alternating columns
    for y in range(0, layout.rows - 1, 2):
        for x in range(0, layout.cols - 2, 2):
            edges.add((layout.router_at(x, y), layout.router_at(x + 2, y + 1)))
            edges.add((layout.router_at(x, y + 1), layout.router_at(x + 2, y)))
    # outer-column verticals for cross-row connectivity
    for y in range(layout.rows - 1):
        for x in (0, layout.cols - 1):
            edges.add((layout.router_at(x, y), layout.router_at(x, y + 1)))
    t = Topology.from_undirected(
        layout, sorted(edges), name="ButterDonut", link_class="large"
    )
    return _trim_to_radix(t, RADIX)


_KITE_CLASS_SPANS = {
    "small": [(1, 0), (0, 1), (1, 1)],
    "medium": [(1, 0), (0, 1), (1, 1), (2, 0), (0, 2)],
    "large": [(1, 0), (0, 1), (1, 1), (2, 0), (0, 2), (2, 1), (1, 2)],
}


def kite(layout: Layout, size: str) -> Topology:
    """Kite-family (Bharadwaj et al., DAC'20) pattern reconstruction.

    Kite topologies were expert-tuned per link class; lacking machine-
    readable artifacts we reconstruct them with a deterministic greedy
    rule: starting from row backbones, repeatedly add the in-budget link
    that most reduces total pair distance, preferring longer spans first
    (the Kite signature), under the radix-4 port budget.
    """
    if size not in _KITE_CLASS_SPANS:
        raise ValueError(f"kite size must be small/medium/large, got {size!r}")
    import numpy as np

    edges = set()
    for y in range(layout.rows):
        for x in range(layout.cols - 1):
            edges.add((layout.router_at(x, y), layout.router_at(x + 1, y)))
    # column-0 spine keeps the seed connected so the greedy's distance
    # objective is finite from the first iteration
    for y in range(layout.rows - 1):
        edges.add((layout.router_at(0, y), layout.router_at(0, y + 1)))

    allowed = set()
    for dx, dy in _KITE_CLASS_SPANS[size]:
        for y in range(layout.rows):
            for x in range(layout.cols):
                for sx, sy in ((dx, dy), (dx, -dy), (-dx, dy), (-dx, -dy)):
                    nx, ny = x + sx, y + sy
                    if 0 <= nx < layout.cols and 0 <= ny < layout.rows:
                        a = layout.router_at(x, y)
                        b = layout.router_at(nx, ny)
                        if a < b:
                            allowed.add((a, b))

    def degrees(es):
        deg = [0] * layout.n
        for a, b in es:
            deg[a] += 1
            deg[b] += 1
        return deg

    def total_dist(es):
        t = Topology.from_undirected(layout, es)
        d = t.hop_matrix()
        if not np.isfinite(d).all():
            return float("inf")
        return float(d.sum())

    while True:
        deg = degrees(edges)
        base = total_dist(edges)
        best_gain, best_edge = 0.0, None
        candidates = sorted(
            (e for e in allowed if e not in edges),
            key=lambda e: -layout.length(*e),
        )
        for a, b in candidates:
            if deg[a] >= RADIX or deg[b] >= RADIX:
                continue
            gain = base - total_dist(edges | {(a, b)})
            # prefer longer links on ties: candidates are pre-sorted long-first
            if gain > best_gain + 1e-9:
                best_gain, best_edge = gain, (a, b)
        if best_edge is None:
            break
        edges.add(best_edge)

    return Topology.from_undirected(
        layout, sorted(edges), name=f"Kite-{size.capitalize()}", link_class=size
    )


def _trim_to_radix(topo: Topology, radix: int) -> Topology:
    """Drop the longest links at over-budget routers until radix holds."""
    edges = {tuple(sorted(e)) for e in topo.directed_links}
    while True:
        t = Topology.from_undirected(topo.layout, sorted(edges), topo.name, topo.link_class)
        over = [r for r in range(t.n) if t.out_degree(r) > radix]
        if not over:
            return t
        r = over[0]
        incident = sorted(
            (e for e in edges if r in e),
            key=lambda e: -topo.layout.length(*e),
        )
        for e in incident:
            trial = edges - {e}
            tt = Topology.from_undirected(topo.layout, sorted(trial))
            if tt.is_connected():
                edges = trial
                break
        else:  # pragma: no cover - degenerate
            edges.discard(incident[0])


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Expert topology families and their link classes.
EXPERT_FAMILIES: Dict[str, str] = {
    "Mesh": "small",
    "Kite-Small": "small",
    "FoldedTorus": "medium",
    "Kite-Medium": "medium",
    "ButterDonut": "large",
    "DoubleButterfly": "large",
    "Kite-Large": "large",
}


def expert_topology(name: str, n_routers: int = 20) -> Topology:
    """Fetch an expert topology by its paper name, at a standard size.

    Prefers signature-matched frozen edge lists
    (:mod:`repro.topology.expert_data`) where available; falls back to the
    scalable pattern generators.
    """
    from . import expert_data

    layout = standard_layout(n_routers)
    frozen = expert_data.lookup(name, n_routers)
    if frozen is not None:
        return Topology.from_undirected(
            layout, frozen, name=name, link_class=EXPERT_FAMILIES[name]
        )
    if name == "Mesh":
        return mesh(layout)
    if name == "FoldedTorus":
        return folded_torus(layout)
    if name == "ButterDonut":
        return butter_donut(layout)
    if name == "DoubleButterfly":
        return double_butterfly(layout)
    if name.startswith("Kite-"):
        return kite(layout, name.split("-", 1)[1].lower())
    raise ValueError(f"unknown expert topology {name!r}")


def experts_for_class(link_class: str, n_routers: int = 20) -> List[Topology]:
    """All expert baselines in one link-length class (a Fig. 6 panel group)."""
    return [
        expert_topology(name, n_routers)
        for name, cls in EXPERT_FAMILIES.items()
        if cls == link_class and name != "Mesh"
    ]
