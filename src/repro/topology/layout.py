"""Router layouts and the Kite link-length taxonomy.

The paper places NoI routers on a regular grid (4x5 for the 20-router
system, 6x5 for 30, 8x6 for 48) and constrains which router pairs may be
linked by a maximum link length, using Kite's naming: a limit of ``(1,1)``
links is *small*, ``(2,0)`` is *medium*, ``(2,1)`` is *large* (paper
Fig. 3).  We interpret the limit Euclidean-geometrically: a link spanning
``(dx, dy)`` grid cells is allowed iff ``hypot(dx, dy) <= hypot(*limit)``,
which reproduces Kite's single-hop reach sets (e.g. medium allows
``(2,0)`` and ``(0,2)`` but not ``(2,1)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Named link-length classes (paper Section III-A(b), Fig. 3).
LINK_CLASSES: Dict[str, Tuple[int, int]] = {
    "small": (1, 1),
    "medium": (2, 0),
    "large": (2, 1),
}

#: Hard ceiling on router counts: 4096 routers (a 64x64 grid) is already
#: beyond any plausible interposer, and every dense n² structure left in
#: the stack stays comfortably in memory below it.  Larger requests are
#: almost certainly typos and fail fast with a clear error.
MAX_ROUTERS = 4096

#: NoI clock frequency per link-length class, GHz (paper Section IV).
CLASS_CLOCK_GHZ: Dict[str, float] = {
    "small": 3.6,
    "medium": 3.0,
    "large": 2.7,
}


def class_max_length(cls: str) -> float:
    """Euclidean reach of a named link class, in grid units."""
    dx, dy = LINK_CLASSES[cls]
    return math.hypot(dx, dy)


@dataclass(frozen=True)
class Layout:
    """Physical placement of NoI routers on a grid.

    Routers are labeled row-major: router ``r`` sits at
    ``(col, row) = (r % cols, r // cols)``.  This matches the paper's 4x5
    organization (4 rows of 5 columns, Fig. 2(b)): the left-most and
    right-most columns host memory-controller concentrations, the middle
    three columns host core concentrations.
    """

    rows: int
    cols: int

    @property
    def n(self) -> int:
        return self.rows * self.cols

    def position(self, router: int) -> Tuple[int, int]:
        """(x, y) grid coordinates of a router."""
        if not 0 <= router < self.n:
            raise IndexError(f"router {router} out of range [0, {self.n})")
        return (router % self.cols, router // self.cols)

    def router_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise IndexError(f"({x},{y}) outside {self.cols}x{self.rows} grid")
        return y * self.cols + x

    def span(self, i: int, j: int) -> Tuple[int, int]:
        """Absolute (|dx|, |dy|) grid span between two routers."""
        xi, yi = self.position(i)
        xj, yj = self.position(j)
        return (abs(xi - xj), abs(yi - yj))

    def length(self, i: int, j: int) -> float:
        dx, dy = self.span(i, j)
        return math.hypot(dx, dy)

    def valid_links(self, link_class: str) -> List[Tuple[int, int]]:
        """All directed ``(i, j)`` pairs reachable within the class limit.

        This is the paper's valid-link set ``L`` (constraint C3).
        Vectorized and memoized per (layout, class): the historical
        per-pair Python loop was O(n²) work on *every* call, which
        dominated whole annealing runs at 256+ routers.
        """
        return list(_valid_links_cached(self.rows, self.cols, link_class))

    def link_class_of(self, i: int, j: int) -> str:
        """Smallest named class that admits link ``(i, j)``."""
        length = self.length(i, j)
        for cls in ("small", "medium", "large"):
            if length <= class_max_length(cls) + 1e-9:
                return cls
        raise ValueError(f"link ({i},{j}) longer than any named class")

    def mc_columns(self) -> Tuple[int, int]:
        """Columns whose routers host memory controllers (left, right)."""
        return (0, self.cols - 1)

    def mc_routers(self) -> List[int]:
        """Routers with memory-controller concentration (outer columns)."""
        left, right = self.mc_columns()
        return [r for r in range(self.n) if r % self.cols in (left, right)]

    def core_routers(self) -> List[int]:
        """Routers with core-only concentration (middle columns)."""
        mcs = set(self.mc_routers())
        return [r for r in range(self.n) if r not in mcs]


@lru_cache(maxsize=64)
def _valid_links_cached(
    rows: int, cols: int, link_class: str
) -> Tuple[Tuple[int, int], ...]:
    """Directed valid-link pairs, (i, j) row-major — the loop's order.

    The Euclidean test ``hypot(dx, dy) <= max_len + 1e-9`` over integer
    spans reduces to the exact integer comparison
    ``dx² + dy² <= max_dx² + max_dy²`` (the epsilon only ever guarded
    float equality), so the vectorized form reproduces the historical
    pair list bit-for-bit.
    """
    dx0, dy0 = LINK_CLASSES[link_class]
    lim2 = dx0 * dx0 + dy0 * dy0
    n = rows * cols
    out: List[Tuple[int, int]] = []
    xs = (np.arange(n, dtype=np.int32) % cols)
    ys = (np.arange(n, dtype=np.int32) // cols)
    chunk = max(1, (1 << 22) // max(n, 1))  # bound peak memory at 4096
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        dx = xs[start:stop, None] - xs[None, :]
        dy = ys[start:stop, None] - ys[None, :]
        ok = dx * dx + dy * dy <= lim2
        ok[np.arange(start, stop) - start, np.arange(start, stop)] = False
        ii, jj = np.nonzero(ok)
        out.extend(zip((ii + start).tolist(), jj.tolist()))
    return tuple(out)


#: The paper's standard layouts.
LAYOUT_4X5 = Layout(rows=4, cols=5)  # 20 routers (synthetic + full system)
LAYOUT_6X5 = Layout(rows=6, cols=5)  # 30 routers (Table II lower half)
LAYOUT_8X6 = Layout(rows=8, cols=6)  # 48 routers (Fig. 11)


def standard_layout(n_routers: int) -> Layout:
    """The canonical grid for a router count.

    The paper's three studied sizes map to their published shapes (4x5,
    6x5, 8x6).  Any other count becomes the most-square ``rows x cols``
    factorization with ``rows <= cols`` (matching the paper's wider-than
    -tall orientation), so arbitrary system sizes are first-class design
    points rather than errors.  Prime counts fall back to a single row.
    """
    if n_routers <= 0:
        raise ValueError(
            f"router count must be positive, got {n_routers}"
        )
    if n_routers > MAX_ROUTERS:
        raise ValueError(
            f"router count {n_routers} exceeds the supported maximum "
            f"of {MAX_ROUTERS} (64x64)"
        )
    table = {20: LAYOUT_4X5, 30: LAYOUT_6X5, 48: LAYOUT_8X6}
    if n_routers in table:
        return table[n_routers]
    if n_routers < 2:
        raise ValueError(f"need at least 2 routers, got {n_routers}")
    rows = int(math.isqrt(n_routers))
    while rows > 1 and n_routers % rows:
        rows -= 1
    return Layout(rows=rows, cols=n_routers // rows)


def parse_layout(spec: str) -> Layout:
    """A :class:`Layout` from a ``"RxC"`` grid spec (e.g. ``"6x6"``)."""
    try:
        rows_s, cols_s = spec.lower().split("x")
        rows, cols = int(rows_s), int(cols_s)
    except ValueError:
        raise ValueError(f"layout spec must look like '4x5', got {spec!r}") from None
    if rows < 1 or cols < 1:
        raise ValueError(
            f"layout {spec!r} needs positive dimensions, got {rows}x{cols}"
        )
    if rows * cols > MAX_ROUTERS:
        raise ValueError(
            f"layout {spec!r} has {rows * cols} routers, exceeding the "
            f"supported maximum of {MAX_ROUTERS} (64x64)"
        )
    if rows * cols < 2:
        raise ValueError(f"layout {spec!r} needs at least 2 routers")
    return Layout(rows=rows, cols=cols)
