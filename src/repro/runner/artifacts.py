"""Frozen-artifact generation as runner tasks (the generate_all pipeline).

The seed's ``scripts/generate_all.py`` was a single serial script with
ad-hoc per-file resume logic.  Here every artifact — an expert/LPBT
signature reconstruction, a NetSmith SCOp/ShufOpt/LatOp generation, an SA
scale-up — is one pure-data task, so the whole pipeline:

* fans out across worker processes (the stages are independent);
* resumes at task granularity, twice over: finished entries already in
  the ``.gen/*.json`` group files are skipped, and interrupted runs find
  partial work in the content-addressed cache;
* records failures without aborting the batch (SCOp is fragile by
  design); failed results are never cached, so a retry actually retries.

``scripts/generate_all.py`` and ``scripts/freeze_artifacts.py`` are thin
CLI wrappers over :func:`generate_all` and :func:`freeze`.
"""

from __future__ import annotations

import json
import os
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from . import tasks as _tasks
from .orchestrator import Runner

#: Bump to invalidate cached artifact results.
ARTIFACT_VERSION = 1


# ---------------------------------------------------------------------------
# Worker-side builders.  Each takes a pure-data payload and returns a
# JSON-clean result dict; failures are captured, not raised, so one
# fragile MILP stage cannot abort a whole parallel batch.
# ---------------------------------------------------------------------------

def _layout(payload: Dict[str, Any]):
    from ..topology import Layout

    rows, cols = payload["layout"]
    return Layout(rows=rows, cols=cols)


def _build_recon(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Signature-matched expert/LPBT reconstruction (Table II rows)."""
    from ..topology import Signature, reconstruct

    edges, cost = reconstruct(
        _layout(payload),
        payload["link_class"],
        Signature(*payload["signature"]),
        steps=payload["steps"],
        restarts=payload["restarts"],
        seed=payload["seed"],
        exact_bisection=payload.get("exact_bisection"),
    )
    return {"edges": [list(e) for e in edges], "cost": float(cost)}


def _build_scop(payload: Dict[str, Any]) -> Dict[str, Any]:
    """SCOp MILP generation with SA polish from the incumbent."""
    from ..core import NetSmithConfig, anneal_topology, generate_scop
    from ..topology import summarize

    layout = _layout(payload)
    cls = payload["link_class"]
    gen, diag = generate_scop(
        NetSmithConfig(
            layout=layout, link_class=cls,
            diameter_bound=payload["diameter_bound"],
        ),
        time_limit=payload["time_limit"],
        max_iterations=payload["max_iterations"],
    )
    topo = gen.topology
    sa = anneal_topology(
        NetSmithConfig(layout=layout, link_class=cls),
        objective="sparsest_cut",
        steps=payload["sa_steps"],
        seed=payload["sa_seed"],
        initial=topo,
    )
    if sa.objective > gen.objective:
        topo = sa.topology
    return {
        "links": [list(e) for e in sorted(topo.directed_links)],
        "row": summarize(topo).as_row(),
        "iterations": diag.iterations,
    }


def _build_shufopt(payload: Dict[str, Any]) -> Dict[str, Any]:
    from ..core import NetSmithConfig, generate_shufopt
    from ..topology import summarize

    gen = generate_shufopt(
        NetSmithConfig(
            layout=_layout(payload),
            link_class=payload["link_class"],
            diameter_bound=payload["diameter_bound"],
        ),
        time_limit=payload["time_limit"],
    )
    return {
        "links": [list(e) for e in sorted(gen.topology.directed_links)],
        "row": summarize(gen.topology).as_row(),
        "mip_gap": float(gen.mip_gap),
    }


def _build_latop(payload: Dict[str, Any]) -> Dict[str, Any]:
    """LatOp: MILP when it finds an incumbent, SA polish/fallback always."""
    from ..core import NetSmithConfig, anneal_topology, generate_latop

    layout = _layout(payload)
    cls = payload["link_class"]
    topo, obj = None, float("inf")
    if payload.get("milp_time_limit"):
        try:
            gen = generate_latop(
                NetSmithConfig(
                    layout=layout, link_class=cls,
                    diameter_bound=payload.get("diameter_bound"),
                ),
                time_limit=payload["milp_time_limit"],
            )
            topo, obj = gen.topology, gen.objective
        except RuntimeError:
            pass  # MILP found no incumbent: SA-only
    sa = anneal_topology(
        NetSmithConfig(layout=layout, link_class=cls),
        objective="latency",
        steps=payload["sa_steps"],
        seed=payload["sa_seed"],
        initial=topo,
    )
    if sa.objective < obj:
        topo = sa.topology
    return {"links": [list(e) for e in sorted(topo.directed_links)]}


_BUILDERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "recon": _build_recon,
    "scop": _build_scop,
    "shufopt": _build_shufopt,
    "latop": _build_latop,
}


def artifact_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: dispatch on ``kind``; never raises."""
    try:
        result = _BUILDERS[payload["kind"]](payload)
        result["ok"] = True
        return result
    except Exception as exc:  # noqa: BLE001 — keep the batch alive
        # Full traceback text, not just repr(exc): by the time a
        # failure summary is printed the worker (and its stack) is long
        # gone, and "KeyError('x')" without a location is undebuggable.
        return {
            "ok": False,
            "error": repr(exc),
            "traceback": traceback.format_exc(),
        }


# The artifact task family rides the same run_tasks machinery as the
# simulation tasks; results are already plain dicts, so no decoder.
_tasks.TASK_FUNCTIONS["artifact"] = (artifact_task, lambda d: d)


# ---------------------------------------------------------------------------
# The task roster (mirrors the seed script's five stages).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArtifactTask:
    """One artifact: where it lands (group file + entry key) and how it
    is built (pure-data payload)."""

    group: str  # .gen/<group>.json
    entry: str  # key inside the group file
    payload: Dict[str, Any]

    @property
    def name(self) -> str:
        return f"{self.group}:{self.entry}"


_SIGS20 = {
    "Kite-Small": ("small", (38, 4, 2.38, 8)),
    "Kite-Medium": ("medium", (40, 4, 2.25, 8)),
    "Kite-Large": ("large", (36, 5, 2.27, 8)),
    "ButterDonut": ("large", (36, 4, 2.32, 8)),
    "DoubleButterfly": ("large", (32, 4, 2.59, 8)),
}

_LPBT_SIGS = {
    "LPBT-Power": ("small", (33, 5, 2.59, 4)),
    "LPBT-Hops": ("small", (34, 6, 2.74, 4)),
}

_SIGS30 = {
    "Kite-Small": ("small", (58, 5, 2.91, 10)),
    "Kite-Medium": ("medium", (60, 5, 2.66, 10)),
    "Kite-Large": ("large", (56, 5, 2.69, 10)),
    "ButterDonut": ("large", (44, 10, 3.71, 8)),
    "DoubleButterfly": ("large", (48, 5, 2.90, 8)),
}


def default_tasks() -> List[ArtifactTask]:
    """The full frozen-artifact roster (seed script stages 1-5)."""
    tasks: List[ArtifactTask] = []
    base = {"version": ARTIFACT_VERSION}

    # 1. expert reconstructions at 20 routers (Table II upper half)
    for name, (cls, sig) in _SIGS20.items():
        tasks.append(ArtifactTask("experts20", name, {
            **base, "kind": "recon", "layout": [4, 5], "link_class": cls,
            "signature": list(sig), "steps": 6000, "restarts": 3, "seed": 7,
        }))
    # 2. LPBT signature reconstructions at 20
    for name, (cls, sig) in _LPBT_SIGS.items():
        tasks.append(ArtifactTask("lpbt20", name, {
            **base, "kind": "recon", "layout": [4, 5], "link_class": cls,
            "signature": list(sig), "steps": 6000, "restarts": 3, "seed": 11,
        }))
    # 3. NS SCOp + ShufOpt at 20
    for cls, tl in (("small", 40), ("medium", 60), ("large", 60)):
        tasks.append(ArtifactTask("ns20", f"scop/{cls}", {
            **base, "kind": "scop", "layout": [4, 5], "link_class": cls,
            "diameter_bound": 4, "time_limit": tl, "max_iterations": 8,
            "sa_steps": 400, "sa_seed": 3,
        }))
    for cls in ("small", "medium", "large"):
        tasks.append(ArtifactTask("ns20", f"shufopt/{cls}", {
            **base, "kind": "shufopt", "layout": [4, 5], "link_class": cls,
            "diameter_bound": 5, "time_limit": 120,
        }))
    # 4. 30-router NS LatOp (MILP + SA) and expert reconstructions
    for cls in ("small", "medium", "large"):
        tasks.append(ArtifactTask("ns30", f"latop/{cls}", {
            **base, "kind": "latop", "layout": [6, 5], "link_class": cls,
            "diameter_bound": 6, "milp_time_limit": 180,
            "sa_steps": 6000, "sa_seed": 5,
        }))
    for name, (cls, sig) in _SIGS30.items():
        tasks.append(ArtifactTask("experts30", name, {
            **base, "kind": "recon", "layout": [6, 5], "link_class": cls,
            "signature": list(sig), "steps": 4000, "restarts": 2, "seed": 13,
            "exact_bisection": False,
        }))
    # 5. 48-router NS LatOp via SA (Fig. 11)
    for cls in ("small", "medium", "large"):
        tasks.append(ArtifactTask("ns48", f"latop/{cls}", {
            **base, "kind": "latop", "layout": [8, 6], "link_class": cls,
            "milp_time_limit": None, "sa_steps": 9000, "sa_seed": 9,
        }))
    return tasks


def _entry_value(task: ArtifactTask, result: Dict[str, Any]) -> Any:
    """What the group file stores (matches the seed script's formats)."""
    if task.payload["kind"] == "recon":
        return result["edges"]
    return result["links"]


def generate_all(
    out_dir: str,
    runner: Optional[Runner] = None,
    only: Optional[List[str]] = None,
    log: Callable[[str], None] = print,
) -> Dict[str, int]:
    """Build all missing frozen artifacts into ``out_dir`` (.gen).

    Returns ``{"done": ..., "skipped": ..., "failed": ...}``.  Safe to
    interrupt and rerun: finished entries are skipped via the group
    files, and in-progress batches resume from the content cache.
    """
    runner = runner or Runner()
    os.makedirs(out_dir, exist_ok=True)

    def group_path(group: str) -> str:
        return os.path.join(out_dir, f"{group}.json")

    def load_group(group: str) -> Dict[str, Any]:
        try:
            with open(group_path(group)) as fh:
                return json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    groups: Dict[str, Dict[str, Any]] = {}
    todo: List[ArtifactTask] = []
    skipped = 0
    for task in default_tasks():
        if only and task.group not in only and task.name not in only:
            continue
        group = groups.setdefault(task.group, load_group(task.group))
        if task.entry in group:
            skipped += 1
            continue
        todo.append(task)

    if todo:
        log(f"building {len(todo)} artifacts "
            f"({skipped} already frozen) with {runner.parallel} worker(s)")
    results = runner.run_tasks("artifact", [t.payload for t in todo])

    done = failed = 0
    failures: List[Any] = []
    for task, result in zip(todo, results):
        if result.get("ok"):
            groups[task.group][task.entry] = _entry_value(task, result)
            with open(group_path(task.group), "w") as fh:
                json.dump(groups[task.group], fh, indent=1)
            done += 1
            log(f"DONE {task.name}")
        else:
            # Failures are never cached (run_tasks skips ok:false puts),
            # so the next invocation retries them automatically.
            failed += 1
            failures.append((task, result))
            log(f"FAILED {task.name}: {result.get('error')}")
    if failures:
        # A loud aggregated summary — the group files on disk are
        # partial, and a consumer that freezes them anyway should do so
        # knowingly, not because the failures scrolled past.
        log("")
        log(f"{failed} artifact(s) FAILED — the written group files are "
            f"partial; rerun to retry (failed results are never cached):")
        for task, result in failures:
            log(f"  FAILED {task.name}: {result.get('error')}")
            for line in (result.get("traceback") or "").rstrip().splitlines():
                log(f"    {line}")
    return {"done": done, "skipped": skipped, "failed": failed}


# ---------------------------------------------------------------------------
# Freezing: merge .gen group files into the package data consumed by
# repro.topology.expert_data and repro.core.pregenerated.
# ---------------------------------------------------------------------------

def freeze(gen_dir: str, src_root: str, log: Callable[[str], None] = print) -> None:
    """Merge ``gen_dir``'s group files into the package ``_data`` files."""

    def load(fname: str) -> Dict[str, Any]:
        path = os.path.join(gen_dir, fname)
        if os.path.exists(path):
            with open(path) as fh:
                return json.load(fh)
        return {}

    topo_data = os.path.join(src_root, "repro", "topology", "_data")
    core_data = os.path.join(src_root, "repro", "core", "_data")
    os.makedirs(topo_data, exist_ok=True)
    os.makedirs(core_data, exist_ok=True)

    experts: Dict[str, Any] = {}
    for fname, n in (("experts20.json", 20), ("experts30.json", 30)):
        for name, edges in load(fname).items():
            experts[f"{name}/{n}"] = edges
    for name, edges in load("lpbt20.json").items():
        experts[f"{name}/20"] = edges
    with open(os.path.join(topo_data, "experts.json"), "w") as fh:
        json.dump(experts, fh, indent=1)
    log(f"experts.json: {len(experts)} entries")

    netsmith: Dict[str, Any] = {}
    for fname, n in (("ns20.json", 20), ("ns30.json", 30), ("ns48.json", 48)):
        for key, links in load(fname).items():
            kind, cls = key.split("/")
            netsmith[f"{kind}/{cls}/{n}"] = links
    with open(os.path.join(core_data, "netsmith.json"), "w") as fh:
        json.dump(netsmith, fh, indent=1)
    log(f"netsmith.json: {len(netsmith)} entries")
