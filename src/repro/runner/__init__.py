"""Parallel experiment runner with content-addressed result caching.

The runner is the execution backbone of the reproduction: independent
simulation points, saturation searches, and artifact generations become
pure-data tasks that are hashed, looked up in an on-disk cache, fanned
out across worker processes, and reassembled in deterministic order —
so parallel results are bit-identical to serial, and reruns resume
instead of recomputing.

Execution is *supervised* (timeouts, bounded retries, pool-collapse
recovery, poison-task quarantine — :mod:`~repro.runner.executor`),
observable (:class:`RunHealth`), testable under injected faults
(:mod:`~repro.runner.chaos`), and crash-safe (the sweep journal,
:mod:`~repro.runner.journal`).

Layers (see ``docs/ARCHITECTURE.md``):

* :mod:`~repro.runner.hashing` — canonical config hashing (cache keys);
* :mod:`~repro.runner.cache` — atomic JSON store, hit/miss accounting;
* :mod:`~repro.runner.executor` — supervised process-pool map, retry
  policy, health counters, seed derivation;
* :mod:`~repro.runner.chaos` — deterministic fault-injection doubles;
* :mod:`~repro.runner.journal` — crash-safe sweep journal (exact resume);
* :mod:`~repro.runner.tasks` — payload codecs and worker entry points;
* :mod:`~repro.runner.orchestrator` — the :class:`Runner` façade;
* :mod:`~repro.runner.artifacts` — the frozen-artifact pipeline.
"""

from .cache import MISS, CacheStats, ResultCache, default_cache_dir
from .chaos import ChaosError, ChaosSpec, TornCache
from .executor import (
    ParallelExecutor,
    QuarantineError,
    RunHealth,
    TaskFailure,
    TaskRetryPolicy,
    default_workers,
    derive_seed,
    payload_fingerprint,
)
from .hashing import canonical_json, config_hash
from .journal import RunJournal
from .orchestrator import (
    ClosedLoopJob,
    RecoveryJob,
    CurveJob,
    RoutingJob,
    Runner,
    SaturationJob,
    task_key,
)
from .tasks import TrafficSpec, decode_table, encode_table

__all__ = [
    "Runner",
    "CurveJob",
    "SaturationJob",
    "ClosedLoopJob",
    "RecoveryJob",
    "RoutingJob",
    "TrafficSpec",
    "ResultCache",
    "CacheStats",
    "MISS",
    "ParallelExecutor",
    "TaskRetryPolicy",
    "RunHealth",
    "TaskFailure",
    "QuarantineError",
    "ChaosSpec",
    "ChaosError",
    "TornCache",
    "RunJournal",
    "derive_seed",
    "default_workers",
    "default_cache_dir",
    "payload_fingerprint",
    "config_hash",
    "canonical_json",
    "task_key",
    "encode_table",
    "decode_table",
]
