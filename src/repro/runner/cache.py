"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256 of
the task's canonical configuration (:mod:`repro.runner.hashing`).  Values
are plain JSON documents produced by the task codecs in
:mod:`repro.runner.tasks`.

Large values — compiled routing tables dominate; a 1024-router CSR
table document runs to megabytes of JSON — are stored zlib-compressed
as ``<key>.json.z`` once their serialized form crosses
:data:`COMPRESS_THRESHOLD` bytes (flat integer arrays compress ~10x),
so scale sweeps stay resumable without blowing the on-disk cache.
Reads accept either form transparently; small entries stay plain JSON
and greppable.

Robustness over cleverness:

* writes are atomic (temp file + ``os.replace``) so a killed run never
  leaves a half-written entry;
* a corrupted or unreadable entry is treated as a miss, counted in
  ``stats.errors``, and deleted so the recomputed value replaces it;
* hit/miss/put counters accumulate on the cache object for reporting
  (``repro run`` prints them after every experiment).

The default root is ``$REPRO_CACHE_DIR`` if set, else ``.repro-cache``
under the current working directory.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()

#: Serialized size (bytes) above which an entry is stored compressed.
COMPRESS_THRESHOLD = 4096


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.getcwd(), ".repro-cache"
    )


@dataclass
class CacheStats:
    """Counters for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.errors += other.errors

    def summary(self) -> str:
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({rate:.0f}% hit rate), {self.puts} writes, {self.errors} errors"
        )


class ResultCache:
    """JSON value store addressed by content hash."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.stats = CacheStats()
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def zpath_for(self, key: str) -> str:
        """The compressed sibling of :meth:`path_for`."""
        return self.path_for(key) + ".z"

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        for path, compressed in (
            (self.path_for(key), False),
            (self.zpath_for(key), True),
        ):
            try:
                if compressed:
                    with open(path, "rb") as fh:
                        doc = json.loads(zlib.decompress(fh.read()))
                else:
                    with open(path) as fh:
                        doc = json.load(fh)
                value = doc["value"]
            except FileNotFoundError:
                continue
            except (
                json.JSONDecodeError, zlib.error, UnicodeDecodeError,
                KeyError, TypeError, OSError,
            ):
                # Corrupted entry: drop it and recompute.
                self.stats.errors += 1
                self.stats.misses += 1
                try:
                    os.unlink(path)
                except OSError:
                    pass
                return MISS
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        return MISS

    def put(self, key: str, value: Any) -> None:
        """Atomically store ``value`` (must be JSON-serializable).

        Entries whose serialized form exceeds
        :data:`COMPRESS_THRESHOLD` bytes land zlib-compressed at
        ``<key>.json.z``; the other form's twin (from an older cache
        layout or a threshold change) is removed so a key never exists
        in both forms.
        """
        payload = json.dumps({"key": key, "value": value})
        compress = len(payload) > COMPRESS_THRESHOLD
        path = self.zpath_for(key) if compress else self.path_for(key)
        twin = self.path_for(key) if compress else self.zpath_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(
                    zlib.compress(payload.encode(), level=6)
                    if compress else payload.encode()
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        try:
            os.unlink(twin)
        except OSError:
            pass
        self.stats.puts += 1

    def delete(self, key: str) -> None:
        """Drop an entry (e.g. a cached failure that should be retried)."""
        for path in (self.path_for(key), self.zpath_for(key)):
            try:
                os.unlink(path)
            except OSError:
                pass
