"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256 of
the task's canonical configuration (:mod:`repro.runner.hashing`).  Values
are plain JSON documents produced by the task codecs in
:mod:`repro.runner.tasks`.

Robustness over cleverness:

* writes are atomic (temp file + ``os.replace``) so a killed run never
  leaves a half-written entry;
* a corrupted or unreadable entry is treated as a miss, counted in
  ``stats.errors``, and deleted so the recomputed value replaces it;
* hit/miss/put counters accumulate on the cache object for reporting
  (``repro run`` prints them after every experiment).

The default root is ``$REPRO_CACHE_DIR`` if set, else ``.repro-cache``
under the current working directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Optional

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.getcwd(), ".repro-cache"
    )


@dataclass
class CacheStats:
    """Counters for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.errors += other.errors

    def summary(self) -> str:
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({rate:.0f}% hit rate), {self.puts} writes, {self.errors} errors"
        )


class ResultCache:
    """JSON value store addressed by content hash."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.stats = CacheStats()
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        path = self.path_for(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
            value = doc["value"]
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            # Corrupted entry: drop it and recompute.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return MISS
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically store ``value`` (must be JSON-serializable)."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump({"key": key, "value": value}, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def delete(self, key: str) -> None:
        """Drop an entry (e.g. a cached failure that should be retried)."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass
