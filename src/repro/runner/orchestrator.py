"""The :class:`Runner`: cache-aware, parallel experiment orchestration.

One object owns the whole execution policy — how many workers, which
cache, whether to bypass it — and every layer above (sweeps, figures,
``repro run``, ``scripts/generate_all.py``) routes its work through it:

1. each logical unit of work becomes a pure-data payload
   (:mod:`repro.runner.tasks`);
2. the payload's content hash is looked up in the on-disk cache;
3. only the misses are fanned out over the process pool;
4. fresh results are written back and everything is returned in the
   original submission order.

Because payloads fully determine results and the cache is keyed by
content, a rerun of any experiment resumes where the last one stopped —
resumability falls out of the design rather than being bolted on.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..routing.tables import RoutingTable
from ..sim.fastnet import DEFAULT_ENGINE
from ..sim.sweep import SweepResult, assemble_curve
from . import tasks
from .cache import MISS, CacheStats, ResultCache
from .executor import (
    ParallelExecutor,
    QuarantineError,
    RunHealth,
    TaskFailure,
    TaskRetryPolicy,
    default_workers,
)
from .hashing import config_hash
from .journal import JOURNAL_NAME, RunJournal


def task_key(task_name: str, payload: Dict[str, Any]) -> str:
    """The cache key of one task: hash of its kind plus configuration."""
    return config_hash({"task": task_name, "payload": payload})


@dataclass
class CurveJob:
    """One latency-throughput curve to produce (a batch of sim points)."""

    table: RoutingTable
    traffic: tasks.TrafficSpec
    rates: Tuple[float, ...]
    name: str
    link_class: Optional[str] = None
    warmup: int = 500
    measure: int = 2000
    seed: int = 0
    stop_after_saturation: bool = True
    sim_kw: Dict[str, Any] = field(default_factory=dict)
    #: Simulation engine ("fast"/"reference"); None = the runner's default.
    engine: Optional[str] = None
    #: Optional :class:`~repro.faults.FaultSchedule` applied to every point.
    faults: Any = None


@dataclass
class SaturationJob:
    """One binary-search saturation probe to run."""

    table: RoutingTable
    traffic: tasks.TrafficSpec
    name: str
    lo: float = 0.01
    hi: float = 1.0
    iters: int = 6
    warmup: int = 400
    measure: int = 1200
    seed: int = 0
    sim_kw: Dict[str, Any] = field(default_factory=dict)
    #: Simulation engine ("fast"/"reference"); None = the runner's default.
    engine: Optional[str] = None
    #: Optional :class:`~repro.faults.FaultSchedule` applied to every probe.
    faults: Any = None


@dataclass
class RoutingJob:
    """One route + VC-allocate + table-compile unit (generation side).

    The unit the design-space pipeline and ``registry.routed_table``
    fan out: MCLB's LP solve is seconds per topology, so a roster's
    tables parallelize and cache like sim points do.
    """

    topology: Any  # repro.topology.Topology
    policy: str = "mclb"
    seed: int = 0
    #: None = the size-scaled default (8 up to 30 routers, 14 above).
    max_vcs: Optional[int] = None
    time_limit: float = 60.0


@dataclass
class ClosedLoopJob:
    """One full-system closed-loop run: a (benchmark, topology) pair.

    The unit the Fig. 8 PARSEC sweep fans out — each pair is an
    independent simulation, so a sweep of W workloads over T topologies
    becomes W×(T+1) of these (the mesh baseline included).
    """

    table: RoutingTable
    workload: Any  # repro.fullsys.workloads.WorkloadProfile
    link_class: Optional[str] = None
    warmup: int = 600
    measure: int = 2500
    seed: int = 0
    #: Closed-loop engine ("fast"/"reference"); None = the runner's default.
    engine: Optional[str] = None
    #: Optional fault schedule (requires ``retry``) and retry policy.
    faults: Any = None
    retry: Any = None


@dataclass
class RecoveryJob:
    """One windowed closed-loop run for transient-recovery measurement.

    The ``recovery`` experiment's unit: a (workload, topology, fault
    scenario) cell whose result is the per-window counter series the
    drain/settling metrics derive from.
    """

    table: RoutingTable
    workload: Any  # repro.fullsys.workloads.WorkloadProfile
    faults: Any  # repro.faults.FaultSchedule
    retry: Any  # repro.fullsys.closedloop.RetryPolicy
    link_class: Optional[str] = None
    total: int = 1400
    window: int = 50
    seed: int = 0
    engine: Optional[str] = None


class Runner:
    """Parallel, cached executor for the reproduction's workloads.

    ``parallel=1`` (the default) runs everything inline; results are
    identical at any worker count.  ``no_cache=True`` disables the disk
    cache entirely (the ``--no-cache`` escape hatch).

    Execution is supervised (see :mod:`repro.runner.executor`): ``retry``
    sets the per-task timeout/retry/backoff policy, and ``health``
    reports what supervision had to do.  With a cache, every run also
    keeps a sweep journal (``journal.jsonl`` in the cache root) so a
    killed run resumes exactly; payloads that exhaust their retries are
    quarantined with a failure artifact under ``<cache root>/failures/``.
    ``chaos`` (a :class:`~repro.runner.chaos.ChaosSpec`) and ``cache``
    (a pre-built :class:`ResultCache`, e.g. a
    :class:`~repro.runner.chaos.TornCache`) are the fault-injection test
    surfaces.
    """

    def __init__(
        self,
        parallel: int = 1,
        cache_dir: Optional[str] = None,
        no_cache: bool = False,
        engine: str = DEFAULT_ENGINE,
        retry: Optional[TaskRetryPolicy] = None,
        chaos: Any = None,
        cache: Optional[ResultCache] = None,
        journal: bool = True,
    ):
        if parallel <= 0:
            parallel = default_workers()
        self.retry = retry or TaskRetryPolicy()
        self.executor = ParallelExecutor(parallel, retry=self.retry, chaos=chaos)
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        else:
            self.cache = None if no_cache else ResultCache(cache_dir)
        #: Default simulation engine for jobs that don't pin one.
        self.engine = engine
        #: Every TaskFailure quarantined through this runner (for reporting).
        self.failures: List[TaskFailure] = []
        self.journal: Optional[RunJournal] = None
        self._resumable: Set[str] = set()
        if journal and self.cache is not None:
            self.journal = RunJournal(os.path.join(self.cache.root, JOURNAL_NAME))
            self.executor.health.interrupted = len(self.journal.prior_interrupted)
            self._resumable = set(self.journal.prior_done)

    # -- introspection -------------------------------------------------------
    @property
    def parallel(self) -> int:
        return self.executor.workers

    @property
    def effective_parallel(self) -> int:
        """Workers parallel maps actually reach (1 if the pool is broken)."""
        return self.executor.effective_workers()

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats if self.cache is not None else CacheStats()

    @property
    def health(self) -> RunHealth:
        """The supervision report, with cache-side counters folded in."""
        h = self.executor.health.copy()
        if self.cache is not None:
            h.cache_evictions = self.cache.stats.errors
        return h

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the cache needs none)."""
        self.executor.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the core loop -------------------------------------------------------
    def _record_failure(self, failure: TaskFailure) -> None:
        """Quarantine bookkeeping: remember the failure for reporting,
        journal it, and write the structured failure artifact
        (``<cache root>/failures/<key>.json``) atomically."""
        self.failures.append(failure)
        if self.journal is not None:
            self.journal.quarantined(failure.key, failure.as_dict())
        if self.cache is None:
            return
        directory = os.path.join(self.cache.root, "failures")
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(failure.as_dict(), fh, indent=2)
            os.replace(tmp, os.path.join(directory, f"{failure.key}.json"))
        except OSError:
            pass  # reporting must not mask the failure being reported

    def run_tasks(
        self,
        task_name: str,
        payloads: Sequence[Dict[str, Any]],
        quarantine: str = "raise",
    ) -> List[Any]:
        """Run a batch of same-kind tasks: cache lookup, fan out misses,
        write back, return decoded results in submission order.

        Results that report their own failure (``{"ok": false, ...}``,
        the convention of failure-isolating tasks like ``artifact``) are
        returned but never cached — a retry must actually retry.

        Each fresh result is cached (and journaled) the moment its task
        completes, not when the wave ends — a killed run keeps all its
        finished work.  Payloads that exhaust the retry policy are
        quarantined: with ``quarantine="raise"`` (the default) a
        :class:`QuarantineError` carrying the failures is raised *after*
        the whole wave has completed and its successes are cached;
        ``quarantine="return"`` instead leaves the
        :class:`TaskFailure` records (undecoded) in the result list for
        callers that isolate failures themselves.
        """
        if quarantine not in ("raise", "return"):
            raise ValueError(f"unknown quarantine mode {quarantine!r}")
        fn, decode = tasks.TASK_FUNCTIONS[task_name]
        payloads = list(payloads)
        keys = [task_key(task_name, p) for p in payloads]
        results: List[Any] = [MISS] * len(payloads)
        if self.cache is not None:
            for i, key in enumerate(keys):
                results[i] = self.cache.get(key)
                if results[i] is not MISS and key in self._resumable:
                    # A hit the previous (killed) run journaled as done.
                    self._resumable.discard(key)
                    self.executor.health.resumed += 1
        todo = [i for i, r in enumerate(results) if r is MISS]
        if todo:
            # Identical payloads within one batch compute (and cache)
            # once; every duplicate index shares the fresh value.  The
            # final decode still runs per index, so callers get
            # independent objects.
            slot: Dict[str, int] = {}
            unique: List[int] = []
            for i in todo:
                if keys[i] not in slot:
                    slot[keys[i]] = len(unique)
                    unique.append(i)
            unique_keys = [keys[i] for i in unique]
            if self.journal is not None:
                self.journal.wave(task_name, unique_keys)

            def _task_done(j: int, outcome: Any) -> None:
                key = unique_keys[j]
                if isinstance(outcome, TaskFailure):
                    outcome.task = task_name
                    outcome.key = key
                    self._record_failure(outcome)
                    return
                failed = isinstance(outcome, dict) and outcome.get("ok") is False
                if failed:
                    return  # not cached, not journaled: a rerun retries it
                if self.cache is not None:
                    self.cache.put(key, outcome)
                if self.journal is not None:
                    self.journal.done(key)

            fresh = self.executor.map_outcomes(
                fn, [payloads[i] for i in unique], on_done=_task_done,
            )
            for i in todo:
                results[i] = fresh[slot[keys[i]]]
            wave_failures = [o for o in fresh if isinstance(o, TaskFailure)]
            if wave_failures and quarantine == "raise":
                raise QuarantineError(wave_failures)
        return [
            r if isinstance(r, TaskFailure) else decode(r)
            for r in results
        ]

    # -- simulation workloads ------------------------------------------------
    def curves(self, jobs: Sequence[CurveJob]) -> List[SweepResult]:
        """Produce many curves at once, fanning (curve, rate) sim points
        across the pool in waves.

        Serial sweeps stop at the first saturated rate, so blindly
        computing every rate of every curve would waste work past
        saturation.  Instead each wave submits the next rate(s) of every
        still-active curve — enough per curve to keep the pool busy —
        and a curve retires as soon as its ordered prefix saturates.
        With one worker this degenerates to exactly the serial sweep's
        work; at any worker count the assembled curves are identical
        (measurements are independent and classification is shared with
        :func:`repro.sim.sweep.assemble_curve`).
        """
        jobs = list(jobs)
        collected: List[List[Any]] = [[] for _ in jobs]  # stats per job, in rate order
        cursor = [0] * len(jobs)
        active = [bool(job.rates) for job in jobs]
        while any(active):
            live = [i for i, a in enumerate(active) if a]
            # Enough tasks per wave to occupy every worker, but no more
            # speculation past a potential saturation point than needed.
            per_job = max(1, -(-self.executor.workers // len(live)))
            wave: List[Tuple[int, Dict[str, Any]]] = []
            for i in live:
                job = jobs[i]
                for rate in job.rates[cursor[i]: cursor[i] + per_job]:
                    wave.append((i, tasks.sim_point_payload(
                        job.table, job.traffic, rate,
                        job.warmup, job.measure, job.seed, job.sim_kw,
                        engine=job.engine or self.engine,
                        faults=job.faults,
                    )))
            stats_list = self.run_tasks("sim_point", [p for _, p in wave])
            for (i, _), stats in zip(wave, stats_list):
                collected[i].append(stats)
                cursor[i] += 1
            # Retire curves whose computed prefix already saturates (or
            # whose rates ran out); assemble_curve re-truncates later.
            for i in live:
                job = jobs[i]
                partial = assemble_curve(
                    job.rates, collected[i],
                    name=job.name, link_class=job.link_class,
                    stop_after_saturation=job.stop_after_saturation,
                )
                saturated = bool(partial.points) and partial.points[-1].saturated
                if cursor[i] >= len(job.rates) or (
                    job.stop_after_saturation and saturated
                ):
                    active[i] = False
        return [
            assemble_curve(
                job.rates, collected[i],
                name=job.name, link_class=job.link_class,
                stop_after_saturation=job.stop_after_saturation,
            )
            for i, job in enumerate(jobs)
        ]

    def curve(
        self,
        table: RoutingTable,
        traffic: tasks.TrafficSpec,
        rates: Sequence[float],
        name: Optional[str] = None,
        link_class: Optional[str] = None,
        warmup: int = 500,
        measure: int = 2000,
        seed: int = 0,
        stop_after_saturation: bool = True,
        engine: Optional[str] = None,
        faults=None,
        **sim_kw,
    ) -> SweepResult:
        """Parallel, cached drop-in for
        :func:`repro.sim.sweep.latency_throughput_curve`."""
        job = CurveJob(
            table=table,
            traffic=traffic,
            rates=tuple(rates),
            name=name or table.topology.name,
            link_class=link_class or table.topology.link_class,
            warmup=warmup,
            measure=measure,
            seed=seed,
            stop_after_saturation=stop_after_saturation,
            sim_kw=dict(sim_kw),
            engine=engine,
            faults=faults,
        )
        return self.curves([job])[0]

    def batch_points(
        self,
        table: RoutingTable,
        traffic: tasks.TrafficSpec,
        lanes: Sequence[Tuple[float, int]],
        warmup: int,
        measure: int,
        mode: str = "turbo",
        sim_kw: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        """Measure ``(rate, seed)`` lanes through the batched engine with
        *per-point* cache identity.

        Every lane is keyed as the single ``sim_point`` payload it is
        equivalent to (engine ``"fast"`` for exact mode — bit-identical
        by the batch contract — and ``"turbo"`` for turbo, whose lanes
        are batch-composition-invariant).  Cached lanes are answered
        from the store; only the misses run, chunked into ``sim_batch``
        tasks across the pool, and each fresh lane is written back under
        its per-point key — so a later single-point lookup hits the
        batched result, and a batched lookup hits earlier single points.
        """
        sim_kw = dict(sim_kw or {})
        engine = "fast" if mode == "exact" else "turbo"
        lanes = [(float(r), int(s)) for r, s in lanes]
        point_keys = [
            task_key("sim_point", tasks.sim_point_payload(
                table, traffic, r, warmup, measure, s, sim_kw,
                engine=engine,
            ))
            for r, s in lanes
        ]
        results: List[Any] = [MISS] * len(lanes)
        if self.cache is not None:
            for i, key in enumerate(point_keys):
                hit = self.cache.get(key)
                if hit is not MISS:
                    results[i] = tasks.stats_from_dict(hit)
        todo = [i for i, r in enumerate(results) if r is MISS]
        if todo:
            slot: Dict[str, int] = {}
            uniq: List[int] = []
            for i in todo:
                if point_keys[i] not in slot:
                    slot[point_keys[i]] = len(uniq)
                    uniq.append(i)
            n_chunks = max(1, min(self.executor.workers, len(uniq)))
            step = -(-len(uniq) // n_chunks)
            groups = [
                uniq[j: j + step] for j in range(0, len(uniq), step)
            ]
            payloads = [
                tasks.sim_batch_payload(
                    table, traffic, [lanes[i] for i in g],
                    warmup, measure, mode, sim_kw,
                )
                for g in groups
            ]
            outs = self.run_tasks("sim_batch", payloads)
            fresh: Dict[str, Any] = {}
            for g, stats in zip(groups, outs):
                for i, st in zip(g, stats):
                    fresh[point_keys[i]] = st
                    if self.cache is not None:
                        self.cache.put(
                            point_keys[i], tasks.stats_to_dict(st)
                        )
            for i in todo:
                results[i] = fresh[point_keys[i]]
        return results

    def multi_seed_curves(
        self,
        table: RoutingTable,
        traffic: tasks.TrafficSpec,
        rates: Sequence[float],
        seeds: Sequence[int],
        name: Optional[str] = None,
        link_class: Optional[str] = None,
        warmup: int = 500,
        measure: int = 2000,
        mode: str = "turbo",
        stop_after_saturation: bool = True,
        sim_kw: Optional[Dict[str, Any]] = None,
    ) -> Dict[int, SweepResult]:
        """One curve per seed, advancing all live seeds one rate per
        batched wave.

        The batch engine fuses the S replicas of each rate into one
        call (:meth:`batch_points`, so lanes cache under per-point
        keys), while the wave structure keeps the serial sweep's
        early-stop economy: a seed retires as soon as its ordered
        prefix saturates, exactly like :meth:`curves` does per curve.
        """
        rates = [float(r) for r in rates]
        seeds = [int(s) for s in seeds]
        name = name or table.topology.name
        link_class = link_class or table.topology.link_class
        collected: Dict[int, List[Any]] = {s: [] for s in seeds}
        cursor = {s: 0 for s in seeds}
        live = list(seeds) if rates else []
        while live:
            wave = [(rates[cursor[s]], s) for s in live]
            stats = self.batch_points(
                table, traffic, wave, warmup, measure,
                mode=mode, sim_kw=sim_kw,
            )
            for (_r, s), st in zip(wave, stats):
                collected[s].append(st)
                cursor[s] += 1
            nxt = []
            for s in live:
                partial = assemble_curve(
                    rates, collected[s], name=name, link_class=link_class,
                    stop_after_saturation=stop_after_saturation,
                )
                saturated = (
                    bool(partial.points) and partial.points[-1].saturated
                )
                if cursor[s] < len(rates) and not (
                    stop_after_saturation and saturated
                ):
                    nxt.append(s)
            live = nxt
        return {
            s: assemble_curve(
                rates, collected[s], name=name, link_class=link_class,
                stop_after_saturation=stop_after_saturation,
            )
            for s in seeds
        }

    def saturations(self, jobs: Sequence[SaturationJob]) -> List[float]:
        """Fan whole saturation searches across workers (Figs. 7/11)."""
        payloads = [
            tasks.sat_search_payload(
                j.table, j.traffic, j.lo, j.hi, j.iters,
                j.warmup, j.measure, j.seed, j.sim_kw,
                engine=j.engine or self.engine,
                faults=j.faults,
            )
            for j in jobs
        ]
        return self.run_tasks("sat_search", payloads)

    def closed_loops(self, jobs: Sequence[ClosedLoopJob]) -> List[Any]:
        """Fan closed-loop (benchmark, topology) runs across workers
        (Fig. 8 / the report's full-system section).  Returns
        :class:`~repro.fullsys.speedup.WorkloadResult` objects in
        submission order; cached pairs skip simulation outright."""
        payloads = [
            tasks.closed_loop_payload(
                j.table, j.workload, j.link_class,
                j.warmup, j.measure, j.seed,
                engine=j.engine or self.engine,
                faults=j.faults,
                retry=j.retry,
            )
            for j in jobs
        ]
        return self.run_tasks("closed_loop", payloads)

    def recoveries(self, jobs: Sequence[RecoveryJob]) -> List[Any]:
        """Fan windowed recovery runs across workers.  Returns each
        job's :class:`~repro.sim.stats.WindowSample` list in submission
        order; the caller derives drain/settling metrics from them."""
        payloads = [
            tasks.recovery_payload(
                j.table, j.workload, j.link_class, j.faults, j.retry,
                j.total, j.window, j.seed,
                engine=j.engine or self.engine,
            )
            for j in jobs
        ]
        return self.run_tasks("recovery", payloads)

    # -- generation-side workloads -------------------------------------------
    def tables(self, jobs: Sequence[RoutingJob]) -> List[RoutingTable]:
        """Fan routing-table compilations across workers (cached).

        Cache identity is the link set + routing configuration, never
        the topology's display name, so identically-linked topologies
        share one compilation; each returned table carries its own
        job's name/link class regardless of who computed the entry.
        """
        payloads = [
            tasks.routing_payload(
                j.topology, j.policy, j.seed,
                j.max_vcs if j.max_vcs is not None
                else tasks.default_max_vcs(j.topology.n),
                j.time_limit,
            )
            for j in jobs
        ]
        results = self.run_tasks("routing", payloads)
        for job, table in zip(jobs, results):
            table.topology.name = job.topology.name
            table.topology.link_class = job.topology.link_class
        return results

    # -- experiment-level entry point ---------------------------------------
    def run_experiment(self, name: str, fast: bool = True, **kwargs) -> Any:
        """Run a named experiment from the registry through this runner."""
        from ..experiments.registry import get_experiment

        return get_experiment(name).run(self, fast, **kwargs)
