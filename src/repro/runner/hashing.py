"""Canonical serialization and content hashing for cache keys.

Cache keys are SHA-256 digests of a *canonical* JSON encoding: dict keys
sorted, tuples and sets normalized to lists, numpy scalars unwrapped and
arrays expanded, dataclasses flattened to ``{class: ..., fields: ...}``.
Two configurations that compare equal always hash equal, regardless of
dict insertion order or int-vs-numpy-int typing, so a cache entry written
by one process is found by any other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON types with a deterministic layout."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": list(obj.shape), "data": obj.tolist()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: canonicalize(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                k = json.dumps(canonicalize(k), sort_keys=True)
            out[k] = canonicalize(v)
        return out
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(json.dumps(canonicalize(v), sort_keys=True) for v in obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text of a canonicalized object."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def config_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical encoding (the cache key)."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
