"""Crash-safe sweep journal: exact resume for killed runs.

The cache already makes reruns cheap — every finished task is a hit.
What the cache cannot say is *what a killed run was doing*: which wave
was in flight, which of its tasks finished, which were lost.  The
journal records exactly that, as an append-only JSON-lines file at
``<cache root>/journal.jsonl``:

.. code-block:: text

    {"ev": "run", "version": 1, "pid": 12345}
    {"ev": "wave", "task": "sim_point", "keys": ["ab12...", "cd34..."]}
    {"ev": "done", "key": "ab12..."}
    {"ev": "quarantined", "key": "cd34...", "failure": {...}}

``wave`` declares intent (the cache keys about to execute); ``done``
confirms completion — written *after* the result is cached, so a key
with a ``done`` line is guaranteed to be a cache hit on resume.  Each
line is flushed as written; a SIGKILL mid-line leaves at most one torn
trailing record, which the scanner skips.

On open, the previous run's journal is scanned first: keys declared in
a ``wave`` but never ``done``/``quarantined`` are the **interrupted**
set (reported via ``RunHealth.interrupted``), and ``done`` keys the new
run re-reads from cache count as **resumed**.  The file is then
truncated and a fresh run header written — the journal describes one
run, the cache describes all of them.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Set, TextIO

JOURNAL_VERSION = 1

#: File name inside the cache root.
JOURNAL_NAME = "journal.jsonl"


def scan(path: str) -> Dict[str, Any]:
    """Parse a journal file into ``{done, quarantined, interrupted}``
    key sets.  Torn or garbage lines (a crash mid-write) are skipped —
    the journal must tolerate exactly the failures it exists to record."""
    declared: Set[str] = set()
    done: Set[str] = set()
    quarantined: Set[str] = set()
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                try:
                    rec = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if not isinstance(rec, dict):
                    continue
                ev = rec.get("ev")
                if ev == "wave":
                    keys = rec.get("keys")
                    if isinstance(keys, list):
                        declared.update(k for k in keys if isinstance(k, str))
                elif ev == "done" and isinstance(rec.get("key"), str):
                    done.add(rec["key"])
                elif ev == "quarantined" and isinstance(rec.get("key"), str):
                    quarantined.add(rec["key"])
    except (FileNotFoundError, OSError):
        pass
    return {
        "done": done,
        "quarantined": quarantined,
        "interrupted": declared - done - quarantined,
    }


class RunJournal:
    """Append-only event log for one run (see module docstring).

    IO failures never take down a run: a journal that cannot be written
    disables itself and the sweep continues unjournaled (losing resume
    precision, not results).
    """

    def __init__(self, path: str):
        self.path = path
        prior = scan(path)
        self.prior_done: Set[str] = prior["done"]
        self.prior_interrupted: Set[str] = prior["interrupted"]
        self._fh: Optional[TextIO] = None
        try:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")
        except OSError:
            self._fh = None
        self._write({"ev": "run", "version": JOURNAL_VERSION, "pid": os.getpid()})

    def _write(self, rec: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        try:
            self._fh.write(json.dumps(rec) + "\n")
            self._fh.flush()
        except (OSError, ValueError):
            # ValueError: write on a closed file (interpreter teardown).
            self._fh = None

    def wave(self, task: str, keys: List[str]) -> None:
        self._write({"ev": "wave", "task": task, "keys": list(keys)})

    def done(self, key: str) -> None:
        self._write({"ev": "done", "key": key})

    def quarantined(self, key: str, failure: Optional[Dict[str, Any]] = None) -> None:
        rec: Dict[str, Any] = {"ev": "quarantined", "key": key}
        if failure is not None:
            rec["failure"] = failure
        self._write(rec)

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
