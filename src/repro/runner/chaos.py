"""Deterministic chaos harness for the supervised runner.

Fault-tolerance logic that cannot be exercised is decoration.  This
module provides the test doubles that let the differential suite inject
real faults — worker ``os._exit``, task hangs, transient exceptions,
scheduling delays, torn cache writes — while keeping every injection
**deterministic**: victims are selected by content hash (never by
wall-clock, pid, or global RNG state), so a chaotic run is exactly
reproducible and its expected fault counts are known in advance.  The
acceptance bar is differential: a sweep run under chaos must produce
bit-identical results to the fault-free run, with :class:`RunHealth`
counters matching the injected fault counts.

Faults are keyed by :func:`~repro.runner.executor.payload_fingerprint`
(the payload's canonical content hash).  ``ChaosSpec.select`` ranks
fingerprints by a seeded digest and carves off the requested number of
victims per fault class, so tests write ``ChaosSpec.select(payloads,
seed=0, exc=2, crash=1)`` and then assert ``health.retries == 2`` etc.

Crash and hang injections are **pid-guarded**: they only fire inside a
worker process (``os.getpid() != spec.main_pid``), never in the
supervisor.  This is not just self-preservation — it also means the
executor's inline degradation path (which runs tasks in the supervisor
process after writing off the pool) completes chaos-marked payloads
instead of dying, exactly the behavior degradation promises.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Sequence, Tuple

from .cache import ResultCache
from .executor import payload_fingerprint


class ChaosError(RuntimeError):
    """The injected transient task exception."""


@dataclass(frozen=True)
class ChaosSpec:
    """A pickled-to-workers description of which payloads fail and how.

    ``crash``/``hang``/``exc``/``delay`` hold payload fingerprints (see
    :func:`payload_fingerprint`).  Crash/hang/exc fire only while the
    payload's attempt number is below ``fail_attempts`` — so with the
    default of 1 every victim fails exactly once and succeeds on retry,
    while ``fail_attempts`` larger than the retry budget makes a victim
    a poison task that must be quarantined.  ``delay`` always fires: it
    shapes scheduling (useful to hold tasks in flight for SIGINT tests)
    without ever failing anything.
    """

    crash: Tuple[str, ...] = ()
    hang: Tuple[str, ...] = ()
    exc: Tuple[str, ...] = ()
    delay: Tuple[str, ...] = ()
    fail_attempts: int = 1
    hang_s: float = 30.0
    delay_s: float = 0.02
    main_pid: int = field(default_factory=os.getpid)

    def __post_init__(self):
        if self.fail_attempts < 0:
            raise ValueError(
                f"fail_attempts must be >= 0, got {self.fail_attempts!r}"
            )
        if self.hang_s <= 0 or self.delay_s < 0:
            raise ValueError("hang_s must be > 0 and delay_s >= 0")

    def counts(self) -> Dict[str, int]:
        return {
            "crash": len(self.crash),
            "hang": len(self.hang),
            "exc": len(self.exc),
            "delay": len(self.delay),
        }

    @classmethod
    def select(
        cls,
        payloads: Sequence[Any],
        seed: int = 0,
        crash: int = 0,
        hang: int = 0,
        exc: int = 0,
        delay: int = 0,
        **kwargs: Any,
    ) -> "ChaosSpec":
        """Deterministically pick fault victims from ``payloads``.

        Distinct payload fingerprints are ranked by
        ``sha256(seed ':' fingerprint)`` and the requested counts carved
        off in order (crash victims first, then hang, exc, delay) — the
        classes never overlap, and the same payloads + seed always
        select the same victims.
        """
        keys = sorted(
            {payload_fingerprint(p) for p in payloads},
            key=lambda k: hashlib.sha256(f"{seed}:{k}".encode()).hexdigest(),
        )
        need = crash + hang + exc + delay
        if need > len(keys):
            raise ValueError(
                f"cannot select {need} distinct fault victims from "
                f"{len(keys)} distinct payloads"
            )
        cuts = [crash, crash + hang, crash + hang + exc, need]
        return cls(
            crash=tuple(keys[: cuts[0]]),
            hang=tuple(keys[cuts[0]:cuts[1]]),
            exc=tuple(keys[cuts[1]:cuts[2]]),
            delay=tuple(keys[cuts[2]:cuts[3]]),
            **kwargs,
        )


def chaos_call(spec: ChaosSpec, attempt: int, fn, payload):
    """Run ``fn(payload)`` with ``spec``'s faults applied to this attempt.

    The executor routes every task call through here when chaos is
    armed — in workers and inline alike; this is the single interposition
    point, so supervision itself is identical with and without chaos.
    """
    key = payload_fingerprint(payload)
    in_worker = os.getpid() != spec.main_pid
    if attempt < spec.fail_attempts:
        if key in spec.crash and in_worker:
            # A real worker crash: no exception, no cleanup — the pool
            # sees the process vanish, exactly like an OOM kill.
            os._exit(17)
        if key in spec.hang and in_worker:
            time.sleep(spec.hang_s)
        if key in spec.exc:
            raise ChaosError(
                f"injected transient failure (attempt {attempt}) "
                f"for payload {key[:12]}"
            )
    if key in spec.delay:
        time.sleep(spec.delay_s)
    return fn(payload)


class TornCache(ResultCache):
    """A :class:`ResultCache` whose first write of selected keys is torn.

    After a normal atomic put, the on-disk entry for a selected key is
    corrupted in place — truncated (``mode="truncate"``) or overwritten
    with garbage bytes (``mode="garbage"``) — simulating the torn write
    a crash mid-``os.replace``-less writer would leave.  Each key is
    torn at most once, so the repopulation after eviction sticks.  The
    cache's own read path is untouched: discovery, eviction, and
    recompute exercise the production corruption handling, and each
    eviction shows up in ``stats.errors`` / ``RunHealth.cache_evictions``.

    ``torn`` holds *cache keys* (the ``task_key`` identity), not payload
    fingerprints — this double sits behind the cache API, where payloads
    are no longer visible.
    """

    def __init__(self, root=None, torn: Sequence[str] = (), mode: str = "truncate"):
        super().__init__(root)
        if mode not in ("truncate", "garbage"):
            raise ValueError(f"unknown tear mode {mode!r}")
        self._torn = set(torn)
        self.mode = mode
        self.torn_writes = 0

    def put(self, key: str, value: Any) -> None:
        super().put(key, value)
        if key not in self._torn:
            return
        self._torn.discard(key)
        for path in (self.path_for(key), self.zpath_for(key)):
            if not os.path.exists(path):
                continue
            with open(path, "rb") as fh:
                data = fh.read()
            with open(path, "wb") as fh:
                if self.mode == "truncate":
                    fh.write(data[: max(1, len(data) // 2)])
                else:
                    fh.write(b"\x00\xffnot json\xfe" + data[:8])
            self.torn_writes += 1
