"""Process-pool fan-out with deterministic seeding and a serial fallback.

The executor maps a *module-level* task function over a list of pure-data
payloads.  Results come back in payload order, so a parallel map is a
drop-in replacement for the serial loop it replaces — determinism is the
contract, speed is the point.

Determinism comes from the payloads themselves: every task carries its
RNG seed as data (the sweep tasks forward the caller's seed verbatim,
matching the serial code paths).  For callers that need *distinct*
per-task seeds — e.g. replicated runs of the same configuration —
``derive_seed`` derives one stably from a base seed plus the task's
identity, never its scheduling order.
"""

from __future__ import annotations

import atexit
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence


def derive_seed(base_seed: int, *components: Any) -> int:
    """A stable 31-bit seed from a base seed and task identity.

    Same inputs always give the same seed; distinct components give
    (overwhelmingly) distinct seeds.  Scheduling order never enters.
    """
    text = repr((int(base_seed),) + tuple(components))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % (2**31)


def default_workers() -> int:
    return os.cpu_count() or 1


class ParallelExecutor:
    """Order-preserving map over worker processes.

    ``workers <= 1`` runs inline (no pool, no pickling) — the semantics
    are identical either way.  The pool is created lazily on the first
    parallel map and reused across calls (wave-scheduled sweeps map many
    small batches; respawning workers per batch would pay the
    interpreter/numpy import cost every time).  If the platform refuses
    to spawn processes at all, the executor degrades to the inline path;
    errors raised *inside* tasks or by dying workers propagate — a
    crashed hour-scale batch should fail loudly, not silently rerun
    serially.
    """

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False

    def _get_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool is None and not self._pool_broken:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, PermissionError):
                # Pools can be unavailable (restricted sandboxes, exotic
                # platforms); parallelism is an optimization, not a
                # dependency.
                self._pool_broken = True
            else:
                # A pool left for the garbage collector races CPython's
                # interpreter teardown ("Bad file descriptor" noise on
                # exit); shut it down deterministically instead.
                atexit.register(self.close)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def effective_workers(self) -> int:
        """The worker count a parallel map actually fans out to.

        1 when configured serial — or when the platform refused to spawn
        a pool and maps silently degraded to the inline path.  Benchmarks
        that assert parallel speedups must check this and fail loudly
        rather than record a degenerate single-process baseline as a
        result.
        """
        if self.workers <= 1:
            return 1
        return self.workers if self._get_pool() is not None else 1

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        chunksize: Optional[int] = None,
    ) -> List[Any]:
        payloads = list(payloads)
        if self.workers <= 1 or len(payloads) <= 1:
            return [fn(p) for p in payloads]
        pool = self._get_pool()
        if pool is None:
            return [fn(p) for p in payloads]
        if chunksize is None:
            chunksize = max(1, len(payloads) // (self.workers * 4))
        return list(pool.map(fn, payloads, chunksize=chunksize))
