"""Supervised process-pool execution with deterministic seeding.

The executor maps a *module-level* task function over a list of pure-data
payloads.  Results come back in payload order, so a parallel map is a
drop-in replacement for the serial loop it replaces — determinism is the
contract, speed is the point.

Determinism comes from the payloads themselves: every task carries its
RNG seed as data (the sweep tasks forward the caller's seed verbatim,
matching the serial code paths).  For callers that need *distinct*
per-task seeds — e.g. replicated runs of the same configuration —
``derive_seed`` derives one stably from a base seed plus the task's
identity, never its scheduling order.

Supervision
-----------

A bare ``pool.map`` dies with its weakest task: one ``BrokenProcessPool``
kills the whole wave, one hung task stalls a sweep forever.  The
supervised map instead runs a small state machine per wave:

* **NORMAL** — up to ``workers`` payloads are in flight at once, each
  with an optional wall-clock deadline (:class:`TaskRetryPolicy`
  ``timeout``).  A task that raises a (transient) exception is charged
  an attempt and requeued after a deterministic exponential backoff.
* **hang handling** — a task past its deadline is charged a timeout
  attempt; the pool is restarted (the only way to reclaim a hung
  worker), the other in-flight payloads are resubmitted *uncharged*,
  and already-completed results are kept.
* **ISOLATION** — a pool collapse (a worker ``os._exit``, an OOM kill)
  cannot name its culprit: every in-flight future fails with
  ``BrokenProcessPool``.  The suspects are therefore resubmitted one at
  a time; a collapse during isolation convicts exactly one payload,
  which is charged a crash attempt.  Innocent suspects are never
  charged.
* **quarantine** — a payload that exhausts ``retries`` attempts becomes
  a structured :class:`TaskFailure` (payload hash, attempts, full
  tracebacks) in the result list; the rest of the wave continues.
* **DEGRADED** — after ``max_pool_restarts`` collapses the executor
  stops trusting the platform's process pool and finishes every
  remaining payload inline (chaos crash/hang injectors are pid-guarded,
  so test-double faults cannot take down the supervisor itself).

Every event increments a counter on :class:`RunHealth`, the report
surfaced by :class:`~repro.runner.orchestrator.Runner` and ``repro run
--health``.
"""

from __future__ import annotations

import atexit
import hashlib
import heapq
import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Upper bound (seconds) on one exponential-backoff delay.
BACKOFF_CAP = 5.0

#: Poll granularity (seconds) of the supervision loop.
_POLL = 0.05


def derive_seed(base_seed: int, *components: Any) -> int:
    """A stable 31-bit seed from a base seed and task identity.

    Same inputs always give the same seed; distinct components give
    (overwhelmingly) distinct seeds.  Scheduling order never enters.
    """
    text = repr((int(base_seed),) + tuple(components))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % (2**31)


def default_workers() -> int:
    return os.cpu_count() or 1


def payload_fingerprint(payload: Any) -> str:
    """A stable content hash identifying one payload.

    Pure-data payloads get the canonical config hash (the same identity
    the cache keys derive from); anything unhashable falls back to a
    digest of its ``repr``.
    """
    from .hashing import config_hash

    try:
        return config_hash(payload)
    except TypeError:
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TaskRetryPolicy:
    """Timeout/retry/backoff semantics for supervised executor tasks.

    The execution-layer mirror of the in-simulation
    :class:`~repro.fullsys.closedloop.RetryPolicy`: frozen, validated at
    construction, serializable.  ``timeout`` is the wall-clock budget
    (seconds) of one attempt — ``None`` disables deadlines; timeouts
    apply only to pool execution, since inline work cannot be preempted.
    A failed attempt ``a`` (1-based) waits ``backoff * 2**(a-1)``
    seconds (capped at :data:`BACKOFF_CAP`) before retrying — a fixed,
    deterministic schedule: executor backoff shapes only *when* a task
    reruns, never its result, so no jitter stream is needed.  A payload
    that fails ``retries + 1`` attempts is quarantined.  After
    ``max_pool_restarts`` pool collapses the executor degrades to
    inline execution for everything that remains.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    max_pool_restarts: int = 3

    def __post_init__(self):
        if self.timeout is not None and not self.timeout > 0:
            raise ValueError(
                f"task timeout must be > 0 seconds (or None), got {self.timeout!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retry budget must be >= 0, got {self.retries!r}")
        if self.backoff < 0:
            raise ValueError(
                f"backoff base must be >= 0 seconds, got {self.backoff!r}"
            )
        if self.max_pool_restarts < 0:
            raise ValueError(
                f"pool-restart budget must be >= 0, got {self.max_pool_restarts!r}"
            )

    # -- (de)serialization ---------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "timeout": self.timeout,
            "retries": self.retries,
            "backoff": self.backoff,
            "max_pool_restarts": self.max_pool_restarts,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TaskRetryPolicy":
        timeout = d.get("timeout")
        return cls(
            timeout=None if timeout is None else float(timeout),
            retries=int(d.get("retries", 2)),
            backoff=float(d.get("backoff", 0.05)),
            max_pool_restarts=int(d.get("max_pool_restarts", 3)),
        )

    def key(self) -> tuple:
        return (self.timeout, self.retries, self.backoff, self.max_pool_restarts)

    def delay(self, attempt: int) -> float:
        """Backoff before (1-based) attempt ``attempt + 1``."""
        if attempt <= 0 or self.backoff <= 0:
            return 0.0
        return min(BACKOFF_CAP, self.backoff * (2.0 ** (attempt - 1)))


@dataclass
class RunHealth:
    """Supervision counters for one executor (and, via the Runner, one
    whole experiment run).

    ``tasks`` counts attempts that ran to a verdict (success or raise);
    ``retries`` the re-executions granted after a failed attempt;
    ``timeouts``/``crashes`` the deadline hits and pool collapses that
    caused them; ``pool_restarts`` every pool rebuild; ``inline_fallbacks``
    payloads finished inline after the pool was written off;
    ``quarantined`` payloads that exhausted every retry;
    ``cache_evictions`` corrupted cache entries dropped and recomputed;
    ``resumed``/``interrupted`` what the sweep journal attributed to a
    previously killed run.
    """

    tasks: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_restarts: int = 0
    inline_fallbacks: int = 0
    quarantined: int = 0
    cache_evictions: int = 0
    resumed: int = 0
    interrupted: int = 0

    @property
    def ok(self) -> bool:
        return self.quarantined == 0

    def merge(self, other: "RunHealth") -> None:
        for name in (
            "tasks", "retries", "timeouts", "crashes", "pool_restarts",
            "inline_fallbacks", "quarantined", "cache_evictions",
            "resumed", "interrupted",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        return {
            "tasks": self.tasks,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "pool_restarts": self.pool_restarts,
            "inline_fallbacks": self.inline_fallbacks,
            "quarantined": self.quarantined,
            "cache_evictions": self.cache_evictions,
            "resumed": self.resumed,
            "interrupted": self.interrupted,
        }

    def summary(self) -> str:
        return (
            f"health: {self.tasks} task runs, {self.retries} retries, "
            f"{self.timeouts} timeouts, {self.crashes} crashes / "
            f"{self.pool_restarts} pool restarts, "
            f"{self.inline_fallbacks} inline fallbacks, "
            f"{self.quarantined} quarantined, "
            f"{self.cache_evictions} corrupt cache evictions, "
            f"{self.resumed} resumed / {self.interrupted} interrupted"
        )

    def copy(self) -> "RunHealth":
        return replace(self)


@dataclass
class TaskFailure:
    """A payload that exhausted its retry budget (the quarantine record).

    ``payload_hash`` is the content fingerprint of the payload itself;
    ``key``/``task`` are filled by :meth:`Runner.run_tasks` with the
    cache identity.  ``kind`` names the terminal failure mode:
    ``"error"`` (the task raised), ``"timeout"`` (wall-clock deadline),
    or ``"crash"`` (convicted of collapsing the worker pool).
    """

    payload_hash: str
    task: str = ""
    key: str = ""
    attempts: int = 0
    kind: str = "error"
    error: str = ""
    tracebacks: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "payload_hash": self.payload_hash,
            "task": self.task,
            "key": self.key,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
            "tracebacks": list(self.tracebacks),
        }


class QuarantineError(RuntimeError):
    """Raised after a wave completes if any payload was quarantined.

    The wave's successful results are already computed (and cached by
    the Runner) before this surfaces, so a rerun resumes instead of
    recomputing; ``failures`` carries one :class:`TaskFailure` per
    quarantined payload for reporting (``repro run`` renders them as a
    per-cell failure table and exits non-zero).
    """

    def __init__(self, failures: Sequence[TaskFailure]):
        self.failures = list(failures)
        heads = ", ".join(
            f"{f.task or 'task'}:{f.payload_hash[:12]} ({f.kind}, "
            f"{f.attempts} attempts)"
            for f in self.failures[:4]
        )
        more = "" if len(self.failures) <= 4 else f" (+{len(self.failures) - 4} more)"
        last = self.failures[-1]
        tail = f"\nlast failure: {last.error}" if last.error else ""
        super().__init__(
            f"{len(self.failures)} task(s) quarantined after exhausting "
            f"retries: {heads}{more}{tail}"
        )


def _format_exception(exc: BaseException) -> str:
    """The fullest traceback available — for pool tasks the remote
    worker traceback travels on ``exc.__cause__`` (``_RemoteTraceback``)."""
    cause = getattr(exc, "__cause__", None)
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return str(cause)
    return "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))


#: Sentinel for not-yet-finished outcome slots.
_PENDING = object()


class ParallelExecutor:
    """Order-preserving supervised map over worker processes.

    ``workers <= 1`` runs inline (no pool, no pickling) — the semantics
    are identical either way.  The pool is created lazily on the first
    parallel map and reused across calls (wave-scheduled sweeps map many
    small batches; respawning workers per batch would pay the
    interpreter/numpy import cost every time).  If the platform refuses
    to spawn processes at all, the executor degrades to the inline path.

    Errors raised *inside* tasks no longer abort the wave: they are
    retried under ``retry`` (a :class:`TaskRetryPolicy`) and, once the
    budget is exhausted, quarantined as :class:`TaskFailure` records —
    :meth:`map` then raises :class:`QuarantineError` *after* the rest of
    the wave has completed, so an hour-scale batch still fails loudly
    but no longer loses its finished work.  ``chaos`` (a
    :class:`~repro.runner.chaos.ChaosSpec`) threads the deterministic
    fault injectors through every task call; it is a test surface and
    ``None`` in production.
    """

    def __init__(
        self,
        workers: int = 1,
        retry: Optional[TaskRetryPolicy] = None,
        chaos: Any = None,
    ):
        self.workers = max(1, int(workers))
        self.retry = retry or TaskRetryPolicy()
        self.chaos = chaos
        self.health = RunHealth()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        # One atexit hook per executor, however many times the pool is
        # restarted — registering per pool creation would leak a
        # callback (and a shutdown pass) for every recovery.
        self._atexit_registered = False
        self._restarts = 0

    # -- pool lifecycle ------------------------------------------------------
    def _get_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool is None and not self._pool_broken:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, PermissionError):
                # Pools can be unavailable (restricted sandboxes, exotic
                # platforms); parallelism is an optimization, not a
                # dependency.
                self._pool_broken = True
            else:
                # A pool left for the garbage collector races CPython's
                # interpreter teardown ("Bad file descriptor" noise on
                # exit); shut it down deterministically instead.
                if not self._atexit_registered:
                    atexit.register(self.close)
                    self._atexit_registered = True
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _restart_pool(self) -> None:
        """Tear the pool down hard (a hung worker never joins a polite
        ``shutdown(wait=True)``) and count the restart; exceeding the
        budget flips the executor to permanent inline degradation."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except (OSError, AttributeError):
                    pass
        self._restarts += 1
        self.health.pool_restarts += 1
        if self._restarts > self.retry.max_pool_restarts:
            self._pool_broken = True

    def effective_workers(self) -> int:
        """The worker count a parallel map actually fans out to.

        1 when configured serial — or when the platform refused to spawn
        a pool (or supervision wrote it off after repeated collapses)
        and maps degraded to the inline path.  Benchmarks that assert
        parallel speedups must check this and fail loudly rather than
        record a degenerate single-process baseline as a result.
        """
        if self.workers <= 1:
            return 1
        return self.workers if self._get_pool() is not None else 1

    # -- task invocation -----------------------------------------------------
    def _submit(self, pool: ProcessPoolExecutor, fn, payload, attempt: int) -> Future:
        if self.chaos is not None:
            from .chaos import chaos_call

            return pool.submit(chaos_call, self.chaos, attempt, fn, payload)
        return pool.submit(fn, payload)

    def _call_inline(self, fn, payload, attempt: int):
        if self.chaos is not None:
            from .chaos import chaos_call

            return chaos_call(self.chaos, attempt, fn, payload)
        return fn(payload)

    # -- public maps ---------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        chunksize: Optional[int] = None,  # kept for API compatibility
    ) -> List[Any]:
        """Supervised order-preserving map; raises
        :class:`QuarantineError` (after the wave completes) if any
        payload exhausted its retries."""
        outcomes = self.map_outcomes(fn, payloads)
        failures = [o for o in outcomes if isinstance(o, TaskFailure)]
        if failures:
            raise QuarantineError(failures)
        return outcomes

    def map_outcomes(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        on_done: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Map with per-payload outcomes: the task's value on success or
        a :class:`TaskFailure` on quarantine, in payload order.

        ``on_done(index, outcome)`` fires in the supervisor process the
        moment each payload reaches its final verdict — the Runner uses
        it to cache and journal incrementally, which is what makes a
        SIGINT mid-wave resumable.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        use_pool = (
            self.workers > 1 and len(payloads) > 1
            and self._get_pool() is not None
        )
        if not use_pool:
            outcomes: List[Any] = [_PENDING] * len(payloads)
            self._finish_inline(
                fn, payloads, list(range(len(payloads))),
                [0] * len(payloads), [[] for _ in payloads],
                outcomes, on_done, degraded=False,
            )
            return outcomes
        return self._map_supervised(fn, payloads, on_done)

    # -- inline execution (serial mode and degraded fallback) ----------------
    def _finish_inline(
        self,
        fn,
        payloads: List[Any],
        indices: List[int],
        attempts: List[int],
        tracebacks: List[List[str]],
        outcomes: List[Any],
        on_done,
        degraded: bool,
    ) -> None:
        """Run each listed payload's remaining retry loop inline.

        ``attempts``/``tracebacks``/``outcomes`` are indexed by the
        *global* payload index, so a half-done supervised wave hands its
        bookkeeping straight over.  Timeouts are not enforceable inline.
        """
        retry = self.retry
        for i in indices:
            if degraded:
                self.health.inline_fallbacks += 1
            while True:
                delay = retry.delay(attempts[i])
                if delay > 0:
                    time.sleep(delay)
                try:
                    value = self._call_inline(fn, payloads[i], attempts[i])
                except Exception as exc:  # noqa: BLE001 — supervision boundary
                    self.health.tasks += 1
                    attempts[i] += 1
                    tracebacks[i].append(_format_exception(exc))
                    if attempts[i] > retry.retries:
                        outcome = TaskFailure(
                            payload_hash=payload_fingerprint(payloads[i]),
                            attempts=attempts[i],
                            kind="error",
                            error=repr(exc),
                            tracebacks=list(tracebacks[i]),
                        )
                        self.health.quarantined += 1
                        break
                    self.health.retries += 1
                    continue
                self.health.tasks += 1
                outcome = value
                break
            outcomes[i] = outcome
            if on_done is not None:
                on_done(i, outcome)

    # -- the supervised pool loop -------------------------------------------
    def _map_supervised(self, fn, payloads: List[Any], on_done) -> List[Any]:
        retry = self.retry
        n = len(payloads)
        outcomes: List[Any] = [_PENDING] * n
        attempts = [0] * n
        tracebacks: List[List[str]] = [[] for _ in range(n)]
        #: (not_before, index) min-heap of payloads awaiting (re)submission.
        ready: List[Tuple[float, int]] = [(0.0, i) for i in range(n)]
        heapq.heapify(ready)
        #: (not_before, index) FIFO of collapse suspects (isolation mode:
        #: probed one at a time until the queue drains).
        suspects: List[Tuple[float, int]] = []
        #: future -> (index, deadline or None)
        running: Dict[Future, Tuple[int, Optional[float]]] = {}

        def finish(i: int, outcome: Any) -> None:
            outcomes[i] = outcome
            if isinstance(outcome, TaskFailure):
                self.health.quarantined += 1
            if on_done is not None:
                on_done(i, outcome)

        def charge(i: int, kind: str, tb_text: str, error: str) -> bool:
            """One failed attempt for payload ``i``; False = quarantined."""
            attempts[i] += 1
            tracebacks[i].append(tb_text)
            if attempts[i] > retry.retries:
                finish(i, TaskFailure(
                    payload_hash=payload_fingerprint(payloads[i]),
                    attempts=attempts[i],
                    kind=kind,
                    error=error,
                    tracebacks=list(tracebacks[i]),
                ))
                return False
            self.health.retries += 1
            return True

        def collapse(victims: List[int]) -> None:
            """Handle a dead pool.  A collapse with exactly one payload
            in flight (an isolation probe, or the tail of a wave) names
            its culprit, which is charged a crash attempt; anything
            wider charges nobody and sends every victim to the
            isolation queue.  Either way the pool restarts."""
            self.health.crashes += 1
            if len(victims) == 1:
                i = victims[0]
                if charge(
                    i, "crash",
                    f"worker pool collapsed while this payload ran alone "
                    f"(attempt {attempts[i]}) — convicted as the poison task",
                    "BrokenProcessPool (convicted: ran alone at collapse)",
                ):
                    suspects.insert(0, (
                        time.monotonic() + retry.delay(attempts[i]), i,
                    ))
            else:
                for v in sorted(victims):
                    suspects.append((0.0, v))
            self._restart_pool()

        while running or ready or suspects:
            # Degraded: the pool is gone for good — finish inline.
            if self._pool_broken:
                remaining = sorted(
                    set(i for _, i in ready)
                    | set(i for _, i in suspects)
                    | set(i for i, _ in running.values())
                )
                running.clear()
                ready.clear()
                suspects.clear()
                self._finish_inline(
                    fn, payloads, remaining,
                    attempts, tracebacks, outcomes, on_done, degraded=True,
                )
                break
            pool = self._get_pool()
            if pool is None:  # pragma: no cover — _pool_broken handles this
                continue

            now = time.monotonic()
            # Submission: isolation probes one suspect at a time; normal
            # mode keeps the pool full (sliding window of ``workers``
            # futures, so submit time ~= start time and deadlines measure
            # execution, not queueing).
            submit_failed = False
            if suspects:
                if not running:
                    not_before, i = suspects[0]
                    if not_before > now:
                        time.sleep(min(not_before - now, BACKOFF_CAP))
                    suspects.pop(0)
                    try:
                        fut = self._submit(pool, fn, payloads[i], attempts[i])
                    except BrokenExecutor:
                        suspects.insert(0, (0.0, i))
                        submit_failed = True
                    else:
                        deadline = (
                            None if retry.timeout is None
                            else time.monotonic() + retry.timeout
                        )
                        running[fut] = (i, deadline)
            else:
                while len(running) < self.workers and ready and ready[0][0] <= now:
                    _, i = heapq.heappop(ready)
                    try:
                        fut = self._submit(pool, fn, payloads[i], attempts[i])
                    except BrokenExecutor:
                        heapq.heappush(ready, (0.0, i))
                        submit_failed = True
                        break
                    deadline = None if retry.timeout is None else now + retry.timeout
                    running[fut] = (i, deadline)

            if submit_failed:
                victims = [i for i, _ in running.values()]
                running.clear()
                collapse(victims)
                continue

            if not running:
                if ready:
                    # Everything queued is backing off; sleep to the
                    # earliest release.
                    time.sleep(max(0.0, min(
                        ready[0][0] - time.monotonic(), BACKOFF_CAP,
                    )))
                continue  # resubmit (ready or suspects) next iteration

            # Harvest.
            done, _ = wait(set(running), timeout=_POLL, return_when=FIRST_COMPLETED)
            lost: List[int] = []
            saw_collapse = False
            for f in done:
                i, _deadline = running.pop(f)
                try:
                    value = f.result()
                except BrokenExecutor:
                    saw_collapse = True
                    lost.append(i)
                    continue
                except CancelledError:
                    lost.append(i)
                    continue
                except Exception as exc:  # noqa: BLE001 — supervision boundary
                    self.health.tasks += 1
                    if charge(i, "error", _format_exception(exc), repr(exc)):
                        heapq.heappush(ready, (
                            time.monotonic() + retry.delay(attempts[i]), i,
                        ))
                    continue
                self.health.tasks += 1
                finish(i, value)

            if saw_collapse:
                victims = lost + [i for i, _ in running.values()]
                running.clear()
                collapse(victims)
                continue
            for i in lost:  # cancelled without a collapse: requeue uncharged
                heapq.heappush(ready, (0.0, i))

            # Deadlines: a hung task cannot be cancelled — charge it,
            # restart the pool, requeue the innocent in-flight payloads
            # uncharged.
            if retry.timeout is not None and running:
                now = time.monotonic()
                expired = [
                    (f, i) for f, (i, dl) in running.items()
                    if dl is not None and now >= dl
                ]
                if expired:
                    self.health.timeouts += len(expired)
                    expired_idx = {i for _, i in expired}
                    for _, i in expired:
                        if charge(
                            i, "timeout",
                            f"task exceeded the {retry.timeout:g}s wall-clock "
                            f"timeout (attempt {attempts[i]})",
                            f"timeout after {retry.timeout:g}s",
                        ):
                            heapq.heappush(ready, (
                                now + retry.delay(attempts[i]), i,
                            ))
                    for i, _dl in running.values():
                        if i not in expired_idx:
                            heapq.heappush(ready, (0.0, i))
                    running.clear()
                    self._restart_pool()

        return outcomes
