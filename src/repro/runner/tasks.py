"""Task payload codecs and the worker-side task functions.

A task is a *pure-data* payload (nested dicts/lists of JSON scalars) plus
a module-level function that rebuilds the live objects and runs the work.
Pure data serves three masters at once:

* **transport** — payloads pickle cheaply into worker processes (the
  live :class:`~repro.sim.traffic.TrafficPattern` closures do not);
* **caching** — the payload *is* the cache identity: its content hash
  keys the on-disk result store;
* **reproducibility** — a payload fully determines its result, so a
  cached value is interchangeable with a fresh computation.

Two task families cover the simulation workloads: ``sim_point`` (one
injection-rate sample — the unit fanned out by sweeps) and
``sat_search`` (one binary-search saturation probe sequence, fanned out
across topologies in Figs. 7 and 11).  The design-space pipeline adds
three more on the *generation* side: ``generation`` (one topology
generation — a MILP solve or an annealing run for one
:class:`~repro.pipeline.DesignPoint` strategy), ``routing`` (route +
VC-allocate + compile one topology's table), and ``gap_curve`` (one
Fig. 5 solver-progress recording).  MILP solves and SA runs fan across
workers and cache exactly like sim points do.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from ..sim.fastnet import DEFAULT_ENGINE
from ..sim.network import SimStats
from ..sim.sweep import find_saturation, run_point
from ..sim.traffic import (
    TrafficPattern,
    bit_complement,
    hotspot,
    memory_traffic,
    neighbor,
    shuffle_pattern,
    tornado,
    transpose,
    uniform_random,
)
from ..topology import Layout, Topology

#: Payload format version; bump to invalidate all cached entries when the
#: simulator's semantics change.  v2: accepted throughput counts every
#: packet ejected during the measurement window (not only window-born
#: ones), and payloads carry the simulation engine.  v3: the fast engine
#: generates traffic from pre-computed vectorized traces and reuses one
#: :class:`~repro.sim.fastnet.CompiledNetwork` per routed topology
#: (results are unchanged — the differential suite pins them — but the
#: version bump keeps cache provenance unambiguous).  v4: the
#: ``closed_loop`` task family (full-system PARSEC runs) joins the
#: payload surface; sim-point/saturation results are unchanged but the
#: version bump keeps one provenance line for the whole store.  v5: the
#: design-space pipeline's ``generation``, ``routing``, and
#: ``gap_curve`` task families join (topology generation, table
#: compilation, and solver-progress recording become cached, fanned-out
#: work units); existing simulation results are unchanged.  v6:
#: robustness scenarios — sim-point/sat-search payloads carry an optional
#: fault schedule, traffic specs an optional burst modulation, and
#: :class:`~repro.sim.network.SimStats` a ``lost_packets`` field.
#: Fault-free stationary results are unchanged (the differential suite
#: pins them), but the payload surface grew, so provenance bumps.  v7:
#: sparse-at-scale — routing payloads accept the destination-tree
#: ``bfs`` policy, table docs gain the ``"csr"`` format (flat
#: destination-keyed arrays instead of per-(node, src, dst) entries),
#: and large cached entries are stored zlib-compressed.  Existing
#: dict-table results are unchanged, but the codec surface grew.  v8:
#: closed-loop fault tolerance — ``closed_loop`` payloads carry optional
#: fault schedules and request timeout/retry policies, burst keys grow
#: the ``lrd`` Pareto shape (``alpha``), and the windowed ``recovery``
#: task family (transient drain/settling measurement) joins.  Existing
#: fault-free closed-loop results are unchanged (differential suites pin
#: them), but the payload surface grew, so provenance bumps.  v9: the
#: batched multi-replica engine — the ``sim_batch`` task family (S x R
#: lanes of one table through :func:`repro.sim.batch.run_batch`) joins,
#: and sim-point payloads may carry ``engine="turbo"``.  Existing
#: per-point results are unchanged (exact batch lanes are bit-identical
#: to ``sim_point`` runs, and batched results cross-populate per-lane
#: ``sim_point`` keys — see :meth:`Runner.batch_points`), but the
#: payload surface grew, so provenance bumps.
TASK_VERSION = 9


# ---------------------------------------------------------------------------
# Traffic specs: picklable, hashable stand-ins for TrafficPattern closures.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrafficSpec:
    """A pure-data description of a synthetic traffic pattern."""

    kind: str
    n_nodes: int = 0
    rows: int = 0
    cols: int = 0
    hotspots: Tuple[int, ...] = ()
    hot_fraction: float = 0.5
    #: Optional burst modulation as a :meth:`BurstSpec.key` tuple
    #: (hashable, canonical — the dataclass stays frozen and cache keys
    #: stay stable).
    burst: Optional[Tuple] = None

    def with_burst(self, spec) -> "TrafficSpec":
        """This spec modulated by a :class:`~repro.sim.burst.BurstSpec`."""
        import dataclasses

        return dataclasses.replace(
            self, burst=None if spec is None else spec.key()
        )

    # -- constructors --------------------------------------------------------
    @classmethod
    def uniform(cls, n_nodes: int) -> "TrafficSpec":
        return cls("uniform", n_nodes=n_nodes)

    @classmethod
    def memory(cls, layout: Layout) -> "TrafficSpec":
        return cls("memory", rows=layout.rows, cols=layout.cols)

    @classmethod
    def shuffle(cls, n_nodes: int) -> "TrafficSpec":
        return cls("shuffle", n_nodes=n_nodes)

    @classmethod
    def bit_complement(cls, n_nodes: int) -> "TrafficSpec":
        return cls("bit_complement", n_nodes=n_nodes)

    @classmethod
    def transpose(cls, layout: Layout) -> "TrafficSpec":
        return cls("transpose", rows=layout.rows, cols=layout.cols)

    @classmethod
    def tornado(cls, layout: Layout) -> "TrafficSpec":
        return cls("tornado", rows=layout.rows, cols=layout.cols)

    @classmethod
    def neighbor(cls, layout: Layout) -> "TrafficSpec":
        return cls("neighbor", rows=layout.rows, cols=layout.cols)

    @classmethod
    def hotspot(
        cls, n_nodes: int, hotspots: Tuple[int, ...], hot_fraction: float = 0.5
    ) -> "TrafficSpec":
        return cls(
            "hotspot",
            n_nodes=n_nodes,
            hotspots=tuple(sorted(hotspots)),
            hot_fraction=hot_fraction,
        )

    # -- (de)serialization ---------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "n_nodes": self.n_nodes,
            "rows": self.rows,
            "cols": self.cols,
            "hotspots": list(self.hotspots),
            "hot_fraction": self.hot_fraction,
            "burst": None if self.burst is None else list(self.burst),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TrafficSpec":
        burst = d.get("burst")
        if burst is not None:
            # Pre-v8 keys are 6-tuples; the Pareto shape joined in v8.
            kind, p_on, p_off, on_scale, off_scale, seed, *rest = burst
            burst = (
                str(kind), float(p_on), float(p_off),
                None if on_scale is None else float(on_scale),
                float(off_scale), int(seed),
                float(rest[0]) if rest else 1.5,
            )
        return cls(
            kind=d["kind"],
            n_nodes=int(d.get("n_nodes", 0)),
            rows=int(d.get("rows", 0)),
            cols=int(d.get("cols", 0)),
            hotspots=tuple(int(h) for h in d.get("hotspots", ())),
            hot_fraction=float(d.get("hot_fraction", 0.5)),
            burst=burst,
        )

    def build(self) -> TrafficPattern:
        """Materialize the live pattern (closures and all)."""
        pattern = self._build_base()
        if self.burst is not None:
            from ..sim.burst import BurstSpec

            kind, p_on, p_off, on_scale, off_scale, seed, *rest = self.burst
            pattern = pattern.with_burst(BurstSpec(
                kind=kind, p_on=p_on, p_off=p_off,
                on_scale=on_scale, off_scale=off_scale, seed=seed,
                alpha=rest[0] if rest else 1.5,
            ))
        return pattern

    def _build_base(self) -> TrafficPattern:
        if self.kind == "uniform":
            return uniform_random(self.n_nodes)
        if self.kind == "shuffle":
            return shuffle_pattern(self.n_nodes)
        if self.kind == "bit_complement":
            return bit_complement(self.n_nodes)
        if self.kind == "hotspot":
            return hotspot(self.n_nodes, list(self.hotspots), self.hot_fraction)
        layout = Layout(rows=self.rows, cols=self.cols)
        if self.kind == "memory":
            return memory_traffic(layout)
        if self.kind == "transpose":
            return transpose(layout)
        if self.kind == "tornado":
            return tornado(layout)
        if self.kind == "neighbor":
            return neighbor(layout)
        raise ValueError(f"unknown traffic kind {self.kind!r}")


# ---------------------------------------------------------------------------
# Routing-table codec.
# ---------------------------------------------------------------------------

def encode_table(table) -> Dict[str, Any]:
    """A deterministic, JSON-clean description of a routing table.

    Sorted entry lists make the encoding canonical, so the same routed
    configuration always hashes to the same cache key.  Destination-
    keyed tables (:class:`~repro.routing.tables.CSRRoutingTable`) encode
    as ``format: "csr"`` with flat n² arrays — O(n²) doc size where the
    dict form is O(n² · avg_hops) — and decode back to the CSR class.
    """
    topo = table.topology
    doc = {
        "layout": [topo.layout.rows, topo.layout.cols],
        "links": sorted([int(i), int(j)] for i, j in topo.directed_links),
        "name": topo.name,
        "link_class": topo.link_class,
        "num_vcs": int(table.num_vcs),
    }
    if getattr(table, "dest_keyed", False):
        doc["format"] = "csr"
        doc["next_dst"] = table.next_matrix().tolist()
        doc["flow_vc"] = table.flow_vc.tolist()
        doc["flow_mask"] = np.asarray(
            table.flow_mask, dtype=np.int8
        ).tolist()
        return doc
    doc["next_hop"] = sorted(
        [int(n), int(s), int(d), int(nh)]
        for (n, s, d), nh in table.next_hop.items()
    )
    doc["flow_vc"] = sorted(
        [int(s), int(d), int(vc)] for (s, d), vc in table.flow_vc.items()
    )
    return doc


def decode_table(doc: Dict[str, Any]):
    rows, cols = doc["layout"]
    topo = Topology(
        Layout(rows=rows, cols=cols),
        [(i, j) for i, j in doc["links"]],
        name=doc.get("name", "topology"),
        link_class=doc.get("link_class"),
    )
    if doc.get("format") == "csr":
        from ..routing.tables import CSRRoutingTable

        return CSRRoutingTable.from_hops(
            topo,
            np.asarray(doc["next_dst"], dtype=np.int64),
            np.asarray(doc["flow_vc"], dtype=np.int64),
            np.asarray(doc["flow_mask"], dtype=bool),
            int(doc["num_vcs"]),
        )
    return RoutingTable(
        topology=topo,
        next_hop={(n, s, d): nh for n, s, d, nh in doc["next_hop"]},
        flow_vc={(s, d): vc for s, d, vc in doc["flow_vc"]},
        num_vcs=int(doc["num_vcs"]),
    )


#: Worker-process memo of decoded tables, keyed by the table doc's
#: content hash.  A curve job fans one routed topology out as many
#: ``sim_point`` payloads; decoding (and hence network compilation,
#: which :func:`repro.sim.sweep.run_point` memoizes on the table
#: instance) happens once per worker instead of once per point.
_TABLE_MEMO: Dict[str, RoutingTable] = {}
_TABLE_MEMO_MAX = 8


def cached_table(doc: Dict[str, Any]) -> RoutingTable:
    """Decode a table doc through the per-worker memo."""
    from .hashing import config_hash

    key = config_hash(doc)
    table = _TABLE_MEMO.get(key)
    if table is None:
        if len(_TABLE_MEMO) >= _TABLE_MEMO_MAX:
            _TABLE_MEMO.pop(next(iter(_TABLE_MEMO)))
        table = decode_table(doc)
        _TABLE_MEMO[key] = table
    return table


# ---------------------------------------------------------------------------
# SimStats codec.
# ---------------------------------------------------------------------------

def stats_to_dict(stats: SimStats) -> Dict[str, Any]:
    return asdict(stats)


def stats_from_dict(doc: Dict[str, Any]) -> SimStats:
    return SimStats(
        cycles=int(doc["cycles"]),
        offered_packets=int(doc["offered_packets"]),
        ejected_packets=int(doc["ejected_packets"]),
        ejected_flits=int(doc["ejected_flits"]),
        latency_sum=float(doc["latency_sum"]),
        latency_count=int(doc["latency_count"]),
        n_nodes=int(doc["n_nodes"]),
        lost_packets=int(doc.get("lost_packets", 0)),
    )


# ---------------------------------------------------------------------------
# Payload builders and worker entry points.
# ---------------------------------------------------------------------------

def sim_point_payload(
    table: RoutingTable,
    traffic: TrafficSpec,
    rate: float,
    warmup: int,
    measure: int,
    seed: int,
    sim_kw: Optional[Dict[str, Any]] = None,
    engine: str = DEFAULT_ENGINE,
    faults=None,
) -> Dict[str, Any]:
    return {
        "task": "sim_point",
        "version": TASK_VERSION,
        "table": encode_table(table),
        "traffic": traffic.as_dict(),
        "rate": float(rate),
        "warmup": int(warmup),
        "measure": int(measure),
        "seed": int(seed),
        "sim_kw": dict(sim_kw or {}),
        "engine": str(engine),
        "faults": None if faults is None else faults.as_dict(),
    }


def _decode_faults(payload: Dict[str, Any]):
    doc = payload.get("faults")
    if doc is None:
        return None
    from ..faults import FaultSchedule

    return FaultSchedule.from_dict(doc)


def sim_point_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: one injection-rate sample, stats as plain JSON."""
    table = cached_table(payload["table"])
    traffic = TrafficSpec.from_dict(payload["traffic"]).build()
    stats = run_point(
        table,
        traffic,
        payload["rate"],
        warmup=payload["warmup"],
        measure=payload["measure"],
        seed=payload["seed"],
        engine=payload.get("engine", DEFAULT_ENGINE),
        faults=_decode_faults(payload),
        **payload.get("sim_kw", {}),
    )
    return stats_to_dict(stats)


def sim_batch_payload(
    table: RoutingTable,
    traffic: TrafficSpec,
    lanes: List[Tuple[float, int]],
    warmup: int,
    measure: int,
    mode: str = "turbo",
    sim_kw: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """S x R ``(rate, seed)`` lanes of one table in one engine call.

    Lane order is part of the payload (results decode positionally), but
    a lane's result depends only on its own ``(rate, seed)`` — the batch
    engine guarantees batch composition never changes a lane — which is
    what lets :meth:`Runner.batch_points` cross-populate per-lane
    ``sim_point`` cache keys from one batched result.
    """
    return {
        "task": "sim_batch",
        "version": TASK_VERSION,
        "table": encode_table(table),
        "traffic": traffic.as_dict(),
        "lanes": [[float(r), int(s)] for r, s in lanes],
        "warmup": int(warmup),
        "measure": int(measure),
        "mode": str(mode),
        "sim_kw": dict(sim_kw or {}),
    }


def sim_batch_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: one batched multi-lane run, stats in lane order."""
    from ..sim.batch import run_batch

    table = cached_table(payload["table"])
    traffic = TrafficSpec.from_dict(payload["traffic"]).build()
    stats = run_batch(
        table,
        traffic,
        [(r, s) for r, s in payload["lanes"]],
        payload["warmup"],
        payload["measure"],
        mode=payload.get("mode", "turbo"),
        **payload.get("sim_kw", {}),
    )
    return {"stats": [stats_to_dict(st) for st in stats]}


def batch_stats_from_dict(doc: Dict[str, Any]) -> List[SimStats]:
    return [stats_from_dict(d) for d in doc["stats"]]


def sat_search_payload(
    table: RoutingTable,
    traffic: TrafficSpec,
    lo: float,
    hi: float,
    iters: int,
    warmup: int,
    measure: int,
    seed: int,
    sim_kw: Optional[Dict[str, Any]] = None,
    engine: str = DEFAULT_ENGINE,
    faults=None,
) -> Dict[str, Any]:
    return {
        "task": "sat_search",
        "version": TASK_VERSION,
        "table": encode_table(table),
        "traffic": traffic.as_dict(),
        "lo": float(lo),
        "hi": float(hi),
        "iters": int(iters),
        "warmup": int(warmup),
        "measure": int(measure),
        "seed": int(seed),
        "sim_kw": dict(sim_kw or {}),
        "engine": str(engine),
        "faults": None if faults is None else faults.as_dict(),
    }


def sat_search_task(payload: Dict[str, Any]) -> float:
    """Worker entry: one full binary-search saturation probe."""
    table = cached_table(payload["table"])
    traffic = TrafficSpec.from_dict(payload["traffic"]).build()
    return float(
        find_saturation(
            table,
            traffic,
            lo=payload["lo"],
            hi=payload["hi"],
            iters=payload["iters"],
            warmup=payload["warmup"],
            measure=payload["measure"],
            seed=payload["seed"],
            engine=payload.get("engine", DEFAULT_ENGINE),
            faults=_decode_faults(payload),
            **payload.get("sim_kw", {}),
        )
    )


def _workload_doc(workload) -> Dict[str, Any]:
    """A workload profile embedded field-by-field (not by name), so a
    profile change re-keys — and therefore recomputes — every affected
    cache entry."""
    return {
        "name": str(workload.name),
        "l2_mpki": float(workload.l2_mpki),
        "memory_fraction": float(workload.memory_fraction),
        "base_cpi": float(workload.base_cpi),
        "mlp": float(workload.mlp),
    }


def _decode_workload(doc: Dict[str, Any]):
    from ..fullsys.workloads import WorkloadProfile

    return WorkloadProfile(
        name=doc["name"],
        l2_mpki=float(doc["l2_mpki"]),
        memory_fraction=float(doc["memory_fraction"]),
        base_cpi=float(doc["base_cpi"]),
        mlp=float(doc["mlp"]),
    )


def _decode_retry(payload: Dict[str, Any]):
    doc = payload.get("retry")
    if doc is None:
        return None
    from ..fullsys.closedloop import RetryPolicy

    return RetryPolicy.from_dict(doc)


def closed_loop_payload(
    table: RoutingTable,
    workload,
    link_class: Optional[str],
    warmup: int,
    measure: int,
    seed: int,
    engine: str = DEFAULT_ENGINE,
    faults=None,
    retry=None,
) -> Dict[str, Any]:
    """One full-system closed-loop run: a (benchmark, topology) pair.

    A fault schedule requires a retry policy (the combination is
    validated here, client-side, so a bad pairing fails at submission
    instead of deep inside a worker process).
    """
    from ..fullsys.closedloop import validate_closed_loop_faults

    validate_closed_loop_faults(faults, retry)
    return {
        "task": "closed_loop",
        "version": TASK_VERSION,
        "table": encode_table(table),
        "workload": _workload_doc(workload),
        "link_class": link_class,
        "warmup": int(warmup),
        "measure": int(measure),
        "seed": int(seed),
        "engine": str(engine),
        "faults": None if faults is None else faults.as_dict(),
        "retry": None if retry is None else retry.as_dict(),
    }


def closed_loop_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: one closed-loop workload run, result as plain JSON.

    Imports lazily: :mod:`repro.fullsys.speedup` builds ``ClosedLoopJob``
    payloads through this module, and worker processes that only run
    sim-point tasks never need the full-system stack at all.
    """
    from ..fullsys.speedup import run_workload

    table = cached_table(payload["table"])
    profile = _decode_workload(payload["workload"])
    r = run_workload(
        table,
        profile,
        link_class=payload.get("link_class"),
        warmup=payload["warmup"],
        measure=payload["measure"],
        seed=payload["seed"],
        engine=payload.get("engine", DEFAULT_ENGINE),
        faults=_decode_faults(payload),
        retry=_decode_retry(payload),
    )
    return {
        "workload": r.workload,
        "topology": r.topology,
        "avg_packet_latency_ns": r.avg_packet_latency_ns,
        "cpi": r.cpi,
    }


def workload_result_from_dict(doc: Dict[str, Any]):
    from ..fullsys.speedup import WorkloadResult

    return WorkloadResult(
        workload=doc["workload"],
        topology=doc["topology"],
        avg_packet_latency_ns=float(doc["avg_packet_latency_ns"]),
        cpi=float(doc["cpi"]),
    )


def recovery_payload(
    table: RoutingTable,
    workload,
    link_class: Optional[str],
    faults,
    retry,
    total: int,
    window: int,
    seed: int,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, Any]:
    """One windowed closed-loop recovery run (transient measurement).

    The payload carries only what determines the window counters —
    recovery *metrics* (time-to-drain, settling) are derived caller-side
    from the windows, so tolerance knobs never invalidate the cache.
    """
    from ..fullsys.closedloop import validate_closed_loop_faults

    validate_closed_loop_faults(faults, retry)
    return {
        "task": "recovery",
        "version": TASK_VERSION,
        "table": encode_table(table),
        "workload": _workload_doc(workload),
        "link_class": link_class,
        "faults": None if faults is None else faults.as_dict(),
        "retry": None if retry is None else retry.as_dict(),
        "total": int(total),
        "window": int(window),
        "seed": int(seed),
        "engine": str(engine),
    }


def recovery_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: one windowed closed-loop run, windows as JSON."""
    from ..fullsys.speedup import run_recovery_windows

    table = cached_table(payload["table"])
    profile = _decode_workload(payload["workload"])
    samples = run_recovery_windows(
        table,
        profile,
        link_class=payload.get("link_class"),
        total=payload["total"],
        window=payload["window"],
        seed=payload["seed"],
        engine=payload.get("engine", DEFAULT_ENGINE),
        faults=_decode_faults(payload),
        retry=_decode_retry(payload),
    )
    return {"windows": [s.as_dict() for s in samples]}


def recovery_result_from_dict(doc: Dict[str, Any]):
    from ..sim.stats import WindowSample

    return [WindowSample.from_dict(w) for w in doc["windows"]]


# ---------------------------------------------------------------------------
# Generation-side task families (the design-space pipeline).
#
# Imports are lazy throughout: the MILP/search stack is heavy, and worker
# processes that only run sim points never need it.
# ---------------------------------------------------------------------------

def generation_payload(
    point,
    seed_incumbent: Optional[float] = None,
    seed_links: Optional[List[Tuple[int, int]]] = None,
) -> Dict[str, Any]:
    """One topology generation for a :class:`~repro.pipeline.DesignPoint`.

    ``seed_incumbent``/``seed_links`` carry a heuristic warm start into
    an exact solve (the portfolio's second phase): the incumbent
    objective feeds :func:`repro.milp.branch_and_bound.solve_bnb`'s
    ``initial_incumbent`` hook for distance objectives, and the seed
    topology's sparsest-cut partition becomes an initial lazy cut for
    SCOp.  Both are part of the payload, hence of the cache key.

    Points are canonicalized first (fields the strategy never reads are
    neutralized), so e.g. re-running an SA sweep under a different
    exact-solve budget hits the existing cache entries.
    """
    return {
        "task": "generation",
        "version": TASK_VERSION,
        "point": point.canonical().as_dict(),
        "seed_incumbent": (
            None if seed_incumbent is None else float(seed_incumbent)
        ),
        "seed_links": (
            None
            if seed_links is None
            else sorted([int(a), int(b)] for a, b in seed_links)
        ),
    }


def generation_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: generate one topology; failures are data, not raises.

    A MILP that finds no incumbent within budget returns
    ``{"ok": false}`` so the batch survives, the result is never cached,
    and the portfolio merge can fall back to the other strategies.
    """
    from ..pipeline.design import DesignPoint

    point = DesignPoint.from_dict(payload["point"])
    try:
        result = point.generate(
            seed_incumbent=payload.get("seed_incumbent"),
            seed_links=(
                None
                if payload.get("seed_links") is None
                else [(int(a), int(b)) for a, b in payload["seed_links"]]
            ),
        )
    except (RuntimeError, ValueError) as exc:
        return {"ok": False, "error": repr(exc), "strategy": point.strategy}
    topo = result.topology
    return {
        "ok": True,
        "links": sorted([int(i), int(j)] for i, j in topo.directed_links),
        "layout": [topo.layout.rows, topo.layout.cols],
        "link_class": topo.link_class,
        "name": topo.name,
        "objective": float(result.objective),
        "mip_gap": float(result.mip_gap),
        "status": result.status,
        "solve_time_s": float(result.solve_time_s),
        "strategy": point.strategy,
    }


def generation_result_from_dict(doc: Dict[str, Any]):
    """Decode a generation doc; failed results pass through as the raw
    failure dict (``{"ok": false, "error": ..., "strategy": ...}``) so
    callers can surface the solver's actual error."""
    from ..core.netsmith import GenerationResult
    from ..topology import Layout, Topology

    if not doc.get("ok"):
        return doc
    rows, cols = doc["layout"]
    topo = Topology(
        Layout(rows=int(rows), cols=int(cols)),
        [(int(i), int(j)) for i, j in doc["links"]],
        name=doc.get("name", "NetSmith"),
        link_class=doc.get("link_class"),
    )
    return GenerationResult(
        topology=topo,
        objective=float(doc["objective"]),
        mip_gap=float(doc["mip_gap"]),
        status=str(doc["status"]),
        solve_time_s=float(doc["solve_time_s"]),
        result=None,
    )


def default_max_vcs(n_routers: int) -> int:
    """The shared VC-budget heuristic: 8 layers suffice for every
    20/30-router configuration; irregular 48-router networks with MCLB's
    unconstrained shortest paths can need a few more.  Every routing
    payload builder resolves its default through this one function so
    the rule (part of the cache key) cannot drift between call sites."""
    return 8 if n_routers <= 30 else 14


def routing_payload(
    topo,
    policy: str,
    seed: int,
    max_vcs: int,
    time_limit: float = 60.0,
) -> Dict[str, Any]:
    """One route + VC-allocate + table-compile unit (pipeline stage 2).

    The topology enters the key as layout + link set only — never its
    display name or link class, which don't influence routing — so a
    pipeline-generated design and an identically-linked frozen one share
    a single cached table (the caller re-attaches its own identity to
    the decoded result; see :meth:`Runner.tables`).
    """
    return {
        "task": "routing",
        "version": TASK_VERSION,
        "topology": {
            "layout": [topo.layout.rows, topo.layout.cols],
            "links": sorted([int(i), int(j)] for i, j in topo.directed_links),
        },
        "policy": str(policy),
        "seed": int(seed),
        "max_vcs": int(max_vcs),
        "time_limit": float(time_limit),
    }


def routing_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: route one topology and compile its table."""
    from ..core.mclb import mclb_route
    from ..routing import (
        assign_vcs,
        build_routing_table,
        ndbt_route,
        single_shortest_paths,
    )

    doc = payload["topology"]
    rows, cols = doc["layout"]
    topo = Topology(
        Layout(rows=int(rows), cols=int(cols)),
        [(int(i), int(j)) for i, j in doc["links"]],
        name=doc.get("name", "topology"),
        link_class=doc.get("link_class"),
    )
    policy, seed = payload["policy"], payload["seed"]
    if policy == "bfs":
        # Destination-tree routing compiles straight to a CSR table —
        # O(n²) memory end to end, no per-flow path lists.
        from ..routing.dest_tree import bfs_dest_table

        return encode_table(
            bfs_dest_table(topo, max_vcs=payload["max_vcs"], seed=seed)
        )
    if policy == "ndbt":
        routes = ndbt_route(topo, seed=seed)
    elif policy == "mclb":
        routes = mclb_route(topo, time_limit=payload["time_limit"]).routes
    elif policy == "random":
        routes = single_shortest_paths(topo, seed=seed)
    else:
        raise ValueError(f"unknown routing policy {policy!r}")
    vca = assign_vcs(routes, max_vcs=payload["max_vcs"], seed=seed)
    table = build_routing_table(routes, vca)
    return encode_table(table)


def gap_curve_payload(
    config,
    time_limit: float,
    label: str,
    mode: str = "bnb",
    seed_incumbent: bool = True,
    time_points: Optional[Tuple[float, ...]] = None,
) -> Dict[str, Any]:
    """One Fig. 5 solver-progress recording (a whole B&B or HiGHS ladder)."""
    return {
        "task": "gap_curve",
        "version": TASK_VERSION,
        "config": config.as_dict(),
        "time_limit": float(time_limit),
        "label": str(label),
        "mode": str(mode),
        "seed_incumbent": bool(seed_incumbent),
        "time_points": (
            None if time_points is None else [float(t) for t in time_points]
        ),
    }


def gap_curve_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: record one solver-progress curve."""
    from ..core.netsmith import NetSmithConfig
    from ..core.progress import record_progress_bnb, record_progress_scipy

    config = NetSmithConfig.from_dict(payload["config"])
    if payload["mode"] == "bnb":
        curve = record_progress_bnb(
            config,
            time_limit=payload["time_limit"],
            label=payload["label"],
            seed_incumbent=payload["seed_incumbent"],
        )
    else:
        curve = record_progress_scipy(
            config,
            time_points=payload["time_points"],
            label=payload["label"],
        )
    return {
        "label": curve.label,
        "samples": [[s.time_s, s.gap, s.incumbent] for s in curve.samples],
    }


def gap_curve_from_dict(doc: Dict[str, Any]):
    from ..core.progress import GapCurve, GapSample

    return GapCurve(
        label=doc["label"],
        samples=[
            GapSample(
                time_s=float(t),
                gap=float(gap),
                incumbent=None if inc is None else float(inc),
            )
            for t, gap, inc in doc["samples"]
        ],
    )


#: Task-name -> (worker function, result decoder).  The decoder maps the
#: JSON value (fresh or cached) back to the caller-facing object.
TASK_FUNCTIONS = {
    "sim_point": (sim_point_task, stats_from_dict),
    "sim_batch": (sim_batch_task, batch_stats_from_dict),
    "sat_search": (sat_search_task, float),
    "closed_loop": (closed_loop_task, workload_result_from_dict),
    "recovery": (recovery_task, recovery_result_from_dict),
    "generation": (generation_task, generation_result_from_dict),
    "routing": (routing_task, decode_table),
    "gap_curve": (gap_curve_task, gap_curve_from_dict),
}
