"""Fig. 10: shuffle traffic on shuffle-optimized topologies.

The cast of Fig. 6 plus "NS ShufOpt" per class, exercised with gem5's
shuffle permutation.  Expected: legacy and uniform-optimized NetSmith
topologies show varied behaviour; the ShufOpt topology outperforms all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pregenerated import netsmith_topology
from ..sim import SweepResult, latency_throughput_curve, shuffle_pattern
from ..topology import standard_layout
from .registry import MCLB, Entry, roster, routed_entry, routed_table

if TYPE_CHECKING:
    from ..runner import Runner

DEFAULT_RATES = tuple(np.round(np.linspace(0.05, 0.8, 8), 3))


@dataclass
class Fig10Result:
    curves: Dict[str, SweepResult]

    def shufopt_wins(self, link_class: str) -> bool:
        """ShufOpt achieves the highest saturation in its class."""
        cls_curves = {
            n: c for n, c in self.curves.items() if c.link_class == link_class
        }
        if not cls_curves:
            return False
        best = max(cls_curves, key=lambda n: cls_curves[n].saturation_throughput_ns)
        return best.startswith("NS-ShufOpt")


def fig10_curves(
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    n_routers: int = 20,
    rates: Optional[Sequence[float]] = None,
    warmup: int = 400,
    measure: int = 1500,
    seed: int = 0,
    allow_generate: bool = True,
    runner: Optional["Runner"] = None,
    engine: Optional[str] = None,
) -> Fig10Result:
    """``engine`` pins the simulation engine ("fast"/"reference");
    ``None`` uses the runner's default (or "fast" serially).  Either
    way each routed topology compiles once and its trace-fed sweep
    produces curves identical to the reference engine's."""
    layout = standard_layout(n_routers)
    rates = tuple(rates or DEFAULT_RATES)
    cast = []
    for cls in link_classes:
        entries = roster(
            cls, n_routers, include_lpbt=False,
            allow_generate=allow_generate, runner=runner,
        )
        try:
            entries.append(
                Entry(
                    netsmith_topology(
                        "shufopt", cls, n_routers, allow_generate, runner=runner
                    ),
                    MCLB,
                )
            )
        except KeyError:
            pass
        cast.extend(
            (cls, entry, routed_entry(entry, seed=seed, runner=runner))
            for entry in entries
        )

    curves: Dict[str, SweepResult] = {}
    if runner is not None:
        from ..runner import CurveJob, TrafficSpec

        jobs = [
            CurveJob(
                table=table, traffic=TrafficSpec.shuffle(layout.n), rates=rates,
                name=entry.name, link_class=cls,
                warmup=warmup, measure=measure, seed=seed, engine=engine,
            )
            for cls, entry, table in cast
        ]
        for (cls, entry, _), curve in zip(cast, runner.curves(jobs)):
            curves[entry.name] = curve
    else:
        from ..sim.fastnet import DEFAULT_ENGINE

        traffic = shuffle_pattern(layout.n)
        for cls, entry, table in cast:
            curves[entry.name] = latency_throughput_curve(
                table,
                traffic,
                rates,
                name=entry.name,
                link_class=cls,
                warmup=warmup,
                measure=measure,
                seed=seed,
                engine=engine or DEFAULT_ENGINE,
            )
    return Fig10Result(curves=curves)
