"""Generate the paper-vs-measured experiment report (EXPERIMENTS.md body).

``generate_report(fast=True)`` runs reduced-budget versions of every
experiment and renders a markdown report; ``fast=False`` uses the bench
budgets.  The committed EXPERIMENTS.md is a frozen run of this generator
plus hand-written commentary.
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING, Optional

from .fig1 import fig1_points, pareto_front
from .fig6 import fig6_curves
from .fig7 import fig7_bars, mclb_gain_summary
from .fig8 import fig8_results
from .fig9 import fig9_rows, ns_large_vs_small_dynamic
from .table2 import PAPER_TABLE2_20, table2

if TYPE_CHECKING:
    from ..runner import Runner


def generate_report(fast: bool = True, runner: Optional["Runner"] = None) -> str:
    """Render the full report; a :class:`~repro.runner.Runner` fans the
    simulation-heavy sections (Figs. 6, 7, and 8) across workers, the
    generation-heavy sections (Table II, Figs. 1 and 9) through the
    pipeline's cached ``generation``/``routing`` stages, and caches
    every sim point and closed-loop run, making regeneration
    incremental — a report rerun never re-solves a MILP, re-routes a
    topology, or re-anneals a design it has already produced."""
    out = io.StringIO()
    w = out.write

    w("# Experiment report (generated)\n\n")
    w("Paper values from Green & Thottethodi, ICPP 2024; measured values\n")
    w("from this reproduction's substrates (see DESIGN.md substitutions).\n\n")

    # ---- Table II -----------------------------------------------------------
    w("## Table II — topology metrics (20 routers)\n\n")
    w("| class | topology | links (paper) | diam (paper) | hops (paper) | biBW (paper) |\n")
    w("|---|---|---|---|---|---|\n")
    for row in table2(20, allow_generate=False, runner=runner):
        m = row.measured
        if row.paper:
            pl, pd, ph, pb = row.paper
            w(
                f"| {row.link_class} | {m.name} | {m.num_links} ({pl}) | "
                f"{m.diameter} ({pd}) | {m.avg_hops:.2f} ({ph:.2f}) | "
                f"{m.bisection_bw} ({pb}) |\n"
            )
        else:
            w(
                f"| {row.link_class} | {m.name} | {m.num_links} (-) | "
                f"{m.diameter} (-) | {m.avg_hops:.2f} (-) | "
                f"{m.bisection_bw} (-) |\n"
            )
    w("\n")

    # ---- Fig. 1 ---------------------------------------------------------------
    w("## Fig. 1 — latency vs saturation-throughput frontier\n\n")
    pts = fig1_points(20, allow_generate=False, runner=runner)
    front = {p.name for p in pareto_front(pts)}
    w(f"Pareto frontier: {sorted(front)}\n\n")
    non_ns = [n for n in front if not n.startswith("NS-")]
    w(
        f"Experts on/near the frontier: {non_ns or 'none'} "
        "(paper: only Kite-Small).\n\n"
    )

    # ---- Fig. 6 ---------------------------------------------------------------
    measure = 800 if fast else 1500
    w("## Fig. 6 — synthetic traffic saturation (packets/node/ns)\n\n")
    for kind in ("coherence", "memory"):
        res = fig6_curves(kind, allow_generate=False, warmup=250, measure=measure,
                          runner=runner)
        w(f"### {kind}\n\n| topology | saturation |\n|---|---|\n")
        for name, sat in res.saturation_ranking():
            w(f"| {name} | {sat:.3f} |\n")
        if kind == "coherence":
            w(
                f"\nbest NS / best expert: "
                f"{res.best_netsmith_vs_best_expert():.2f}x "
                "(paper: 1.18x-1.75x across classes)\n"
            )
        w("\n")

    # ---- Fig. 7 ---------------------------------------------------------------
    w("## Fig. 7 — topology vs routing isolation (large class)\n\n")
    bars = fig7_bars("large", allow_generate=False, warmup=200,
                     measure=600 if fast else 1000, runner=runner)
    w("| topology | routing | measured | cut bound | occ bound | routed bound |\n")
    w("|---|---|---|---|---|---|\n")
    for b in bars:
        w(
            f"| {b.topology} | {b.routing} | {b.measured_saturation:.3f} | "
            f"{b.cut_bound:.3f} | {b.occupancy_bound:.3f} | {b.routed_bound:.3f} |\n"
        )
    gains = mclb_gain_summary(bars)
    w(f"\nMCLB/NDBT gains: { {k: round(v, 2) for k, v in gains.items()} }\n\n")

    # ---- Fig. 8 ---------------------------------------------------------------
    w("## Fig. 8 — PARSEC geomean speedups vs mesh\n\n")
    from ..fullsys.workloads import PARSEC
    from .registry import FIG8_FAST_WORKLOADS, fig8_budget

    # Same configuration as the ``fig8`` experiment, so the report's
    # full-system section is served from the same cached closed-loop
    # results as ``repro run fig8``.
    subset = PARSEC if not fast else [
        wl for wl in PARSEC if wl.name in FIG8_FAST_WORKLOADS
    ]
    res8 = fig8_results(
        workloads=subset, allow_generate=False, max_entries_per_class=3,
        runner=runner, **fig8_budget(fast),
    )
    w("| topology | geomean speedup |\n|---|---|\n")
    for name, v in sorted(res8.geomean.items(), key=lambda kv: -kv[1]):
        w(f"| {name} | {v:.3f} |\n")
    w(
        f"\nbest: {res8.best_topology()} "
        "(paper: NetSmith leads with up to 11% mean speedup)\n\n"
    )

    # ---- Fig. 9 ---------------------------------------------------------------
    w("## Fig. 9 — power/area vs mesh\n\n")
    rows9 = fig9_rows(allow_generate=False, runner=runner)
    w("| topology | static | dynamic | total power | wire area |\n")
    w("|---|---|---|---|---|\n")
    for r in rows9:
        n = r.normalized
        w(
            f"| {r.name} | {n['static_power']:.2f} | {n['dynamic_power']:.2f} | "
            f"{n['total_power']:.2f} | {n['wire_area']:.2f} |\n"
        )
    ratio = ns_large_vs_small_dynamic(rows9)
    w(f"\nNS large/small dynamic power: {ratio:.2f} (paper ~0.83)\n")
    return out.getvalue()
