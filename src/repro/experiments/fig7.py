"""Fig. 7: isolating NetSmith's topology vs routing benefits.

Large topologies only (as in the paper): each is evaluated under both
NDBT and MCLB routing, reporting measured saturation throughput alongside
the analytical cut-based and occupancy-based bounds.  Expected findings:

* MCLB improves every topology over NDBT;
* MCLB approaches the tighter bound — cut-based for expert topologies,
  occupancy-based for NetSmith's;
* even with MCLB, expert topologies stay below NetSmith's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..routing import throughput_bounds
from ..routing.paths import PathSet
from ..sim import MEAN_FLITS_PER_PACKET, find_saturation, uniform_random
from ..topology import standard_layout
from .registry import MCLB, NDBT, Entry, roster, routed_table

if TYPE_CHECKING:
    from ..runner import Runner


@dataclass
class Fig7Bar:
    topology: str
    routing: str
    measured_saturation: float  # packets/node/cycle
    cut_bound: float  # flits/node/cycle
    occupancy_bound: float
    routed_bound: float

    @property
    def measured_flits(self) -> float:
        return self.measured_saturation * MEAN_FLITS_PER_PACKET

    @property
    def binding_bound(self) -> str:
        return "cut" if self.cut_bound <= self.occupancy_bound else "occupancy"


def fig7_bars(
    link_class: str = "large",
    n_routers: int = 20,
    warmup: int = 300,
    measure: int = 1000,
    seed: int = 0,
    allow_generate: bool = True,
    runner: Optional["Runner"] = None,
) -> List[Fig7Bar]:
    layout = standard_layout(n_routers)
    cast = []
    for entry in roster(
        link_class, n_routers, include_lpbt=False,
        allow_generate=allow_generate, runner=runner,
    ):
        for policy in (NDBT, MCLB):
            if entry.name.startswith("NS-") and policy == NDBT:
                continue  # paper: NetSmith employs MCLB routing only
            table = routed_table(entry.topology, policy, seed=seed, runner=runner)
            paths = {}
            for s in range(layout.n):
                for d in range(layout.n):
                    if s != d:
                        paths[(s, d)] = [table.route_of(s, d)]
            routes = PathSet(topology=entry.topology, paths=paths)
            bounds = throughput_bounds(entry.topology, routes)
            cast.append((entry, policy, table, bounds))

    if runner is not None:
        from ..runner import SaturationJob, TrafficSpec

        jobs = [
            SaturationJob(
                table=table, traffic=TrafficSpec.uniform(layout.n),
                name=f"{entry.name}/{policy}",
                warmup=warmup, measure=measure, seed=seed,
            )
            for entry, policy, table, _ in cast
        ]
        sats = runner.saturations(jobs)
    else:
        traffic = uniform_random(layout.n)
        sats = [
            find_saturation(table, traffic, warmup=warmup, measure=measure, seed=seed)
            for _, _, table, _ in cast
        ]
    return [
        Fig7Bar(
            topology=entry.name,
            routing=policy,
            measured_saturation=sat,
            cut_bound=bounds.cut_bound,
            occupancy_bound=bounds.occupancy_bound,
            routed_bound=bounds.routed_bound,
        )
        for (entry, policy, _, bounds), sat in zip(cast, sats)
    ]


def mclb_gain_summary(bars: List[Fig7Bar]) -> Dict[str, float]:
    """Measured MCLB/NDBT saturation ratio per expert topology."""
    by_topo: Dict[str, Dict[str, float]] = {}
    for b in bars:
        by_topo.setdefault(b.topology, {})[b.routing] = b.measured_saturation
    return {
        t: v[MCLB] / v[NDBT]
        for t, v in by_topo.items()
        if NDBT in v and MCLB in v and v[NDBT] > 0
    }
