"""Fig. 1: latency vs expected saturation throughput scatter.

Each topology is one point: Y = average hop count (the low-load latency
proxy of Section II-C), X = the saturation-throughput bound of its routed
configuration (the tighter of the cut/occupancy bounds, adjusted by the
actual routing's maximum channel load — Section II-D).  NetSmith points
should dominate toward the bottom-right, with Kite-Small the one expert
design on the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..routing import channel_loads, throughput_bounds
from ..topology import average_hops
from .registry import Entry, roster, routed_entries

if TYPE_CHECKING:
    from ..runner import Runner


@dataclass
class Fig1Point:
    name: str
    link_class: str
    is_netsmith: bool
    avg_hops: float
    saturation_bound: float  # flits/node/cycle
    routed_bound: float


def fig1_points(
    n_routers: int = 20,
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    allow_generate: bool = True,
    seed: int = 0,
    runner: Optional["Runner"] = None,
) -> List[Fig1Point]:
    """With a :class:`~repro.runner.Runner`, table compilations (the
    MCLB LP solves dominating this figure) fan out and cache as
    ``routing`` tasks; reruns skip routing entirely."""
    points: List[Fig1Point] = []
    for cls in link_classes:
        entries = roster(
            cls, n_routers, allow_generate=allow_generate, runner=runner
        )
        tables = routed_entries(entries, seed=seed, runner=runner)
        for entry, table in zip(entries, tables):
            routes_max = 0
            # rebuild route set from the table for load analysis
            from ..routing.paths import PathSet

            paths = {}
            n = entry.topology.n
            for s in range(n):
                for d in range(n):
                    if s != d:
                        paths[(s, d)] = [table.route_of(s, d)]
            routes = PathSet(topology=entry.topology, paths=paths)
            bounds = throughput_bounds(entry.topology, routes)
            points.append(
                Fig1Point(
                    name=entry.name,
                    link_class=cls,
                    is_netsmith=entry.name.startswith("NS-"),
                    avg_hops=average_hops(entry.topology),
                    saturation_bound=min(bounds.analytical, bounds.routed_bound),
                    routed_bound=bounds.routed_bound,
                )
            )
    return points


def pareto_front(points: List[Fig1Point]) -> List[Fig1Point]:
    """Non-dominated points (lower hops, higher throughput)."""
    front = []
    for p in points:
        dominated = any(
            q.avg_hops <= p.avg_hops
            and q.saturation_bound >= p.saturation_bound
            and (q.avg_hops < p.avg_hops or q.saturation_bound > p.saturation_bound)
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.avg_hops)
