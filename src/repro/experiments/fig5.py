"""Fig. 5: solver progress — objective-bounds gap vs time.

The paper's qualitative findings to reproduce:

* smaller link-length limits converge faster (small < medium < large);
* larger systems shift the same ordering to longer absolute times;
* even plateaued gaps correspond to topologies already beating experts.

Full-scale curves (20/30/48 routers, paper Fig. 5a-c) are expensive; the
default benchmark configuration records curves on reduced instances with
the same structure (the ordering is scale-invariant), and the full 4x5
curves can be produced with ``full_scale=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.netsmith import NetSmithConfig
from ..core.progress import GapCurve, record_progress_bnb, record_progress_scipy
from ..topology import LAYOUT_4X5, Layout

if TYPE_CHECKING:
    from ..runner import Runner


@dataclass
class Fig5Result:
    curves: Dict[str, GapCurve]

    def convergence_order(self) -> List[str]:
        """Classes ordered by time to reach (or final) gap — the paper's
        small < medium < large finding."""

        def key(label: str) -> Tuple[float, float]:
            c = self.curves[label]
            t10 = c.time_to_gap(0.10)
            return (t10 if t10 is not None else float("inf"), c.final_gap())

        return sorted(self.curves, key=key)


def fig5_curves(
    layout: Optional[Layout] = None,
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    time_limit: float = 20.0,
    backend: str = "bnb",
    full_scale: bool = False,
    diameter_bound: int = 5,
    runner: Optional["Runner"] = None,
) -> Fig5Result:
    """Gap-vs-time curves per link class.

    Default is a reduced 3x4 instance so the benchmark finishes in
    seconds; ``full_scale=True`` uses the paper's 4x5 (minutes).  With a
    :class:`~repro.runner.Runner` each recording is one cached
    ``gap_curve`` task: the per-class solves fan across workers, and a
    rerun (or the report) replays the curves without re-solving.
    """
    if layout is None:
        layout = LAYOUT_4X5 if full_scale else Layout(rows=3, cols=4)
    labels = [f"{cls}" for cls in link_classes]
    configs = [
        NetSmithConfig(layout=layout, link_class=cls, diameter_bound=diameter_bound)
        for cls in link_classes
    ]
    # One ladder formula for both paths, so cached-task and inline
    # recordings stay equivalent.
    ladder = (time_limit / 8, time_limit / 4, time_limit / 2, time_limit)
    if runner is not None:
        from ..runner import tasks as runner_tasks

        payloads = [
            runner_tasks.gap_curve_payload(
                cfg, time_limit, label, mode=backend,
                time_points=None if backend == "bnb" else ladder,
            )
            for cfg, label in zip(configs, labels)
        ]
        recorded = runner.run_tasks("gap_curve", payloads)
        return Fig5Result(curves=dict(zip(labels, recorded)))

    curves: Dict[str, GapCurve] = {}
    for cfg, label in zip(configs, labels):
        if backend == "bnb":
            curves[label] = record_progress_bnb(cfg, time_limit=time_limit, label=label)
        else:
            curves[label] = record_progress_scipy(cfg, time_points=ladder, label=label)
    return Fig5Result(curves=curves)
