"""Fig. 6: synthetic-traffic latency/throughput curves, 20-router NoIs.

Panel (a) is uniform-random ("coherence") traffic; panel (b) is memory
traffic, where the MC-column hot spots saturate every topology earlier.
Each topology is swept at its link-class clock and reported in absolute
packets/node/ns, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim import SweepResult, latency_throughput_curve, memory_traffic, uniform_random
from ..topology import standard_layout
from .registry import roster, routed_entry

DEFAULT_RATES = tuple(np.round(np.linspace(0.02, 0.40, 9), 3))
MEMORY_RATES = tuple(np.round(np.linspace(0.01, 0.16, 7), 3))


@dataclass
class Fig6Result:
    traffic: str
    curves: Dict[str, SweepResult]

    def saturation_ranking(self) -> List[Tuple[str, float]]:
        """(name, saturation throughput packets/node/ns), best first."""
        pairs = [
            (name, c.saturation_throughput_ns) for name, c in self.curves.items()
        ]
        return sorted(pairs, key=lambda p: -p[1])

    def best_netsmith_vs_best_expert(self) -> float:
        """Saturation-throughput ratio NS/expert (paper: 1.18x-1.75x)."""
        ns = [v for n, v in self.saturation_ranking() if n.startswith("NS-")]
        ex = [v for n, v in self.saturation_ranking() if not n.startswith("NS-")]
        if not ns or not ex or max(ex) == 0:
            return float("nan")
        return max(ns) / max(ex)


def fig6_curves(
    traffic_kind: str = "coherence",
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    n_routers: int = 20,
    rates: Optional[Sequence[float]] = None,
    warmup: int = 400,
    measure: int = 1500,
    seed: int = 0,
    allow_generate: bool = True,
) -> Fig6Result:
    layout = standard_layout(n_routers)
    if traffic_kind == "coherence":
        traffic = uniform_random(layout.n)
        rates = tuple(rates or DEFAULT_RATES)
    elif traffic_kind == "memory":
        traffic = memory_traffic(layout)
        rates = tuple(rates or MEMORY_RATES)
    else:
        raise ValueError(f"traffic_kind must be coherence/memory, got {traffic_kind!r}")

    curves: Dict[str, SweepResult] = {}
    for cls in link_classes:
        for entry in roster(cls, n_routers, allow_generate=allow_generate):
            table = routed_entry(entry, seed=seed)
            curves[entry.name] = latency_throughput_curve(
                table,
                traffic,
                rates,
                name=entry.name,
                link_class=cls,
                warmup=warmup,
                measure=measure,
                seed=seed,
            )
    return Fig6Result(traffic=traffic_kind, curves=curves)
