"""Fig. 6: synthetic-traffic latency/throughput curves, 20-router NoIs.

Panel (a) is uniform-random ("coherence") traffic; panel (b) is memory
traffic, where the MC-column hot spots saturate every topology earlier.
Each topology is swept at its link-class clock and reported in absolute
packets/node/ns, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim import SweepResult, latency_throughput_curve
from ..topology import standard_layout
from .registry import roster, routed_entry

if TYPE_CHECKING:
    from ..runner import Runner

DEFAULT_RATES = tuple(np.round(np.linspace(0.02, 0.40, 9), 3))
MEMORY_RATES = tuple(np.round(np.linspace(0.01, 0.16, 7), 3))


@dataclass
class Fig6Result:
    traffic: str
    curves: Dict[str, SweepResult]

    def saturation_ranking(self) -> List[Tuple[str, float]]:
        """(name, saturation throughput packets/node/ns), best first."""
        pairs = [
            (name, c.saturation_throughput_ns) for name, c in self.curves.items()
        ]
        return sorted(pairs, key=lambda p: -p[1])

    def best_netsmith_vs_best_expert(self) -> float:
        """Saturation-throughput ratio NS/expert (paper: 1.18x-1.75x)."""
        ns = [v for n, v in self.saturation_ranking() if n.startswith("NS-")]
        ex = [v for n, v in self.saturation_ranking() if not n.startswith("NS-")]
        if not ns or not ex or max(ex) == 0:
            return float("nan")
        return max(ns) / max(ex)


def fig6_curves(
    traffic_kind: str = "coherence",
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    n_routers: int = 20,
    rates: Optional[Sequence[float]] = None,
    warmup: int = 400,
    measure: int = 1500,
    seed: int = 0,
    allow_generate: bool = True,
    runner: Optional["Runner"] = None,
    engine: Optional[str] = None,
) -> Fig6Result:
    """With a :class:`~repro.runner.Runner`, every (topology, rate) sim
    point fans out across workers and lands in the result cache; without
    one, the original serial sweep runs.  Curves are identical either
    way.  ``engine`` pins the simulation engine ("fast"/"reference");
    ``None`` uses the runner's default (or "fast" serially) — both
    engines produce identical curves.  On the fast engine each routed
    topology compiles once per curve (per worker, when fanned out) and
    traffic is pre-generated as vectorized traces."""
    from ..runner import TrafficSpec

    layout = standard_layout(n_routers)
    if traffic_kind == "coherence":
        spec = TrafficSpec.uniform(layout.n)
        rates = tuple(rates or DEFAULT_RATES)
    elif traffic_kind == "memory":
        spec = TrafficSpec.memory(layout)
        rates = tuple(rates or MEMORY_RATES)
    else:
        raise ValueError(f"traffic_kind must be coherence/memory, got {traffic_kind!r}")

    cast = [
        (cls, entry, routed_entry(entry, seed=seed, runner=runner))
        for cls in link_classes
        for entry in roster(
            cls, n_routers, allow_generate=allow_generate, runner=runner,
        )
    ]
    curves: Dict[str, SweepResult] = {}
    if runner is not None:
        from ..runner import CurveJob

        jobs = [
            CurveJob(
                table=table, traffic=spec, rates=rates, name=entry.name,
                link_class=cls, warmup=warmup, measure=measure, seed=seed,
                engine=engine,
            )
            for cls, entry, table in cast
        ]
        for (cls, entry, _), curve in zip(cast, runner.curves(jobs)):
            curves[entry.name] = curve
    else:
        from ..sim.fastnet import DEFAULT_ENGINE

        traffic = spec.build()
        for cls, entry, table in cast:
            curves[entry.name] = latency_throughput_curve(
                table,
                traffic,
                rates,
                name=entry.name,
                link_class=cls,
                warmup=warmup,
                measure=measure,
                seed=seed,
                engine=engine or DEFAULT_ENGINE,
            )
    return Fig6Result(traffic=traffic_kind, curves=curves)
