"""Experiment harness: one module per paper table/figure.

Each module regenerates the corresponding artifact's rows/series and is
wrapped by a benchmark in ``benchmarks/`` (see DESIGN.md's experiment
index for the mapping)."""

from .registry import (
    EXPERIMENTS,
    MCLB,
    NDBT,
    RANDOM_SP,
    Entry,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    roster,
    routed_entry,
    routed_table,
)
from .table2 import PAPER_TABLE2_20, PAPER_TABLE2_30, Table2Row, format_table, table2
from .fig1 import Fig1Point, fig1_points, pareto_front
from .fig4 import Fig4Result, fig4_render
from .fig5 import Fig5Result, fig5_curves
from .fig6 import Fig6Result, fig6_curves
from .fig7 import Fig7Bar, fig7_bars, mclb_gain_summary
from .fig8 import Fig8Result, fig8_results
from .fig9 import Fig9Row, fig9_rows, ns_large_vs_small_dynamic
from .fig10 import Fig10Result, fig10_curves
from .report import generate_report
from .fig11 import Fig11Point, Fig11Result, fig11_points

__all__ = [
    "roster", "routed_table", "routed_entry", "Entry", "NDBT", "MCLB", "RANDOM_SP",
    "EXPERIMENTS", "ExperimentSpec", "get_experiment", "list_experiments",
    "table2", "format_table", "Table2Row", "PAPER_TABLE2_20", "PAPER_TABLE2_30",
    "fig1_points", "pareto_front", "Fig1Point",
    "fig4_render", "Fig4Result",
    "fig5_curves", "Fig5Result",
    "fig6_curves", "Fig6Result",
    "fig7_bars", "mclb_gain_summary", "Fig7Bar",
    "fig8_results", "Fig8Result",
    "fig9_rows", "ns_large_vs_small_dynamic", "Fig9Row",
    "fig10_curves", "Fig10Result",
    "fig11_points",
    "generate_report", "Fig11Result", "Fig11Point",
]
