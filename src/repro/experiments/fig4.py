"""Fig. 4: render an example latency-optimized medium topology with its
sparsest cut (the paper colors the two partitions and distinguishes
bidirectional from unidirectional links)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.pregenerated import netsmith_topology
from ..topology import CutResult, Topology, ascii_art, sparsest_cut


@dataclass
class Fig4Result:
    topology: Topology
    cut: CutResult
    rendering: str


def fig4_render(n_routers: int = 20, allow_generate: bool = True) -> Fig4Result:
    topo = netsmith_topology("latop", "medium", n_routers, allow_generate)
    cut = sparsest_cut(topo, exact=n_routers <= 22)
    u, v = cut.partition
    art = ascii_art(topo)
    art += (
        f"\nsparsest cut value: {cut.value:.4f}"
        f"\npartition U (red): {u}"
        f"\npartition V (blue): {v}"
        f"\nbisection: {'yes' if len(u) == len(v) else 'no'}"
    )
    return Fig4Result(topology=topo, cut=cut, rendering=art)
