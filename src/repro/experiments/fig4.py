"""Fig. 4: render an example latency-optimized medium topology with its
sparsest cut (the paper colors the two partitions and distinguishes
bidirectional from unidirectional links)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..core.pregenerated import netsmith_topology
from ..topology import CutResult, Topology, ascii_art, sparsest_cut

if TYPE_CHECKING:
    from ..runner import Runner


@dataclass
class Fig4Result:
    topology: Topology
    cut: CutResult
    rendering: str


def fig4_render(
    n_routers: int = 20,
    allow_generate: bool = True,
    runner: Optional["Runner"] = None,
) -> Fig4Result:
    """A runner routes any live-generation fallback through the cached
    ``generation`` stage (frozen configurations never solve)."""
    topo = netsmith_topology(
        "latop", "medium", n_routers, allow_generate, runner=runner
    )
    cut = sparsest_cut(topo, exact=n_routers <= 22)
    u, v = cut.partition
    art = ascii_art(topo)
    art += (
        f"\nsparsest cut value: {cut.value:.4f}"
        f"\npartition U (red): {u}"
        f"\npartition V (blue): {v}"
        f"\nbisection: {'yes' if len(u) == len(v) else 'no'}"
    )
    return Fig4Result(topology=topo, cut=cut, rendering=art)
