"""Robustness as a benchmark: a fault x traffic scenario grid.

``repro run robustness`` sweeps candidate topologies over a matrix of
fault schedules (most-central link down, two links down, most-central
router down) crossed with traffic scenarios (stationary uniform, MMPP
bursty uniform, hotspot incast storm).  Per cell it measures

* the degraded saturation rate (fault present from cycle 0), against the
  fault-free baseline of the same traffic — their ratio is *retained
  capacity*;
* the delivered fraction at a fixed probe rate with the fault injected
  mid-measurement — the transient-loss view of the same scenario.

Topologies rank by their worst-case retained capacity across the grid
(max-min robustness; delivered fraction breaks ties).  All simulation
goes through the runner's ``sat_search``/``sim_point`` families, so the
grid fans across workers and an immediate rerun is 100% cache hits.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults import FaultSchedule, central_link_faults, central_router_fault
from ..runner import tasks as _tasks
from ..runner.hashing import config_hash
from ..runner.orchestrator import Runner, SaturationJob
from ..sim.burst import BurstSpec
from ..topology import expert_topology
from .registry import NDBT, routed_table

#: Default contenders: one expert baseline per link class.
DEFAULT_TOPOLOGIES = ("Mesh", "FoldedTorus", "ButterDonut")

#: Delivered-fraction probes run at this fraction of the cell's measured
#: degraded saturation — below the knee by construction, so losses
#: measure the fault, not queueing collapse.
PROBE_FRACTION = 0.5

#: Probe-rate floor (packets/node/cycle) for cells whose degraded
#: saturation collapsed below the search's resolution.
PROBE_FLOOR = 0.005

#: Saturation-search bracket: no 20-router contender saturates above
#: ~0.3 packets/node/cycle, so a tight upper bound buys bisection
#: resolution instead of wasting iterations halving dead air.
SAT_HI = 0.4


def _fault_axis(topo, cycle: int = 0) -> List[Tuple[str, FaultSchedule]]:
    """The fault scenarios for one topology, injected at ``cycle``."""
    return [
        ("link1", central_link_faults(topo, 1, cycle=cycle)),
        ("link2", central_link_faults(topo, 2, cycle=cycle)),
        ("router", central_router_fault(topo, cycle=cycle)),
    ]


def _hotspot_router(topo) -> int:
    """The incast target: the *second* most central router.

    The most central one is exactly the router the ``router`` fault
    scenario kills; aiming the storm next door keeps the incast x
    router-down cell measuring degradation rather than trivially losing
    every packet addressed to a dead node.
    """
    deg = topo.out_degree() + topo.in_degree()
    order = sorted(range(topo.n), key=lambda i: (-int(deg[i]), i))
    return order[1] if topo.n > 1 else order[0]


def _traffic_axis(topo) -> List[Tuple[str, _tasks.TrafficSpec]]:
    """The traffic scenarios for one topology."""
    n = topo.n
    uniform = _tasks.TrafficSpec.uniform(n)
    mmpp = uniform.with_burst(
        BurstSpec(kind="mmpp", p_on=0.1, p_off=0.3, seed=1)
    )
    incast = _tasks.TrafficSpec.hotspot(
        n, (_hotspot_router(topo),), hot_fraction=0.6
    ).with_burst(
        BurstSpec(kind="storm", p_on=0.1, p_off=0.2, seed=2)
    )
    return [("uniform", uniform), ("mmpp", mmpp), ("incast", incast)]


@dataclass
class ScenarioCell:
    """One (topology, fault, traffic) grid cell, fully measured."""

    topology: str
    fault: str
    traffic: str
    baseline_saturation: float
    degraded_saturation: float
    probe_rate: float
    delivered_fraction: float
    lost_packets: int
    offered_packets: int

    @property
    def retained(self) -> float:
        """Degraded/baseline saturation (retained capacity, in [0, ~1])."""
        if self.baseline_saturation <= 0:
            return 0.0
        return self.degraded_saturation / self.baseline_saturation

    def as_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.topology,
            "fault": self.fault,
            "traffic": self.traffic,
            "baseline_saturation": self.baseline_saturation,
            "degraded_saturation": self.degraded_saturation,
            "retained": self.retained,
            "probe_rate": self.probe_rate,
            "delivered_fraction": self.delivered_fraction,
            "lost_packets": self.lost_packets,
            "offered_packets": self.offered_packets,
        }


@dataclass
class RobustnessResult:
    """The full grid plus the worst-case-degradation ranking."""

    cells: List[ScenarioCell]
    config: Dict[str, Any] = field(default_factory=dict)

    def topologies(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.topology not in seen:
                seen.append(c.topology)
        return seen

    def worst_case(self, topology: str) -> ScenarioCell:
        """The grid cell with the lowest retained capacity."""
        mine = [c for c in self.cells if c.topology == topology]
        return min(mine, key=lambda c: (c.retained, c.delivered_fraction))

    def ranking(self) -> List[Tuple[str, ScenarioCell]]:
        """Topologies best-first by worst-case retained capacity."""
        worst = [(t, self.worst_case(t)) for t in self.topologies()]
        return sorted(
            worst,
            key=lambda tw: (tw[1].retained, tw[1].delivered_fraction),
            reverse=True,
        )

    def format_table(self) -> str:
        lines = [
            "Robustness ranking (worst-case retained capacity across "
            f"{len(self.cells)} scenario cells):",
            f"{'#':>3} {'topology':<18} {'retained':>8} {'delivered':>9} "
            f"{'worst scenario':<22}",
        ]
        for rank, (name, cell) in enumerate(self.ranking(), start=1):
            lines.append(
                f"{rank:>3} {name:<18} {cell.retained:>8.3f} "
                f"{cell.delivered_fraction:>9.3f} "
                f"{cell.fault + ' x ' + cell.traffic:<22}"
            )
        return "\n".join(lines)


def _write_artifacts(
    out_dir: str, result: RobustnessResult
) -> None:
    """Per-scenario JSON artifacts plus the grid-wide ranking doc."""
    os.makedirs(out_dir, exist_ok=True)
    digest = config_hash(result.config)[:12]
    for cell in result.cells:
        doc = {"config": result.config, "scenario": cell.as_dict()}
        name = f"{cell.topology}-{cell.fault}-{cell.traffic}-{digest}.json"
        path = os.path.join(out_dir, name.replace("/", "_"))
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    ranking_doc = {
        "config": result.config,
        "ranking": [
            {"topology": t, "worst_case": c.as_dict()}
            for t, c in result.ranking()
        ],
        "cells": [c.as_dict() for c in result.cells],
    }
    for name in (f"ranking-{digest}.json", "ranking.json"):
        with open(os.path.join(out_dir, name), "w") as fh:
            json.dump(ranking_doc, fh, indent=1, sort_keys=True)
            fh.write("\n")


def robustness_grid(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_routers: int = 20,
    runner: Optional[Runner] = None,
    fast: bool = True,
    out_dir: Optional[str] = "robustness-artifacts",
    probe_fraction: float = PROBE_FRACTION,
    seed: int = 0,
    engine: Optional[str] = None,
) -> RobustnessResult:
    """Measure the fault x traffic scenario grid over expert topologies.

    Saturation legs inject the fault at cycle 0 (steady degraded state);
    the delivered-fraction probe injects it a third of the way into the
    measurement window, so the loss number includes packets stranded by
    the epoch swap itself.  All legs batch through one runner.
    """
    if runner is None:
        with Runner(parallel=1) as ephemeral:
            return robustness_grid(
                topologies, n_routers, ephemeral, fast,
                out_dir, probe_fraction, seed, engine,
            )

    warmup, measure, iters = (200, 600, 5) if fast else (400, 1600, 7)
    probe_warmup, probe_measure = (200, 800) if fast else (400, 1600)
    probe_cycle = probe_warmup + probe_measure // 3

    tables = [
        routed_table(expert_topology(name, n_routers), NDBT, runner=runner)
        for name in topologies
    ]

    # One saturation batch: every (topology, traffic) baseline followed by
    # every (topology, fault, traffic) degraded search.
    base_jobs: List[SaturationJob] = []
    base_index: Dict[Tuple[str, str], int] = {}
    deg_jobs: List[SaturationJob] = []
    grid: List[Tuple[Any, str, FaultSchedule, str, _tasks.TrafficSpec]] = []
    for table in tables:
        topo = table.topology
        for t_label, spec in _traffic_axis(topo):
            base_index[(topo.name, t_label)] = len(base_jobs)
            base_jobs.append(SaturationJob(
                table=table, traffic=spec,
                name=f"{topo.name}/{t_label}",
                lo=PROBE_FLOOR, hi=SAT_HI, iters=iters,
                warmup=warmup, measure=measure,
                seed=seed, engine=engine,
            ))
        for f_label, schedule in _fault_axis(topo):
            for t_label, spec in _traffic_axis(topo):
                grid.append((table, f_label, schedule, t_label, spec))
                deg_jobs.append(SaturationJob(
                    table=table, traffic=spec,
                    name=f"{topo.name}/{f_label}/{t_label}",
                    lo=PROBE_FLOOR, hi=SAT_HI, iters=iters,
                    warmup=warmup, measure=measure, seed=seed,
                    engine=engine, faults=schedule,
                ))
    sats = runner.saturations(base_jobs + deg_jobs)
    base_sats = sats[: len(base_jobs)]
    deg_sats = sats[len(base_jobs):]

    # One sim-point batch: the delivered-fraction probes (mid-run fault),
    # each pitched below its own cell's degraded knee so losses come from
    # the fault, not queueing collapse.
    probe_rates = [
        max(PROBE_FLOOR, round(probe_fraction * float(deg), 4))
        for deg in deg_sats
    ]
    probe_payloads = []
    for (table, f_label, _schedule, t_label, spec), rate in zip(
        grid, probe_rates
    ):
        topo = table.topology
        mid = dict(_fault_axis(topo, cycle=probe_cycle))[f_label]
        probe_payloads.append(_tasks.sim_point_payload(
            table, spec, rate, probe_warmup, probe_measure, seed, {},
            engine=engine or runner.engine, faults=mid,
        ))
    probe_stats = runner.run_tasks("sim_point", probe_payloads)

    cells = [
        ScenarioCell(
            topology=table.topology.name,
            fault=f_label,
            traffic=t_label,
            baseline_saturation=float(
                base_sats[base_index[(table.topology.name, t_label)]]
            ),
            degraded_saturation=float(deg),
            probe_rate=rate,
            delivered_fraction=float(stats.delivered_fraction),
            lost_packets=int(stats.lost_packets),
            offered_packets=int(stats.offered_packets),
        )
        for (table, f_label, _s, t_label, _spec), deg, rate, stats in zip(
            grid, deg_sats, probe_rates, probe_stats
        )
    ]
    result = RobustnessResult(
        cells=cells,
        config={
            "topologies": list(topologies),
            "n_routers": n_routers,
            "fast": fast,
            "probe_fraction": probe_fraction,
            "probe_cycle": probe_cycle,
            "warmup": warmup, "measure": measure, "iters": iters,
            "probe_warmup": probe_warmup, "probe_measure": probe_measure,
            "seed": seed,
            "engine": engine,
        },
    )
    if out_dir is not None:
        _write_artifacts(out_dir, result)
    return result
