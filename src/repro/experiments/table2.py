"""Table II: topology metrics for every contender at 20 and 30 routers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..topology import TopologyMetrics, summarize
from .registry import Entry, roster

if TYPE_CHECKING:
    from ..runner import Runner

#: Paper-published Table II values: name -> (links, diam, avg hops, bi bw).
PAPER_TABLE2_20: Dict[Tuple[str, str], Tuple[int, int, float, int]] = {
    ("small", "Kite-Small"): (38, 4, 2.38, 8),
    ("small", "LPBT-Power"): (33, 5, 2.59, 4),
    ("small", "LPBT-Hops"): (34, 6, 2.74, 4),
    ("small", "NS-LatOp-small"): (37, 4, 2.34, 7),
    ("small", "NS-SCOp-small"): (37, 4, 2.38, 8),
    ("medium", "FoldedTorus"): (40, 4, 2.32, 10),
    ("medium", "Kite-Medium"): (40, 4, 2.25, 8),
    ("medium", "NS-LatOp-medium"): (40, 4, 2.06, 10),
    ("medium", "NS-SCOp-medium"): (40, 4, 2.16, 11),
    ("large", "ButterDonut"): (36, 4, 2.32, 8),
    ("large", "DoubleButterfly"): (32, 4, 2.59, 8),
    ("large", "Kite-Large"): (36, 5, 2.27, 8),
    ("large", "NS-LatOp-large"): (40, 3, 1.96, 13),
    ("large", "NS-SCOp-large"): (40, 4, 2.03, 14),
}

PAPER_TABLE2_30: Dict[Tuple[str, str], Tuple[int, int, float, int]] = {
    ("small", "Kite-Small"): (58, 5, 2.91, 10),
    ("small", "NS-LatOp-small"): (58, 5, 2.80, 8),
    ("medium", "FoldedTorus"): (60, 5, 2.79, 10),
    ("medium", "Kite-Medium"): (60, 5, 2.66, 10),
    ("medium", "NS-LatOp-medium"): (59, 5, 2.47, 11),
    ("large", "ButterDonut"): (44, 10, 3.71, 8),
    ("large", "DoubleButterfly"): (48, 5, 2.90, 8),
    ("large", "Kite-Large"): (56, 5, 2.69, 10),
    ("large", "NS-LatOp-large"): (60, 4, 2.32, 14),
}


@dataclass
class Table2Row:
    link_class: str
    measured: TopologyMetrics
    paper: Optional[Tuple[int, int, float, int]]

    def format(self) -> str:
        m = self.measured
        cells = (
            f"{m.name:<18} {self.link_class:<7} {m.num_links:>5} "
            f"{m.diameter:>4} {m.avg_hops:>6.2f} {m.bisection_bw:>4}"
        )
        if self.paper:
            pl, pd, ph, pb = self.paper
            cells += f"   | paper: {pl:>3} {pd:>2} {ph:>5.2f} {pb:>3}"
        return cells


def table2(
    n_routers: int = 20,
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    allow_generate: bool = True,
    exact_cuts: Optional[bool] = None,
    runner: Optional["Runner"] = None,
) -> List[Table2Row]:
    """Regenerate Table II's measured rows for one system size.

    A runner routes any NetSmith live-generation fallback through the
    cached ``generation`` stage (frozen entries never solve).
    """
    paper = PAPER_TABLE2_20 if n_routers == 20 else PAPER_TABLE2_30
    rows: List[Table2Row] = []
    for cls in link_classes:
        for entry in roster(
            cls,
            n_routers,
            include_scop=(n_routers == 20),
            allow_generate=allow_generate,
            runner=runner,
        ):
            metrics = summarize(entry.topology, exact=exact_cuts)
            rows.append(
                Table2Row(
                    link_class=cls,
                    measured=metrics,
                    paper=paper.get((cls, entry.name)),
                )
            )
    return rows


def format_table(rows: List[Table2Row], n_routers: int) -> str:
    header = (
        f"Table II ({n_routers} routers)\n"
        f"{'topology':<18} {'class':<7} {'links':>5} {'diam':>4} "
        f"{'hops':>6} {'biBW':>4}\n" + "-" * 78
    )
    return "\n".join([header] + [r.format() for r in rows])
