"""Fig. 9: NoI power and area relative to mesh (DSENT-substitute model).

Expected findings: leakage roughly flat across topologies (same router
count/radix); dynamic power varying with aggregate wire length and clock
— large NetSmith topologies ~17% lower dynamic power than their small
counterparts; wire area dominating router area; all NoIs a small
fraction of interposer area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..power import PowerArea, analyze
from ..topology import Topology, expert_topology
from .registry import roster

if TYPE_CHECKING:
    from ..runner import Runner


@dataclass
class Fig9Row:
    name: str
    link_class: str
    normalized: Dict[str, float]
    raw: PowerArea


def fig9_rows(
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    n_routers: int = 20,
    activity: float = 0.3,
    allow_generate: bool = True,
    runner: Optional["Runner"] = None,
) -> List[Fig9Row]:
    """A runner routes any NetSmith live-generation fallback through the
    cached ``generation`` stage."""
    base = analyze(expert_topology("Mesh", n_routers), activity=activity)
    rows: List[Fig9Row] = []
    for cls in link_classes:
        for entry in roster(
            cls, n_routers, include_lpbt=False,
            allow_generate=allow_generate, runner=runner,
        ):
            pa = analyze(entry.topology, activity=activity)
            rows.append(
                Fig9Row(
                    name=entry.name,
                    link_class=cls,
                    normalized=pa.normalized_to(base),
                    raw=pa,
                )
            )
    return rows


def ns_large_vs_small_dynamic(rows: List[Fig9Row]) -> float:
    """Dynamic-power ratio NS-LatOp-large / NS-LatOp-small (paper ~0.83)."""
    by_name = {r.name: r for r in rows}
    small = by_name.get("NS-LatOp-small")
    large = by_name.get("NS-LatOp-large")
    if small is None or large is None:
        return float("nan")
    return large.raw.dynamic_power_mw / small.raw.dynamic_power_mw
