"""Fig. 8: PARSEC execution-time speedup and packet-latency reduction.

Bars are speedup vs mesh, grouped small/medium/large; markers are packet
latency reduction vs mesh.  Expected shape: broad correlation between
latency reduction and speedup, sensitivity scaling with each benchmark's
L2 MPKI, and NetSmith always achieving the largest latency reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..fullsys import Figure8Row, geomean_speedups, parsec_sweep
from ..fullsys.workloads import PARSEC, WorkloadProfile
from ..routing import RoutingTable
from ..topology import expert_topology
from .registry import NDBT, roster, routed_entry, routed_table

if TYPE_CHECKING:
    from ..runner import Runner


@dataclass
class Fig8Result:
    rows: List[Figure8Row]
    geomean: Dict[str, float]

    def best_topology(self) -> str:
        return max(self.geomean, key=self.geomean.get)

    def netsmith_always_best_latency(self, tolerance: float = 0.02) -> bool:
        """Paper: NetSmith topologies always yield the highest latency
        reduction.  ``tolerance`` absorbs simulation noise between
        near-identical designs (the paper's own Kite-Small is within 1%
        of NS-small, so exact ties flip under different seeds)."""
        for row in self.rows:
            best = max(row.latency_reductions.values())
            ns_best = max(
                (v for k, v in row.latency_reductions.items() if k.startswith("NS-")),
                default=-1.0,
            )
            if ns_best < best - tolerance:
                return False
        return True


def fig8_results(
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    workloads: Optional[List[WorkloadProfile]] = None,
    n_routers: int = 20,
    warmup: int = 500,
    measure: int = 2000,
    seed: int = 0,
    allow_generate: bool = True,
    max_entries_per_class: Optional[int] = None,
    runner: Optional["Runner"] = None,
    engine: Optional[str] = None,
) -> Fig8Result:
    """With a :class:`~repro.runner.Runner`, every (benchmark, topology)
    closed-loop run fans out across workers and lands in the result
    cache; without one, the serial sweep runs.  Rows are identical
    either way.  ``engine`` pins the closed-loop engine
    ("fast"/"reference"); ``None`` uses the runner's default (or the
    fast engine serially) — both engines produce identical results."""
    mesh_table = routed_table(
        expert_topology("Mesh", n_routers), NDBT, seed=seed, runner=runner
    )
    tables: Dict[str, RoutingTable] = {}
    for cls in link_classes:
        entries = roster(
            cls, n_routers, include_lpbt=False,
            allow_generate=allow_generate, runner=runner,
        )
        if max_entries_per_class is not None:
            # keep the best expert (Kite) and the NetSmith entries
            entries = [
                e
                for e in entries
                if e.name.startswith(("NS-", "Kite", "FoldedTorus"))
            ][:max_entries_per_class]
        for e in entries:
            tables[e.name] = routed_entry(e, seed=seed, runner=runner)
    rows = parsec_sweep(
        tables,
        mesh_table,
        workloads=workloads or PARSEC,
        seed=seed,
        warmup=warmup,
        measure=measure,
        runner=runner,
        engine=engine,
    )
    return Fig8Result(rows=rows, geomean=geomean_speedups(rows))
