"""Fig. 11: scalability — synthetic uniform traffic on 48-router (8x6) NoIs.

The paper scales the subset of expert topologies whose design rules
extend to 8x6 (Kite-Large does not — it needs an odd column count; LPBT
could not produce a connected graph) and finds NetSmith ahead by 18%,
56% and 67% saturation throughput for small/medium/large.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim import find_saturation, uniform_random
from ..topology import standard_layout
from ..topology.layout import CLASS_CLOCK_GHZ
from .registry import roster, routed_entry

if TYPE_CHECKING:
    from ..runner import Runner

#: Families that scale to 8x6 per the paper's rules.
SCALABLE = ("Kite-Small", "FoldedTorus", "Kite-Medium", "ButterDonut",
            "DoubleButterfly", "NS-LatOp-small", "NS-LatOp-medium",
            "NS-LatOp-large")


@dataclass
class Fig11Point:
    name: str
    link_class: str
    saturation_packets_node_cycle: float

    @property
    def saturation_packets_node_ns(self) -> float:
        return self.saturation_packets_node_cycle * CLASS_CLOCK_GHZ[self.link_class]


@dataclass
class Fig11Result:
    points: List[Fig11Point]

    def ns_gain(self, link_class: str) -> float:
        """NS saturation / best competing expert saturation per class."""
        cls = [p for p in self.points if p.link_class == link_class]
        ns = [p.saturation_packets_node_ns for p in cls if p.name.startswith("NS-")]
        ex = [p.saturation_packets_node_ns for p in cls if not p.name.startswith("NS-")]
        if not ns or not ex or max(ex) == 0:
            return float("nan")
        return max(ns) / max(ex)


def fig11_points(
    link_classes: Tuple[str, ...] = ("small", "medium", "large"),
    n_routers: int = 48,
    warmup: int = 300,
    measure: int = 1000,
    seed: int = 0,
    allow_generate: bool = True,
    runner: Optional["Runner"] = None,
    engine: Optional[str] = None,
) -> Fig11Result:
    """With a runner, each topology's whole saturation binary search is
    one task, fanned across workers and cached.  ``engine`` pins the
    simulation engine ("fast"/"reference"); ``None`` uses the runner's
    default (or "fast" serially).  Every search's probes share one
    compiled network and are memoized by rate."""
    layout = standard_layout(n_routers)
    cast = []
    for cls in link_classes:
        for entry in roster(
            cls, n_routers, include_lpbt=False, include_scop=False,
            allow_generate=allow_generate, runner=runner,
        ):
            if entry.name == "Kite-Large" and n_routers == 48:
                continue  # the paper could not scale Kite-Large to 8x6
            if entry.name not in SCALABLE:
                continue
            cast.append((cls, entry, routed_entry(entry, seed=seed, runner=runner)))

    if runner is not None:
        from ..runner import SaturationJob, TrafficSpec

        jobs = [
            SaturationJob(
                table=table, traffic=TrafficSpec.uniform(layout.n),
                name=entry.name, warmup=warmup, measure=measure, seed=seed,
                engine=engine,
            )
            for cls, entry, table in cast
        ]
        sats = runner.saturations(jobs)
    else:
        from ..sim.fastnet import DEFAULT_ENGINE

        traffic = uniform_random(layout.n)
        sats = [
            find_saturation(
                table, traffic, warmup=warmup, measure=measure, seed=seed,
                engine=engine or DEFAULT_ENGINE,
            )
            for cls, entry, table in cast
        ]
    points = [
        Fig11Point(
            name=entry.name,
            link_class=cls,
            saturation_packets_node_cycle=sat,
        )
        for (cls, entry, _), sat in zip(cast, sats)
    ]
    return Fig11Result(points=points)
