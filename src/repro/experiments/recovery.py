"""Closed-loop recovery transients: fault, repair, and the road back.

``repro run recovery`` runs a (topology x workload x fault-flap)
scenario grid of *windowed* closed-loop simulations: a central link or
router goes down mid-run and comes back up later, while requests ride
the timeout/retry machinery of
:class:`~repro.fullsys.closedloop.RetryPolicy`.  Per cell it derives the
transient-recovery metrics of :func:`~repro.sim.stats.recovery_metrics`
from the window series:

* **time-to-drain** — cycles after the repair until the transaction
  backlog (MLP slots held) returns to its pre-fault baseline band;
* **latency-settling time** — cycles after the repair until the
  windowed mean round trip re-enters its baseline band;

plus the failure/retry totals that show what the outage actually cost.
All simulation goes through the runner's ``recovery`` task family, so
the grid fans across workers and an immediate rerun is 100% cache hits.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults import (
    FaultSchedule,
    central_link_faults,
    central_router_fault,
    recovery_points,
)
from ..fullsys.closedloop import RetryPolicy
from ..fullsys.workloads import workload
from ..runner.hashing import config_hash
from ..runner.orchestrator import RecoveryJob, Runner
from ..sim.stats import RecoveryMetrics, WindowSample, recovery_metrics
from ..topology import expert_topology
from .registry import NDBT, routed_table

#: Default contenders (small-class expert baselines).
DEFAULT_TOPOLOGIES = ("Mesh", "FoldedTorus")

#: Default PARSEC profiles: one moderate, one memory-heavy — both with a
#: stationary pre-fault operating point.  (The very top of the MPKI
#: range, canneal, pins every MLP slot even fault-free: there is no
#: baseline to recover *to*, so it is not a transient scenario.)
DEFAULT_WORKLOADS = ("x264", "streamcluster")

#: Outage window (cycles): long enough past warmup for a clean baseline,
#: repaired with room to observe the drain before the run ends.
DOWN_CYCLE = 400
UP_CYCLE = 800

#: Default retry policy for the grid.  The timeout must clear the
#: *congested steady-state* round trip of the heaviest workload on the
#: weakest topology (~150 cycles for streamcluster on the mesh), not
#: just the pristine RTT: a timeout below steady RTT fires spurious
#: retransmissions whose duplicates amplify load faster than the
#: network drains it — congestion collapse, and the transient never
#: recovers.
DEFAULT_RETRY = RetryPolicy(timeout=192, retries=6, backoff=16, seed=1)


def _scenario_axis(
    topo, down: int, up: int
) -> List[Tuple[str, FaultSchedule]]:
    """Flap scenarios: the most central link / router down then back up.

    Targets are lifted from the permanent-outage pickers the robustness
    grid uses, so "worst link"/"worst router" means the same thing in
    both experiments.
    """
    link_events = central_link_faults(topo, 1, cycle=down).events
    links = sorted({tuple(sorted(e.target)) for e in link_events})
    router_events = central_router_fault(topo, cycle=down).events
    routers = sorted({e.target[0] for e in router_events})
    return [
        ("linkflap",
         FaultSchedule.link_outage(links, down_cycle=down, up_cycle=up)),
        ("routerflap",
         FaultSchedule.router_outage(routers, down_cycle=down, up_cycle=up)),
    ]


@dataclass
class RecoveryCell:
    """One (topology, workload, scenario) cell, fully measured."""

    topology: str
    workload: str
    scenario: str
    metrics: RecoveryMetrics
    issued: int
    completed: int
    failed: int
    retried: int

    @property
    def failed_fraction(self) -> float:
        return self.failed / self.issued if self.issued else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.topology,
            "workload": self.workload,
            "scenario": self.scenario,
            "metrics": self.metrics.as_dict(),
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "failed_fraction": self.failed_fraction,
        }


@dataclass
class RecoveryResult:
    """The full grid plus per-topology worst-case recovery."""

    cells: List[RecoveryCell]
    config: Dict[str, Any] = field(default_factory=dict)

    def topologies(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.topology not in seen:
                seen.append(c.topology)
        return seen

    def worst_case(self, topology: str) -> RecoveryCell:
        """The cell with the slowest drain (ties: slowest settling)."""
        mine = [c for c in self.cells if c.topology == topology]
        return max(
            mine,
            key=lambda c: (c.metrics.time_to_drain, c.metrics.settling_time),
        )

    def ranking(self) -> List[Tuple[str, RecoveryCell]]:
        """Topologies best-first by worst-case time-to-drain."""
        worst = [(t, self.worst_case(t)) for t in self.topologies()]
        return sorted(
            worst,
            key=lambda tw: (
                tw[1].metrics.time_to_drain,
                tw[1].metrics.settling_time,
            ),
        )

    def format_table(self) -> str:
        lines = [
            f"Recovery transients over {len(self.cells)} scenario cells "
            "(cycles after repair; inf = never within the run):",
            f"{'topology':<14} {'workload':<14} {'scenario':<11} "
            f"{'drain':>7} {'settle':>7} {'failed':>6} {'retried':>7}",
        ]
        for c in self.cells:
            lines.append(
                f"{c.topology:<14} {c.workload:<14} {c.scenario:<11} "
                f"{c.metrics.time_to_drain:>7.0f} "
                f"{c.metrics.settling_time:>7.0f} "
                f"{c.failed:>6d} {c.retried:>7d}"
            )
        lines.append("")
        lines.append("Worst-case ranking (time-to-drain):")
        for rank, (name, c) in enumerate(self.ranking(), start=1):
            lines.append(
                f"{rank:>3} {name:<14} drain={c.metrics.time_to_drain:.0f} "
                f"settle={c.metrics.settling_time:.0f} "
                f"({c.workload} x {c.scenario})"
            )
        return "\n".join(lines)


def _write_artifacts(out_dir: str, result: RecoveryResult) -> None:
    """Per-cell JSON artifacts plus the grid-wide summary doc."""
    os.makedirs(out_dir, exist_ok=True)
    digest = config_hash(result.config)[:12]
    for cell in result.cells:
        doc = {"config": result.config, "cell": cell.as_dict()}
        name = (
            f"{cell.topology}-{cell.workload}-{cell.scenario}-{digest}.json"
        )
        path = os.path.join(out_dir, name.replace("/", "_"))
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    summary_doc = {
        "config": result.config,
        "ranking": [
            {"topology": t, "worst_case": c.as_dict()}
            for t, c in result.ranking()
        ],
        "cells": [c.as_dict() for c in result.cells],
    }
    for name in (f"summary-{digest}.json", "summary.json"):
        with open(os.path.join(out_dir, name), "w") as fh:
            json.dump(summary_doc, fh, indent=1, sort_keys=True)
            fh.write("\n")


def recovery_grid(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    n_routers: int = 20,
    runner: Optional[Runner] = None,
    fast: bool = True,
    out_dir: Optional[str] = "recovery-artifacts",
    retry: Optional[RetryPolicy] = None,
    tolerance: float = 0.25,
    seed: int = 0,
    engine: Optional[str] = None,
) -> RecoveryResult:
    """Measure recovery transients over the flap-scenario grid.

    Each cell is one windowed closed-loop run (the ``recovery`` task
    family — cached, fanned across workers).  The drain/settling metrics
    derive client-side from the cached window series, so ``tolerance``
    re-analysis never re-simulates.
    """
    if runner is None:
        with Runner(parallel=1) as ephemeral:
            return recovery_grid(
                topologies, workloads, n_routers, ephemeral, fast,
                out_dir, retry, tolerance, seed, engine,
            )
    retry = retry or DEFAULT_RETRY

    total, window = (1400, 50) if fast else (2400, 50)
    down, up = DOWN_CYCLE, UP_CYCLE

    tables = [
        routed_table(expert_topology(name, n_routers), NDBT, runner=runner)
        for name in topologies
    ]
    profiles = [workload(w) for w in workloads]

    jobs: List[RecoveryJob] = []
    grid: List[Tuple[Any, Any, str, FaultSchedule]] = []
    for table in tables:
        topo = table.topology
        for profile in profiles:
            for s_label, schedule in _scenario_axis(topo, down, up):
                grid.append((table, profile, s_label, schedule))
                jobs.append(RecoveryJob(
                    table=table, workload=profile, faults=schedule,
                    retry=retry, total=total, window=window,
                    seed=seed, engine=engine,
                ))
    window_series: List[List[WindowSample]] = runner.recoveries(jobs)

    cells: List[RecoveryCell] = []
    for (table, profile, s_label, schedule), samples in zip(
        grid, window_series
    ):
        fault_cycle, recovery_cycle = recovery_points(schedule)
        metrics = recovery_metrics(
            samples, fault_cycle, recovery_cycle, tolerance=tolerance,
        )
        cells.append(RecoveryCell(
            topology=table.topology.name,
            workload=profile.name,
            scenario=s_label,
            metrics=metrics,
            issued=sum(s.issued for s in samples),
            completed=sum(s.completed for s in samples),
            failed=sum(s.failed for s in samples),
            retried=sum(s.retried for s in samples),
        ))
    result = RecoveryResult(
        cells=cells,
        config={
            "topologies": list(topologies),
            "workloads": list(workloads),
            "n_routers": n_routers,
            "fast": fast,
            "total": total, "window": window,
            "down_cycle": down, "up_cycle": up,
            "retry": retry.as_dict(),
            "tolerance": tolerance,
            "seed": seed,
            "engine": engine,
        },
    )
    if out_dir is not None:
        _write_artifacts(out_dir, result)
    return result
