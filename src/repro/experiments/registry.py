"""Shared experiment infrastructure: topology rosters and routed tables.

Every figure compares the same cast (paper Table II):

* expert baselines routed with NDBT (their published scheme);
* LPBT machine baselines routed with a single random shortest path (their
  internally-defined, load-oblivious routing, Section IV-A);
* NetSmith topologies routed with MCLB (paper: "NetSmith employs MCLB
  routing only").

``roster`` assembles the per-link-class cast at a given system size,
serving frozen artifacts where registered; ``routed_table`` applies the
matching routing policy plus deadlock-free VC assignment and compiles the
simulator's routing table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.mclb import mclb_route
from ..core.pregenerated import lookup as ns_lookup, netsmith_topology
from ..routing import (
    PathSet,
    RoutingTable,
    assign_vcs,
    build_routing_table,
    ndbt_route,
    single_shortest_paths,
)
from ..topology import Topology, expert_topology, standard_layout
from ..topology.expert import EXPERT_FAMILIES

#: Routing policy names.
NDBT = "ndbt"
MCLB = "mclb"
RANDOM_SP = "random"


@dataclass
class Entry:
    """One contender: a topology plus its routing policy."""

    topology: Topology
    policy: str

    @property
    def name(self) -> str:
        return self.topology.name


def roster(
    link_class: str,
    n_routers: int = 20,
    include_lpbt: bool = True,
    include_scop: bool = True,
    include_mesh: bool = False,
    allow_generate: bool = True,
) -> List[Entry]:
    """The paper's comparison cast for one link class and size."""
    entries: List[Entry] = []
    if include_mesh:
        entries.append(Entry(expert_topology("Mesh", n_routers), NDBT))
    for name, cls in EXPERT_FAMILIES.items():
        if cls != link_class or name == "Mesh":
            continue
        try:
            entries.append(Entry(expert_topology(name, n_routers), NDBT))
        except ValueError:
            pass  # family not defined at this size
    if include_lpbt and n_routers == 20 and link_class == "small":
        from ..topology import expert_data

        for lp in ("LPBT-Power", "LPBT-Hops"):
            frozen = expert_data.lookup(lp, n_routers)
            if frozen is not None:
                layout = standard_layout(n_routers)
                entries.append(
                    Entry(
                        Topology.from_undirected(
                            layout, frozen, name=lp, link_class=link_class
                        ),
                        RANDOM_SP,
                    )
                )
    # NetSmith contenders
    try:
        entries.append(
            Entry(
                netsmith_topology("latop", link_class, n_routers, allow_generate),
                MCLB,
            )
        )
    except KeyError:
        pass
    if include_scop and n_routers == 20:
        try:
            entries.append(
                Entry(
                    netsmith_topology("scop", link_class, n_routers, allow_generate),
                    MCLB,
                )
            )
        except KeyError:
            pass
    return entries


_table_cache: Dict[Tuple[str, int, str, str], RoutingTable] = {}


def routed_table(
    topo: Topology,
    policy: str = NDBT,
    seed: int = 0,
    max_vcs: Optional[int] = None,
    use_cache: bool = True,
) -> RoutingTable:
    """Route a topology with a named policy and compile its table.

    The VC budget scales with network size: 8 layers suffice for every
    20/30-router configuration; irregular 48-router networks with MCLB's
    unconstrained shortest paths can need a few more.
    """
    if max_vcs is None:
        max_vcs = 8 if topo.n <= 30 else 14
    key = (topo.name, topo.n, policy, f"{seed}/{topo.num_directed_links}")
    if use_cache and key in _table_cache:
        return _table_cache[key]
    if policy == NDBT:
        routes = ndbt_route(topo, seed=seed)
    elif policy == MCLB:
        routes = mclb_route(topo, time_limit=60.0).routes
    elif policy == RANDOM_SP:
        routes = single_shortest_paths(topo, seed=seed)
    else:
        raise ValueError(f"unknown routing policy {policy!r}")
    vca = assign_vcs(routes, max_vcs=max_vcs, seed=seed)
    table = build_routing_table(routes, vca)
    if use_cache:
        _table_cache[key] = table
    return table


def routed_entry(entry: Entry, seed: int = 0) -> RoutingTable:
    return routed_table(entry.topology, entry.policy, seed=seed)
