"""Shared experiment infrastructure: topology rosters and routed tables.

Every figure compares the same cast (paper Table II):

* expert baselines routed with NDBT (their published scheme);
* LPBT machine baselines routed with a single random shortest path (their
  internally-defined, load-oblivious routing, Section IV-A);
* NetSmith topologies routed with MCLB (paper: "NetSmith employs MCLB
  routing only").

``roster`` assembles the per-link-class cast at a given system size,
serving frozen artifacts where registered; ``routed_table`` applies the
matching routing policy plus deadlock-free VC assignment and compiles the
simulator's routing table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.pregenerated import lookup as ns_lookup, netsmith_topology
from ..routing import RoutingTable
from ..topology import Topology, expert_topology, standard_layout
from ..topology.expert import EXPERT_FAMILIES

#: Routing policy names.
NDBT = "ndbt"
MCLB = "mclb"
RANDOM_SP = "random"


@dataclass
class Entry:
    """One contender: a topology plus its routing policy."""

    topology: Topology
    policy: str

    @property
    def name(self) -> str:
        return self.topology.name


def roster(
    link_class: str,
    n_routers: int = 20,
    include_lpbt: bool = True,
    include_scop: bool = True,
    include_mesh: bool = False,
    allow_generate: bool = True,
    runner=None,
) -> List[Entry]:
    """The paper's comparison cast for one link class and size.

    Any router count is accepted: non-standard sizes get the most-square
    grid, expert families that don't scale to it are skipped, and (with
    ``allow_generate``) NetSmith contenders come from the design-space
    pipeline's cached ``generation`` stage — a :class:`repro.runner.Runner`
    makes those solves one-time across runs.
    """
    entries: List[Entry] = []
    if include_mesh:
        entries.append(Entry(expert_topology("Mesh", n_routers), NDBT))
    for name, cls in EXPERT_FAMILIES.items():
        if cls != link_class or name == "Mesh":
            continue
        try:
            entries.append(Entry(expert_topology(name, n_routers), NDBT))
        except ValueError:
            pass  # family not defined at this size
    if include_lpbt and n_routers == 20 and link_class == "small":
        from ..topology import expert_data

        for lp in ("LPBT-Power", "LPBT-Hops"):
            frozen = expert_data.lookup(lp, n_routers)
            if frozen is not None:
                layout = standard_layout(n_routers)
                entries.append(
                    Entry(
                        Topology.from_undirected(
                            layout, frozen, name=lp, link_class=link_class
                        ),
                        RANDOM_SP,
                    )
                )
    # NetSmith contenders
    try:
        entries.append(
            Entry(
                netsmith_topology(
                    "latop", link_class, n_routers, allow_generate, runner=runner
                ),
                MCLB,
            )
        )
    except KeyError:
        pass
    # SCOp needs exact sparsest-cut separation (n <= 22).
    if include_scop and n_routers <= 22:
        try:
            entries.append(
                Entry(
                    netsmith_topology(
                        "scop", link_class, n_routers, allow_generate, runner=runner
                    ),
                    MCLB,
                )
            )
        except KeyError:
            pass
    return entries


_table_cache: Dict[Tuple[str, int, str, str], RoutingTable] = {}


def _memo_key(
    topo: Topology,
    policy: str,
    seed: int,
    max_vcs: Optional[int] = None,
    time_limit: float = 60.0,
) -> Tuple:
    """In-process memo key, shared by every routed-table entry point.

    Everything that changes the compiled table participates — including
    the VC budget and the MCLB solve budget, which are caller-tunable.
    """
    from ..runner.tasks import default_max_vcs

    if max_vcs is None:
        max_vcs = default_max_vcs(topo.n)
    return (
        topo.name, topo.n, policy,
        f"{seed}/{topo.num_directed_links}", max_vcs, time_limit,
    )


def routed_table(
    topo: Topology,
    policy: str = NDBT,
    seed: int = 0,
    max_vcs: Optional[int] = None,
    use_cache: bool = True,
    runner=None,
    time_limit: float = 60.0,
) -> RoutingTable:
    """Route a topology with a named policy and compile its table.

    The VC budget scales with network size: 8 layers suffice for every
    20/30-router configuration; irregular 48-router networks with MCLB's
    unconstrained shortest paths can need a few more.

    Compilation is one ``routing`` pipeline task — run inline here when
    no runner is given, or through the :class:`repro.runner.Runner`
    (and therefore the content-addressed disk cache and worker pool)
    when one is: MCLB's LP solve is seconds per topology, and (unlike a
    fresh solve) a cached table is identical across runs of the same
    configuration.  ``time_limit`` and ``max_vcs`` are part of that
    configuration — both the in-process memo and the disk key include
    them, so changing a budget recomputes rather than serving a table
    produced under a different one.
    """
    if policy not in (NDBT, MCLB, RANDOM_SP):
        raise ValueError(f"unknown routing policy {policy!r}")
    from ..runner.tasks import default_max_vcs

    if max_vcs is None:
        max_vcs = default_max_vcs(topo.n)
    key = _memo_key(topo, policy, seed, max_vcs, time_limit)
    if use_cache and key in _table_cache:
        return _table_cache[key]

    from ..runner import RoutingJob, decode_table, tasks as runner_tasks

    job = RoutingJob(
        topology=topo, policy=policy, seed=seed,
        max_vcs=max_vcs, time_limit=time_limit,
    )
    if runner is not None:
        table = runner.tables([job])[0]
    else:
        table = decode_table(runner_tasks.routing_task(
            runner_tasks.routing_payload(topo, policy, seed, max_vcs, time_limit)
        ))
        table.topology.name = topo.name
        table.topology.link_class = topo.link_class

    if use_cache:
        _table_cache[key] = table
    return table


def routed_entry(entry: Entry, seed: int = 0, runner=None) -> RoutingTable:
    return routed_table(entry.topology, entry.policy, seed=seed, runner=runner)


def routed_entries(
    entries: List[Entry], seed: int = 0, runner=None
) -> List[RoutingTable]:
    """Compile a whole roster's tables at once.

    With a runner the MCLB/NDBT compilations fan across workers as
    ``routing`` tasks (and cache); without one this is the serial loop.
    The in-process memo is shared with :func:`routed_table` either way.
    """
    missing = [
        e for e in entries
        if _memo_key(e.topology, e.policy, seed) not in _table_cache
    ]
    if runner is not None and len(missing) > 1:
        from ..runner import RoutingJob

        tables = runner.tables([
            RoutingJob(topology=e.topology, policy=e.policy, seed=seed)
            for e in missing
        ])
        for e, table in zip(missing, tables):
            _table_cache[_memo_key(e.topology, e.policy, seed)] = table
    return [routed_entry(e, seed=seed, runner=runner) for e in entries]


# ---------------------------------------------------------------------------
# Named experiments (the ``repro run`` surface).
#
# Every entry routes its simulation work through a
# :class:`repro.runner.Runner`, so ``--parallel`` fans sim points and
# saturation searches across workers and the result cache makes reruns
# incremental.  Figure modules are imported lazily inside each runner
# function (they import this module at load time).
# ---------------------------------------------------------------------------

@dataclass
class ExperimentSpec:
    """One runnable experiment: how to produce it and how to print it."""

    name: str
    description: str
    run_fn: Callable  # (runner, fast, **kw) -> result
    summarize_fn: Callable  # result -> printable str

    def run(self, runner=None, fast: bool = True, **kwargs):
        return self.run_fn(runner, fast, **kwargs)

    def summarize(self, result) -> str:
        return self.summarize_fn(result)


def _run_table2(runner, fast, **kw):
    from .table2 import format_table, table2

    return format_table(table2(20, allow_generate=False, runner=runner), 20)


def _run_fig1(runner, fast, **kw):
    from .fig1 import fig1_points, pareto_front

    pts = fig1_points(20, allow_generate=False, runner=runner)
    front = sorted(p.name for p in pareto_front(pts))
    return {"points": len(pts), "pareto_front": front}


def _run_fig4(runner, fast, **kw):
    from .fig4 import fig4_render

    return fig4_render(20, allow_generate=False, runner=runner)


def _run_fig5(runner, fast, **kw):
    from .fig5 import fig5_curves

    return fig5_curves(time_limit=6.0 if fast else 20.0, runner=runner, **kw)


def _summarize_fig5(res):
    lines = ["Fig. 5 (solver objective-bounds gap, reduced instance):"]
    for label, curve in res.curves.items():
        t10 = curve.time_to_gap(0.10)
        lines.append(
            f"  {label:<8} final gap {curve.final_gap():.4f}  "
            f"time-to-10%: {'-' if t10 is None else f'{t10:.2f}s'}"
        )
    lines.append(f"convergence order: {res.convergence_order()}")
    return "\n".join(lines)


def _run_fig9(runner, fast, **kw):
    from .fig9 import fig9_rows

    return fig9_rows(allow_generate=False, runner=runner, **kw)


def _summarize_fig9(rows):
    from .fig9 import ns_large_vs_small_dynamic

    lines = ["Fig. 9 (power/area vs mesh, normalized):"]
    lines += [
        f"  {r.name:<18} static {r.normalized['static_power']:.2f} "
        f"dynamic {r.normalized['dynamic_power']:.2f} "
        f"wire area {r.normalized['wire_area']:.2f}"
        for r in rows
    ]
    lines.append(
        f"NS large/small dynamic ratio: {ns_large_vs_small_dynamic(rows):.2f} "
        "(paper ~0.83)"
    )
    return "\n".join(lines)


def _fig6_budget(fast):
    return {"warmup": 250 if fast else 400, "measure": 800 if fast else 1500}


def _run_fig6(kind):
    def run(runner, fast, **kw):
        from .fig6 import fig6_curves

        return fig6_curves(
            kind, allow_generate=False, runner=runner, **_fig6_budget(fast), **kw
        )

    return run


def _summarize_fig6(res):
    lines = [f"Fig. 6 ({res.traffic}) saturation ranking (packets/node/ns):"]
    lines += [f"  {name:<18} {sat:.3f}" for name, sat in res.saturation_ranking()]
    return "\n".join(lines)


def _run_fig7(runner, fast, **kw):
    from .fig7 import fig7_bars

    return fig7_bars(
        "large", allow_generate=False, runner=runner,
        warmup=200 if fast else 300, measure=600 if fast else 1000, **kw,
    )


def _summarize_fig7(bars):
    from .fig7 import mclb_gain_summary

    lines = ["Fig. 7 (large class) measured saturation / bounds:"]
    lines += [
        f"  {b.topology:<16} {b.routing:<5} {b.measured_saturation:.3f} "
        f"(cut {b.cut_bound:.3f}, occ {b.occupancy_bound:.3f})"
        for b in bars
    ]
    gains = mclb_gain_summary(bars)
    lines.append(f"MCLB/NDBT gains: { {k: round(v, 2) for k, v in gains.items()} }")
    return "\n".join(lines)


#: The reduced-budget Fig. 8 configuration, shared verbatim by the
#: ``fig8`` experiment and the report's full-system section so both hit
#: the same cached ``closed_loop`` results.
FIG8_FAST_WORKLOADS = ("blackscholes", "ferret", "streamcluster", "canneal")


def fig8_budget(fast):
    return {"warmup": 300, "measure": 1000 if fast else 2000}


def _run_fig8(runner, fast, **kw):
    from ..fullsys.workloads import PARSEC
    from .fig8 import fig8_results

    workloads = (
        [w for w in PARSEC if w.name in FIG8_FAST_WORKLOADS] if fast else None
    )
    return fig8_results(
        workloads=workloads, allow_generate=False, runner=runner,
        max_entries_per_class=3, **fig8_budget(fast), **kw,
    )


def _summarize_fig8(res):
    lines = ["Fig. 8 (PARSEC closed loop) geomean speedup vs mesh:"]
    lines += [
        f"  {name:<18} {v:.3f}"
        for name, v in sorted(res.geomean.items(), key=lambda kv: -kv[1])
    ]
    lines.append(f"best topology: {res.best_topology()}")
    return "\n".join(lines)


def _run_fig10(runner, fast, **kw):
    from .fig10 import fig10_curves

    return fig10_curves(
        allow_generate=False, runner=runner,
        warmup=250 if fast else 400, measure=800 if fast else 1500, **kw,
    )


def _summarize_fig10(res):
    lines = ["Fig. 10 (shuffle traffic) saturation (packets/node/ns):"]
    for name, curve in sorted(
        res.curves.items(), key=lambda kv: -kv[1].saturation_throughput_ns
    ):
        lines.append(f"  {name:<18} {curve.saturation_throughput_ns:.3f}")
    return "\n".join(lines)


def _run_fig11(runner, fast, **kw):
    from .fig11 import fig11_points

    return fig11_points(
        allow_generate=False, runner=runner,
        warmup=200 if fast else 300, measure=600 if fast else 1000, **kw,
    )


def _summarize_fig11(res):
    lines = ["Fig. 11 (48 routers) saturation (packets/node/ns):"]
    lines += [
        f"  {p.link_class:<7} {p.name:<18} {p.saturation_packets_node_ns:.3f}"
        for p in res.points
    ]
    for cls in ("small", "medium", "large"):
        lines.append(f"NS gain ({cls}): {res.ns_gain(cls):.2f}x")
    return "\n".join(lines)


def _run_report(runner, fast, **kw):
    from .report import generate_report

    return generate_report(fast=fast, runner=runner, **kw)


def _run_robustness(runner, fast, **kw):
    from .robustness import robustness_grid

    return robustness_grid(runner=runner, fast=fast, **kw)


def _summarize_robustness(res):
    return res.format_table()


def _run_recovery(runner, fast, **kw):
    from .recovery import recovery_grid

    return recovery_grid(runner=runner, fast=fast, **kw)


def _summarize_recovery(res):
    return res.format_table()


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            "table2", "Table II topology metrics at 20 routers",
            _run_table2, str,
        ),
        ExperimentSpec(
            "fig1", "latency vs saturation-throughput frontier",
            _run_fig1,
            lambda r: f"Pareto frontier: {r['pareto_front']} ({r['points']} points)",
        ),
        ExperimentSpec(
            "fig4", "example LatOp topology with its sparsest cut",
            _run_fig4, lambda r: r.rendering,
        ),
        ExperimentSpec(
            "fig5", "solver progress: objective-bounds gap vs time",
            _run_fig5, _summarize_fig5,
        ),
        ExperimentSpec(
            "fig9", "NoI power/area relative to mesh",
            _run_fig9, _summarize_fig9,
        ),
        ExperimentSpec(
            "fig6-coherence", "synthetic uniform-random traffic sweeps",
            _run_fig6("coherence"), _summarize_fig6,
        ),
        ExperimentSpec(
            "fig6-memory", "memory (MC hot-spot) traffic sweeps",
            _run_fig6("memory"), _summarize_fig6,
        ),
        ExperimentSpec(
            "fig7", "topology-vs-routing isolation, large class",
            _run_fig7, _summarize_fig7,
        ),
        ExperimentSpec(
            "fig8", "full-system PARSEC closed-loop speedups vs mesh",
            _run_fig8, _summarize_fig8,
        ),
        ExperimentSpec(
            "fig10", "shuffle traffic incl. NS-ShufOpt",
            _run_fig10, _summarize_fig10,
        ),
        ExperimentSpec(
            "fig11", "48-router scalability saturation search",
            _run_fig11, _summarize_fig11,
        ),
        ExperimentSpec(
            "robustness",
            "fault x traffic scenario grid: worst-case degradation ranking",
            _run_robustness, _summarize_robustness,
        ),
        ExperimentSpec(
            "recovery",
            "closed-loop fault flaps: time-to-drain / latency settling",
            _run_recovery, _summarize_recovery,
        ),
        ExperimentSpec(
            "report", "full generated experiment report (EXPERIMENTS.md body)",
            _run_report, str,
        ),
    )
}


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def list_experiments() -> List[Tuple[str, str]]:
    return [(s.name, s.description) for s in EXPERIMENTS.values()]
