"""Cycle-driven NoI network simulator (the HeteroGarnet substitute).

Models an input-queued, virtual-channel, virtual-cut-through network:

* each directed link is a physical channel with 1 flit/cycle capacity; a
  packet of ``k`` flits occupies its channel for ``k`` cycles
  (serialization) and then lands in the downstream per-VC input buffer
  after the router pipeline (2 cycles) plus link traversal (1 cycle);
* per-(channel, VC) input buffers have finite flit capacity; a packet
  only advances when its *entire* size fits downstream (virtual
  cut-through), producing the same backpressure-driven saturation
  behaviour as credit-based wormhole at far lower simulation cost;
* VC selection is static per flow from the deadlock-free assignment
  (:mod:`repro.routing.vc_alloc`), so per-VC channel dependency graphs
  stay acyclic and the simulated network cannot deadlock;
* output arbitration is round-robin among requesting input queues;
* injection and ejection are modeled as explicit serialized ports, so
  local port bottlenecks (paper II-D) are present but provisioned
  per-router as the paper assumes.

The simulator reports average packet latency (cycles) and accepted
throughput; :mod:`repro.sim.sweep` converts these into the paper's
latency-vs-throughput curves with per-class clock scaling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from .packet import Packet
from .traffic import TrafficPattern

Channel = Tuple[int, int]

ROUTER_LATENCY = 2  # cycles per router pipeline (Table IV)
LINK_LATENCY = 1  # cycles per link traversal
DEFAULT_VC_BUFFER_FLITS = 18  # two data packets per VC buffer


@dataclass
class SimStats:
    """Measurement-window statistics."""

    cycles: int
    offered_packets: int
    ejected_packets: int
    ejected_flits: int
    latency_sum: float
    latency_count: int
    n_nodes: int
    #: Packets lost during the window: generated for flows the current
    #: (fault-degraded) table cannot route, or dropped at a fault epoch
    #: (in transit on a dying link, or stranded by re-routing).  Always
    #: 0 without a fault schedule.
    lost_packets: int = 0

    @property
    def avg_latency_cycles(self) -> float:
        if self.latency_count == 0:
            return float("nan")
        return self.latency_sum / self.latency_count

    @property
    def delivered_fraction(self) -> float:
        """Ejected / offered over the window (1.0 when nothing offered).

        The degraded-delivery metric of fault scenarios.  Warmup-born
        packets draining through the window can push this slightly above
        1 near zero load; fault losses pull it below.
        """
        if self.offered_packets == 0:
            return 1.0
        return self.ejected_packets / self.offered_packets

    @property
    def throughput_packets_node_cycle(self) -> float:
        return self.ejected_packets / (self.n_nodes * self.cycles)

    @property
    def throughput_flits_node_cycle(self) -> float:
        return self.ejected_flits / (self.n_nodes * self.cycles)

    @property
    def offered_packets_node_cycle(self) -> float:
        return self.offered_packets / (self.n_nodes * self.cycles)

    @property
    def deliverable_packets_node_cycle(self) -> float:
        """Offered load minus fault losses, per node per cycle.

        The acceptance baseline for saturation classification: packets a
        fault destroyed (unroutable flows, epoch-swap drops) can never be
        accepted, so counting them against the network would misread
        fault loss as congestion.  Equals the offered rate when
        fault-free (``lost_packets`` is 0).
        """
        return (self.offered_packets - self.lost_packets) / (
            self.n_nodes * self.cycles
        )


class NetworkSimulator:
    """One simulation instance bound to a routing table and traffic."""

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        injection_rate: float,
        seed: int = 0,
        vc_buffer_flits: int = DEFAULT_VC_BUFFER_FLITS,
        router_latency: int = ROUTER_LATENCY,
        link_latency: int = LINK_LATENCY,
        extra_hop_latency: int = 0,
        faults=None,
    ):
        # Fault mode swaps in the timeline's (possibly VC-padded) base
        # table before any sizing happens; `faults=None` leaves the
        # pristine path untouched.
        self._timeline = None
        self._epoch_i = 0
        self._faulty = faults is not None
        if faults is not None:
            from ..faults.timeline import FaultTimeline

            self._timeline = FaultTimeline.for_table(table, faults)
            table = self._timeline.epochs[0].table
        self.table = table
        self.topo = table.topology
        self.traffic = traffic
        self.rate = float(injection_rate)
        self.rng = np.random.default_rng(seed)
        self.vc_cap = vc_buffer_flits
        self.hop_delay = router_latency + link_latency + extra_hop_latency
        self.num_vcs = table.num_vcs

        n = self.topo.n
        self.n = n
        # physical channels: directed links plus one injection pseudo-channel
        # per router (key (-1, r)); ejection handled by per-router port.
        self.channels: List[Channel] = list(self.topo.directed_links)
        self.inputs_of: Dict[int, List[Channel]] = {
            r: [(-1, r)] for r in range(n)
        }
        for (u, v) in self.channels:
            self.inputs_of[v].append((u, v))

        all_queues = self.channels + [(-1, r) for r in range(n)]
        self.queues: Dict[Channel, List[Deque[Tuple[int, Packet]]]] = {
            c: [deque() for _ in range(self.num_vcs)] for c in all_queues
        }
        self.free_flits: Dict[Channel, List[int]] = {
            c: [self.vc_cap] * self.num_vcs for c in all_queues
        }
        self.busy_until: Dict[Channel, int] = {c: 0 for c in self.channels}
        self.rr: Dict[Channel, int] = {c: 0 for c in self.channels}
        self.inj_busy = [0] * n
        self.ej_busy = [0] * n
        self.ej_rr = [0] * n
        self.source_q: List[Deque[Packet]] = [deque() for _ in range(n)]

        self._pid = 0
        self.cycle = 0
        # Grant-site observer: called as cb(out_channel, pkt) whenever a
        # packet wins output arbitration.  ``None`` (the default) keeps
        # the hot path free of instrumentation cost.
        self._grant_cb = None
        # measurement state
        self.measuring = False
        self.measure_start = 0
        self.offered = 0
        self.ejected = 0
        self.ejected_flits = 0
        self.lat_sum = 0.0
        self.lat_count = 0
        self.lost = 0
        self.in_flight = 0
        # Bursty modulation: a dedicated gate chain scales the per-cycle
        # Bernoulli threshold; the packet-draw stream is untouched.
        self._burst = (
            traffic.burst.state(self.n) if traffic.burst is not None else None
        )

    # -- injection ------------------------------------------------------------
    def _generate(self) -> None:
        lam = self.rate
        if lam <= 0:
            return
        draws = self.rng.random(self.n)
        gates = self._burst.row(self.cycle) if self._burst is not None else None
        flow_vc = self.table.flow_vc
        for node in range(self.n):
            # Bernoulli per cycle; rates above 1.0 inject multiple packets.
            eff = lam if gates is None else lam * gates[node]
            count = int(eff) + (1 if draws[node] < eff - int(eff) else 0)
            for _ in range(count):
                dst = self.traffic.destination(node, self.rng)
                size = self.traffic.packet_size(self.rng)
                if self._faulty and (node, dst) not in flow_vc:
                    # The degraded table cannot route this flow: the
                    # packet is offered (all its draws were made, so the
                    # RNG stream matches the pristine run) but lost.
                    if self.measuring:
                        self.offered += 1
                        self.lost += 1
                    continue
                pkt = Packet(
                    pid=self._pid,
                    src=node,
                    dst=dst,
                    size_flits=size,
                    birth_cycle=self.cycle,
                    vc=self.table.vc(node, dst),
                    is_data=size > 1,
                )
                self._pid += 1
                self.source_q[node].append(pkt)
                self.in_flight += 1
                if self.measuring:
                    self.offered += 1

    def _inject(self) -> None:
        for node in range(self.n):
            if self.inj_busy[node] > self.cycle or not self.source_q[node]:
                continue
            pkt = self.source_q[node][0]
            inj = (-1, node)
            if self.free_flits[inj][pkt.vc] < pkt.size_flits:
                continue
            self.source_q[node].popleft()
            self.free_flits[inj][pkt.vc] -= pkt.size_flits
            self.inj_busy[node] = self.cycle + pkt.size_flits
            self.queues[inj][pkt.vc].append((self.cycle + pkt.size_flits, pkt))

    # -- switching -------------------------------------------------------------
    def _arbitrate_router(self, u: int) -> None:
        # Collect ready head packets per requested output.
        requests: Dict[Optional[int], List[Tuple[Channel, int]]] = {}
        for in_ch in self.inputs_of[u]:
            qs = self.queues[in_ch]
            for vc in range(self.num_vcs):
                q = qs[vc]
                if not q:
                    continue
                ready, pkt = q[0]
                if ready > self.cycle:
                    continue
                if pkt.dst == u:
                    requests.setdefault(None, []).append((in_ch, vc))
                else:
                    v = self.table.hop(u, pkt.src, pkt.dst)
                    requests.setdefault(v, []).append((in_ch, vc))

        for v, reqs in requests.items():
            if v is None:
                self._eject(u, reqs)
                continue
            out = (u, v)
            if self.busy_until[out] > self.cycle:
                continue
            # round-robin among requestors, skipping those blocked downstream
            start = self.rr[out] % len(reqs)
            for k in range(len(reqs)):
                in_ch, vc = reqs[(start + k) % len(reqs)]
                _, pkt = self.queues[in_ch][vc][0]
                if self.free_flits[out][pkt.vc] < pkt.size_flits:
                    continue
                self.queues[in_ch][vc].popleft()
                self.free_flits[in_ch][vc] += pkt.size_flits
                self.free_flits[out][pkt.vc] -= pkt.size_flits
                done = self.cycle + pkt.size_flits
                self.busy_until[out] = done
                self.queues[out][pkt.vc].append((done + self.hop_delay, pkt))
                self.rr[out] = (start + k + 1) % len(reqs)
                if self._grant_cb is not None:
                    self._grant_cb(out, pkt)
                break

    def _eject(self, u: int, reqs: List[Tuple[Channel, int]]) -> None:
        if self.ej_busy[u] > self.cycle:
            return
        start = self.ej_rr[u] % len(reqs)
        in_ch, vc = reqs[start]
        _, pkt = self.queues[in_ch][vc].popleft()
        self.free_flits[in_ch][vc] += pkt.size_flits
        self.ej_busy[u] = self.cycle + pkt.size_flits
        self.ej_rr[u] = start + 1
        self.in_flight -= 1
        if self.measuring:
            # Accepted throughput counts every packet delivered during the
            # measurement window, including warmup-born packets draining
            # through it — otherwise throughput is understated near
            # saturation (where transit times stretch past the window
            # boundary) and the acceptance-floor test flags too early.
            self.ejected += 1
            self.ejected_flits += pkt.size_flits
            if pkt.birth_cycle >= self.measure_start:
                # Latency is still sampled only for packets born inside
                # the window: a warmup-born packet's age is not a
                # steady-state latency observation.
                self.lat_sum += pkt.latency(self.cycle + pkt.size_flits)
                self.lat_count += 1
        self._on_eject(pkt)

    def _on_eject(self, pkt: Packet) -> None:
        """Hook for closed-loop extensions (full-system model)."""

    #: When a closed-loop subclass sets this to a list around an epoch
    #: swap, ``_apply_epoch`` appends every dropped packet to it instead
    #: of losing them silently — the retry path re-arms their
    #: transactions.  ``None`` (open loop) keeps the drop-and-count
    #: behavior.
    _drop_log = None

    # -- fault epochs ---------------------------------------------------------
    def _apply_epoch(self, epoch) -> None:
        """Swap in a fault epoch's table at the start of its cycle.

        The canonical walk (link channels in topology order, then
        injection channels by router, VCs ascending, FIFO within each)
        drops packets the new network cannot carry and re-keys the
        survivors to the flow (current router, dst); both engines
        implement this identical contract, so stats stay bit-equal.
        Buffer credits are recomputed from surviving occupancy; port and
        link timers keep running across the swap.
        """
        new_table = epoch.table
        flow_vc = new_table.flow_vc
        dead_links = epoch.dead_links
        dead_routers = epoch.dead_routers
        cycle = self.cycle
        V = self.num_vcs
        dropped = 0
        drop_log = self._drop_log

        all_queues = self.channels + [(-1, r) for r in range(self.n)]
        for ch in all_queues:
            qs = self.queues[ch]
            cur = ch[1]  # downstream router (== the router, for injection)
            link_dead = ch[0] >= 0 and ch in dead_links
            ch_dead = cur in dead_routers
            per_vc: List[List[Tuple[int, Packet]]] = [[] for _ in range(V)]
            for vc in range(V):
                for ready, pkt in qs[vc]:
                    if (
                        ch_dead
                        or (link_dead and ready > cycle)
                        or (cur != pkt.dst and (cur, pkt.dst) not in flow_vc)
                    ):
                        dropped += 1
                        if drop_log is not None:
                            drop_log.append(pkt)
                        continue
                    pkt.src = cur
                    if cur != pkt.dst:
                        pkt.vc = flow_vc[(cur, pkt.dst)]
                    per_vc[pkt.vc].append((ready, pkt))
            for vc in range(V):
                qs[vc] = deque(per_vc[vc])

        for c in all_queues:
            ff = self.free_flits[c]
            for vc in range(V):
                ff[vc] = self.vc_cap - sum(
                    p.size_flits for _, p in self.queues[c][vc]
                )

        for node in range(self.n):
            sq = self.source_q[node]
            if not sq:
                continue
            keep: Deque[Packet] = deque()
            for pkt in sq:
                if node in dead_routers or (
                    node != pkt.dst and (node, pkt.dst) not in flow_vc
                ):
                    dropped += 1
                    if drop_log is not None:
                        drop_log.append(pkt)
                    continue
                if node != pkt.dst:
                    pkt.vc = flow_vc[(node, pkt.dst)]
                keep.append(pkt)
            self.source_q[node] = keep

        self.in_flight -= dropped
        if self.measuring:
            self.lost += dropped
        self.table = new_table

    # -- main loop ----------------------------------------------------------------
    def step(self) -> None:
        tl = self._timeline
        if tl is not None:
            while (
                self._epoch_i + 1 < len(tl.epochs)
                and tl.epochs[self._epoch_i + 1].start <= self.cycle
            ):
                self._epoch_i += 1
                self._apply_epoch(tl.epochs[self._epoch_i])
        self._generate()
        self._inject()
        for u in range(self.n):
            self._arbitrate_router(u)
        self.cycle += 1

    def run(self, warmup: int, measure: int) -> SimStats:
        """Warm up, then measure for ``measure`` cycles."""
        for _ in range(warmup):
            self.step()
        self.measuring = True
        self.measure_start = self.cycle
        for _ in range(measure):
            self.step()
        self.measuring = False
        return SimStats(
            cycles=measure,
            offered_packets=self.offered,
            ejected_packets=self.ejected,
            ejected_flits=self.ejected_flits,
            latency_sum=self.lat_sum,
            latency_count=self.lat_count,
            n_nodes=self.n,
            lost_packets=self.lost,
        )
