"""Cycle-driven NoI network simulator (the HeteroGarnet substitute).

Models an input-queued, virtual-channel, virtual-cut-through network:

* each directed link is a physical channel with 1 flit/cycle capacity; a
  packet of ``k`` flits occupies its channel for ``k`` cycles
  (serialization) and then lands in the downstream per-VC input buffer
  after the router pipeline (2 cycles) plus link traversal (1 cycle);
* per-(channel, VC) input buffers have finite flit capacity; a packet
  only advances when its *entire* size fits downstream (virtual
  cut-through), producing the same backpressure-driven saturation
  behaviour as credit-based wormhole at far lower simulation cost;
* VC selection is static per flow from the deadlock-free assignment
  (:mod:`repro.routing.vc_alloc`), so per-VC channel dependency graphs
  stay acyclic and the simulated network cannot deadlock;
* output arbitration is round-robin among requesting input queues;
* injection and ejection are modeled as explicit serialized ports, so
  local port bottlenecks (paper II-D) are present but provisioned
  per-router as the paper assumes.

The simulator reports average packet latency (cycles) and accepted
throughput; :mod:`repro.sim.sweep` converts these into the paper's
latency-vs-throughput curves with per-class clock scaling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from .packet import Packet
from .traffic import TrafficPattern

Channel = Tuple[int, int]

ROUTER_LATENCY = 2  # cycles per router pipeline (Table IV)
LINK_LATENCY = 1  # cycles per link traversal
DEFAULT_VC_BUFFER_FLITS = 18  # two data packets per VC buffer


@dataclass
class SimStats:
    """Measurement-window statistics."""

    cycles: int
    offered_packets: int
    ejected_packets: int
    ejected_flits: int
    latency_sum: float
    latency_count: int
    n_nodes: int

    @property
    def avg_latency_cycles(self) -> float:
        if self.latency_count == 0:
            return float("nan")
        return self.latency_sum / self.latency_count

    @property
    def throughput_packets_node_cycle(self) -> float:
        return self.ejected_packets / (self.n_nodes * self.cycles)

    @property
    def throughput_flits_node_cycle(self) -> float:
        return self.ejected_flits / (self.n_nodes * self.cycles)

    @property
    def offered_packets_node_cycle(self) -> float:
        return self.offered_packets / (self.n_nodes * self.cycles)


class NetworkSimulator:
    """One simulation instance bound to a routing table and traffic."""

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        injection_rate: float,
        seed: int = 0,
        vc_buffer_flits: int = DEFAULT_VC_BUFFER_FLITS,
        router_latency: int = ROUTER_LATENCY,
        link_latency: int = LINK_LATENCY,
        extra_hop_latency: int = 0,
    ):
        self.table = table
        self.topo = table.topology
        self.traffic = traffic
        self.rate = float(injection_rate)
        self.rng = np.random.default_rng(seed)
        self.vc_cap = vc_buffer_flits
        self.hop_delay = router_latency + link_latency + extra_hop_latency
        self.num_vcs = table.num_vcs

        n = self.topo.n
        self.n = n
        # physical channels: directed links plus one injection pseudo-channel
        # per router (key (-1, r)); ejection handled by per-router port.
        self.channels: List[Channel] = list(self.topo.directed_links)
        self.inputs_of: Dict[int, List[Channel]] = {
            r: [(-1, r)] for r in range(n)
        }
        for (u, v) in self.channels:
            self.inputs_of[v].append((u, v))

        all_queues = self.channels + [(-1, r) for r in range(n)]
        self.queues: Dict[Channel, List[Deque[Tuple[int, Packet]]]] = {
            c: [deque() for _ in range(self.num_vcs)] for c in all_queues
        }
        self.free_flits: Dict[Channel, List[int]] = {
            c: [self.vc_cap] * self.num_vcs for c in all_queues
        }
        self.busy_until: Dict[Channel, int] = {c: 0 for c in self.channels}
        self.rr: Dict[Channel, int] = {c: 0 for c in self.channels}
        self.inj_busy = [0] * n
        self.ej_busy = [0] * n
        self.ej_rr = [0] * n
        self.source_q: List[Deque[Packet]] = [deque() for _ in range(n)]

        self._pid = 0
        self.cycle = 0
        # Grant-site observer: called as cb(out_channel, pkt) whenever a
        # packet wins output arbitration.  ``None`` (the default) keeps
        # the hot path free of instrumentation cost.
        self._grant_cb = None
        # measurement state
        self.measuring = False
        self.measure_start = 0
        self.offered = 0
        self.ejected = 0
        self.ejected_flits = 0
        self.lat_sum = 0.0
        self.lat_count = 0
        self.in_flight = 0

    # -- injection ------------------------------------------------------------
    def _generate(self) -> None:
        lam = self.rate
        if lam <= 0:
            return
        draws = self.rng.random(self.n)
        for node in range(self.n):
            # Bernoulli per cycle; rates above 1.0 inject multiple packets.
            count = int(lam) + (1 if draws[node] < lam - int(lam) else 0)
            for _ in range(count):
                dst = self.traffic.destination(node, self.rng)
                size = self.traffic.packet_size(self.rng)
                pkt = Packet(
                    pid=self._pid,
                    src=node,
                    dst=dst,
                    size_flits=size,
                    birth_cycle=self.cycle,
                    vc=self.table.vc(node, dst),
                    is_data=size > 1,
                )
                self._pid += 1
                self.source_q[node].append(pkt)
                self.in_flight += 1
                if self.measuring:
                    self.offered += 1

    def _inject(self) -> None:
        for node in range(self.n):
            if self.inj_busy[node] > self.cycle or not self.source_q[node]:
                continue
            pkt = self.source_q[node][0]
            inj = (-1, node)
            if self.free_flits[inj][pkt.vc] < pkt.size_flits:
                continue
            self.source_q[node].popleft()
            self.free_flits[inj][pkt.vc] -= pkt.size_flits
            self.inj_busy[node] = self.cycle + pkt.size_flits
            self.queues[inj][pkt.vc].append((self.cycle + pkt.size_flits, pkt))

    # -- switching -------------------------------------------------------------
    def _arbitrate_router(self, u: int) -> None:
        # Collect ready head packets per requested output.
        requests: Dict[Optional[int], List[Tuple[Channel, int]]] = {}
        for in_ch in self.inputs_of[u]:
            qs = self.queues[in_ch]
            for vc in range(self.num_vcs):
                q = qs[vc]
                if not q:
                    continue
                ready, pkt = q[0]
                if ready > self.cycle:
                    continue
                if pkt.dst == u:
                    requests.setdefault(None, []).append((in_ch, vc))
                else:
                    v = self.table.hop(u, pkt.src, pkt.dst)
                    requests.setdefault(v, []).append((in_ch, vc))

        for v, reqs in requests.items():
            if v is None:
                self._eject(u, reqs)
                continue
            out = (u, v)
            if self.busy_until[out] > self.cycle:
                continue
            # round-robin among requestors, skipping those blocked downstream
            start = self.rr[out] % len(reqs)
            for k in range(len(reqs)):
                in_ch, vc = reqs[(start + k) % len(reqs)]
                _, pkt = self.queues[in_ch][vc][0]
                if self.free_flits[out][pkt.vc] < pkt.size_flits:
                    continue
                self.queues[in_ch][vc].popleft()
                self.free_flits[in_ch][vc] += pkt.size_flits
                self.free_flits[out][pkt.vc] -= pkt.size_flits
                done = self.cycle + pkt.size_flits
                self.busy_until[out] = done
                self.queues[out][pkt.vc].append((done + self.hop_delay, pkt))
                self.rr[out] = (start + k + 1) % len(reqs)
                if self._grant_cb is not None:
                    self._grant_cb(out, pkt)
                break

    def _eject(self, u: int, reqs: List[Tuple[Channel, int]]) -> None:
        if self.ej_busy[u] > self.cycle:
            return
        start = self.ej_rr[u] % len(reqs)
        in_ch, vc = reqs[start]
        _, pkt = self.queues[in_ch][vc].popleft()
        self.free_flits[in_ch][vc] += pkt.size_flits
        self.ej_busy[u] = self.cycle + pkt.size_flits
        self.ej_rr[u] = start + 1
        self.in_flight -= 1
        if self.measuring:
            # Accepted throughput counts every packet delivered during the
            # measurement window, including warmup-born packets draining
            # through it — otherwise throughput is understated near
            # saturation (where transit times stretch past the window
            # boundary) and the acceptance-floor test flags too early.
            self.ejected += 1
            self.ejected_flits += pkt.size_flits
            if pkt.birth_cycle >= self.measure_start:
                # Latency is still sampled only for packets born inside
                # the window: a warmup-born packet's age is not a
                # steady-state latency observation.
                self.lat_sum += pkt.latency(self.cycle + pkt.size_flits)
                self.lat_count += 1
        self._on_eject(pkt)

    def _on_eject(self, pkt: Packet) -> None:
        """Hook for closed-loop extensions (full-system model)."""

    # -- main loop ----------------------------------------------------------------
    def step(self) -> None:
        self._generate()
        self._inject()
        for u in range(self.n):
            self._arbitrate_router(u)
        self.cycle += 1

    def run(self, warmup: int, measure: int) -> SimStats:
        """Warm up, then measure for ``measure`` cycles."""
        for _ in range(warmup):
            self.step()
        self.measuring = True
        self.measure_start = self.cycle
        for _ in range(measure):
            self.step()
        self.measuring = False
        return SimStats(
            cycles=measure,
            offered_packets=self.offered,
            ejected_packets=self.ejected,
            ejected_flits=self.ejected_flits,
            latency_sum=self.lat_sum,
            latency_count=self.lat_count,
            n_nodes=self.n,
        )
