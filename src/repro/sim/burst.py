"""Markov-modulated bursty traffic: on/off gates over any pattern.

A :class:`BurstSpec` attaches a two-state Markov chain (per node, or one
global chain) to a :class:`~repro.sim.traffic.TrafficPattern`.  Each
cycle every node is ON or OFF; the node's *effective* injection rate is
``rate * on_scale`` while ON and ``rate * off_scale`` while OFF.  By
default ``on_scale`` is normalized so the stationary mean effective rate
equals the nominal rate — a bursty pattern and its stationary twin are
directly comparable on the same sweep axis.

Two chain kinds:

* ``"mmpp"`` — independent per-node chains (the classic Markov-modulated
  on/off source): nodes burst out of phase, stressing transient queue
  build-up;
* ``"storm"`` — one global chain shared by every node: all sources surge
  together (combine with a hotspot pattern for an incast storm);
* ``"lrd"`` — independent per-node on/off sources with truncated-Pareto
  sojourn times (shape ``alpha``): the aggregate is long-range-dependent
  / self-similar traffic in the Willinger on/off sense, with burst
  lengths spanning orders of magnitude instead of the geometric
  sojourns of ``"mmpp"``.  ``p_on``/``p_off`` keep their meaning as
  reciprocal mean sojourn lengths (mean OFF sojourn ``1/p_on``, mean ON
  sojourn ``1/p_off``), so ``duty = p_on / (p_on + p_off)`` and the
  mean-preserving ``on_scale`` normalization carry over unchanged.  The
  Pareto scale is solved numerically so the *discrete truncated* sojourn
  mean hits its target exactly (truncation keeps single sojourns from
  swallowing a whole run).

The gate draws come from a *dedicated* RNG seeded by the spec — never
from the simulation's packet-draw stream.  Only the per-(cycle, node)
Bernoulli threshold changes; the reference engine, the fast engine's
inline path, and :class:`~repro.sim.trace.TraceStream` all consume the
identical gate sequence, so bursty runs stay bit-identical across
engines exactly like stationary ones.

All chains start OFF at cycle 0, so a short run's realized mean sits
slightly below nominal; the stationary mean matches (tests pin it over
long horizons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

BURST_KINDS = ("mmpp", "storm", "lrd")


def _pareto_xm(mean: float, alpha: float, trunc: int) -> float:
    """Scale ``xm`` so the discrete truncated-Pareto sojourn hits ``mean``.

    A sojourn is ``S = ceil(min(xm * (1 - U)**(-1/alpha), trunc))`` for
    ``U ~ Uniform[0, 1)``; its exact mean is ``1 + sum_{k=1}^{trunc-1}
    min(1, (xm/k)**alpha)``, strictly increasing in ``xm`` — solved by
    bisection.  Means at or below 1 cycle degenerate to ``S == 1``.
    """
    if mean <= 1.0:
        return 0.0
    k = np.arange(1, trunc, dtype=np.float64)

    def expected(xm: float) -> float:
        return 1.0 + float(np.minimum(1.0, (xm / k) ** alpha).sum())

    lo, hi = 0.0, float(trunc)
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if expected(mid) < mean:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class BurstSpec:
    """Pure-data description of an on/off modulation chain.

    ``p_on`` is the per-cycle OFF->ON transition probability, ``p_off``
    the ON->OFF one (for ``"lrd"``, the reciprocal mean OFF/ON sojourn
    lengths).  ``on_scale=None`` (the default) resolves to the
    mean-preserving value ``(1 - (1 - duty) * off_scale) / duty`` where
    ``duty = p_on / (p_on + p_off)`` is the stationary ON fraction.
    ``alpha`` is the Pareto tail shape, used by ``"lrd"`` only; it must
    exceed 1 there (finite mean sojourns).
    """

    kind: str
    p_on: float
    p_off: float
    on_scale: Optional[float] = None
    off_scale: float = 0.0
    seed: int = 0
    alpha: float = 1.5

    def __post_init__(self):
        if self.kind not in BURST_KINDS:
            raise ValueError(
                f"unknown burst kind {self.kind!r}: expected one of {BURST_KINDS}"
            )
        if not 0.0 < self.p_on <= 1.0 or not 0.0 < self.p_off <= 1.0:
            raise ValueError(
                f"burst transition probabilities must be in (0, 1], got "
                f"p_on={self.p_on!r} p_off={self.p_off!r}"
            )
        if self.off_scale < 0.0:
            raise ValueError(f"off_scale must be >= 0, got {self.off_scale!r}")
        if self.on_scale is not None and self.on_scale < 0.0:
            raise ValueError(f"on_scale must be >= 0, got {self.on_scale!r}")
        if self.kind == "lrd" and not self.alpha > 1.0:
            raise ValueError(
                f"lrd burst needs a Pareto shape alpha > 1 (finite mean "
                f"sojourns), got alpha={self.alpha!r}"
            )

    @property
    def duty_cycle(self) -> float:
        """Stationary ON probability of the chain."""
        return self.p_on / (self.p_on + self.p_off)

    @property
    def resolved_on_scale(self) -> float:
        if self.on_scale is not None:
            return float(self.on_scale)
        duty = self.duty_cycle
        return (1.0 - (1.0 - duty) * self.off_scale) / duty

    @property
    def max_scale(self) -> float:
        return max(self.resolved_on_scale, self.off_scale)

    # -- (de)serialization ---------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "p_on": self.p_on,
            "p_off": self.p_off,
            "on_scale": self.on_scale,
            "off_scale": self.off_scale,
            "seed": self.seed,
            "alpha": self.alpha,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BurstSpec":
        return cls(
            kind=str(d["kind"]),
            p_on=float(d["p_on"]),
            p_off=float(d["p_off"]),
            on_scale=None if d.get("on_scale") is None else float(d["on_scale"]),
            off_scale=float(d.get("off_scale", 0.0)),
            seed=int(d.get("seed", 0)),
            alpha=float(d.get("alpha", 1.5)),
        )

    def key(self) -> tuple:
        """Canonical hashable identity (memo keys, TrafficSpec fields)."""
        return (
            self.kind, self.p_on, self.p_off,
            self.on_scale, self.off_scale, self.seed, self.alpha,
        )

    def state(self, n_nodes: int) -> "BurstState":
        return BurstState(self, n_nodes)


class BurstState:
    """Deterministic replayable gate sequence for one (spec, n) pair.

    ``row(t)`` is the per-node rate-scale vector at cycle ``t``.  Rows
    are generated forward from cycle 0 and cached, so any consumer — the
    reference engine stepping cycle by cycle, a trace chunking thousands
    ahead, or a rebuilt trace resuming mid-run — reads the identical
    sequence from its own instance.
    """

    def __init__(self, spec: BurstSpec, n_nodes: int):
        self.spec = spec
        self.n = int(n_nodes)
        self.rng = np.random.default_rng(spec.seed)
        self._on_scale = spec.resolved_on_scale
        self._off_scale = spec.off_scale
        self._rows: List[np.ndarray] = []
        if spec.kind == "storm":
            self._on = False  # one global chain
        elif spec.kind == "lrd":
            # Per-node heavy-tailed on/off: precompute per-phase Pareto
            # scale + truncation, then draw every node's initial OFF
            # sojourn (chains start OFF like the Markov kinds).
            self._on = np.zeros(self.n, dtype=bool)
            mean_on = 1.0 / spec.p_off
            mean_off = 1.0 / spec.p_on
            self._t_on = max(64, int(np.ceil(50.0 * mean_on)))
            self._t_off = max(64, int(np.ceil(50.0 * mean_off)))
            self._xm_on = _pareto_xm(mean_on, spec.alpha, self._t_on)
            self._xm_off = _pareto_xm(mean_off, spec.alpha, self._t_off)
            u = self.rng.random(self.n)
            self._remain = self._sojourn(u, np.zeros(self.n, dtype=bool))
        else:
            self._on = np.zeros(self.n, dtype=bool)  # per-node chains

    def _sojourn(self, u: np.ndarray, now_on: np.ndarray) -> np.ndarray:
        """Truncated-Pareto sojourn lengths for nodes entering the given
        phase (``now_on`` per element), one uniform draw each."""
        inv = 1.0 / self.spec.alpha
        s_on = np.minimum(self._xm_on * (1.0 - u) ** (-inv), self._t_on)
        s_off = np.minimum(self._xm_off * (1.0 - u) ** (-inv), self._t_off)
        s = np.where(now_on, s_on, s_off)
        return np.maximum(np.ceil(s).astype(np.int64), 1)

    def _extend_to(self, t: int) -> None:
        spec = self.spec
        rng = self.rng
        rows = self._rows
        while len(rows) <= t:
            if spec.kind == "storm":
                scale = self._on_scale if self._on else self._off_scale
                rows.append(np.full(self.n, scale))
                u = rng.random()
                self._on = (u >= spec.p_off) if self._on else (u < spec.p_on)
            elif spec.kind == "lrd":
                rows.append(
                    np.where(self._on, self._on_scale, self._off_scale)
                )
                self._remain -= 1
                idx = np.flatnonzero(self._remain == 0)
                if idx.size:
                    now_on = ~self._on[idx]
                    self._on[idx] = now_on
                    u = rng.random(idx.size)
                    self._remain[idx] = self._sojourn(u, now_on)
            else:
                rows.append(
                    np.where(self._on, self._on_scale, self._off_scale)
                )
                u = rng.random(self.n)
                self._on = np.where(self._on, u >= spec.p_off, u < spec.p_on)

    def row(self, t: int) -> np.ndarray:
        """Per-node rate scales at cycle ``t`` (read-only)."""
        if len(self._rows) <= t:
            self._extend_to(t)
        return self._rows[t]

    def rows(self, t0: int, t1: int) -> np.ndarray:
        """The ``(t1 - t0, n)`` scale matrix for cycles ``[t0, t1)``."""
        if t1 <= t0:
            return np.empty((0, self.n))
        self._extend_to(t1 - 1)
        return np.stack(self._rows[t0:t1])


def parse_burst(text: str) -> BurstSpec:
    """Parse a CLI burst spec:
    ``KIND[:p_on,p_off[,on_scale[,off_scale[,seed[,alpha]]]]]``.

    ``on_scale`` accepts ``auto`` for the mean-preserving default.
    Examples: ``mmpp``, ``storm:0.1,0.3``, ``mmpp:0.2,0.2,2.5,0.1``,
    ``lrd:0.1,0.25,auto,0,0,1.4``.
    """
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    fields = [f.strip() for f in rest.split(",")] if rest else []
    try:
        p_on = float(fields[0]) if len(fields) > 0 else 0.2
        p_off = float(fields[1]) if len(fields) > 1 else 0.2
        on_scale = (
            None
            if len(fields) < 3 or fields[2] in ("", "auto")
            else float(fields[2])
        )
        off_scale = float(fields[3]) if len(fields) > 3 else 0.0
        seed = int(fields[4]) if len(fields) > 4 else 0
        alpha = float(fields[5]) if len(fields) > 5 else 1.5
    except (ValueError, IndexError) as exc:
        raise ValueError(f"malformed burst spec {text!r}: {exc}") from None
    return BurstSpec(
        kind=kind, p_on=p_on, p_off=p_off,
        on_scale=on_scale, off_scale=off_scale, seed=seed, alpha=alpha,
    )
