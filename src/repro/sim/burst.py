"""Markov-modulated bursty traffic: on/off gates over any pattern.

A :class:`BurstSpec` attaches a two-state Markov chain (per node, or one
global chain) to a :class:`~repro.sim.traffic.TrafficPattern`.  Each
cycle every node is ON or OFF; the node's *effective* injection rate is
``rate * on_scale`` while ON and ``rate * off_scale`` while OFF.  By
default ``on_scale`` is normalized so the stationary mean effective rate
equals the nominal rate — a bursty pattern and its stationary twin are
directly comparable on the same sweep axis.

Two chain kinds:

* ``"mmpp"`` — independent per-node chains (the classic Markov-modulated
  on/off source): nodes burst out of phase, stressing transient queue
  build-up;
* ``"storm"`` — one global chain shared by every node: all sources surge
  together (combine with a hotspot pattern for an incast storm).

The gate draws come from a *dedicated* RNG seeded by the spec — never
from the simulation's packet-draw stream.  Only the per-(cycle, node)
Bernoulli threshold changes; the reference engine, the fast engine's
inline path, and :class:`~repro.sim.trace.TraceStream` all consume the
identical gate sequence, so bursty runs stay bit-identical across
engines exactly like stationary ones.

All chains start OFF at cycle 0, so a short run's realized mean sits
slightly below nominal; the stationary mean matches (tests pin it over
long horizons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

BURST_KINDS = ("mmpp", "storm")


@dataclass(frozen=True)
class BurstSpec:
    """Pure-data description of an on/off modulation chain.

    ``p_on`` is the per-cycle OFF->ON transition probability, ``p_off``
    the ON->OFF one.  ``on_scale=None`` (the default) resolves to the
    mean-preserving value ``(1 - (1 - duty) * off_scale) / duty`` where
    ``duty = p_on / (p_on + p_off)`` is the stationary ON fraction.
    """

    kind: str
    p_on: float
    p_off: float
    on_scale: Optional[float] = None
    off_scale: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.kind not in BURST_KINDS:
            raise ValueError(
                f"unknown burst kind {self.kind!r}: expected one of {BURST_KINDS}"
            )
        if not 0.0 < self.p_on <= 1.0 or not 0.0 < self.p_off <= 1.0:
            raise ValueError(
                f"burst transition probabilities must be in (0, 1], got "
                f"p_on={self.p_on!r} p_off={self.p_off!r}"
            )
        if self.off_scale < 0.0:
            raise ValueError(f"off_scale must be >= 0, got {self.off_scale!r}")
        if self.on_scale is not None and self.on_scale < 0.0:
            raise ValueError(f"on_scale must be >= 0, got {self.on_scale!r}")

    @property
    def duty_cycle(self) -> float:
        """Stationary ON probability of the chain."""
        return self.p_on / (self.p_on + self.p_off)

    @property
    def resolved_on_scale(self) -> float:
        if self.on_scale is not None:
            return float(self.on_scale)
        duty = self.duty_cycle
        return (1.0 - (1.0 - duty) * self.off_scale) / duty

    @property
    def max_scale(self) -> float:
        return max(self.resolved_on_scale, self.off_scale)

    # -- (de)serialization ---------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "p_on": self.p_on,
            "p_off": self.p_off,
            "on_scale": self.on_scale,
            "off_scale": self.off_scale,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BurstSpec":
        return cls(
            kind=str(d["kind"]),
            p_on=float(d["p_on"]),
            p_off=float(d["p_off"]),
            on_scale=None if d.get("on_scale") is None else float(d["on_scale"]),
            off_scale=float(d.get("off_scale", 0.0)),
            seed=int(d.get("seed", 0)),
        )

    def key(self) -> tuple:
        """Canonical hashable identity (memo keys, TrafficSpec fields)."""
        return (
            self.kind, self.p_on, self.p_off,
            self.on_scale, self.off_scale, self.seed,
        )

    def state(self, n_nodes: int) -> "BurstState":
        return BurstState(self, n_nodes)


class BurstState:
    """Deterministic replayable gate sequence for one (spec, n) pair.

    ``row(t)`` is the per-node rate-scale vector at cycle ``t``.  Rows
    are generated forward from cycle 0 and cached, so any consumer — the
    reference engine stepping cycle by cycle, a trace chunking thousands
    ahead, or a rebuilt trace resuming mid-run — reads the identical
    sequence from its own instance.
    """

    def __init__(self, spec: BurstSpec, n_nodes: int):
        self.spec = spec
        self.n = int(n_nodes)
        self.rng = np.random.default_rng(spec.seed)
        self._on_scale = spec.resolved_on_scale
        self._off_scale = spec.off_scale
        self._rows: List[np.ndarray] = []
        if spec.kind == "storm":
            self._on = False  # one global chain
        else:
            self._on = np.zeros(self.n, dtype=bool)  # per-node chains

    def _extend_to(self, t: int) -> None:
        spec = self.spec
        rng = self.rng
        rows = self._rows
        while len(rows) <= t:
            if spec.kind == "storm":
                scale = self._on_scale if self._on else self._off_scale
                rows.append(np.full(self.n, scale))
                u = rng.random()
                self._on = (u >= spec.p_off) if self._on else (u < spec.p_on)
            else:
                rows.append(
                    np.where(self._on, self._on_scale, self._off_scale)
                )
                u = rng.random(self.n)
                self._on = np.where(self._on, u >= spec.p_off, u < spec.p_on)

    def row(self, t: int) -> np.ndarray:
        """Per-node rate scales at cycle ``t`` (read-only)."""
        if len(self._rows) <= t:
            self._extend_to(t)
        return self._rows[t]

    def rows(self, t0: int, t1: int) -> np.ndarray:
        """The ``(t1 - t0, n)`` scale matrix for cycles ``[t0, t1)``."""
        if t1 <= t0:
            return np.empty((0, self.n))
        self._extend_to(t1 - 1)
        return np.stack(self._rows[t0:t1])


def parse_burst(text: str) -> BurstSpec:
    """Parse a CLI burst spec: ``KIND[:p_on,p_off[,on_scale[,off_scale[,seed]]]]``.

    ``on_scale`` accepts ``auto`` for the mean-preserving default.
    Examples: ``mmpp``, ``storm:0.1,0.3``, ``mmpp:0.2,0.2,2.5,0.1``.
    """
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    fields = [f.strip() for f in rest.split(",")] if rest else []
    try:
        p_on = float(fields[0]) if len(fields) > 0 else 0.2
        p_off = float(fields[1]) if len(fields) > 1 else 0.2
        on_scale = (
            None
            if len(fields) < 3 or fields[2] in ("", "auto")
            else float(fields[2])
        )
        off_scale = float(fields[3]) if len(fields) > 3 else 0.0
        seed = int(fields[4]) if len(fields) > 4 else 0
    except (ValueError, IndexError) as exc:
        raise ValueError(f"malformed burst spec {text!r}: {exc}") from None
    return BurstSpec(
        kind=kind, p_on=p_on, p_off=p_off,
        on_scale=on_scale, off_scale=off_scale, seed=seed,
    )
