"""Injection-rate sweeps and saturation detection (Figs. 6, 10, 11).

``latency_throughput_curve`` reproduces the paper's synthetic-traffic
methodology: sweep the offered injection rate, record average packet
latency and accepted throughput, and flag saturation (the "sudden latency
degradation" of Fig. 6).  Throughput is reported in absolute
packets/node/ns using each link class's clock (small 3.6 GHz, medium
3.0 GHz, large 2.7 GHz) so classes are comparable, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..routing.tables import RoutingTable
from ..topology.layout import CLASS_CLOCK_GHZ
from .fastnet import CompiledNetwork, DEFAULT_ENGINE, resolve_engine
from .network import NetworkSimulator, SimStats
from .traffic import TrafficPattern

#: A run saturates when latency exceeds this multiple of zero-load latency
#: or when the network stops accepting the offered load.
SATURATION_LATENCY_FACTOR = 6.0
ACCEPTANCE_FLOOR = 0.90


@dataclass
class SweepPoint:
    """One (offered rate, latency, throughput) sample."""

    offered_rate: float  # packets/node/cycle
    avg_latency_cycles: float
    throughput_packets_node_cycle: float
    saturated: bool

    def latency_ns(self, clock_ghz: float) -> float:
        return self.avg_latency_cycles / clock_ghz

    def throughput_packets_node_ns(self, clock_ghz: float) -> float:
        return self.throughput_packets_node_cycle * clock_ghz


@dataclass
class SweepResult:
    """A full latency-throughput curve for one routed topology."""

    name: str
    link_class: Optional[str]
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def clock_ghz(self) -> float:
        return CLASS_CLOCK_GHZ.get(self.link_class or "", 1.0)

    @property
    def zero_load_latency_cycles(self) -> float:
        return self.points[0].avg_latency_cycles if self.points else float("nan")

    @property
    def zero_load_latency_ns(self) -> float:
        return self.zero_load_latency_cycles / self.clock_ghz

    @property
    def saturation_rate(self) -> float:
        """Highest non-saturated offered rate, packets/node/cycle."""
        ok = [p.offered_rate for p in self.points if not p.saturated]
        return max(ok) if ok else 0.0

    @property
    def saturation_throughput_ns(self) -> float:
        """Saturation throughput in packets/node/ns (Fig. 6's X axis)."""
        ok = [p for p in self.points if not p.saturated]
        if not ok:
            return 0.0
        return max(p.throughput_packets_node_ns(self.clock_ghz) for p in ok)

    def series(self) -> tuple:
        """(throughput_ns, latency_ns) arrays for plotting."""
        x = np.array([p.throughput_packets_node_ns(self.clock_ghz) for p in self.points])
        y = np.array([p.latency_ns(self.clock_ghz) for p in self.points])
        return x, y


def compile_for_engine(engine: str, table: RoutingTable) -> Optional[CompiledNetwork]:
    """The table's :class:`CompiledNetwork` when ``engine`` consumes one.

    Sweeps and saturation searches call this once and thread the result
    through every :func:`run_point`, so a whole curve (and every
    bisection probe) shares a single compile.
    """
    cls = resolve_engine(engine)
    if getattr(cls, "supports_compiled", False):
        return CompiledNetwork.for_table(table)
    return None


def run_point(
    table: RoutingTable,
    traffic: TrafficPattern,
    rate: float,
    warmup: int = 500,
    measure: int = 2000,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
    compiled: Optional[CompiledNetwork] = None,
    faults=None,
    **sim_kw,
) -> SimStats:
    """One measurement.  ``engine`` picks the simulator implementation
    (``"fast"`` flat-array engine or the ``"reference"`` oracle); both
    produce identical :class:`SimStats` for identical inputs.

    ``compiled`` shares a pre-built :class:`CompiledNetwork` across
    measurements (engines that don't consume one ignore it; the fast
    engine also falls back to the per-table memo when it is None).
    ``faults`` is an optional :class:`~repro.faults.FaultSchedule`; both
    engines honor it by swapping survivor tables at fault epochs.
    """
    cls = resolve_engine(engine)
    if faults is not None:
        sim_kw["faults"] = faults
    if getattr(cls, "supports_compiled", False):
        sim = cls(table, traffic, rate, seed=seed, compiled=compiled, **sim_kw)
    else:
        sim = cls(table, traffic, rate, seed=seed, **sim_kw)
    return sim.run(warmup, measure)


def classify_point(
    rate: float, stats: SimStats, zero_load: Optional[float]
) -> SweepPoint:
    """Turn one measurement into a :class:`SweepPoint`.

    Shared by the serial sweep below and the parallel runner
    (:mod:`repro.runner`), so both produce identical curves from
    identical measurements.
    """
    lat = stats.avg_latency_cycles
    accepted = stats.throughput_packets_node_cycle
    # Fault losses can never be accepted; classify against what the
    # network could actually have delivered (== offered when fault-free).
    offered = stats.deliverable_packets_node_cycle
    saturated = bool(
        not np.isfinite(lat)
        or (zero_load is not None and lat > SATURATION_LATENCY_FACTOR * zero_load)
        or (offered > 0 and accepted < ACCEPTANCE_FLOOR * offered)
    )
    return SweepPoint(
        offered_rate=rate,
        avg_latency_cycles=float(lat),
        throughput_packets_node_cycle=accepted,
        saturated=saturated,
    )


def assemble_curve(
    rates: Sequence[float],
    stats_list: Iterable[SimStats],
    name: str,
    link_class: Optional[str],
    stop_after_saturation: bool = True,
) -> SweepResult:
    """Build a :class:`SweepResult` from per-rate measurements.

    The single owner of zero-load tracking, point classification, and
    early-stop truncation: the serial sweep, the parallel runner, and
    cached replays all assemble their curves here, so identical
    measurements always produce bit-identical curves.  ``stats_list``
    may be a lazy iterable — consumption stops at the truncation point,
    which is how :func:`latency_throughput_curve` avoids simulating
    rates past saturation.
    """
    result = SweepResult(name=name, link_class=link_class)
    zero_load: Optional[float] = None
    for rate, stats in zip(rates, stats_list):
        lat = stats.avg_latency_cycles
        if zero_load is None and np.isfinite(lat):
            zero_load = lat
        point = classify_point(rate, stats, zero_load)
        result.points.append(point)
        if point.saturated and stop_after_saturation:
            break
    return result


def latency_throughput_curve(
    table: RoutingTable,
    traffic: TrafficPattern,
    rates: Sequence[float],
    name: Optional[str] = None,
    link_class: Optional[str] = None,
    warmup: int = 500,
    measure: int = 2000,
    seed: int = 0,
    stop_after_saturation: bool = True,
    engine: str = DEFAULT_ENGINE,
    **sim_kw,
) -> SweepResult:
    """Sweep offered injection rates and build the latency curve.

    The routed topology compiles once (:func:`compile_for_engine`) and
    every rate point reuses it; measurements stream lazily into
    :func:`assemble_curve`, which owns classification and early-stop
    truncation — a saturated prefix ends the sweep without simulating
    the remaining rates.
    """
    compiled = compile_for_engine(engine, table)

    def measurements() -> Iterable[SimStats]:
        for rate in rates:
            yield run_point(
                table, traffic, rate, warmup=warmup, measure=measure,
                seed=seed, engine=engine, compiled=compiled, **sim_kw
            )

    return assemble_curve(
        rates,
        measurements(),
        name=name or table.topology.name,
        link_class=link_class or table.topology.link_class,
        stop_after_saturation=stop_after_saturation,
    )


def find_saturation(
    table: RoutingTable,
    traffic: TrafficPattern,
    lo: float = 0.01,
    hi: float = 1.0,
    iters: int = 6,
    warmup: int = 400,
    measure: int = 1200,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
    faults=None,
    **sim_kw,
) -> float:
    """Binary-search the saturation injection rate (packets/node/cycle).

    Cheaper than a full sweep when only the saturation point is needed
    (Fig. 11's throughput comparisons).  All probes share one network
    compile, and results are memoized by offered rate, so no rate is
    ever simulated twice within one search (the ``lo``/``hi`` endpoint
    probes included).
    """
    compiled = compile_for_engine(engine, table)
    probes: Dict[float, SimStats] = {}

    def probe(rate: float) -> SimStats:
        st = probes.get(rate)
        if st is None:
            st = run_point(
                table, traffic, rate, warmup=warmup, measure=measure,
                seed=seed, engine=engine, compiled=compiled, faults=faults,
                **sim_kw
            )
            probes[rate] = st
        return st

    base = probe(lo)
    zero_load = base.avg_latency_cycles
    if not np.isfinite(zero_load):
        return 0.0
    if (
        base.deliverable_packets_node_cycle > 0
        and base.throughput_packets_node_cycle
        < ACCEPTANCE_FLOOR * base.deliverable_packets_node_cycle
    ):
        # Even the base probe is saturated: the network cannot accept the
        # lowest offered rate, so the bisection bracket [lo, hi] does not
        # exist and returning ``a == lo`` would overstate capacity.
        return 0.0

    def saturated(rate: float) -> bool:
        st = probe(rate)
        lat = st.avg_latency_cycles
        return (
            not np.isfinite(lat)
            or lat > SATURATION_LATENCY_FACTOR * zero_load
            or st.throughput_packets_node_cycle
            < ACCEPTANCE_FLOOR * st.deliverable_packets_node_cycle
        )

    if not saturated(hi):
        return hi
    a, b = lo, hi
    for _ in range(iters):
        mid = 0.5 * (a + b)
        if saturated(mid):
            b = mid
        else:
            a = mid
    return a


def latency_throughput_curves_batch(
    table: RoutingTable,
    traffic: TrafficPattern,
    rates: Sequence[float],
    seeds: Sequence[int],
    name: Optional[str] = None,
    link_class: Optional[str] = None,
    warmup: int = 500,
    measure: int = 2000,
    mode: str = "turbo",
    stop_after_saturation: bool = True,
    **sim_kw,
) -> Dict[int, SweepResult]:
    """One :class:`SweepResult` per seed from a single batched engine call.

    All ``len(seeds) x len(rates)`` lanes advance through one
    :func:`~repro.sim.batch.run_batch` invocation; each seed's curve is
    then assembled by the same :func:`assemble_curve` the serial sweep
    uses, so classification and early-stop truncation are identical.
    In ``mode="exact"`` every curve is bit-identical to calling
    :func:`latency_throughput_curve` with that seed (the batch trades
    the serial sweep's early-stop skipping for lane fusion: rates past
    saturation are simulated, then truncated away).
    """
    from .batch import run_batch

    rates = [float(r) for r in rates]
    seeds = [int(s) for s in seeds]
    lanes = [(r, s) for s in seeds for r in rates]
    stats = run_batch(
        table, traffic, lanes, warmup, measure, mode=mode, **sim_kw
    )
    nr = len(rates)
    return {
        s: assemble_curve(
            rates,
            stats[i * nr:(i + 1) * nr],
            name=name or table.topology.name,
            link_class=link_class or table.topology.link_class,
            stop_after_saturation=stop_after_saturation,
        )
        for i, s in enumerate(seeds)
    }


def find_saturation_batch(
    table: RoutingTable,
    traffic: TrafficPattern,
    seeds: Sequence[int],
    lo: float = 0.01,
    hi: float = 1.0,
    iters: int = 6,
    warmup: int = 400,
    measure: int = 1200,
    mode: str = "turbo",
    **sim_kw,
) -> Dict[int, float]:
    """Batched probe ladder: bisect saturation for all seeds at once.

    Replays :func:`find_saturation`'s bracket logic per seed, but each
    bisection wave gathers every live seed's next probe into one
    :func:`~repro.sim.batch.run_batch` call — S seeds cost S-fold fewer
    engine invocations, not S independent searches.  Per-seed probes are
    memoized by rate exactly like the scalar search, so in
    ``mode="exact"`` the returned rate is bit-identical to calling
    :func:`find_saturation` seed by seed.
    """
    from .batch import run_batch

    seeds = [int(s) for s in seeds]
    lo, hi = float(lo), float(hi)
    probes: Dict[int, Dict[float, SimStats]] = {s: {} for s in seeds}

    def wave(pairs: List[tuple]) -> None:
        todo = [(r, s) for r, s in pairs if r not in probes[s]]
        if todo:
            stats = run_batch(
                table, traffic, todo, warmup, measure, mode=mode, **sim_kw
            )
            for (r, s), st in zip(todo, stats):
                probes[s][r] = st

    wave([(lo, s) for s in seeds])
    result: Dict[int, float] = {}
    zero_load: Dict[int, float] = {}
    live: List[int] = []
    for s in seeds:
        base = probes[s][lo]
        zl = base.avg_latency_cycles
        if not np.isfinite(zl):
            result[s] = 0.0
            continue
        if (
            base.deliverable_packets_node_cycle > 0
            and base.throughput_packets_node_cycle
            < ACCEPTANCE_FLOOR * base.deliverable_packets_node_cycle
        ):
            result[s] = 0.0
            continue
        zero_load[s] = zl
        live.append(s)

    def saturated(s: int, rate: float) -> bool:
        st = probes[s][rate]
        lat = st.avg_latency_cycles
        return (
            not np.isfinite(lat)
            or lat > SATURATION_LATENCY_FACTOR * zero_load[s]
            or st.throughput_packets_node_cycle
            < ACCEPTANCE_FLOOR * st.deliverable_packets_node_cycle
        )

    wave([(hi, s) for s in live])
    bracket: Dict[int, tuple] = {}
    for s in live:
        if not saturated(s, hi):
            result[s] = hi
        else:
            bracket[s] = (lo, hi)
    for _ in range(iters):
        if not bracket:
            break
        mids = {s: 0.5 * (a + b) for s, (a, b) in bracket.items()}
        wave([(m, s) for s, m in mids.items()])
        for s, m in mids.items():
            a, b = bracket[s]
            bracket[s] = (a, m) if saturated(s, m) else (m, b)
    for s, (a, _b) in bracket.items():
        result[s] = a
    return {s: result[s] for s in seeds}


@dataclass
class ReplicaPoint:
    """Cross-seed summary of one offered rate: mean and 95% CI."""

    offered_rate: float
    n_replicas: int
    latency_mean: float
    latency_ci95: float
    throughput_mean: float
    throughput_ci95: float


def _ci95_halfwidth(vals: np.ndarray) -> float:
    k = vals.size
    if k < 2:
        return 0.0
    try:
        from scipy.stats import t

        crit = float(t.ppf(0.975, k - 1))
    except ImportError:  # pragma: no cover - scipy is a standard dep
        crit = 1.96
    return crit * float(np.std(vals, ddof=1)) / float(np.sqrt(k))


def summarize_replicas(
    curves: Mapping[int, SweepResult],
) -> List[ReplicaPoint]:
    """Per-rate mean +/- 95% CI across seed replicas.

    Latency averages over the replicas with a finite sample at that
    rate (saturated replicas report NaN); ``n_replicas`` counts the
    curves that still have the rate at all — early-stop truncation can
    leave deep-saturation rates on only some replicas.
    """
    by_rate: Dict[float, List[SweepPoint]] = {}
    for s in sorted(curves):
        for p in curves[s].points:
            by_rate.setdefault(p.offered_rate, []).append(p)
    out: List[ReplicaPoint] = []
    for rate in sorted(by_rate):
        pts = by_rate[rate]
        lat = np.array([p.avg_latency_cycles for p in pts], dtype=float)
        lat = lat[np.isfinite(lat)]
        thr = np.array(
            [p.throughput_packets_node_cycle for p in pts], dtype=float
        )
        out.append(
            ReplicaPoint(
                offered_rate=rate,
                n_replicas=len(pts),
                latency_mean=float(lat.mean()) if lat.size else float("nan"),
                latency_ci95=_ci95_halfwidth(lat),
                throughput_mean=float(thr.mean()),
                throughput_ci95=_ci95_halfwidth(thr),
            )
        )
    return out
