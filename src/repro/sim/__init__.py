"""Flit-serialized, VC-aware NoI network simulator and traffic generators."""

from .fastnet import (
    DEFAULT_ENGINE,
    ENGINES,
    CompiledNetwork,
    FastNetworkSimulator,
    resolve_engine,
)
from .network import (
    DEFAULT_VC_BUFFER_FLITS,
    LINK_LATENCY,
    ROUTER_LATENCY,
    NetworkSimulator,
    SimStats,
)
from .packet import (
    CONTROL_FLITS,
    DATA_FLITS,
    MEAN_FLITS_PER_PACKET,
    Packet,
)
from .stats import (
    ChannelStats,
    DeadlockError,
    InstrumentationReport,
    InstrumentedSimulator,
    measure_activity,
)
from .sweep import (
    SweepPoint,
    SweepResult,
    compile_for_engine,
    find_saturation,
    latency_throughput_curve,
    run_point,
)
from .burst import BURST_KINDS, BurstSpec, BurstState, parse_burst
from .trace import TRACE_CHUNK_CYCLES, TraceStream
from .traffic import (
    DestSpec,
    TrafficPattern,
    bit_complement,
    hotspot,
    memory_traffic,
    neighbor,
    shuffle_pattern,
    tornado,
    transpose,
    uniform_random,
)

__all__ = [
    "NetworkSimulator",
    "FastNetworkSimulator",
    "CompiledNetwork",
    "TraceStream",
    "TRACE_CHUNK_CYCLES",
    "DestSpec",
    "ENGINES",
    "DEFAULT_ENGINE",
    "resolve_engine",
    "compile_for_engine",
    "SimStats",
    "Packet",
    "CONTROL_FLITS",
    "DATA_FLITS",
    "MEAN_FLITS_PER_PACKET",
    "TrafficPattern",
    "BURST_KINDS",
    "BurstSpec",
    "BurstState",
    "parse_burst",
    "uniform_random",
    "memory_traffic",
    "shuffle_pattern",
    "hotspot",
    "bit_complement",
    "transpose",
    "tornado",
    "neighbor",
    "InstrumentedSimulator",
    "InstrumentationReport",
    "ChannelStats",
    "DeadlockError",
    "measure_activity",
    "latency_throughput_curve",
    "find_saturation",
    "run_point",
    "SweepPoint",
    "SweepResult",
    "ROUTER_LATENCY",
    "LINK_LATENCY",
    "DEFAULT_VC_BUFFER_FLITS",
]
