"""Flat-array fast engine for the NoI simulator.

``FastNetworkSimulator`` re-implements :class:`repro.sim.network.
NetworkSimulator` with the same cycle-level semantics and the same RNG
draw order — differential tests assert bit-identical :class:`SimStats`
against the reference engine — but with the dict-of-objects hot path
compiled down to integer-indexed flat structures:

* **dense lookup tables** — the ``(node, src, dst) -> next hop`` dict and
  the per-flow VC dict of :class:`~repro.routing.tables.RoutingTable`
  become preallocated flat integer lists indexed by
  ``node*n*n + src*n + dst`` and ``src*n + dst``;
* **integer channel ids** — directed link ``k`` of the topology is
  channel ``k``; the injection pseudo-channel of router ``r`` is channel
  ``L + r``.  Per-(channel, VC) state lives in flat lists indexed by
  ``slot = channel*num_vcs + vc``;
* **tuple queues with unpacked scan state** — a queued packet is one
  ``(ready, key, size, src, dst, birth)`` tuple; each (channel, VC)
  queue keeps its head tuple in ``heads[slot]`` (promotion is a single
  store) with the tail in a deque, and a per-channel bitmask tracks
  occupied VCs so the arbitration scan only touches non-empty queues;
* **enqueue-time routing** — ``key`` is the packet's request at its next
  router (-1 = eject there, else the output channel id), precomputed
  when the packet is enqueued, so the scan never consults the routing
  table;
* **per-slot snooze timers** — a head blocked until a provable cycle
  (its own arrival time, the requested output channel's busy timer, the
  ejection port's busy timer) records that cycle in ``snooze[slot]``;
  until then each revisit costs one integer compare.  Busy timers are
  monotone, so a snoozed head can never miss the first cycle at which
  the reference would have granted it;
* **batched per-cycle RNG** — the Bernoulli injection draws for all
  routers come from one ``rng.random(n)`` call per cycle (exactly the
  reference's draw), converted once to Python floats; destination and
  size draws then consume the stream in the identical per-packet order
  (the destination closure and the size draw are invoked exactly as the
  reference invokes them);
* **runnable-router bitmask with a timer wheel** — arbitration visits
  only routers in the ``runnable`` mask (ascending bit order — the
  reference's same-cycle credit propagation order).  A router whose
  every queued head is provably idle until a known cycle parks itself in
  a cycle-indexed wheel and is re-armed when that cycle arrives, when a
  packet arrives for it, or when downstream credit it was blocked on is
  released (pops re-arm the upstream router only if a grant actually
  failed on that buffer — ``cwait``).  Skipped cycles are exactly the
  cycles in which the reference arbitration would have been a no-op;
* **fused batch loop** — generation, injection, and arbitration for a
  whole ``run`` segment execute inside one loop frame
  (:meth:`_run_cycles`), so the ~30 hot state containers bind to locals
  once per segment instead of once per cycle, and measurement counters
  accumulate in locals that are flushed back when the segment ends.

The reference engine stays the differential oracle (and the base class
for :class:`~repro.sim.stats.InstrumentedSimulator`); this engine is the
workhorse behind sweeps and saturation searches (``engine="fast"``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from .network import (
    DEFAULT_VC_BUFFER_FLITS,
    LINK_LATENCY,
    ROUTER_LATENCY,
    NetworkSimulator,
    SimStats,
)
from .packet import CONTROL_FLITS, DATA_FLITS
from .traffic import TrafficPattern

#: Queued packet record: (ready, key, size, src, dst, birth) where
#: ``key`` is the precomputed request at the downstream router (-1 =
#: eject there, else the output channel id to request).
PacketRecord = Tuple[int, int, int, int, int, int]

#: Engine name -> simulator class.  ``DEFAULT_ENGINE`` is what sweeps,
#: the runner, and the CLI use unless told otherwise; ``"reference"``
#: remains available everywhere as the differential oracle.
DEFAULT_ENGINE = "fast"

_NEVER = 1 << 60  # sentinel wake time: no pending timer found yet
_NO_KEY = -2  # sentinel: no ready request collected yet this scan


def resolve_engine(engine: str):
    """Map an engine name to its simulator class."""
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}: expected one of {sorted(ENGINES)}"
        ) from None


class FastNetworkSimulator:
    """Flat-array drop-in for :class:`NetworkSimulator` (same stats)."""

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        injection_rate: float,
        seed: int = 0,
        vc_buffer_flits: int = DEFAULT_VC_BUFFER_FLITS,
        router_latency: int = ROUTER_LATENCY,
        link_latency: int = LINK_LATENCY,
        extra_hop_latency: int = 0,
    ):
        self.table = table
        self.topo = table.topology
        self.traffic = traffic
        self.rate = float(injection_rate)
        self.rng = np.random.default_rng(seed)
        self.vc_cap = vc_buffer_flits
        self.hop_delay = router_latency + link_latency + extra_hop_latency
        self.num_vcs = table.num_vcs

        n = self.topo.n
        self.n = n
        V = self.num_vcs
        links = list(self.topo.directed_links)
        L = len(links)
        self.num_links = L

        # Dense routing state.  -1 marks (node, src, dst) triples no flow
        # ever visits; a valid table never reads them.
        nh = [-1] * (n * n * n)
        for (node, src, dst), hop in table.next_hop.items():
            nh[(node * n + src) * n + dst] = hop
        self.nh = nh
        vc_of = [0] * (n * n)
        for (src, dst), vc in table.flow_vc.items():
            vc_of[src * n + dst] = vc
        self.vc_of = vc_of

        # Channel id space: links 0..L-1, injection pseudo-channels L..L+n-1.
        out_id = [-1] * (n * n)
        for ch, (u, v) in enumerate(links):
            out_id[u * n + v] = ch
        self.out_id = out_id
        self.ch_dst = [v for _, v in links]  # downstream router per link
        self.ch_src = [u for u, _ in links]  # upstream router per link
        # Per-router input scan order mirrors the reference exactly:
        # injection channel first, then link channels in topology order.
        in_bases: List[List[int]] = [[(L + r) * V] for r in range(n)]
        for ch, (_, v) in enumerate(links):
            in_bases[v].append(ch * V)
        self.in_bases = [tuple(b) for b in in_bases]
        self.inj_base = [(L + r) * V for r in range(n)]

        nq = (L + n) * V
        # Scan helpers: occupancy-mask -> tuple of set VC indices
        # (ascending, i.e. the reference VC scan order), and slot ->
        # upstream router to wake when that buffer frees (-1 for
        # injection slots, which have no upstream arbiter).
        self.vcs_of = [
            tuple(vc for vc in range(V) if m >> vc & 1) for m in range(1 << V)
        ]
        self.slot_src = [
            self.ch_src[slot // V] if slot < L * V else -1 for slot in range(nq)
        ]
        # Queue state per slot: head record, earliest cycle the head
        # could possibly act (snooze), tail deque, per-channel occupancy
        # bitmask (indexed by the channel's base slot), and the
        # credit-waiter flag (an upstream grant failed on this buffer).
        self.heads: List[Optional[PacketRecord]] = [None] * nq
        self.snooze = [0] * nq
        self.tail: List[Deque[PacketRecord]] = [deque() for _ in range(nq)]
        self.masks = [0] * nq
        self.cwait = [0] * nq
        self.slot_ch = [s // V for s in range(nq)]

        self.free = [self.vc_cap] * nq
        self.busy_until = [0] * L
        self.rr = [0] * L
        self.inj_busy = [0] * n
        self.ej_busy = [0] * n
        self.ej_rr = [0] * n
        # Source-side state: per-node generated-packet queue plus a
        # bitmask of nodes whose queue is non-empty.
        self.source_q: List[Deque[Tuple[int, int, int, int, int]]] = [
            deque() for _ in range(n)
        ]
        self.pending = 0
        # Source ports not provably blocked (inj-port serialization or
        # full inj buffer); blocked ports re-arm via the injection wheel
        # or an inj-buffer credit release.
        self.pollable = (1 << n) - 1
        self.iwheel: Dict[int, int] = {}
        # Worklist state: the runnable-router mask, per-router wake
        # times (0 = runnable now), and the cycle-indexed timer wheel.
        self.runnable = (1 << n) - 1
        self.wake = [0] * n
        self.wheel: Dict[int, int] = {}

        self._pid = 0
        self.cycle = 0
        self.measuring = False
        self.measure_start = 0
        self.offered = 0
        self.ejected = 0
        self.ejected_flits = 0
        self.lat_sum = 0.0
        self.lat_count = 0
        self.in_flight = 0

    # -- the fused cycle loop --------------------------------------------------
    def _run_cycles(self, ncycles: int) -> None:
        """Advance the simulation by ``ncycles`` cycles.

        One loop frame owns generation, injection, and arbitration so
        every hot container is a local.  Each cycle performs, in order:
        per-node Bernoulli generation (one batched draw), source-queue
        injection, and per-router arbitration in ascending router index —
        exactly the reference's :meth:`~NetworkSimulator.step` sequence.
        """
        if ncycles <= 0:
            return
        cycle = self.cycle
        end = cycle + ncycles
        n = self.n
        V = self.num_vcs

        # generation / injection state.  ``dest_fn`` and the inlined
        # size draw perform exactly the calls the reference's
        # ``TrafficPattern.destination`` / ``packet_size`` wrappers make,
        # in the same order — the differential suite pins this.
        lam = self.rate
        whole = int(lam)
        frac = lam - whole
        rng = self.rng
        rng_random = rng.random
        dest = self.traffic.dest_fn
        dfrac = self.traffic.data_fraction
        source_q = self.source_q
        pending = self.pending
        pollable = self.pollable
        iwheel = self.iwheel
        iwheel_pop = iwheel.pop
        iwheel_get = iwheel.get
        inj_base = self.inj_base
        inj_busy = self.inj_busy
        vc_of = self.vc_of
        num_links = self.num_links
        link_slots = num_links * V

        # switching state
        wake = self.wake
        wheel = self.wheel
        wheel_pop = wheel.pop
        wheel_get = wheel.get
        runnable = self.runnable
        masks = self.masks
        heads = self.heads
        snooze = self.snooze
        tail = self.tail
        free = self.free
        cwait = self.cwait
        slot_ch = self.slot_ch
        busy_until = self.busy_until
        rr = self.rr
        ej_busy = self.ej_busy
        ej_rr = self.ej_rr
        in_bases = self.in_bases
        out_id = self.out_id
        nh = self.nh
        ch_dst = self.ch_dst
        vcs_of = self.vcs_of
        slot_src = self.slot_src
        hop_delay = self.hop_delay
        one = [0]  # reusable single-requester list (fast path)

        # measurement accumulators (flushed back on exit)
        measuring = self.measuring
        measure_start = self.measure_start
        pid = self._pid
        offered = self.offered
        ejected = self.ejected
        ejected_flits = self.ejected_flits
        lat_sum = self.lat_sum
        lat_count = self.lat_count
        in_flight = self.in_flight

        while cycle < end:
            # -- generation: one batched uniform draw per cycle (identical
            # stream positions to the reference's vector draw), unpacked
            # to Python floats once instead of n numpy scalar reads.
            if lam > 0:
                draws = rng_random(n).tolist()
                if whole == 0:
                    # Sub-unit rates (the universal case): visit only the
                    # Bernoulli winners, in ascending node order — the
                    # same nodes, in the same order, that the reference
                    # loop injects for.
                    node = -1
                    for d in draws:
                        node += 1
                        if d >= frac:
                            continue
                        dst = dest(node, rng)
                        size = DATA_FLITS if rng_random() < dfrac else CONTROL_FLITS
                        if dst == node:
                            key = -1
                        else:
                            key = out_id[node * n + nh[(node * n + node) * n + dst]]
                        pid += 1
                        source_q[node].append(
                            (vc_of[node * n + dst], key, size, dst, cycle)
                        )
                        pending |= 1 << node
                        in_flight += 1
                        if measuring:
                            offered += 1
                else:
                    for node in range(n):
                        count = whole + (1 if draws[node] < frac else 0)
                        for _ in range(count):
                            dst = dest(node, rng)
                            size = (
                                DATA_FLITS
                                if rng_random() < dfrac
                                else CONTROL_FLITS
                            )
                            if dst == node:
                                key = -1
                            else:
                                key = out_id[
                                    node * n + nh[(node * n + node) * n + dst]
                                ]
                            pid += 1
                            source_q[node].append(
                                (vc_of[node * n + dst], key, size, dst, cycle)
                            )
                            pending |= 1 << node
                            in_flight += 1
                            if measuring:
                                offered += 1

            # -- injection: serialized source ports, ascending node order.
            # Only nodes with a backlog that are not provably blocked are
            # visited; blocked ones park in the injection wheel (port
            # timer) or wait for an inj-buffer credit release.
            ifired = iwheel_pop(cycle, 0)
            if ifired:
                pollable |= ifired
            m = pending & pollable
            if m:
                while m:
                    lsb = m & -m
                    m ^= lsb
                    node = lsb.bit_length() - 1
                    busy_t = inj_busy[node]
                    if busy_t > cycle:
                        pollable ^= lsb
                        iwheel[busy_t] = iwheel_get(busy_t, 0) | lsb
                        continue
                    sq = source_q[node]
                    vc, key, size, dst, birth = sq[0]
                    base = inj_base[node]
                    slot = base + vc
                    if free[slot] < size:
                        # Re-armed when a pop frees this node's inj buffer.
                        pollable ^= lsb
                        continue
                    sq.popleft()
                    if not sq:
                        pending ^= lsb
                    free[slot] -= size
                    ready = cycle + size
                    inj_busy[node] = ready
                    # The port now serializes until ``ready``; park it.
                    pollable ^= lsb
                    iwheel[ready] = iwheel_get(ready, 0) | lsb
                    rec = (ready, key, size, node, dst, birth)
                    bit = 1 << vc
                    if masks[base] & bit:
                        tail[slot].append(rec)
                    else:
                        masks[base] |= bit
                        heads[slot] = rec
                        snooze[slot] = ready
                    if ready < wake[node]:
                        # The node's router sleeps past this packet's
                        # arrival: re-arm it at the arrival cycle.
                        wake[node] = ready
                        wheel[ready] = wheel_get(ready, 0) | lsb

            # -- switching: runnable routers in ascending index order
            # (the reference's same-cycle credit propagation order).
            fired = wheel_pop(cycle, 0)
            if fired:
                runnable |= fired
                while fired:
                    fl = fired & -fired
                    fired ^= fl
                    wake[fl.bit_length() - 1] = 0
            # Iterate the LIVE mask, ascending: a credit release by
            # router v re-arms an upstream router u' immediately, and if
            # u' > v the reference lets it act later in the same cycle.
            u = -1
            while True:
                m_live = runnable >> (u + 1)
                if not m_live:
                    break
                u += (m_live & -m_live).bit_length()
                ubit = 1 << u
                # Scan this router's occupied input queues in the
                # reference order and bucket ready heads per requested
                # output channel (-1 = the ejection port).  Outputs
                # mid-serialization (and a busy ejection port) are
                # skipped at scan time: the reference builds their
                # request lists too, but never touches state for them,
                # so dropping them here is observationally identical.
                # ``wake_t`` accumulates the earliest deterministic
                # timer (packet arrival / busy expiry) for the sleep
                # decision; the single-requester common case avoids
                # building a dict at all.
                requests: Optional[dict] = None
                k1 = _NO_KEY
                s1 = 0
                wake_t = _NEVER
                ej_busy_u = ej_busy[u]
                for base in in_bases[u]:
                    m = masks[base]
                    if not m:
                        continue
                    for vc in vcs_of[m]:
                        slot = base + vc
                        t_ = snooze[slot]
                        if t_ > cycle:
                            if t_ < wake_t:
                                wake_t = t_
                            continue
                        key = heads[slot][1]
                        if key >= 0:
                            b = busy_until[key]
                            if b > cycle:
                                snooze[slot] = b
                                if b < wake_t:
                                    wake_t = b
                                continue
                        elif ej_busy_u > cycle:
                            snooze[slot] = ej_busy_u
                            if ej_busy_u < wake_t:
                                wake_t = ej_busy_u
                            continue
                        if requests is not None:
                            lst = requests.get(key)
                            if lst is None:
                                requests[key] = [slot]
                            else:
                                lst.append(slot)
                        elif k1 == _NO_KEY:
                            k1 = key
                            s1 = slot
                        else:
                            requests = {k1: [s1]}
                            lst = requests.get(key)
                            if lst is None:
                                requests[key] = [slot]
                            else:
                                lst.append(slot)
                if requests is None:
                    if k1 == _NO_KEY:
                        # Every queued head is pinned down by a
                        # deterministic timer: park the router until the
                        # earliest timer (arrivals and credit releases
                        # re-arm it early), skipping exactly the no-op
                        # cycles.
                        runnable ^= ubit
                        wake[u] = wake_t
                        if wake_t != _NEVER:
                            wheel[wake_t] = wheel_get(wake_t, 0) | ubit
                        continue
                    one[0] = s1
                    items = ((k1, one),)
                else:
                    items = requests.items()
                acted = False
                for key, reqs in items:
                    if key < 0:
                        # Ejection port: serialized, one grant per cycle.
                        nr = len(reqs)
                        if nr == 1:
                            start = 0
                            slot = reqs[0]
                        else:
                            start = ej_rr[u] % nr
                            slot = reqs[start]
                        rec = heads[slot]
                        size = rec[2]
                        t = tail[slot]
                        if t:
                            nxt_rec = t.popleft()
                            heads[slot] = nxt_rec
                            snooze[slot] = nxt_rec[0]
                        else:
                            vc = slot % V
                            masks[slot - vc] &= ~(1 << vc)
                        free[slot] += size
                        if slot >= link_slots:
                            # Freed inj-buffer space: the source port may
                            # retry.
                            pollable |= 1 << (slot_ch[slot] - num_links)
                        elif cwait[slot]:
                            # Freed credit an upstream grant failed on:
                            # re-arm that router and unpark the output.
                            cwait[slot] = 0
                            runnable |= 1 << slot_src[slot]
                        acted = True
                        ej_busy[u] = cycle + size
                        ej_rr[u] = start + 1
                        in_flight -= 1
                        if measuring:
                            # Accepted throughput counts every delivery
                            # in the window; latency samples only
                            # window-born packets (mirrors the reference
                            # `_eject` exactly).
                            ejected += 1
                            ejected_flits += size
                            birth = rec[5]
                            if birth >= measure_start:
                                lat_sum += cycle + size - birth
                                lat_count += 1
                        continue
                    out = key
                    nr = len(reqs)
                    start = 0 if nr == 1 else rr[out] % nr
                    out_base = out * V
                    # round-robin among requestors, skipping those
                    # blocked by missing downstream credit (virtual
                    # cut-through).
                    for k in range(nr):
                        slot = reqs[start + k - nr if start + k >= nr else start + k]
                        rec = heads[slot]
                        size = rec[2]
                        vc = slot % V
                        oslot = out_base + vc
                        if free[oslot] < size:
                            cwait[oslot] = 1
                            continue
                        t = tail[slot]
                        if t:
                            nxt_rec = t.popleft()
                            heads[slot] = nxt_rec
                            snooze[slot] = nxt_rec[0]
                        else:
                            masks[slot - vc] &= ~(1 << vc)
                        free[slot] += size
                        if slot >= link_slots:
                            pollable |= 1 << (slot_ch[slot] - num_links)
                        elif cwait[slot]:
                            cwait[slot] = 0
                            runnable |= 1 << slot_src[slot]
                        acted = True
                        free[oslot] -= size
                        done = cycle + size
                        busy_until[out] = done
                        v = ch_dst[out]
                        src = rec[3]
                        dst = rec[4]
                        if dst == v:
                            nkey = -1
                        else:
                            nkey = out_id[v * n + nh[(v * n + src) * n + dst]]
                        ready = done + hop_delay
                        nrec = (ready, nkey, size, src, dst, rec[5])
                        bit = 1 << vc
                        if masks[out_base] & bit:
                            tail[oslot].append(nrec)
                        else:
                            masks[out_base] |= bit
                            heads[oslot] = nrec
                            snooze[oslot] = ready
                        nxt = start + k + 1
                        rr[out] = nxt - nr if nxt >= nr else nxt
                        if ready < wake[v]:
                            # The downstream router sleeps past this
                            # packet's arrival: re-arm it then.
                            wake[v] = ready
                            wheel[ready] = wheel_get(ready, 0) | (1 << v)
                        break
                if not acted:
                    # Requests existed but every one was credit-blocked:
                    # no state changed (the reference leaves round-robin
                    # pointers alone on failed grants), and each blocking
                    # condition re-arms this router — timers via the
                    # wheel, downstream credit via ``cwait``, new
                    # arrivals via the enqueue wake.
                    runnable ^= ubit
                    wake[u] = wake_t
                    if wake_t != _NEVER:
                        wheel[wake_t] = wheel_get(wake_t, 0) | ubit
            cycle += 1

        self.cycle = cycle
        self.pending = pending
        self.pollable = pollable
        self.runnable = runnable
        self._pid = pid
        self.offered = offered
        self.ejected = ejected
        self.ejected_flits = ejected_flits
        self.lat_sum = lat_sum
        self.lat_count = lat_count
        self.in_flight = in_flight

    # -- public stepping API ---------------------------------------------------
    def step(self) -> None:
        """Advance one cycle (generation, injection, arbitration)."""
        self._run_cycles(1)

    def run(self, warmup: int, measure: int) -> SimStats:
        """Warm up, then measure for ``measure`` cycles."""
        self._run_cycles(warmup)
        self.measuring = True
        self.measure_start = self.cycle
        self._run_cycles(measure)
        self.measuring = False
        return SimStats(
            cycles=measure,
            offered_packets=self.offered,
            ejected_packets=self.ejected,
            ejected_flits=self.ejected_flits,
            latency_sum=self.lat_sum,
            latency_count=self.lat_count,
            n_nodes=self.n,
        )


ENGINES = {
    "reference": NetworkSimulator,
    "fast": FastNetworkSimulator,
}
