"""Flat-array fast engine for the NoI simulator.

``FastNetworkSimulator`` re-implements :class:`repro.sim.network.
NetworkSimulator` with the same cycle-level semantics and the same RNG
draw order — differential tests assert bit-identical :class:`SimStats`
against the reference engine — but with the dict-of-objects hot path
compiled down to integer-indexed flat structures:

* **compiled networks** — the dense ``(node, src, dst) -> next hop``
  and per-flow VC tables, channel id maps, input scan orders, and VC
  occupancy decode tables derived from a :class:`~repro.routing.tables.
  RoutingTable` live in a :class:`CompiledNetwork`, built **once per
  table** (memoized on the table instance) and shared by every
  simulator instance — all rate points of a sweep and all bisection
  probes of a saturation search reuse one compile, leaving only O(#VC
  slots) per-run state to allocate per measurement;
* **pre-generated traffic traces** — injection events for every built-in
  traffic pattern are pre-computed in large numpy chunks by
  :class:`~repro.sim.trace.TraceStream`, which replicates the reference
  engine's exact RNG draw order from raw PCG64 words.  The generation
  block of the cycle loop is then just "drain this cycle's precomputed
  arrivals": zero per-packet Python RNG or closure calls.  (Custom
  patterns without a :class:`~repro.sim.traffic.DestSpec` fall back to
  the inline scalar path.);
* **integer channel ids** — directed link ``k`` of the topology is
  channel ``k``; the injection pseudo-channel of router ``r`` is channel
  ``L + r``.  Per-(channel, VC) state lives in flat lists indexed by
  ``slot = channel*num_vcs + vc``;
* **tuple queues with unpacked scan state** — a queued packet is one
  ``(ready, key, size, src, dst, birth)`` tuple; each (channel, VC)
  queue keeps its head tuple in ``heads[slot]`` (promotion is a single
  store) with the tail in a deque, and a per-channel bitmask tracks
  occupied VCs so the arbitration scan only touches non-empty queues;
* **enqueue-time routing** — ``key`` is the packet's request at its next
  router (-1 = eject there, else the output channel id), precomputed
  when the packet is enqueued, so the scan never consults the routing
  table;
* **per-slot snooze timers** — a head blocked until a provable cycle
  (its own arrival time, the requested output channel's busy timer, the
  ejection port's busy timer) records that cycle in ``snooze[slot]``;
  until then each revisit costs one integer compare.  Busy timers are
  monotone, so a snoozed head can never miss the first cycle at which
  the reference would have granted it;
* **runnable-router bitmask with a timer wheel** — arbitration visits
  only routers in the ``runnable`` mask (ascending bit order — the
  reference's same-cycle credit propagation order).  A router whose
  every queued head is provably idle until a known cycle parks itself in
  a cycle-indexed wheel and is re-armed when that cycle arrives, when a
  packet arrives for it, or when downstream credit it was blocked on is
  released (pops re-arm the upstream router only if a grant actually
  failed on that buffer — ``cwait``).  Skipped cycles are exactly the
  cycles in which the reference arbitration would have been a no-op;
* **fused batch loop** — generation, injection, and arbitration for a
  whole ``run`` segment execute inside one loop frame
  (:meth:`_run_cycles`), so the ~30 hot state containers bind to locals
  once per segment instead of once per cycle, and measurement counters
  accumulate in locals that are flushed back when the segment ends.

The reference engine stays the differential oracle (and the base class
for :class:`~repro.sim.stats.InstrumentedSimulator`); this engine is the
workhorse behind sweeps and saturation searches (``engine="fast"``).

One caveat of trace-fed generation: the simulator's Generator is
consumed in pre-drawn chunks, so mutating ``sim.rate`` mid-run diverges
from the reference's draw stream for the remaining cycles (setting it to
0 — draining — is exact: generation stops outright, matching the
reference's ``lam <= 0`` early-out).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from .network import (
    DEFAULT_VC_BUFFER_FLITS,
    LINK_LATENCY,
    ROUTER_LATENCY,
    NetworkSimulator,
    SimStats,
)
from .packet import CONTROL_FLITS, DATA_FLITS
from .trace import TraceStream
from .traffic import TrafficPattern

#: Queued packet record: (ready, key, size, src, dst, birth) where
#: ``key`` is the precomputed request at the downstream router (-1 =
#: eject there, else the output channel id to request).
PacketRecord = Tuple[int, int, int, int, int, int]

#: Injection event record: (cycle, node, vc, key, size, dst).
EventRecord = Tuple[int, int, int, int, int, int]

#: Engine name -> simulator class.  ``DEFAULT_ENGINE`` is what sweeps,
#: the runner, and the CLI use unless told otherwise; ``"reference"``
#: remains available everywhere as the differential oracle.
DEFAULT_ENGINE = "fast"

_NEVER = 1 << 60  # sentinel wake time: no pending timer found yet
_NO_KEY = -2  # sentinel: no ready request collected yet this scan
_LOST = -3  # event key: flow unroutable in the current fault epoch


def resolve_engine(engine: str):
    """Map an engine name to its simulator class."""
    if engine == "turbo" and "turbo" not in ENGINES:
        # The batched module registers the turbo adapter on import;
        # resolve it lazily so worker processes that only import this
        # module still honor engine="turbo" task payloads.
        from . import batch  # noqa: F401  (registers ENGINES["turbo"])
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}: expected one of {sorted(ENGINES)}"
        ) from None


class CompiledNetwork:
    """Immutable flat-array compilation of one :class:`RoutingTable`.

    Everything a :class:`FastNetworkSimulator` derives from the table
    alone — no per-run parameters, no mutable state — so one compile
    serves every (rate, seed, buffer-size) measurement over that table.
    Obtain instances through :meth:`for_table`, which memoizes the
    compile on the table object itself.
    """

    def __init__(self, table: RoutingTable):
        self.table = table
        topo = table.topology
        n = topo.n
        V = table.num_vcs
        links = list(topo.directed_links)
        L = len(links)
        self.n = n
        self.num_vcs = V
        self.num_links = L

        # Channel id space: links 0..L-1, injection pseudo-channels L..L+n-1.
        out_id = [-1] * (n * n)
        for ch, (u, v) in enumerate(links):
            out_id[u * n + v] = ch
        self.out_id = out_id

        # Routing state: the hot loop asks "which output channel does
        # the packet (src, dst) parked at router v request next?".
        # Destination-keyed (CSR) tables answer from a flat n² array;
        # dict tables, whose hop may depend on the source, answer from a
        # sparse dict over the (v, src, dst) triples the table actually
        # names.  Both store the *request key* (the output channel id,
        # ``out_id`` pre-applied), never the raw hop — and neither
        # materializes the historical dense n³ next-hop list.
        if getattr(table, "dest_keyed", False):
            nm = table.next_matrix()
            self.fwd = None
            self.fwd_dst = [
                -1 if hop < 0 else out_id[(k // n) * n + hop]
                for k, hop in enumerate(nm.tolist())
            ]
            vc_of = np.where(table.flow_mask, table.flow_vc, 0).tolist()
        else:
            fwd = {}
            for (node, src, dst), hop in table.next_hop.items():
                fwd[(node * n + src) * n + dst] = out_id[node * n + hop]
            self.fwd = fwd
            self.fwd_dst = None
            vc_of = [0] * (n * n)
            for (src, dst), vc in table.flow_vc.items():
                vc_of[src * n + dst] = vc
        self.vc_of = vc_of
        self.ch_dst = [v for _, v in links]  # downstream router per link
        self.ch_src = [u for u, _ in links]  # upstream router per link
        # Per-router input scan order mirrors the reference exactly:
        # injection channel first, then link channels in topology order.
        in_bases: List[List[int]] = [[(L + r) * V] for r in range(n)]
        for ch, (_, v) in enumerate(links):
            in_bases[v].append(ch * V)
        self.in_bases = [tuple(b) for b in in_bases]
        self.inj_base = [(L + r) * V for r in range(n)]

        nq = (L + n) * V
        self.num_slots = nq
        # Scan helpers: occupancy-mask -> tuple of set VC indices
        # (ascending, i.e. the reference VC scan order), and slot ->
        # upstream router to wake when that buffer frees (-1 for
        # injection slots, which have no upstream arbiter).
        self.vcs_of = [
            tuple(vc for vc in range(V) if m >> vc & 1) for m in range(1 << V)
        ]
        self.slot_src = [
            self.ch_src[slot // V] if slot < L * V else -1 for slot in range(nq)
        ]
        self.slot_ch = [s // V for s in range(nq)]
        # Grant-path decode tables: slot -> VC index, channel base slot,
        # and the occupancy-bit clear mask, so dequeues never divide.
        self.slot_vc = [s % V for s in range(nq)]
        self.slot_qbase = [s - s % V for s in range(nq)]
        self.slot_clear = [~(1 << (s % V)) for s in range(nq)]

        # Injection-time request key per flow: the output channel a
        # source-queued packet will request at its own router (-1 =
        # immediate ejection, src == dst).  Shared by the inline path
        # and, as a numpy table, by vectorized trace-event compilation.
        if self.fwd_dst is not None:
            # Destination-keyed: the at-source request key *is* the
            # (node, dst) forward key, diagonal already -1.
            inj_key = list(self.fwd_dst)
        else:
            inj_key = [-1] * (n * n)
            for (node, src, dst), _hop in table.next_hop.items():
                if node == src:
                    inj_key[src * n + dst] = self.fwd[(node * n + src) * n + dst]
        self.inj_key = inj_key
        self.inj_key_np = np.array(inj_key, dtype=np.int64)
        self.vc_of_np = np.array(vc_of, dtype=np.int64)

        # Flow liveness: True iff the table can route (src, dst).
        # Self-traffic always delivers.  Survivor tables of a fault epoch
        # omit unreachable flows; the engines count their traffic as lost.
        if self.fwd_dst is not None:
            ok = np.asarray(table.flow_mask, dtype=bool).copy()
            ok[np.arange(n) * (n + 1)] = True
            flow_ok = ok.tolist()
        else:
            flow_ok = [False] * (n * n)
            for src in range(n):
                flow_ok[src * n + src] = True
            for (src, dst) in table.flow_vc:
                flow_ok[src * n + dst] = True
        self.flow_ok = flow_ok
        self.flow_ok_np = np.array(flow_ok, dtype=bool)

    @classmethod
    def for_table(cls, table: RoutingTable) -> "CompiledNetwork":
        """The table's compiled form, built at most once per table."""
        cached = table.__dict__.get("_compiled_network")
        if cached is None:
            cached = cls(table)
            table.__dict__["_compiled_network"] = cached
        return cached


class FastNetworkSimulator:
    """Flat-array drop-in for :class:`NetworkSimulator` (same stats)."""

    #: ``run_point`` passes a shared :class:`CompiledNetwork` when set.
    supports_compiled = True

    #: Closed-loop extension points (see :mod:`repro.fullsys.fastloop`).
    #: ``_closed_gen(cycle, pending, in_flight, pid)`` replaces the whole
    #: generation block when set (demand-driven injection is state-
    #: dependent, so it cannot be trace-fed) and returns the updated
    #: accumulators; ``_closed_eject(cycle, rec, in_flight)`` observes
    #: every ejection (the reference engine's ``_on_eject`` hook) and
    #: returns the updated in-flight count.  ``None`` (the default) costs
    #: the open-loop hot path one pointer test per cycle / per ejection.
    _closed_gen = None
    _closed_eject = None

    #: Whether the closed-loop hooks (if any) honor fault epochs.  The
    #: closed-loop subclass flips this to True: its construction-time
    #: validation guarantees a retry policy accompanies any fault
    #: schedule, so epoch swaps can route dropped requests into the
    #: retry path instead of stranding their transactions.
    _closed_faults = False

    #: Epoch-swap drop collector (see :class:`~repro.sim.network.
    #: NetworkSimulator`): a list set by the closed-loop subclass around
    #: ``_apply_epoch``; dropped records append ``(size, meta)``.
    _drop_log = None

    #: Trace chunk length override (None = :data:`~repro.sim.trace.
    #: TRACE_CHUNK_CYCLES`); tests shrink it to stress chunk boundaries.
    trace_chunk_cycles: Optional[int] = None

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        injection_rate: float,
        seed: int = 0,
        vc_buffer_flits: int = DEFAULT_VC_BUFFER_FLITS,
        router_latency: int = ROUTER_LATENCY,
        link_latency: int = LINK_LATENCY,
        extra_hop_latency: int = 0,
        compiled: Optional[CompiledNetwork] = None,
        faults=None,
    ):
        # Fault timelines swap the active table at epoch boundaries; the
        # simulation starts on epoch 0's table (the pristine base, padded
        # to the timeline's common VC count when a later epoch needs
        # more layers), whose compile supersedes any caller-shared one.
        self._timeline = None
        self._epoch_i = 0
        self._faulty = faults is not None
        if faults is not None:
            from ..faults.timeline import FaultTimeline

            self._timeline = FaultTimeline.for_table(table, faults)
            table = self._timeline.epochs[0].table
            compiled = self._timeline.epochs[0].compiled
        self.table = table
        self.topo = table.topology
        self.traffic = traffic
        self.rate = float(injection_rate)
        self.rng = np.random.default_rng(seed)
        self.vc_cap = vc_buffer_flits
        self.hop_delay = router_latency + link_latency + extra_hop_latency

        if compiled is None:
            compiled = CompiledNetwork.for_table(table)
        elif compiled.table is not table:
            raise ValueError("compiled network was built for a different table")
        self.cn = compiled
        n = compiled.n
        self.n = n
        self.num_vcs = compiled.num_vcs
        self.num_links = compiled.num_links
        # Hot-loop views of the immutable compile.
        self.fwd = compiled.fwd
        self.fwd_dst = compiled.fwd_dst
        self.vc_of = compiled.vc_of
        self.out_id = compiled.out_id
        self.inj_key = compiled.inj_key
        self.ch_dst = compiled.ch_dst
        self.in_bases = compiled.in_bases
        self.inj_base = compiled.inj_base
        self.vcs_of = compiled.vcs_of
        self.slot_src = compiled.slot_src
        self.slot_ch = compiled.slot_ch
        self.slot_vc = compiled.slot_vc
        self.slot_qbase = compiled.slot_qbase
        self.slot_clear = compiled.slot_clear
        self.flow_ok = compiled.flow_ok

        # -- per-run mutable state (cheap: O(slots)) -----------------------
        nq = compiled.num_slots
        V = compiled.num_vcs
        L = compiled.num_links
        # Queue state per slot: head record, earliest cycle the head
        # could possibly act (snooze), tail deque, per-channel occupancy
        # bitmask (indexed by the channel's base slot), and the
        # credit-waiter flag (an upstream grant failed on this buffer).
        self.heads: List[Optional[PacketRecord]] = [None] * nq
        self.snooze = [0] * nq
        self.tail: List[Deque[PacketRecord]] = [deque() for _ in range(nq)]
        self.masks = [0] * nq
        self.cwait = [0] * nq

        self.free = [self.vc_cap] * nq
        self.busy_until = [0] * L
        self.rr = [0] * L
        self.inj_busy = [0] * n
        self.ej_busy = [0] * n
        self.ej_rr = [0] * n
        # Source-side state: per-node generated-packet queue plus a
        # bitmask of nodes whose queue is non-empty.
        self.source_q: List[Deque[Tuple[int, int, int, int, int]]] = [
            deque() for _ in range(n)
        ]
        self.pending = 0
        # Source ports not provably blocked (inj-port serialization or
        # full inj buffer); blocked ports re-arm via the injection wheel
        # or an inj-buffer credit release.
        self.pollable = (1 << n) - 1
        self.iwheel: Dict[int, int] = {}
        # Worklist state: the runnable-router mask, per-router wake
        # times (0 = runnable now), and the cycle-indexed timer wheel.
        self.runnable = (1 << n) - 1
        self.wake = [0] * n
        self.wheel: Dict[int, int] = {}

        # Trace state: pre-generated injection events (built lazily on
        # the first generating segment; rebuilt if the rate changes).
        self._trace: Optional[TraceStream] = None
        self._events: List[EventRecord] = []
        self._ev_i = 0
        self._trace_end = 0

        self._pid = 0
        self.cycle = 0
        self.measuring = False
        self.measure_start = 0
        self.offered = 0
        self.ejected = 0
        self.ejected_flits = 0
        self.lat_sum = 0.0
        self.lat_count = 0
        self.in_flight = 0
        self.lost = 0
        # Burst gates come from the pattern's dedicated chain, never the
        # packet-draw stream (same contract as the reference engine).
        self._burst_state = (
            traffic.burst.state(n) if traffic.burst is not None else None
        )

    # -- trace plumbing --------------------------------------------------------
    def _trace_for(self, lam: float) -> Optional[TraceStream]:
        """The event trace for rate ``lam`` (None => inline generation)."""
        if self.traffic.dest_spec is None:
            return None
        trace = self._trace
        if trace is None or trace.rate != lam:
            chunk = self.trace_chunk_cycles
            trace = TraceStream(
                self.traffic, self.n, lam, self.rng,
                **({"chunk_cycles": chunk} if chunk else {}),
            )
            trace.next_cycle = self.cycle
            self._trace = trace
            self._events = []
            self._ev_i = 0
            self._trace_end = self.cycle
        return trace

    def _compile_events(self, chunk) -> Tuple[List[EventRecord], int]:
        """Turn one trace chunk into ready-to-inject event tuples.

        The flow's VC and injection-time request key resolve here with
        two vectorized gathers, so the cycle loop only drains tuples.
        """
        end, cyc, src, dst, size = chunk
        if cyc.size == 0:
            return [], end
        flow = src * self.n + dst
        vc = self.cn.vc_of_np[flow]
        key = self.cn.inj_key_np[flow]
        if self._faulty:
            # Flows the current epoch's table cannot route drain as
            # ``_LOST`` events (counted, never enqueued).
            key = np.where(self.cn.flow_ok_np[flow], key, _LOST)
        return (
            list(
                zip(
                    cyc.tolist(),
                    src.tolist(),
                    vc.tolist(),
                    key.tolist(),
                    size.tolist(),
                    dst.tolist(),
                )
            ),
            end,
        )

    # -- the fused cycle loop --------------------------------------------------
    def _run_cycles(self, ncycles: int) -> None:
        """Advance the simulation by ``ncycles`` cycles.

        One loop frame owns generation, injection, and arbitration so
        every hot container is a local.  Each cycle performs, in order:
        per-node generation (draining the pre-generated trace, or the
        inline scalar draws for spec-less patterns), source-queue
        injection, and per-router arbitration in ascending router index —
        exactly the reference's :meth:`~NetworkSimulator.step` sequence.
        """
        if ncycles <= 0:
            return
        cycle = self.cycle
        end = cycle + ncycles
        n = self.n
        V = self.num_vcs

        # generation / injection state.  With a trace, this cycle's
        # arrivals are precomputed tuples; the inline fallback performs
        # exactly the calls the reference's ``TrafficPattern`` wrappers
        # make, in the same order — the differential suite pins both.
        lam = self.rate
        whole = int(lam)
        frac = lam - whole
        rng = self.rng
        rng_random = rng.random
        dest = self.traffic.dest_fn
        dfrac = self.traffic.data_fraction
        gen_fn = self._closed_gen
        eject_fn = self._closed_eject
        trace = self._trace_for(lam) if lam > 0 and gen_fn is None else None
        use_trace = trace is not None
        events = self._events
        ev_i = self._ev_i
        ev_len = len(events)
        trace_end = self._trace_end
        source_q = self.source_q
        pending = self.pending
        pollable = self.pollable
        iwheel = self.iwheel
        iwheel_pop = iwheel.pop
        iwheel_get = iwheel.get
        inj_base = self.inj_base
        inj_busy = self.inj_busy
        vc_of = self.vc_of
        inj_key = self.inj_key
        num_links = self.num_links
        link_slots = num_links * V

        # switching state
        wake = self.wake
        wheel = self.wheel
        wheel_pop = wheel.pop
        wheel_get = wheel.get
        runnable = self.runnable
        masks = self.masks
        heads = self.heads
        snooze = self.snooze
        tail = self.tail
        free = self.free
        cwait = self.cwait
        slot_ch = self.slot_ch
        busy_until = self.busy_until
        rr = self.rr
        ej_busy = self.ej_busy
        ej_rr = self.ej_rr
        in_bases = self.in_bases
        out_id = self.out_id
        fwd = self.fwd
        fwd_dst = self.fwd_dst
        ch_dst = self.ch_dst
        vcs_of = self.vcs_of
        slot_src = self.slot_src
        slot_vc = self.slot_vc
        slot_qbase = self.slot_qbase
        slot_clear = self.slot_clear
        hop_delay = self.hop_delay
        one = [0]  # reusable single-requester list (fast path)

        # measurement accumulators (flushed back on exit)
        faulty = self._faulty
        flow_ok = self.flow_ok
        burst = self._burst_state

        measuring = self.measuring
        measure_start = self.measure_start
        pid = self._pid
        offered = self.offered
        lost = self.lost
        ejected = self.ejected
        ejected_flits = self.ejected_flits
        lat_sum = self.lat_sum
        lat_count = self.lat_count
        in_flight = self.in_flight

        while cycle < end:
            # -- generation: drain this cycle's precomputed arrivals (the
            # trace replicates the reference's draw stream bit-exactly),
            # or fall back to inline scalar draws for custom patterns.
            # Closed-loop mode replaces the block outright: injection is
            # demand-driven (per-node outstanding budgets) so each
            # cycle's draws depend on simulation state.
            if gen_fn is not None:
                pending, in_flight, pid = gen_fn(cycle, pending, in_flight, pid)
            elif use_trace:
                if cycle >= trace_end:
                    events, trace_end = self._compile_events(trace.next_chunk())
                    ev_i = 0
                    ev_len = len(events)
                while ev_i < ev_len:
                    ev = events[ev_i]
                    if ev[0] != cycle:
                        break
                    ev_i += 1
                    node = ev[1]
                    key = ev[3]
                    if key == _LOST:
                        if measuring:
                            offered += 1
                            lost += 1
                        continue
                    pid += 1
                    source_q[node].append((ev[2], key, ev[4], ev[5], cycle))
                    pending |= 1 << node
                    in_flight += 1
                    if measuring:
                        offered += 1
            elif lam > 0:
                draws = rng_random(n).tolist()
                if whole == 0 and burst is None:
                    # Sub-unit rates: visit only the Bernoulli winners,
                    # in ascending node order — the same nodes, in the
                    # same order, that the reference loop injects for.
                    node = -1
                    for d in draws:
                        node += 1
                        if d >= frac:
                            continue
                        dst = dest(node, rng)
                        size = DATA_FLITS if rng_random() < dfrac else CONTROL_FLITS
                        if faulty and not flow_ok[node * n + dst]:
                            # Draws happen regardless (the stream matches
                            # a pristine run); the packet never exists.
                            if measuring:
                                offered += 1
                                lost += 1
                            continue
                        pid += 1
                        source_q[node].append(
                            (
                                vc_of[node * n + dst],
                                inj_key[node * n + dst],
                                size,
                                dst,
                                cycle,
                            )
                        )
                        pending |= 1 << node
                        in_flight += 1
                        if measuring:
                            offered += 1
                else:
                    g = burst.row(cycle) if burst is not None else None
                    for node in range(n):
                        if g is None:
                            w = whole
                            f = frac
                        else:
                            eff = lam * g[node]
                            w = int(eff)
                            f = eff - w
                        count = w + (1 if draws[node] < f else 0)
                        for _ in range(count):
                            dst = dest(node, rng)
                            size = (
                                DATA_FLITS
                                if rng_random() < dfrac
                                else CONTROL_FLITS
                            )
                            if faulty and not flow_ok[node * n + dst]:
                                if measuring:
                                    offered += 1
                                    lost += 1
                                continue
                            pid += 1
                            source_q[node].append(
                                (
                                    vc_of[node * n + dst],
                                    inj_key[node * n + dst],
                                    size,
                                    dst,
                                    cycle,
                                )
                            )
                            pending |= 1 << node
                            in_flight += 1
                            if measuring:
                                offered += 1

            # -- injection: serialized source ports, ascending node order.
            # Only nodes with a backlog that are not provably blocked are
            # visited; blocked ones park in the injection wheel (port
            # timer) or wait for an inj-buffer credit release.
            ifired = iwheel_pop(cycle, 0)
            if ifired:
                pollable |= ifired
            m = pending & pollable
            if m:
                while m:
                    lsb = m & -m
                    m ^= lsb
                    node = lsb.bit_length() - 1
                    busy_t = inj_busy[node]
                    if busy_t > cycle:
                        pollable ^= lsb
                        iwheel[busy_t] = iwheel_get(busy_t, 0) | lsb
                        continue
                    sq = source_q[node]
                    vc, key, size, dst, birth = sq[0]
                    base = inj_base[node]
                    slot = base + vc
                    if free[slot] < size:
                        # Re-armed when a pop frees this node's inj buffer.
                        pollable ^= lsb
                        continue
                    sq.popleft()
                    if not sq:
                        pending ^= lsb
                    free[slot] -= size
                    ready = cycle + size
                    inj_busy[node] = ready
                    # The port now serializes until ``ready``; park it.
                    pollable ^= lsb
                    iwheel[ready] = iwheel_get(ready, 0) | lsb
                    rec = (ready, key, size, node, dst, birth)
                    bit = 1 << vc
                    if masks[base] & bit:
                        tail[slot].append(rec)
                    else:
                        masks[base] |= bit
                        heads[slot] = rec
                        snooze[slot] = ready
                    if ready < wake[node]:
                        # The node's router sleeps past this packet's
                        # arrival: re-arm it at the arrival cycle.
                        wake[node] = ready
                        wheel[ready] = wheel_get(ready, 0) | lsb

            # -- switching: runnable routers in ascending index order
            # (the reference's same-cycle credit propagation order).
            fired = wheel_pop(cycle, 0)
            if fired:
                runnable |= fired
                while fired:
                    fl = fired & -fired
                    fired ^= fl
                    wake[fl.bit_length() - 1] = 0
            # Iterate the LIVE mask, ascending: a credit release by
            # router v re-arms an upstream router u' immediately, and if
            # u' > v the reference lets it act later in the same cycle.
            u = -1
            while True:
                m_live = runnable >> (u + 1)
                if not m_live:
                    break
                u += (m_live & -m_live).bit_length()
                ubit = 1 << u
                # Scan this router's occupied input queues in the
                # reference order and bucket ready heads per requested
                # output channel (-1 = the ejection port).  Outputs
                # mid-serialization (and a busy ejection port) are
                # skipped at scan time: the reference builds their
                # request lists too, but never touches state for them,
                # so dropping them here is observationally identical.
                # ``wake_t`` accumulates the earliest deterministic
                # timer (packet arrival / busy expiry) for the sleep
                # decision; the single-requester common case avoids
                # building a dict at all.
                requests: Optional[dict] = None
                k1 = _NO_KEY
                s1 = 0
                wake_t = _NEVER
                ej_busy_u = ej_busy[u]
                for base in in_bases[u]:
                    m = masks[base]
                    if not m:
                        continue
                    for vc in vcs_of[m]:
                        slot = base + vc
                        t_ = snooze[slot]
                        if t_ > cycle:
                            if t_ < wake_t:
                                wake_t = t_
                            continue
                        key = heads[slot][1]
                        if key >= 0:
                            b = busy_until[key]
                            if b > cycle:
                                snooze[slot] = b
                                if b < wake_t:
                                    wake_t = b
                                continue
                        elif ej_busy_u > cycle:
                            snooze[slot] = ej_busy_u
                            if ej_busy_u < wake_t:
                                wake_t = ej_busy_u
                            continue
                        if requests is not None:
                            lst = requests.get(key)
                            if lst is None:
                                requests[key] = [slot]
                            else:
                                lst.append(slot)
                        elif k1 == _NO_KEY:
                            k1 = key
                            s1 = slot
                        else:
                            requests = {k1: [s1]}
                            lst = requests.get(key)
                            if lst is None:
                                requests[key] = [slot]
                            else:
                                lst.append(slot)
                if requests is None:
                    if k1 == _NO_KEY:
                        # Every queued head is pinned down by a
                        # deterministic timer: park the router until the
                        # earliest timer (arrivals and credit releases
                        # re-arm it early), skipping exactly the no-op
                        # cycles.
                        runnable ^= ubit
                        wake[u] = wake_t
                        if wake_t != _NEVER:
                            wheel[wake_t] = wheel_get(wake_t, 0) | ubit
                        continue
                    one[0] = s1
                    items = ((k1, one),)
                else:
                    items = requests.items()
                acted = False
                for key, reqs in items:
                    if key < 0:
                        # Ejection port: serialized, one grant per cycle.
                        nr = len(reqs)
                        if nr == 1:
                            start = 0
                            slot = reqs[0]
                        else:
                            start = ej_rr[u] % nr
                            slot = reqs[start]
                        rec = heads[slot]
                        size = rec[2]
                        t = tail[slot]
                        if t:
                            nxt_rec = t.popleft()
                            heads[slot] = nxt_rec
                            snooze[slot] = nxt_rec[0]
                        else:
                            masks[slot_qbase[slot]] &= slot_clear[slot]
                        free[slot] += size
                        if slot >= link_slots:
                            # Freed inj-buffer space: the source port may
                            # retry.
                            pollable |= 1 << (slot_ch[slot] - num_links)
                        elif cwait[slot]:
                            # Freed credit an upstream grant failed on:
                            # re-arm that router and unpark the output.
                            cwait[slot] = 0
                            runnable |= 1 << slot_src[slot]
                        acted = True
                        ej_busy[u] = cycle + size
                        ej_rr[u] = start + 1
                        in_flight -= 1
                        if measuring:
                            # Accepted throughput counts every delivery
                            # in the window; latency samples only
                            # window-born packets (mirrors the reference
                            # `_eject` exactly).
                            ejected += 1
                            ejected_flits += size
                            birth = rec[5]
                            if birth >= measure_start:
                                lat_sum += cycle + size - birth
                                lat_count += 1
                        if eject_fn is not None:
                            in_flight = eject_fn(cycle, rec, in_flight)
                        continue
                    out = key
                    nr = len(reqs)
                    start = 0 if nr == 1 else rr[out] % nr
                    out_base = out * V
                    # round-robin among requestors, skipping those
                    # blocked by missing downstream credit (virtual
                    # cut-through).
                    for k in range(nr):
                        slot = reqs[start + k - nr if start + k >= nr else start + k]
                        rec = heads[slot]
                        size = rec[2]
                        vc = slot_vc[slot]
                        oslot = out_base + vc
                        if free[oslot] < size:
                            cwait[oslot] = 1
                            continue
                        t = tail[slot]
                        if t:
                            nxt_rec = t.popleft()
                            heads[slot] = nxt_rec
                            snooze[slot] = nxt_rec[0]
                        else:
                            masks[slot_qbase[slot]] &= slot_clear[slot]
                        free[slot] += size
                        if slot >= link_slots:
                            pollable |= 1 << (slot_ch[slot] - num_links)
                        elif cwait[slot]:
                            cwait[slot] = 0
                            runnable |= 1 << slot_src[slot]
                        acted = True
                        free[oslot] -= size
                        done = cycle + size
                        busy_until[out] = done
                        v = ch_dst[out]
                        src = rec[3]
                        dst = rec[4]
                        if dst == v:
                            nkey = -1
                        elif fwd_dst is not None:
                            nkey = fwd_dst[v * n + dst]
                        else:
                            nkey = fwd[(v * n + src) * n + dst]
                        ready = done + hop_delay
                        nrec = (ready, nkey, size, src, dst, rec[5])
                        bit = 1 << vc
                        if masks[out_base] & bit:
                            tail[oslot].append(nrec)
                        else:
                            masks[out_base] |= bit
                            heads[oslot] = nrec
                            snooze[oslot] = ready
                        nxt = start + k + 1
                        rr[out] = nxt - nr if nxt >= nr else nxt
                        if ready < wake[v]:
                            # The downstream router sleeps past this
                            # packet's arrival: re-arm it then.
                            wake[v] = ready
                            wheel[ready] = wheel_get(ready, 0) | (1 << v)
                        break
                if not acted:
                    # Requests existed but every one was credit-blocked:
                    # no state changed (the reference leaves round-robin
                    # pointers alone on failed grants), and each blocking
                    # condition re-arms this router — timers via the
                    # wheel, downstream credit via ``cwait``, new
                    # arrivals via the enqueue wake.
                    runnable ^= ubit
                    wake[u] = wake_t
                    if wake_t != _NEVER:
                        wheel[wake_t] = wheel_get(wake_t, 0) | ubit
            cycle += 1

        self.cycle = cycle
        self.pending = pending
        self.pollable = pollable
        self.runnable = runnable
        self._events = events
        self._ev_i = ev_i
        self._trace_end = trace_end
        self._pid = pid
        self.offered = offered
        self.ejected = ejected
        self.ejected_flits = ejected_flits
        self.lat_sum = lat_sum
        self.lat_count = lat_count
        self.in_flight = in_flight
        self.lost = lost

    # -- fault epochs ----------------------------------------------------------
    def _advance(self, ncycles: int) -> None:
        """Advance ``ncycles``, applying fault epochs at their start
        cycles (before that cycle's generation — the reference's
        ``step`` order), and running the fused loop between them."""
        tl = self._timeline
        if tl is None:
            self._run_cycles(ncycles)
            return
        if self._closed_gen is not None and not self._closed_faults:
            raise ValueError(
                "fault schedule attached to closed-loop generation hooks "
                "without timeout/retry support: an epoch swap would strand "
                "in-flight request transactions.  Construct a closed-loop "
                "simulator with a RetryPolicy (faults=... requires "
                "retry=...) instead of installing _closed_gen on the "
                "open-loop engine."
            )
        eps = tl.epochs
        end = self.cycle + ncycles
        while self.cycle < end:
            i = self._epoch_i
            while i + 1 < len(eps) and eps[i + 1].start <= self.cycle:
                i += 1
                self._apply_epoch(eps[i])
            self._epoch_i = i
            nxt = eps[i + 1].start if i + 1 < len(eps) else end
            self._run_cycles(min(end, nxt) - self.cycle)

    def _apply_epoch(self, epoch) -> None:
        """Swap in a fault epoch's compiled network.

        Mirrors the reference engine's ``_apply_epoch`` walk exactly:
        every queued record is visited in canonical order (link channels
        0..L-1 then injection channels, VCs ascending, FIFO within a
        VC), dropped if its current router died, it is in transit on a
        link that died, or its flow became unroutable — and otherwise
        re-keyed as if freshly injected at its current router (new VC,
        new request key from the survivor table).  Port/link busy timers
        survive untouched: hardware serialization outlives a table swap.
        """
        cn_new = epoch.compiled
        dead_routers = epoch.dead_routers
        dead_channels = epoch.dead_channels
        n = self.n
        V = self.num_vcs
        L = self.num_links
        cycle = self.cycle
        vc_cap = self.vc_cap
        heads = self.heads
        snooze = self.snooze
        tail = self.tail
        masks = self.masks
        free = self.free
        ch_dst = self.ch_dst
        vcs_of = self.vcs_of
        vc_of_new = cn_new.vc_of
        inj_key_new = cn_new.inj_key
        flow_ok_new = cn_new.flow_ok
        dropped = 0
        drop_log = self._drop_log

        for ch in range(L + n):
            base = ch * V
            m = masks[base]
            if not m:
                continue
            cur = ch_dst[ch] if ch < L else ch - L
            ch_dead = cur in dead_routers
            link_dead = ch in dead_channels
            per_vc: List[List[PacketRecord]] = [[] for _ in range(V)]
            for vc in vcs_of[m]:
                slot = base + vc
                recs = [heads[slot]]
                recs.extend(tail[slot])
                for rec in recs:
                    ready, _key, size, _src, dst, birth = rec
                    if (
                        ch_dead
                        or (link_dead and ready > cycle)
                        or (dst != cur and not flow_ok_new[cur * n + dst])
                    ):
                        dropped += 1
                        if drop_log is not None:
                            drop_log.append((size, birth))
                        continue
                    if dst == cur:
                        # Key is already -1 (eject here); keep the VC so
                        # the record keeps its slot.
                        per_vc[vc].append(
                            (ready, -1, size, cur, dst, birth)
                        )
                    else:
                        per_vc[vc_of_new[cur * n + dst]].append(
                            (
                                ready,
                                inj_key_new[cur * n + dst],
                                size,
                                cur,
                                dst,
                                birth,
                            )
                        )
            mask = 0
            for vc in range(V):
                slot = base + vc
                q = per_vc[vc]
                if q:
                    mask |= 1 << vc
                    heads[slot] = q[0]
                    snooze[slot] = q[0][0]
                    tail[slot] = deque(q[1:])
                    free[slot] = vc_cap - sum(r[2] for r in q)
                else:
                    heads[slot] = None
                    snooze[slot] = 0
                    tail[slot] = deque()
                    free[slot] = vc_cap
            masks[base] = mask

        # Source queues: drop dead-node and unroutable backlog, re-key
        # the rest.
        pending = 0
        for node in range(n):
            sq = self.source_q[node]
            if not sq:
                continue
            if node in dead_routers:
                dropped += len(sq)
                if drop_log is not None:
                    drop_log.extend(
                        (size, birth) for (_vc, _key, size, _dst, birth) in sq
                    )
                sq.clear()
                continue
            kept: Deque[Tuple[int, int, int, int, int]] = deque()
            for (vc, key, size, dst, birth) in sq:
                if dst != node and not flow_ok_new[node * n + dst]:
                    dropped += 1
                    if drop_log is not None:
                        drop_log.append((size, birth))
                    continue
                if dst == node:
                    kept.append((vc, key, size, dst, birth))
                else:
                    kept.append(
                        (
                            vc_of_new[node * n + dst],
                            inj_key_new[node * n + dst],
                            size,
                            dst,
                            birth,
                        )
                    )
            self.source_q[node] = kept
            if kept:
                pending |= 1 << node
        self.pending = pending

        # Every live router re-scans from scratch under the new tables;
        # snooze/cwait state tied to old request keys is stale.
        live_mask = 0
        for r in range(n):
            if r not in dead_routers:
                live_mask |= 1 << r
        self.cwait = [0] * cn_new.num_slots
        self.runnable = live_mask
        self.wake = [0] * n
        self.wheel.clear()
        self.pollable = live_mask
        self.iwheel.clear()

        # Pending trace events were compiled against the old tables;
        # re-resolve VC / request key / liveness under the new ones.
        events = self._events
        ev_i = self._ev_i
        if ev_i < len(events):
            fresh: List[EventRecord] = []
            for (c, node, _vc, _key, size, dst) in events[ev_i:]:
                flow = node * n + dst
                if not flow_ok_new[flow]:
                    fresh.append((c, node, 0, _LOST, size, dst))
                else:
                    fresh.append(
                        (c, node, vc_of_new[flow], inj_key_new[flow], size, dst)
                    )
            self._events = fresh
        else:
            self._events = []
        self._ev_i = 0

        self.in_flight -= dropped
        if self.measuring:
            self.lost += dropped

        self.cn = cn_new
        self.table = epoch.table
        self.fwd = cn_new.fwd
        self.fwd_dst = cn_new.fwd_dst
        self.vc_of = cn_new.vc_of
        self.out_id = cn_new.out_id
        self.inj_key = cn_new.inj_key
        self.ch_dst = cn_new.ch_dst
        self.in_bases = cn_new.in_bases
        self.inj_base = cn_new.inj_base
        self.vcs_of = cn_new.vcs_of
        self.slot_src = cn_new.slot_src
        self.slot_ch = cn_new.slot_ch
        self.slot_vc = cn_new.slot_vc
        self.slot_qbase = cn_new.slot_qbase
        self.slot_clear = cn_new.slot_clear
        self.flow_ok = cn_new.flow_ok

    # -- public stepping API ---------------------------------------------------
    def step(self) -> None:
        """Advance one cycle (generation, injection, arbitration)."""
        self._advance(1)

    def run(self, warmup: int, measure: int) -> SimStats:
        """Warm up, then measure for ``measure`` cycles."""
        self._advance(warmup)
        self.measuring = True
        self.measure_start = self.cycle
        self._advance(measure)
        self.measuring = False
        return SimStats(
            cycles=measure,
            offered_packets=self.offered,
            ejected_packets=self.ejected,
            ejected_flits=self.ejected_flits,
            latency_sum=self.lat_sum,
            latency_count=self.lat_count,
            n_nodes=self.n,
            lost_packets=self.lost,
        )


ENGINES = {
    "reference": NetworkSimulator,
    "fast": FastNetworkSimulator,
}
