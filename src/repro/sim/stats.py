"""Extended simulation instrumentation: channel utilization, latency
distributions, and a deadlock watchdog.

``InstrumentedSimulator`` extends the base simulator with the per-channel
activity statistics the paper feeds into DSENT ("activity statistics on
just the NoI topology was input to DSENT", Section V-D) and with a
forward-progress watchdog that turns a silent wormhole deadlock or
routing livelock into a loud failure — invaluable when experimenting with
custom VC assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from .network import NetworkSimulator
from .packet import Packet
from .traffic import TrafficPattern

Channel = Tuple[int, int]


class DeadlockError(RuntimeError):
    """Raised when the watchdog sees packets in flight but no ejections
    for ``watchdog_cycles`` consecutive cycles."""


@dataclass
class ChannelStats:
    """Activity accounting for one directed channel."""

    busy_cycles: int = 0
    packets: int = 0
    flits: int = 0

    def utilization(self, cycles: int) -> float:
        return self.busy_cycles / cycles if cycles else 0.0


@dataclass
class InstrumentationReport:
    """Everything the extended simulator measured."""

    cycles: int
    channel_stats: Dict[Channel, ChannelStats]
    latencies: np.ndarray

    @property
    def mean_utilization(self) -> float:
        if not self.channel_stats:
            return 0.0
        return float(
            np.mean([s.utilization(self.cycles) for s in self.channel_stats.values()])
        )

    @property
    def max_utilization(self) -> float:
        if not self.channel_stats:
            return 0.0
        return float(
            np.max([s.utilization(self.cycles) for s in self.channel_stats.values()])
        )

    def hottest_channels(self, k: int = 5) -> List[Tuple[Channel, float]]:
        """The k most-utilized channels (the simulated bottlenecks —
        compare against MCLB's predicted max-load channels)."""
        items = [
            (ch, s.utilization(self.cycles)) for ch, s in self.channel_stats.items()
        ]
        return sorted(items, key=lambda kv: -kv[1])[:k]

    def latency_percentiles(self, qs=(50, 90, 99)) -> Dict[int, float]:
        if self.latencies.size == 0:
            return {q: float("nan") for q in qs}
        return {q: float(np.percentile(self.latencies, q)) for q in qs}

    def activity_factor(self) -> float:
        """Mean channel utilization — the DSENT activity input."""
        return self.mean_utilization


class InstrumentedSimulator(NetworkSimulator):
    """Base simulator + per-channel activity, latency samples, watchdog."""

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        injection_rate: float,
        watchdog_cycles: int = 8000,
        **kw,
    ):
        super().__init__(table, traffic, injection_rate, **kw)
        self.watchdog_cycles = int(watchdog_cycles)
        self._last_eject_cycle = 0
        self._channel_stats: Dict[Channel, ChannelStats] = {
            c: ChannelStats() for c in self.channels
        }
        self._latency_samples: List[int] = []
        # Channel occupancy is recorded at the grant site (the base
        # simulator invokes the callback for every arbitration win), so
        # idle channels cost nothing — unlike snapshotting ``busy_until``
        # for every outgoing channel of every router each cycle.
        self._grant_cb = self._record_grant

    def _record_grant(self, channel: Channel, pkt: Packet) -> None:
        st = self._channel_stats[channel]
        st.busy_cycles += pkt.size_flits
        st.packets += 1
        st.flits += pkt.size_flits

    def _on_eject(self, pkt: Packet) -> None:
        self._last_eject_cycle = self.cycle
        # Mirror the base accounting: latency samples only for packets
        # born inside the measurement window (matching ``lat_count``).
        if self.measuring and pkt.birth_cycle >= self.measure_start:
            self._latency_samples.append(self.cycle + pkt.size_flits - pkt.birth_cycle)
        super()._on_eject(pkt)

    def step(self) -> None:
        super().step()
        if (
            self.in_flight > 0
            and self.cycle - self._last_eject_cycle > self.watchdog_cycles
        ):
            raise DeadlockError(
                f"no ejection for {self.watchdog_cycles} cycles with "
                f"{self.in_flight} packets in flight at cycle {self.cycle} "
                f"(deadlock or pathological livelock)"
            )

    def report(self) -> InstrumentationReport:
        return InstrumentationReport(
            cycles=max(self.cycle, 1),
            channel_stats=dict(self._channel_stats),
            latencies=np.asarray(self._latency_samples, dtype=float),
        )


def measure_activity(
    table: RoutingTable,
    traffic: TrafficPattern,
    rate: float,
    warmup: int = 300,
    measure: int = 1200,
    seed: int = 0,
) -> float:
    """Simulated mean channel utilization at an operating point — the
    activity factor for :func:`repro.power.analyze` (the paper's
    simulation→DSENT hand-off)."""
    sim = InstrumentedSimulator(table, traffic, rate, seed=seed)
    sim.run(warmup, measure)
    return sim.report().activity_factor()
