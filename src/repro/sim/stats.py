"""Extended simulation instrumentation: channel utilization, latency
distributions, and a deadlock watchdog.

``InstrumentedSimulator`` extends the base simulator with the per-channel
activity statistics the paper feeds into DSENT ("activity statistics on
just the NoI topology was input to DSENT", Section V-D) and with a
forward-progress watchdog that turns a silent wormhole deadlock or
routing livelock into a loud failure — invaluable when experimenting with
custom VC assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from .network import NetworkSimulator
from .packet import Packet
from .traffic import TrafficPattern

Channel = Tuple[int, int]


class DeadlockError(RuntimeError):
    """Raised when the watchdog sees packets in flight but no ejections
    for ``watchdog_cycles`` consecutive cycles."""


@dataclass(frozen=True)
class WindowSample:
    """Closed-loop counters over one measurement window.

    ``issued``/``completed``/``failed``/``retried``/``rtt_sum`` are
    deltas over ``[start, end)``; ``backlog`` (live transactions holding
    MLP slots) and ``net_in_flight`` (packets in the network) are
    snapshots at ``end``.  Produced by the closed-loop engines'
    ``run_windows`` and consumed by :func:`recovery_metrics`.
    """

    start: int
    end: int
    issued: int
    completed: int
    failed: int
    retried: int
    rtt_sum: float
    backlog: int
    net_in_flight: int

    @property
    def avg_rtt(self) -> float:
        """Mean round trip of requests completed in this window."""
        if self.completed == 0:
            return float("nan")
        return self.rtt_sum / self.completed

    def as_dict(self) -> Dict[str, float]:
        return {
            "start": self.start,
            "end": self.end,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "rtt_sum": self.rtt_sum,
            "backlog": self.backlog,
            "net_in_flight": self.net_in_flight,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "WindowSample":
        return cls(
            start=int(d["start"]),
            end=int(d["end"]),
            issued=int(d["issued"]),
            completed=int(d["completed"]),
            failed=int(d["failed"]),
            retried=int(d["retried"]),
            rtt_sum=float(d["rtt_sum"]),
            backlog=int(d["backlog"]),
            net_in_flight=int(d["net_in_flight"]),
        )


@dataclass(frozen=True)
class RecoveryMetrics:
    """Transient recovery quantities after a ``link_up``/``router_up``.

    Both times are measured from ``recovery_cycle`` to the *end* of the
    first window satisfying the criterion, and are ``inf`` when the run
    never settles:

    * ``time_to_drain`` — backlog (live transactions) back within
      tolerance of the pre-fault baseline;
    * ``settling_time`` — windowed mean RTT back within tolerance of the
      pre-fault baseline.
    """

    fault_cycle: int
    recovery_cycle: int
    baseline_backlog: float
    baseline_rtt: float
    time_to_drain: float
    settling_time: float

    @property
    def recovered(self) -> bool:
        return (
            self.time_to_drain != float("inf")
            and self.settling_time != float("inf")
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "fault_cycle": self.fault_cycle,
            "recovery_cycle": self.recovery_cycle,
            "baseline_backlog": self.baseline_backlog,
            "baseline_rtt": self.baseline_rtt,
            "time_to_drain": self.time_to_drain,
            "settling_time": self.settling_time,
        }


def recovery_metrics(
    samples: List[WindowSample],
    fault_cycle: int,
    recovery_cycle: int,
    tolerance: float = 0.25,
    baseline_windows: int = 3,
) -> RecoveryMetrics:
    """Time-to-drain and latency-settling time from windowed stats.

    The baseline is the mean over the last ``baseline_windows`` windows
    that end at or before ``fault_cycle`` (the closest-to-steady-state
    pre-fault view; the warmup ramp at the start of the run is excluded
    by construction).  A post-recovery window counts as drained/settled
    when its backlog / mean RTT is at most ``baseline * (1 + tolerance)
    + 1`` — the ``+ 1`` absolute slack keeps tiny baselines from
    demanding sub-unit precision of integer counters.
    """
    pre = [s for s in samples if s.end <= fault_cycle]
    if not pre:  # degenerate placement: fall back to the first window
        pre = samples[:1]
    tail = pre[-baseline_windows:]
    base_backlog = sum(s.backlog for s in tail) / len(tail)
    done = sum(s.completed for s in tail)
    base_rtt = (
        sum(s.rtt_sum for s in tail) / done if done > 0 else float("nan")
    )

    drain_limit = base_backlog * (1.0 + tolerance) + 1.0
    rtt_limit = (
        base_rtt * (1.0 + tolerance) + 1.0
        if base_rtt == base_rtt  # not NaN
        else float("inf")
    )
    time_to_drain = float("inf")
    settling_time = float("inf")
    for s in samples:
        if s.start < recovery_cycle:
            continue
        if time_to_drain == float("inf") and s.backlog <= drain_limit:
            time_to_drain = float(s.end - recovery_cycle)
        if (
            settling_time == float("inf")
            and s.completed > 0
            and s.avg_rtt <= rtt_limit
        ):
            settling_time = float(s.end - recovery_cycle)
        if time_to_drain != float("inf") and settling_time != float("inf"):
            break
    return RecoveryMetrics(
        fault_cycle=int(fault_cycle),
        recovery_cycle=int(recovery_cycle),
        baseline_backlog=base_backlog,
        baseline_rtt=base_rtt,
        time_to_drain=time_to_drain,
        settling_time=settling_time,
    )


@dataclass
class ChannelStats:
    """Activity accounting for one directed channel."""

    busy_cycles: int = 0
    packets: int = 0
    flits: int = 0

    def utilization(self, cycles: int) -> float:
        return self.busy_cycles / cycles if cycles else 0.0


@dataclass
class InstrumentationReport:
    """Everything the extended simulator measured."""

    cycles: int
    channel_stats: Dict[Channel, ChannelStats]
    latencies: np.ndarray

    @property
    def mean_utilization(self) -> float:
        if not self.channel_stats:
            return 0.0
        return float(
            np.mean([s.utilization(self.cycles) for s in self.channel_stats.values()])
        )

    @property
    def max_utilization(self) -> float:
        if not self.channel_stats:
            return 0.0
        return float(
            np.max([s.utilization(self.cycles) for s in self.channel_stats.values()])
        )

    def hottest_channels(self, k: int = 5) -> List[Tuple[Channel, float]]:
        """The k most-utilized channels (the simulated bottlenecks —
        compare against MCLB's predicted max-load channels)."""
        items = [
            (ch, s.utilization(self.cycles)) for ch, s in self.channel_stats.items()
        ]
        return sorted(items, key=lambda kv: -kv[1])[:k]

    def latency_percentiles(self, qs=(50, 90, 99)) -> Dict[int, float]:
        if self.latencies.size == 0:
            return {q: float("nan") for q in qs}
        return {q: float(np.percentile(self.latencies, q)) for q in qs}

    def activity_factor(self) -> float:
        """Mean channel utilization — the DSENT activity input."""
        return self.mean_utilization


class InstrumentedSimulator(NetworkSimulator):
    """Base simulator + per-channel activity, latency samples, watchdog."""

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        injection_rate: float,
        watchdog_cycles: int = 8000,
        **kw,
    ):
        super().__init__(table, traffic, injection_rate, **kw)
        self.watchdog_cycles = int(watchdog_cycles)
        self._last_eject_cycle = 0
        self._channel_stats: Dict[Channel, ChannelStats] = {
            c: ChannelStats() for c in self.channels
        }
        self._latency_samples: List[int] = []
        # Channel occupancy is recorded at the grant site (the base
        # simulator invokes the callback for every arbitration win), so
        # idle channels cost nothing — unlike snapshotting ``busy_until``
        # for every outgoing channel of every router each cycle.
        self._grant_cb = self._record_grant

    def _record_grant(self, channel: Channel, pkt: Packet) -> None:
        st = self._channel_stats[channel]
        st.busy_cycles += pkt.size_flits
        st.packets += 1
        st.flits += pkt.size_flits

    def _on_eject(self, pkt: Packet) -> None:
        self._last_eject_cycle = self.cycle
        # Mirror the base accounting: latency samples only for packets
        # born inside the measurement window (matching ``lat_count``).
        if self.measuring and pkt.birth_cycle >= self.measure_start:
            self._latency_samples.append(self.cycle + pkt.size_flits - pkt.birth_cycle)
        super()._on_eject(pkt)

    def step(self) -> None:
        super().step()
        if (
            self.in_flight > 0
            and self.cycle - self._last_eject_cycle > self.watchdog_cycles
        ):
            raise DeadlockError(
                f"no ejection for {self.watchdog_cycles} cycles with "
                f"{self.in_flight} packets in flight at cycle {self.cycle} "
                f"(deadlock or pathological livelock)"
            )

    def report(self) -> InstrumentationReport:
        return InstrumentationReport(
            cycles=max(self.cycle, 1),
            channel_stats=dict(self._channel_stats),
            latencies=np.asarray(self._latency_samples, dtype=float),
        )


def measure_activity(
    table: RoutingTable,
    traffic: TrafficPattern,
    rate: float,
    warmup: int = 300,
    measure: int = 1200,
    seed: int = 0,
) -> float:
    """Simulated mean channel utilization at an operating point — the
    activity factor for :func:`repro.power.analyze` (the paper's
    simulation→DSENT hand-off)."""
    sim = InstrumentedSimulator(table, traffic, rate, seed=seed)
    sim.run(warmup, measure)
    return sim.report().activity_factor()
