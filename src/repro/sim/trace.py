"""Vectorized traffic traces: pre-generated injection event streams.

The reference simulator's per-cycle generation makes one scalar
``destination`` closure call and one scalar ``rng.random()`` size draw
per packet — the RNG-bound work PR 2's engine identified as the sweep
hot path's ceiling.  :class:`TraceStream` removes it: injection events
``(cycle, src, dst, size)`` are pre-generated in large numpy chunks from
**raw 64-bit PCG64 words** (:mod:`repro.sim.rngstream`), replicating the
reference engine's exact draw order so the fast engine's statistics stay
bit-identical to the oracle:

* per cycle, ``n`` Bernoulli doubles (the reference's ``rng.random(n)``);
* per winning node, in ascending node order, the pattern's destination
  draws and one packet-size double, interleaved exactly as the scalar
  wrappers interleave them.

Two generation paths share one buffered raw-word stream:

* the **vectorized path** (sub-unit rates, every reachable ``integers``
  bound ``>= 2``) exploits constant per-packet word consumption: a cheap
  per-cycle prefix-sum walk pins each cycle's buffer offset, then all
  Bernoulli winners, destination draws (Lemire-32 with half-word cache
  arithmetic), and size draws of a whole chunk resolve as array ops;
* the **scalar-emulation path** (rates ``>= 1``, degenerate bounds, or
  the one-in-billions Lemire rejection the vectorized path detects and
  defers to) walks the same buffer with plain Python integer arithmetic
  — still far cheaper than per-packet Generator calls.

A trace owns its Generator outright: it may pre-draw past the cycles
consumed so far, which is invisible to the simulation (generation is the
only RNG consumer in both engines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .packet import CONTROL_FLITS, DATA_FLITS
from .rngstream import (
    DOUBLE_SCALE,
    doubles_from_raw,
    lemire32,
    lemire32_scalar,
    take_raw,
)
from .traffic import TrafficPattern

#: Cycles generated per chunk.  Large enough to amortize the numpy pass,
#: small enough that a short run never pre-draws absurdly far ahead.
TRACE_CHUNK_CYCLES = 2048

_U32 = np.uint64(0xFFFFFFFF)
_S32 = np.uint64(32)

#: One chunk of injection events: (end_cycle, cycles, srcs, dsts, sizes)
#: with events sorted by (cycle, src) — the reference injection order —
#: covering every cycle in [previous end, end_cycle).
TraceChunk = Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class TraceStream:
    """Pre-generated injection events for one (pattern, rate, seed) run.

    Requires ``traffic.dest_spec`` (every built-in pattern has one);
    callers with a spec-less custom pattern should fall back to scalar
    generation against the Generator directly.
    """

    def __init__(
        self,
        traffic: TrafficPattern,
        n_nodes: int,
        rate: float,
        rng: np.random.Generator,
        chunk_cycles: int = TRACE_CHUNK_CYCLES,
    ):
        spec = traffic.dest_spec
        if spec is None:
            raise ValueError(
                f"pattern {traffic.name!r} has no dest_spec; use scalar "
                f"generation instead"
            )
        if rate <= 0:
            raise ValueError("TraceStream requires a positive injection rate")
        self.spec = spec
        self.n = n_nodes
        self.rate = float(rate)
        self.whole = int(self.rate)
        self.frac = self.rate - self.whole
        self.dfrac = traffic.data_fraction
        self.rng = rng
        self.chunk_cycles = int(chunk_cycles)
        self.next_cycle = 0
        # Buffered raw words + the bit generator's half-word cache state
        # (tracked here: all consumption goes through this buffer).
        self._buf = np.empty(0, dtype=np.uint64)
        self._pos = 0
        self._cache_has = 0
        self._cache_val = 0
        kind = spec.kind
        self._has_int = kind != "table"
        self._extra_dbl = 2 if kind == "hotspot" else 1  # non-Bernoulli doubles/packet
        # Burst gates come from a dedicated chain (deterministic from
        # cycle 0), so they never touch this raw-word buffer.
        self._burst = (
            traffic.burst.state(n_nodes) if traffic.burst is not None else None
        )
        self._vec_ok = (
            self.whole == 0
            and (not self._has_int or spec.min_int_bound(n_nodes) >= 2)
            and (
                traffic.burst is None
                or self.rate * traffic.burst.max_scale < 1.0
            )
        )
        # Scalar-path lookup lists (built lazily on first use).
        self._scalar_tables: Optional[tuple] = None

    # -- buffer management ---------------------------------------------------
    def _ensure(self, words: int) -> None:
        avail = self._buf.size - self._pos
        if avail >= words:
            return
        fresh = take_raw(self.rng, max(words - avail, 4096))
        if avail > 0:
            self._buf = np.concatenate([self._buf[self._pos :], fresh])
        else:
            self._buf = fresh
        self._pos = 0

    # -- public API ----------------------------------------------------------
    def next_chunk(self) -> TraceChunk:
        """Generate the next chunk of cycles (at least one)."""
        if self._vec_ok:
            out = self._chunk_vectorized()
            if out is not None:
                return out
            # A Lemire rejection was detected: nothing was committed, so
            # the scalar emulation below replays the same words exactly.
        return self._chunk_scalar()

    # -- vectorized generation -----------------------------------------------
    def _chunk_vectorized(self) -> Optional[TraceChunk]:
        n = self.n
        spec = self.spec
        frac = self.frac
        C = self.chunk_cycles
        extra = self._extra_dbl
        has_int = self._has_int
        # Worst case one cycle: every node wins.
        worst = n + n * extra + ((n + 1) // 2 + 1 if has_int else 0)
        expect = n + int(n * frac * (extra + 1.5)) + 2
        self._ensure(max(worst + 1, C * expect))

        V = self._buf[self._pos :]
        D = doubles_from_raw(V)
        avail = V.size
        burst = self._burst
        if burst is None:
            W = D < frac
            P = np.concatenate(([0], np.cumsum(W)))
        else:
            # Per-cycle per-node thresholds; rate * max_scale < 1 is part
            # of _vec_ok, so the whole part stays zero under modulation.
            T = burst.rows(self.next_cycle, self.next_cycle + C) * self.rate

        # The per-cycle offset walk: data-dependent, but four integer
        # ops per cycle off the prefix sums (one n-wide compare per cycle
        # when modulated).
        offs: List[int] = []
        ks: List[int] = []
        hs: List[int] = []
        pos = 0
        h = self._cache_has
        cyc = 0
        while cyc < C and pos + worst <= avail:
            if burst is None:
                k = int(P[pos + n]) - int(P[pos])
            else:
                k = int((D[pos : pos + n] < T[cyc]).sum())
            offs.append(pos)
            ks.append(k)
            hs.append(h)
            pos += n + extra * k
            if has_int:
                pos += (k + 1 - h) // 2
                h = (h + k) & 1
            cyc += 1

        base_cycle = self.next_cycle
        end_cycle = base_cycle + cyc
        offs_a = np.array(offs, dtype=np.int64)
        ks_a = np.array(ks, dtype=np.int64)
        total = int(ks_a.sum())
        if total == 0:
            self._commit(pos, h, None, end_cycle)
            empty = np.empty(0, dtype=np.int64)
            return end_cycle, empty, empty, empty, empty

        # All winners of the chunk, in (cycle, node) order.
        idx = offs_a[:, None] + np.arange(n)
        Wm = (D[idx] < T[:cyc]) if burst is not None else W[idx]
        rows, srcs = np.nonzero(Wm)
        cycles = base_cycle + rows
        kstart = np.concatenate(([0], np.cumsum(ks_a)))
        r = np.arange(total) - kstart[rows]  # within-cycle packet rank
        off_pkt = offs_a[rows]
        h_cyc = np.array(hs, dtype=np.int64)[rows]

        if spec.kind == "table":
            sizepos = off_pkt + n + r
            dsts = spec.table[srcs]
            last_word = None
        else:
            pre = (r + 1 - h_cyc) // 2  # int words consumed by earlier ranks
            consumes = ((h_cyc + r) & 1) == 0
            if spec.kind == "hotspot":
                hotpos = off_pkt + n + 2 * r + pre
                intpos = hotpos + 1
                hb = spec.bounds[srcs]
                eff_hot = (D[hotpos] < spec.hot_fraction) & (hb > 0)
                bounds = np.where(eff_hot, hb, n - 1)
            else:
                intpos = off_pkt + n + r + pre
                if spec.kind == "uniform":
                    bounds = n - 1
                else:  # memory
                    bounds = spec.bounds[srcs]
            sizepos = intpos + consumes
            halves, last_word = self._halves(V, intpos, consumes)
            vals, reject = lemire32(halves, bounds)
            if reject.any():
                return None
            if spec.kind == "uniform":
                dsts = vals + (vals >= srcs)
            elif spec.kind == "memory":
                dsts = spec.table[srcs, vals]
            else:
                dsts = np.where(
                    eff_hot,
                    spec.table[srcs, np.where(eff_hot, vals, 0)],
                    vals + (vals >= srcs),
                )

        sizes = np.where(D[sizepos] < self.dfrac, DATA_FLITS, CONTROL_FLITS)
        self._commit(pos, h, last_word, end_cycle)
        return end_cycle, cycles, srcs, dsts.astype(np.int64), sizes

    def _halves(self, V, intpos, consumes):
        """Half-words served to the chunk's bounded draws, in order.

        Consuming draws read the low half of a fresh word; the draw
        after each reads that word's cached high half; a leading
        non-consuming draw reads the half carried over from the previous
        chunk.  Returns the halves and the last fresh word (the pending
        high-half source if the chunk ends mid-word).
        """
        halves = np.empty(intpos.size, dtype=np.uint64)
        cons_pos = intpos[consumes]
        cons_words = V[cons_pos]
        halves[consumes] = cons_words & _U32
        nc = ~consumes
        if nc.any():
            cand = np.where(consumes, intpos, np.int64(-1))
            ff = np.maximum.accumulate(cand)[nc]
            vals_nc = np.empty(ff.size, dtype=np.uint64)
            lead = ff < 0
            vals_nc[lead] = np.uint64(self._cache_val)
            vals_nc[~lead] = V[ff[~lead]] >> _S32
            halves[nc] = vals_nc
        last_word = int(cons_words[-1]) if cons_words.size else None
        return halves, last_word

    def _commit(self, consumed, cache_has, last_word, end_cycle) -> None:
        self._pos += consumed
        self._cache_has = cache_has
        if cache_has and last_word is not None:
            self._cache_val = last_word >> 32
        self.next_cycle = end_cycle

    # -- scalar emulation ----------------------------------------------------
    def _scalar_lookups(self):
        if self._scalar_tables is None:
            spec = self.spec
            table = spec.table.tolist() if spec.table is not None else None
            bounds = spec.bounds.tolist() if spec.bounds is not None else None
            self._scalar_tables = (table, bounds)
        return self._scalar_tables

    def _chunk_scalar(self) -> TraceChunk:
        """Exact scalar emulation over the raw buffer (any rate, any
        bounds, rejection loops included)."""
        n = self.n
        spec = self.spec
        kind = spec.kind
        whole = self.whole
        frac = self.frac
        dfrac = self.dfrac
        hf = spec.hot_fraction
        table, bounds = self._scalar_lookups()
        C = self.chunk_cycles

        start = self._pos
        words = self._buf[start:].tolist()
        ext: List[int] = []
        navail = len(words)

        def word(i: int) -> int:
            if i < navail:
                return words[i]
            j = i - navail
            while j >= len(ext):
                ext.extend(take_raw(self.rng, 4096).tolist())
            return ext[j]

        pos = 0
        h = self._cache_has
        hval = self._cache_val

        def next32() -> int:
            nonlocal pos, h, hval
            if h:
                h = 0
                return hval
            w = word(pos)
            pos += 1
            h = 1
            hval = w >> 32
            return w & 0xFFFFFFFF

        def lem(bound: int) -> int:
            return lemire32_scalar(next32, bound)

        burst = self._burst
        rate = self.rate
        cycles: List[int] = []
        srcs: List[int] = []
        dsts: List[int] = []
        sizes: List[int] = []
        base_cycle = self.next_cycle
        for c in range(C):
            cycno = base_cycle + c
            g = burst.row(cycno) if burst is not None else None
            bern = [word(pos + i) for i in range(n)]
            pos += n
            for node in range(n):
                if g is None:
                    w = whole
                    f = frac
                else:
                    eff = rate * g[node]
                    w = int(eff)
                    f = eff - w
                count = w + (
                    1 if (bern[node] >> 11) * DOUBLE_SCALE < f else 0
                )
                for _ in range(count):
                    if kind == "table":
                        dst = table[node]
                    elif kind == "uniform":
                        d = lem(n - 1)
                        dst = d if d < node else d + 1
                    elif kind == "memory":
                        dst = table[node][lem(bounds[node])]
                    else:  # hotspot
                        dst = -1
                        if (word(pos) >> 11) * DOUBLE_SCALE < hf:
                            pos += 1
                            b = bounds[node]
                            if b:
                                dst = table[node][lem(b)]
                        else:
                            pos += 1
                        if dst < 0:
                            d = lem(n - 1)
                            dst = d if d < node else d + 1
                    size = (
                        DATA_FLITS
                        if (word(pos) >> 11) * DOUBLE_SCALE < dfrac
                        else CONTROL_FLITS
                    )
                    pos += 1
                    cycles.append(cycno)
                    srcs.append(node)
                    dsts.append(dst)
                    sizes.append(size)

        if ext:
            self._buf = np.concatenate(
                [self._buf, np.array(ext, dtype=np.uint64)]
            )
        self._pos = start + pos
        self._cache_has = h
        self._cache_val = hval
        end_cycle = base_cycle + C
        self.next_cycle = end_cycle
        return (
            end_cycle,
            np.array(cycles, dtype=np.int64),
            np.array(srcs, dtype=np.int64),
            np.array(dsts, dtype=np.int64),
            np.array(sizes, dtype=np.int64),
        )


# -- batched pregeneration (turbo mode) --------------------------------------
@dataclass
class BatchTrace:
    """Injection events for B ``(rate, seed)`` lanes with a leading batch axis.

    Events for every lane are pre-generated in one vectorized pass and
    stored flat, lane-major, sorted ``(node, cycle)`` within each lane so
    the batched engine can walk each source node's queue with a single
    per-``(lane, node)`` cursor.  ``seg_start[b, v] : seg_end[b, v]``
    delimits lane ``b`` node ``v``'s events; ``lane_bounds[b] :
    lane_bounds[b + 1]`` delimits lane ``b`` as a whole.

    Unlike :class:`TraceStream`, the draws here are *not* draw-order
    compatible with the reference engine: each lane consumes its own
    ``default_rng(seed)`` stream in bulk array order (turbo mode's
    documented relaxation).  Burst gates still come from the spec-seeded
    dedicated chain, so the gate sequence is shared by every lane and
    identical to the one the exact engines consume.
    """

    n_lanes: int
    n_nodes: int
    cycles: int
    ev_cycle: np.ndarray  # (E,) int64 — generation cycle of each event
    ev_src: np.ndarray  # (E,) int64
    ev_dst: np.ndarray  # (E,) int64
    ev_size: np.ndarray  # (E,) int64 flits
    seg_start: np.ndarray  # (B, n) int64 indices into the flat arrays
    seg_end: np.ndarray  # (B, n) int64
    lane_bounds: np.ndarray  # (B + 1,) int64

    def offered_in(self, lo: int, hi: int) -> np.ndarray:
        """Per-lane event count with generation cycle in ``[lo, hi)``."""
        out = np.zeros(self.n_lanes, dtype=np.int64)
        for b in range(self.n_lanes):
            seg = self.ev_cycle[self.lane_bounds[b] : self.lane_bounds[b + 1]]
            out[b] = int(((seg >= lo) & (seg < hi)).sum())
        return out


def _batch_dests(
    spec, srcs: np.ndarray, rng: np.random.Generator, n: int
) -> np.ndarray:
    """Vectorized destination draws for one lane's event list."""
    k = srcs.size
    if spec.kind == "table":
        return spec.table[srcs]
    if spec.kind == "uniform":
        d = rng.integers(0, n - 1, size=k)
        return d + (d >= srcs)
    if spec.kind == "memory":
        bounds = spec.bounds[srcs]
        if (bounds <= 0).any():
            raise ValueError("memory pattern with an empty candidate row")
        return spec.table[srcs, rng.integers(bounds)]
    # hotspot: a hot_fraction coin picks a hotspot row when the source
    # has candidates, else a uniform non-self draw.
    bounds = spec.bounds[srcs]
    eff_hot = (rng.random(k) < spec.hot_fraction) & (bounds > 0)
    hot = spec.table[srcs, rng.integers(np.maximum(bounds, 1))]
    d = rng.integers(0, n - 1, size=k)
    return np.where(eff_hot, hot, d + (d >= srcs))


def pregenerate_batch(
    traffic: TrafficPattern,
    n_nodes: int,
    lanes: Sequence[Tuple[float, int]],
    cycles: int,
) -> BatchTrace:
    """Pre-generate ``cycles`` cycles of injection events for all lanes.

    ``lanes`` is the batch: one ``(rate, seed)`` pair per replica.  Each
    lane draws per-cycle Bernoulli/Poisson-floor counts, destinations,
    and sizes in whole-array passes from its own ``default_rng(seed)``;
    rates ``>= 1`` (or burst-scaled past 1) inject ``floor(eff)`` packets
    per node per cycle plus a Bernoulli remainder, matching the exact
    engines' count law with a relaxed draw order.
    """
    spec = traffic.dest_spec
    if spec is None:
        raise ValueError(
            f"pattern {traffic.name!r} has no dest_spec; batched "
            f"pregeneration needs a vectorizable destination law"
        )
    n = int(n_nodes)
    C = int(cycles)
    B = len(lanes)
    gates = (
        traffic.burst.state(n).rows(0, C) if traffic.burst is not None else None
    )
    node_ids = np.arange(n, dtype=np.int64)
    cyc_tile = np.tile(np.arange(C, dtype=np.int64), n)

    chunks_cycle: List[np.ndarray] = []
    chunks_src: List[np.ndarray] = []
    chunks_dst: List[np.ndarray] = []
    chunks_size: List[np.ndarray] = []
    seg_start = np.zeros((B, n), dtype=np.int64)
    seg_end = np.zeros((B, n), dtype=np.int64)
    lane_bounds = np.zeros(B + 1, dtype=np.int64)
    off = 0
    for b, (rate, seed) in enumerate(lanes):
        rate = float(rate)
        rng = np.random.default_rng(int(seed))
        if rate <= 0.0:
            seg_start[b] = seg_end[b] = off
            lane_bounds[b + 1] = off
            continue
        if gates is None:
            whole = int(rate)
            cnt = whole + (rng.random((C, n)) < (rate - whole)).astype(
                np.int64
            )
        else:
            eff = rate * gates
            whole_m = np.floor(eff)
            cnt = whole_m.astype(np.int64) + (
                rng.random((C, n)) < (eff - whole_m)
            ).astype(np.int64)
        cnt_t = cnt.T  # (n, C): node-major so each segment is cycle-sorted
        node_tot = cnt_t.sum(axis=1)
        k = int(node_tot.sum())
        seg_end_b = np.cumsum(node_tot) + off
        seg_start[b] = seg_end_b - node_tot
        seg_end[b] = seg_end_b
        lane_bounds[b + 1] = off + k
        off += k
        if k == 0:
            continue
        srcs = np.repeat(node_ids, node_tot)
        cycs = np.repeat(cyc_tile, cnt_t.ravel())
        dsts = _batch_dests(spec, srcs, rng, n).astype(np.int64)
        sizes = np.where(
            rng.random(k) < traffic.data_fraction, DATA_FLITS, CONTROL_FLITS
        ).astype(np.int64)
        chunks_cycle.append(cycs)
        chunks_src.append(srcs)
        chunks_dst.append(dsts)
        chunks_size.append(sizes)

    cat = lambda xs: (
        np.concatenate(xs) if xs else np.empty(0, dtype=np.int64)
    )
    return BatchTrace(
        n_lanes=B,
        n_nodes=n,
        cycles=C,
        ev_cycle=cat(chunks_cycle),
        ev_src=cat(chunks_src),
        ev_dst=cat(chunks_dst),
        ev_size=cat(chunks_size),
        seg_start=seg_start,
        seg_end=seg_end,
        lane_bounds=lane_bounds,
    )
