"""Batched multi-replica engine: S seeds x R rates in one fused loop.

Every paper figure is a sweep of many ``(rate, seed)`` measurements over
the *same* :class:`~repro.sim.fastnet.CompiledNetwork`.  The per-point
engines exploit that only across processes; this module adds the batch
dimension *inside* the engine.  :func:`run_batch` advances B independent
replicas ("lanes") of one compiled table through a single numpy cycle
loop over struct-of-arrays state — every per-slot quantity grows a
leading lane axis, so one pass of array ops per cycle advances all
lanes at once.

Two modes with different contracts:

* ``"exact"`` — each lane runs through today's
  :class:`~repro.sim.fastnet.FastNetworkSimulator` against one shared
  compile.  Per-replica draw order is preserved, so every lane is
  bit-identical to running that (rate, seed) point on its own (the
  differential suite pins this).  Exact mode is the batch API with
  zero semantic risk: no slower than today, and the only savings are
  shared compilation and batched scheduling.

* ``"turbo"`` — the fused SoA loop.  All lanes' injection events are
  pre-generated in one vectorized pass per lane
  (:func:`~repro.sim.trace.pregenerate_batch`) and the cycle loop is
  branch-free across lanes.  Statistically validated, not bit-exact:
  per-point KS tests pin its latency/throughput distributions against
  the reference engine (see ``tests/test_batch.py``).

What turbo gives up (the documented relaxations):

1. **Draw order** — each lane consumes its own ``default_rng(seed)``
   stream in bulk array passes instead of replaying the reference's
   interleaved per-packet draws.  Same count law, same destination and
   size marginals, different stream.  Burst gates still come from the
   spec-seeded dedicated chain, so modulated lanes see the *identical*
   gate sequence the exact engines see.
2. **Same-cycle credit ripple** — the reference arbitrates routers in
   ascending index with same-cycle visibility of earlier routers'
   credit releases.  Turbo grants all outputs simultaneously against
   start-of-cycle credit/busy state (one cycle of extra credit latency
   in the worst case).
3. **Round-robin pointer semantics** — the reference rotates a pointer
   over the per-cycle *requester list*; turbo rotates a rank threshold
   over the router's *static input scan order* (injection VCs first,
   then link VCs in topology order — the same order the reference
   scans).  Both are livelock-free rotating priorities.

Turbo restrictions (raise ``ValueError``): fault schedules and
closed-loop hooks are unsupported (use exact mode), and the traffic
pattern must carry a :class:`~repro.sim.traffic.DestSpec`.

``ENGINES["turbo"]`` registers :class:`TurboNetworkSimulator`, a
single-point adapter (a 1-lane batch), so ``--engine turbo`` works
everywhere an engine name is accepted.  A lane's result depends only on
its own ``(rate, seed)`` — never on its batchmates — which is what lets
the runner cache batched results under single-point keys.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from .fastnet import (
    DEFAULT_ENGINE,
    ENGINES,
    CompiledNetwork,
    FastNetworkSimulator,
)
from .network import (
    DEFAULT_VC_BUFFER_FLITS,
    LINK_LATENCY,
    ROUTER_LATENCY,
    SimStats,
)
from .trace import BatchTrace, pregenerate_batch
from .traffic import TrafficPattern

BATCH_MODES = ("exact", "turbo")

#: "Never" sentinel in the dense int32 gate arrays (far beyond any
#: cycle count, with headroom so ``_BIG + small`` cannot overflow).
_BIG = 1 << 30

#: Dense dict-table forwarding is materialized as an n^3 array; past
#: this many routers that is no longer a reasonable trade — use a
#: destination-keyed (CSR) table instead.
_DICT_FWD_MAX_N = 128


class _TurboAux:
    """Turbo-only static tables derived from one :class:`CompiledNetwork`.

    Built once per compile (memoized on the compile instance): slot ->
    owning router, slot -> static arbitration rank within that router's
    input scan order, and a dense forwarding gather table.
    """

    def __init__(self, cn: CompiledNetwork):
        n, V, L = cn.n, cn.num_vcs, cn.num_links
        ns = cn.num_slots
        slot_router = np.empty(ns, dtype=np.int32)
        r_rank = np.empty(ns, dtype=np.int32)
        for r in range(n):
            for i, base in enumerate(cn.in_bases[r]):
                for vc in range(V):
                    slot_router[base + vc] = r
                    r_rank[base + vc] = i * V + vc
        self.slot_router = slot_router
        self.r_rank = r_rank
        #: rank span: strictly greater than any rank, used to rotate
        #: priorities without wraparound arithmetic.
        self.rank_span = int(r_rank.max()) + 1 if ns else 1
        self.eject_tgt = L + slot_router  # request target when key == -1
        self.ch_dst = np.array(cn.ch_dst, dtype=np.int32)
        self.slot_vc = np.array(cn.slot_vc, dtype=np.int32)
        self.inj_base = np.array(cn.inj_base, dtype=np.int32)
        # Forwarding as one flat gather: destination-keyed tables index
        # by (router, dst); dict tables need the full (router, src, dst)
        # key and are densified (guarded by _DICT_FWD_MAX_N).
        if cn.fwd_dst is not None:
            self.fwd_flat = np.array(cn.fwd_dst, dtype=np.int32)
            self.fwd_by_src = False
        else:
            if n > _DICT_FWD_MAX_N:
                raise ValueError(
                    f"turbo mode would densify a dict routing table to "
                    f"{n}^3 entries; use a destination-keyed table for "
                    f"n > {_DICT_FWD_MAX_N}"
                )
            flat = np.full(n * n * n, -1, dtype=np.int32)
            for key, ch in cn.fwd.items():
                flat[key] = ch
            self.fwd_flat = flat
            self.fwd_by_src = True

    @classmethod
    def for_compiled(cls, cn: CompiledNetwork) -> "_TurboAux":
        cached = cn.__dict__.get("_turbo_aux")
        if cached is None:
            cached = cls(cn)
            cn.__dict__["_turbo_aux"] = cached
        return cached


def _run_turbo(
    cn: CompiledNetwork,
    trace: BatchTrace,
    warmup: int,
    measure: int,
    vc_cap: int,
    hop_delay: int,
) -> List[SimStats]:
    """Advance all lanes of ``trace`` through the fused SoA loop."""
    aux = _TurboAux.for_compiled(cn)
    n, V, L = cn.n, cn.num_vcs, cn.num_links
    ns = cn.num_slots
    no = L + n  # outputs: link channels then ejection ports
    B = trace.n_lanes
    total = warmup + measure
    cap = max(1, int(vc_cap))  # >= packets per VC (min packet = 1 flit)

    ev_cycle = trace.ev_cycle
    ev_dst = trace.ev_dst
    ev_size = trace.ev_size
    flow = trace.ev_src * n + ev_dst
    if flow.size and not cn.flow_ok_np[flow].all():
        raise ValueError(
            "turbo mode requires a fully-routable table (no fault "
            "schedules); use exact mode for degraded tables"
        )
    if ev_size.size and int(ev_size.max()) >= 64:
        raise ValueError("turbo mode packs sizes in 6 bits (flits < 64)")
    ev_vc = cn.vc_of_np[flow]
    # Request key and size pack into one word: kv = (key + 1) << 6 | size
    # — one gather recovers both in the hot scan.
    ev_kv = ((cn.inj_key_np[flow] + 1) << 6) | ev_size
    n_events = ev_cycle.size

    # -- SoA state, leading lane axis -----------------------------------------
    # Everything dense is int32: the loop is memory-bound on (B, ns)
    # scans, so halving the element size is a direct bandwidth win.
    # Ring record: [ready, kv, src, dst, birth] — one fused array so
    # enqueue/dequeue are single scatters/gathers.
    ring = np.zeros((B, ns, cap, 5), dtype=np.int32)
    q_head = np.zeros((B, ns), dtype=np.int32)
    q_count = np.zeros((B, ns), dtype=np.int32)
    # Dense head gate: h_next[b, s] is the next cycle at which slot s of
    # lane b could possibly act — the head's ready time, a snooze-until
    # time after losing arbitration, or _BIG when empty.  The whole
    # switching scan is one compare against it.  Busy timers are
    # monotone and a head can only change via a grant (which requires
    # the gate to have passed), so a stale gate can never delay a fresh
    # head.
    h_next = np.full((B, ns), _BIG, dtype=np.int32)
    h_kv = np.zeros((B, ns), dtype=np.int32)
    free = np.full((B, ns), int(vc_cap), dtype=np.int32)
    out_busy = np.zeros((B, no), dtype=np.int32)
    rr = np.zeros((B, no), dtype=np.int32)  # next-rank thresholds
    best = np.full((B, no), _BIG, dtype=np.int32)  # per-output arbitration
    ptr = trace.seg_start.copy()
    seg_end = trace.seg_end
    # Injection gate, same trick as h_next: the next cycle node (b, v)
    # could inject = max(next pending event's cycle, serialization
    # ready time), bumped to cyc + 1 on a credit stall.
    if n_events:
        has0 = ptr < seg_end
        inj_gate = np.where(
            has0, ev_cycle[np.where(has0, ptr, 0)], _BIG
        ).astype(np.int32)
    else:
        inj_gate = np.full((B, n), _BIG, dtype=np.int32)

    # Ejections accumulate packed: count in the high word, flits in the
    # low word — one scatter-add instead of two.
    ej_acc = np.zeros(B, dtype=np.int64)
    lat_sum = np.zeros(B, dtype=np.float64)
    lat_count = np.zeros(B, dtype=np.int64)

    rank_span = aux.rank_span
    slot_vc = aux.slot_vc
    inj_base = aux.inj_base
    eject_tgt = aux.eject_tgt
    r_rank = aux.r_rank
    ch_dst = aux.ch_dst
    fwd_flat = aux.fwd_flat
    fwd_by_src = aux.fwd_by_src
    last_ev = max(n_events - 1, 0)

    # Flat views: the hot loop addresses (lane, x) pairs as single flat
    # indices — 1-D gathers/scatters dispatch measurably faster than
    # their 2-D fancy-indexing equivalents, and ``minimum.at`` skips the
    # multi-index iterator entirely.
    ring3 = ring.reshape(B * ns, cap, 5)
    q_headf = q_head.ravel()
    q_countf = q_count.ravel()
    h_nextf = h_next.ravel()
    h_kvf = h_kv.ravel()
    freef = free.ravel()
    out_busyf = out_busy.ravel()
    rrf = rr.ravel()
    bestf = best.ravel()
    ptrf = ptr.ravel()
    inj_gatef = inj_gate.ravel()
    seg_endf = seg_end.ravel()

    for cyc in range(total):
        measuring = cyc >= warmup

        # -- injection: <= 1 packet per (lane, node) per cycle ---------------
        ii = np.flatnonzero(inj_gatef <= cyc)
        if ii.size:
            bb = ii // n
            nn = ii - bb * n
            e = ptrf[ii]
            size = ev_size[e]
            fi = bb * ns + inj_base[nn] + ev_vc[e]
            okj = freef[fi] >= size
            if not okj.all():
                stall = ~okj
                inj_gatef[ii[stall]] = cyc + 1
                ii, nn, e = ii[okj], nn[okj], e[okj]
                size, fi = size[okj], fi[okj]
            if ii.size:
                kv = ev_kv[e]
                ready = cyc + size
                pos = (q_headf[fi] + q_countf[fi]) % cap
                ring3[fi, pos] = np.stack(
                    [ready, kv, nn, ev_dst[e], ev_cycle[e]], axis=1
                )
                was_empty = q_countf[fi] == 0
                q_countf[fi] += 1
                freef[fi] -= size
                e1 = e + 1
                ptrf[ii] = e1
                nxt = np.where(
                    e1 < seg_endf[ii],
                    ev_cycle[np.minimum(e1, last_ev)],
                    _BIG,
                )
                inj_gatef[ii] = np.maximum(nxt, ready)
                if was_empty.any():
                    wfi = fi[was_empty]
                    h_nextf[wfi] = ready[was_empty]
                    h_kvf[wfi] = kv[was_empty]

        # -- switching: all outputs of all lanes arbitrate at once -----------
        ci = np.flatnonzero(h_nextf <= cyc)
        if ci.size == 0:
            continue
        cb = ci // ns
        cs = ci - cb * ns
        kv = h_kvf[ci]
        key = (kv >> 6) - 1
        size_c = kv & 63
        is_link_c = key >= 0
        ct = np.where(is_link_c, key, eject_tgt[cs])
        co = cb * no + ct
        fo = cb * ns + np.where(is_link_c, ct * V + slot_vc[cs], 0)
        ok = (out_busyf[co] <= cyc) & (
            ~is_link_c | (freef[fo] >= size_c)
        )
        # Rotating-priority arbitration: lowest (rank - rr) mod span
        # wins each (lane, output); ranks are unique within a router, so
        # the winner is unique.  Blocked candidates arbitrate at _BIG so
        # they can never win (the reset value _BIG - 1 keeps them from
        # tying on an all-blocked output), without materializing
        # filtered copies.
        prio = (r_rank[cs] - rrf[co]) % rank_span
        prio = np.where(ok, prio, _BIG)
        bestf[co] = _BIG - 1
        np.minimum.at(bestf, co, prio)
        win = prio == bestf[co]
        wi = ci[win]
        if wi.size:
            cow = co[win]
            wsize, wlink = size_c[win], is_link_c[win]
            rrf[cow] = r_rank[cs[win]] + 1
            out_busyf[cow] = cyc + wsize
        # Non-winners retry when the output's (post-grant) busy timer
        # expires; a credit-blocked head at an idle output retries next
        # cycle (start-of-cycle credit means this cycle's releases are
        # only visible then anyway).
        lose = ~win
        h_nextf[ci[lose]] = np.maximum(out_busyf[co[lose]], cyc + 1)
        if wi.size == 0:
            continue

        # Dequeue winners (unique flat (lane, slot) indices).
        hd = q_headf[wi]
        rec = ring3[wi, hd]  # (k, 5)
        wsrc, wdst, wbirth = rec[:, 2], rec[:, 3], rec[:, 4]
        freef[wi] += wsize
        q_headf[wi] = (hd + 1) % cap
        q_countf[wi] -= 1
        more = q_countf[wi] > 0
        h_nextf[wi[~more]] = _BIG
        if more.any():
            mi = wi[more]
            rec2 = ring3[mi, q_headf[mi]]
            h_nextf[mi] = rec2[:, 0]
            h_kvf[mi] = rec2[:, 1]

        ej = ~wlink
        if measuring and ej.any():
            jb = cb[win][ej]
            jsize = wsize[ej]
            np.add.at(ej_acc, jb, jsize.astype(np.int64) + (1 << 32))
            lm = wbirth[ej] >= warmup
            if lm.any():
                lat = (cyc + jsize - wbirth[ej])[lm].astype(np.float64)
                np.add.at(lat_sum, jb[lm], lat)
                np.add.at(lat_count, jb[lm], 1)

        if wlink.any():
            fi2 = fo[win][wlink]
            lsize = wsize[wlink]
            lsrc, ldst = wsrc[wlink], wdst[wlink]
            v = ch_dst[ct[win][wlink]]
            if fwd_by_src:
                nkey = fwd_flat[(v * n + lsrc) * n + ldst]
            else:
                nkey = fwd_flat[v * n + ldst]
            nkey = np.where(ldst == v, -1, nkey)
            nkv = ((nkey + 1) << 6) | lsize
            ready2 = cyc + lsize + hop_delay
            freef[fi2] -= lsize
            pos = (q_headf[fi2] + q_countf[fi2]) % cap
            ring3[fi2, pos] = np.stack(
                [ready2, nkv, lsrc, ldst, wbirth[wlink]], axis=1
            )
            was_empty = q_countf[fi2] == 0
            q_countf[fi2] += 1
            if was_empty.any():
                nfi = fi2[was_empty]
                h_nextf[nfi] = ready2[was_empty]
                h_kvf[nfi] = nkv[was_empty]

    offered = trace.offered_in(warmup, warmup + measure)
    return [
        SimStats(
            cycles=measure,
            offered_packets=int(offered[b]),
            ejected_packets=int(ej_acc[b] >> 32),
            ejected_flits=int(ej_acc[b] & 0xFFFFFFFF),
            latency_sum=float(lat_sum[b]),
            latency_count=int(lat_count[b]),
            n_nodes=n,
            lost_packets=0,
        )
        for b in range(B)
    ]


def run_batch(
    table: RoutingTable,
    traffic: TrafficPattern,
    lanes: Sequence[Tuple[float, int]],
    warmup: int,
    measure: int,
    mode: str = "turbo",
    vc_buffer_flits: int = DEFAULT_VC_BUFFER_FLITS,
    router_latency: int = ROUTER_LATENCY,
    link_latency: int = LINK_LATENCY,
    extra_hop_latency: int = 0,
    compiled: Optional[CompiledNetwork] = None,
    faults=None,
) -> List[SimStats]:
    """Measure every ``(rate, seed)`` lane of one table in one call.

    Returns one :class:`SimStats` per lane, in lane order.  A lane's
    result depends only on its own ``(rate, seed)`` — batch composition
    never changes it (tests pin this), so results are cacheable under
    per-point keys.
    """
    if mode not in BATCH_MODES:
        raise ValueError(
            f"unknown batch mode {mode!r}: expected one of {BATCH_MODES}"
        )
    lanes = [(float(r), int(s)) for r, s in lanes]
    if mode == "exact":
        if compiled is None and faults is None:
            compiled = CompiledNetwork.for_table(table)
        return [
            FastNetworkSimulator(
                table,
                traffic,
                rate,
                seed=seed,
                vc_buffer_flits=vc_buffer_flits,
                router_latency=router_latency,
                link_latency=link_latency,
                extra_hop_latency=extra_hop_latency,
                compiled=compiled,
                faults=faults,
            ).run(warmup, measure)
            for rate, seed in lanes
        ]
    if faults is not None:
        raise ValueError(
            "turbo mode does not support fault schedules; use mode='exact'"
        )
    if compiled is None:
        compiled = CompiledNetwork.for_table(table)
    elif compiled.table is not table:
        raise ValueError("compiled network was built for a different table")
    trace = pregenerate_batch(traffic, compiled.n, lanes, warmup + measure)
    hop_delay = router_latency + link_latency + extra_hop_latency
    return _run_turbo(
        compiled, trace, warmup, measure, vc_buffer_flits, hop_delay
    )


class TurboNetworkSimulator:
    """Single-point adapter over the turbo batch loop.

    Drop-in for the engine registry (``engine="turbo"``): same
    constructor surface as :class:`FastNetworkSimulator`, ``run`` is a
    one-lane :func:`run_batch`.  Statistically validated against the
    reference, not bit-exact — and single-use: one ``run`` per instance.
    """

    supports_compiled = True

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        injection_rate: float,
        seed: int = 0,
        vc_buffer_flits: int = DEFAULT_VC_BUFFER_FLITS,
        router_latency: int = ROUTER_LATENCY,
        link_latency: int = LINK_LATENCY,
        extra_hop_latency: int = 0,
        compiled: Optional[CompiledNetwork] = None,
        faults=None,
    ):
        if faults is not None:
            raise ValueError(
                "turbo mode does not support fault schedules; use "
                "engine='fast' or engine='reference'"
            )
        self.table = table
        self.traffic = traffic
        self.rate = float(injection_rate)
        self.seed = int(seed)
        self.vc_cap = vc_buffer_flits
        self.router_latency = router_latency
        self.link_latency = link_latency
        self.extra_hop_latency = extra_hop_latency
        self.cn = (
            compiled
            if compiled is not None
            else CompiledNetwork.for_table(table)
        )
        self.n = self.cn.n
        self._ran = False

    def run(self, warmup: int, measure: int) -> SimStats:
        if self._ran:
            raise RuntimeError(
                "TurboNetworkSimulator is single-use: construct a new "
                "instance per measurement"
            )
        self._ran = True
        if self.rate <= 0:
            return SimStats(
                cycles=measure,
                offered_packets=0,
                ejected_packets=0,
                ejected_flits=0,
                latency_sum=0.0,
                latency_count=0,
                n_nodes=self.n,
                lost_packets=0,
            )
        return run_batch(
            self.table,
            self.traffic,
            [(self.rate, self.seed)],
            warmup,
            measure,
            mode="turbo",
            vc_buffer_flits=self.vc_cap,
            router_latency=self.router_latency,
            link_latency=self.link_latency,
            extra_hop_latency=self.extra_hop_latency,
            compiled=self.cn,
        )[0]


ENGINES["turbo"] = TurboNetworkSimulator
