"""Packet model for the NoI simulator (paper Section IV).

Control packets are 8 B and data packets 72 B; with the paper's 8 B link
width that is 1 and 9 flits respectively, injected with equal likelihood
by the synthetic generators.
"""

from __future__ import annotations

from dataclasses import dataclass

LINK_WIDTH_BYTES = 8
CONTROL_BYTES = 8
DATA_BYTES = 72

CONTROL_FLITS = CONTROL_BYTES // LINK_WIDTH_BYTES  # 1
DATA_FLITS = DATA_BYTES // LINK_WIDTH_BYTES  # 9

#: Mean flits per packet under the 50/50 control/data mix.
MEAN_FLITS_PER_PACKET = (CONTROL_FLITS + DATA_FLITS) / 2


@dataclass(slots=True)
class Packet:
    """One network packet traversing the NoI.

    ``tid`` is the closed-loop transaction id: a request and the reply it
    triggers share one, so timeout/retry bookkeeping can match a stale
    retransmission (or a packet dropped by a fault epoch) back to its
    transaction.  Open-loop packets leave it 0.
    """

    pid: int
    src: int
    dst: int
    size_flits: int
    birth_cycle: int
    vc: int = 0
    is_data: bool = False
    tid: int = 0

    def latency(self, eject_cycle: int) -> int:
        return eject_cycle - self.birth_cycle
