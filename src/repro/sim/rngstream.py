"""Bit-exact, vectorizable reconstruction of numpy's PCG64 draw stream.

The reference simulator's traffic generation interleaves three kinds of
draws from one ``np.random.Generator``:

* ``rng.random(n)`` / ``rng.random()`` — each double consumes one raw
  64-bit word: ``(u >> 11) * 2**-53``;
* ``rng.integers(m)`` (``m`` fitting 32 bits, the only case traffic
  uses) — Lemire's multiply-shift rejection on a 32-bit *half-word*
  stream: PCG64 serves the **low** half of a fresh 64-bit word first and
  caches the high half for the next half-word request.  The cache lives
  in the bit-generator state (``has_uint32``/``uinteger``), survives
  interleaved ``random()`` and full-range 64-bit draws, and — special
  case — a draw with ``m == 1`` returns 0 without consuming anything;
* full-range ``rng.integers(0, 2**64, dtype=uint64)`` — raw words,
  bypassing (and preserving) the half-word cache.

Those three facts let batched generation replicate the reference's
per-packet draw sequence exactly: pull raw 64-bit words in bulk, convert
to doubles or Lemire-32 bounded integers *positionally*, and track the
half-word cache arithmetic instead of calling the Generator per packet.
The helpers here are shared by :meth:`repro.sim.traffic.TrafficPattern.
destinations` (vectorized destination draws against a caller's
Generator) and :mod:`repro.sim.trace` (whole-trace pregeneration).

Every helper is pinned by the differential and property suites; a
numpy release that changed the underlying algorithms would surface as
an equality failure there, not as silent drift.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: ``(u >> 11) * DOUBLE_SCALE`` is numpy's uint64 -> [0, 1) double map.
DOUBLE_SCALE = 1.0 / 9007199254740992.0  # 2**-53

_U32_MASK = np.uint64(0xFFFFFFFF)
_SHIFT_11 = np.uint64(11)
_SHIFT_32 = np.uint64(32)


def take_raw(rng: np.random.Generator, k: int) -> np.ndarray:
    """The next ``k`` raw 64-bit words of ``rng``'s stream.

    Uses the full-range ``integers`` path, which emits ``next_uint64``
    outputs verbatim and neither consumes nor clears the 32-bit
    half-word cache.
    """
    return rng.integers(0, 1 << 64, size=k, dtype=np.uint64)


def doubles_from_raw(u: np.ndarray) -> np.ndarray:
    """Map raw words to the doubles ``rng.random()`` would have returned."""
    return (u >> _SHIFT_11).astype(np.float64) * DOUBLE_SCALE


def lemire32(
    u32: np.ndarray, bound: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized first-attempt Lemire-32: values and rejection mask.

    ``u32`` holds half-words (as uint64), ``bound`` the (broadcastable)
    exclusive upper bounds, all ``>= 2``.  Returns ``(values, reject)``
    where ``reject`` marks draws the reference would have redrawn — a
    one-in-billions event for traffic-sized bounds, but one that shifts
    every later stream position, so callers must detect it and fall
    back to scalar emulation.
    """
    bound = np.asarray(bound, dtype=np.uint64)
    prod = u32 * bound  # < 2**64: both factors fit 32 bits
    values = (prod >> _SHIFT_32).astype(np.int64)
    leftover = prod & _U32_MASK
    thresholds = np.uint64(1 << 32) % bound
    return values, leftover < thresholds


def lemire32_scalar(next_u32, bound: int) -> int:
    """Exact scalar ``integers(bound)`` emulation over a half-word source.

    ``next_u32`` is a callable yielding successive half-words (Python
    ints).  Mirrors numpy including the ``bound == 1`` no-consume case
    and the rejection loop.
    """
    if bound == 1:
        return 0
    if bound <= 0:
        raise ValueError(
            f"destination draw with empty candidate set (bound {bound}) — "
            f"degenerate traffic pattern"
        )
    threshold = (1 << 32) % bound
    while True:
        prod = next_u32() * bound
        if (prod & 0xFFFFFFFF) >= threshold:
            return prod >> 32


def get_half_cache(rng: np.random.Generator) -> Tuple[bool, int]:
    """The bit generator's pending high half-word, if any."""
    st = rng.bit_generator.state
    return bool(st.get("has_uint32", 0)), int(st.get("uinteger", 0))


def set_half_cache(rng: np.random.Generator, has: bool, value: int) -> None:
    """Install a pending high half-word into the bit generator state."""
    st = rng.bit_generator.state
    st["has_uint32"] = int(has)
    st["uinteger"] = int(value) if has else 0
    rng.bit_generator.state = st


def halves_consumed(k: int, cache_has: int) -> int:
    """Fresh 64-bit words consumed by ``k`` half-word draws.

    Starting with ``cache_has`` (0/1) pending halves: each fresh word
    serves two half-word draws (low first, high cached).
    """
    return (k + 1 - cache_has) // 2
