"""Synthetic traffic generators (Garnet Synthetic Traffic equivalents).

Patterns used in the paper's evaluation:

* **uniform random** ("coherence traffic", Fig. 6a): destinations uniform
  over all other routers;
* **memory traffic** (Fig. 6b): destinations uniform over the
  memory-controller routers (outer columns) — the hot-spot pattern whose
  "true contention" binds tighter than the sparsest cut;
* **shuffle** (Fig. 10): ``dest = 2*src`` (low half) or
  ``(2*src + 1) mod n`` (high half), the gem5 pattern NetSmith's ShufOpt
  variant optimizes for.

Control (1 flit) and data (9 flit) packets are injected with equal
likelihood.  Generators draw from an explicit ``numpy`` RNG for
reproducibility.

Every built-in pattern carries a :class:`DestSpec` — a pure-data
description of its destination distribution that the vectorized paths
consume: :meth:`TrafficPattern.destinations` draws many destinations in
one batch (bit-identical values *and* stream consumption to the scalar
:meth:`TrafficPattern.destination` loop), and :mod:`repro.sim.trace`
pre-generates whole injection traces from it without any per-packet
Python calls.  Custom patterns without a spec still work everywhere —
the vectorized consumers fall back to the scalar closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..topology import Layout
from .burst import BurstSpec
from .packet import CONTROL_FLITS, DATA_FLITS
from .rngstream import (
    doubles_from_raw,
    get_half_cache,
    halves_consumed,
    lemire32,
    set_half_cache,
    take_raw,
)


@dataclass
class DestSpec:
    """Vectorizable description of a destination distribution.

    ``kind`` selects the draw recipe (matching the scalar closures
    exactly, including RNG consumption):

    * ``"table"`` — deterministic permutations: ``dst = table[src]``,
      no RNG draws;
    * ``"uniform"`` — ``d = integers(n-1)``; ``d if d < src else d+1``;
    * ``"memory"`` — ``d = integers(bounds[src])``;
      ``dst = table[src, d]`` (per-src candidate rows, right-padded);
    * ``"hotspot"`` — one ``random()`` hot/uniform decision, then a
      ``"memory"``-style draw over the hotspot row (``bounds[src] == 0``
      falls through to the uniform recipe, consuming one draw either
      way).
    """

    kind: str
    table: Optional[np.ndarray] = None
    bounds: Optional[np.ndarray] = None
    hot_fraction: float = 0.0

    def min_int_bound(self, n_nodes: int) -> int:
        """Smallest ``integers()`` bound any destination draw can use.

        The trace generator's fully vectorized path requires every
        reachable bound to be ``>= 2``: numpy's ``integers(1)`` returns
        0 *without consuming a draw*, which breaks constant-per-packet
        stream accounting (those patterns take the scalar-emulation
        path instead).
        """
        if self.kind == "table":
            return 1 << 32  # no integer draws at all
        if self.kind == "uniform":
            return n_nodes - 1
        if self.kind == "memory":
            return int(self.bounds.min())
        # hotspot: hot rows with candidates, or the uniform fallthrough
        reachable = [n_nodes - 1]
        nonzero = self.bounds[self.bounds > 0]
        if nonzero.size:
            reachable.append(int(nonzero.min()))
        return min(reachable)


@dataclass
class TrafficPattern:
    """A destination distribution plus the packet-size mix."""

    name: str
    n_nodes: int
    dest_fn: Callable[[int, np.random.Generator], int]
    data_fraction: float = 0.5
    dest_spec: Optional[DestSpec] = None
    #: Optional on/off modulation (:mod:`repro.sim.burst`).  Gates scale
    #: the per-cycle injection threshold from a dedicated RNG chain; the
    #: destination/size draw stream is unchanged, so bursty patterns stay
    #: bit-identical across engines and through :class:`~repro.sim.trace.
    #: TraceStream`.
    burst: Optional[BurstSpec] = None

    def with_burst(self, spec: Optional[BurstSpec]) -> "TrafficPattern":
        """A copy of this pattern modulated by ``spec``."""
        import dataclasses

        return dataclasses.replace(self, burst=spec)

    def destination(self, src: int, rng: np.random.Generator) -> int:
        return self.dest_fn(src, rng)

    def destinations(
        self, srcs: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """Destinations for a batch of sources in one vectorized pass.

        Bit-identical to ``[destination(s, rng) for s in srcs]`` — same
        values *and* the same final RNG stream position — so scalar and
        batched consumers can interleave freely.  Patterns without a
        :class:`DestSpec` (or with degenerate bounds numpy special-cases)
        fall back to the scalar loop.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        spec = self.dest_spec
        if srcs.size == 0:
            return np.empty(0, dtype=np.int64)
        if spec is None:
            return self._scalar_destinations(srcs, rng)
        if spec.kind == "table":
            return spec.table[srcs]
        if spec.kind == "uniform":
            d = rng.integers(self.n_nodes - 1, size=srcs.size)
            return d + (d >= srcs)
        if spec.kind == "memory":
            bounds = spec.bounds[srcs]
            if (bounds <= 1).any():
                return self._scalar_destinations(srcs, rng)
            vals = _lemire_batch(rng, bounds)
            if vals is None:
                return self._scalar_destinations(srcs, rng)
            return spec.table[srcs, vals]
        if spec.kind == "hotspot":
            return self._hotspot_destinations(spec, srcs, rng)
        raise ValueError(f"unknown dest spec kind {spec.kind!r}")

    def _scalar_destinations(
        self, srcs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.array(
            [int(self.dest_fn(int(s), rng)) for s in srcs], dtype=np.int64
        )

    def _hotspot_destinations(
        self, spec: DestSpec, srcs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = self.n_nodes
        hot_bounds = spec.bounds[srcs]
        if n - 1 < 2 or (hot_bounds == 1).any():
            return self._scalar_destinations(srcs, rng)
        k = srcs.size
        state0 = rng.bit_generator.state
        has, cached = get_half_cache(rng)
        fresh = k + halves_consumed(k, int(has))
        u = take_raw(rng, fresh)
        # Per element: one double (a fresh word), then one bounded draw
        # (a half-word).  Word position of element i's double:
        idx = np.arange(k)
        dpos = idx + (idx + 1 - int(has)) // 2
        hot = doubles_from_raw(u[dpos]) < spec.hot_fraction
        eff_hot = hot & (hot_bounds > 0)
        bounds = np.where(eff_hot, hot_bounds, n - 1)
        # Only every other element consumes a fresh word for its bounded
        # draw (the alternating one whose half-word cache is empty).
        consumes = ((idx + int(has)) % 2) == 0
        halves, leftover = _halfword_sequence(
            u[(dpos + 1)[consumes]], int(has), cached, k
        )
        vals, reject = lemire32(halves, bounds)
        if reject.any():
            rng.bit_generator.state = state0
            return self._scalar_destinations(srcs, rng)
        hot_dst = spec.table[srcs, np.where(eff_hot, vals, 0)]
        uni_dst = vals + (vals >= srcs)
        set_half_cache(rng, leftover is not None, leftover or 0)
        return np.where(eff_hot, hot_dst, uni_dst)

    def packet_size(self, rng: np.random.Generator) -> int:
        return DATA_FLITS if rng.random() < self.data_fraction else CONTROL_FLITS

    def demand_matrix(self) -> np.ndarray:
        """Expected flow weights W[s,d] (rows sum to 1) for analysis."""
        n = self.n_nodes
        w = np.zeros((n, n))
        probe = np.random.default_rng(12345)
        samples = 400
        for s in range(n):
            for _ in range(samples):
                w[s, self.dest_fn(s, probe)] += 1.0 / samples
        return w


def _halfword_sequence(int_words, has, cached, k):
    """The first ``k`` half-words served to bounded draws.

    ``int_words`` are the fresh words consumed *by the integer draws*,
    in order.  The half-word sequence is the pending cached high half
    (if ``has``) followed by low/high pairs of each fresh word.  Returns
    ``(halves[:k], leftover)`` where ``leftover`` is the high half left
    pending afterwards (or None).
    """
    seq = np.empty(has + 2 * int_words.size, dtype=np.uint64)
    if has:
        seq[0] = cached
    seq[has::2] = int_words & np.uint64(0xFFFFFFFF)
    seq[has + 1 :: 2] = int_words >> np.uint64(32)
    leftover = int(seq[k]) if seq.size > k else None
    return seq[:k], leftover


def _lemire_batch(rng, bounds) -> Optional[np.ndarray]:
    """Batched ``[integers(b) for b in bounds]`` (all bounds >= 2).

    Returns None if any draw would hit numpy's one-in-billions Lemire
    rejection — the caller re-runs the scalar path from the untouched
    generator state.
    """
    k = len(bounds)
    state0 = rng.bit_generator.state
    has, cached = get_half_cache(rng)
    u = take_raw(rng, halves_consumed(k, int(has)))
    halves, leftover = _halfword_sequence(u, int(has), cached, k)
    vals, reject = lemire32(halves, bounds)
    if reject.any():
        rng.bit_generator.state = state0
        return None
    set_half_cache(rng, leftover is not None, leftover or 0)
    return vals


def _dest_table(dest, n_nodes: int) -> np.ndarray:
    """Tabulate a deterministic (RNG-free) destination closure."""
    return np.array([dest(s, None) for s in range(n_nodes)], dtype=np.int64)


def _choice_rows(candidates: np.ndarray, n_nodes: int):
    """Per-src candidate rows (right-padded) + per-src bounds."""
    rows = [candidates[candidates != s] for s in range(n_nodes)]
    bounds = np.array([r.size for r in rows], dtype=np.int64)
    width = max(1, int(bounds.max()))
    table = np.zeros((n_nodes, width), dtype=np.int64)
    for s, r in enumerate(rows):
        table[s, : r.size] = r
    return table, bounds


def uniform_random(n_nodes: int) -> TrafficPattern:
    """Uniform all-to-all (the paper's coherence traffic)."""

    def dest(src: int, rng: np.random.Generator) -> int:
        d = int(rng.integers(n_nodes - 1))
        return d if d < src else d + 1

    return TrafficPattern(
        "uniform_random", n_nodes, dest, dest_spec=DestSpec("uniform")
    )


def memory_traffic(layout: Layout) -> TrafficPattern:
    """All nodes to uniformly-chosen memory-controller routers (hot spot)."""
    mcs = layout.mc_routers()
    mcs_arr = np.array(mcs)

    def dest(src: int, rng: np.random.Generator) -> int:
        choices = mcs_arr[mcs_arr != src]
        return int(choices[rng.integers(choices.size)])

    table, bounds = _choice_rows(mcs_arr, layout.n)
    return TrafficPattern(
        "memory", layout.n, dest,
        dest_spec=DestSpec("memory", table=table, bounds=bounds),
    )


def shuffle_pattern(n_nodes: int) -> TrafficPattern:
    """gem5's shuffle permutation (paper Section V-E)."""

    def dest(src: int, rng: np.random.Generator) -> int:
        if src < n_nodes // 2:
            d = 2 * src
        else:
            d = (2 * src + 1) % n_nodes
        # permutation may map a node to itself only if n is degenerate
        return d if d != src else (d + 1) % n_nodes

    return TrafficPattern(
        "shuffle", n_nodes, dest,
        dest_spec=DestSpec("table", table=_dest_table(dest, n_nodes)),
    )


def bit_complement(n_nodes: int) -> TrafficPattern:
    """Garnet's bit-complement permutation: ``dest = n-1-src``."""

    def dest(src: int, rng: np.random.Generator) -> int:
        d = n_nodes - 1 - src
        return d if d != src else (d + 1) % n_nodes

    return TrafficPattern(
        "bit_complement", n_nodes, dest,
        dest_spec=DestSpec("table", table=_dest_table(dest, n_nodes)),
    )


def transpose(layout: Layout) -> TrafficPattern:
    """Matrix-transpose pattern: (x, y) -> (y, x), clipped to the grid.

    On non-square grids out-of-range transposes wrap modulo the grid —
    the standard generalization used by Garnet for rectangular meshes.
    """
    n = layout.n

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = layout.position(src)
        d = layout.router_at(y % layout.cols, x % layout.rows)
        return d if d != src else (d + 1) % n

    return TrafficPattern(
        "transpose", n, dest,
        dest_spec=DestSpec("table", table=_dest_table(dest, n)),
    )


def tornado(layout: Layout) -> TrafficPattern:
    """Tornado: half-way around the row ring — the classic adversary for
    ring-like topologies (stresses long horizontal paths)."""
    n = layout.n

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = layout.position(src)
        d = layout.router_at((x + layout.cols // 2) % layout.cols, y)
        return d if d != src else (d + 1) % n

    return TrafficPattern(
        "tornado", n, dest,
        dest_spec=DestSpec("table", table=_dest_table(dest, n)),
    )


def neighbor(layout: Layout) -> TrafficPattern:
    """Nearest-neighbor: east neighbor with wraparound (best case for
    meshes; exposes topologies that sacrificed local links)."""
    n = layout.n

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = layout.position(src)
        return layout.router_at((x + 1) % layout.cols, y)

    return TrafficPattern(
        "neighbor", n, dest,
        dest_spec=DestSpec("table", table=_dest_table(dest, n)),
    )


def hotspot(n_nodes: int, hotspots: Sequence[int], hot_fraction: float = 0.5) -> TrafficPattern:
    """Mixture: ``hot_fraction`` of traffic to the given hotspot routers,
    the rest uniform (general-purpose stress pattern)."""
    if len(hotspots) == 0:
        raise ValueError(
            "hotspot(): hotspots must name at least one router "
            "(got an empty sequence)"
        )
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(
            f"hotspot(): hot_fraction must be within [0, 1], "
            f"got {hot_fraction!r}"
        )
    hot = np.array(sorted(hotspots))

    def dest(src: int, rng: np.random.Generator) -> int:
        if rng.random() < hot_fraction:
            choices = hot[hot != src]
            if choices.size:
                return int(choices[rng.integers(choices.size)])
        d = int(rng.integers(n_nodes - 1))
        return d if d < src else d + 1

    table, bounds = _choice_rows(hot, n_nodes)
    return TrafficPattern(
        "hotspot", n_nodes, dest,
        dest_spec=DestSpec(
            "hotspot", table=table, bounds=bounds, hot_fraction=hot_fraction
        ),
    )
