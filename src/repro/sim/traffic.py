"""Synthetic traffic generators (Garnet Synthetic Traffic equivalents).

Patterns used in the paper's evaluation:

* **uniform random** ("coherence traffic", Fig. 6a): destinations uniform
  over all other routers;
* **memory traffic** (Fig. 6b): destinations uniform over the
  memory-controller routers (outer columns) — the hot-spot pattern whose
  "true contention" binds tighter than the sparsest cut;
* **shuffle** (Fig. 10): ``dest = 2*src`` (low half) or
  ``(2*src + 1) mod n`` (high half), the gem5 pattern NetSmith's ShufOpt
  variant optimizes for.

Control (1 flit) and data (9 flit) packets are injected with equal
likelihood.  Generators draw from an explicit ``numpy`` RNG for
reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..topology import Layout
from .packet import CONTROL_FLITS, DATA_FLITS


@dataclass
class TrafficPattern:
    """A destination distribution plus the packet-size mix."""

    name: str
    n_nodes: int
    dest_fn: Callable[[int, np.random.Generator], int]
    data_fraction: float = 0.5

    def destination(self, src: int, rng: np.random.Generator) -> int:
        return self.dest_fn(src, rng)

    def packet_size(self, rng: np.random.Generator) -> int:
        return DATA_FLITS if rng.random() < self.data_fraction else CONTROL_FLITS

    def demand_matrix(self) -> np.ndarray:
        """Expected flow weights W[s,d] (rows sum to 1) for analysis."""
        n = self.n_nodes
        w = np.zeros((n, n))
        probe = np.random.default_rng(12345)
        samples = 400
        for s in range(n):
            for _ in range(samples):
                w[s, self.dest_fn(s, probe)] += 1.0 / samples
        return w


def uniform_random(n_nodes: int) -> TrafficPattern:
    """Uniform all-to-all (the paper's coherence traffic)."""

    def dest(src: int, rng: np.random.Generator) -> int:
        d = int(rng.integers(n_nodes - 1))
        return d if d < src else d + 1

    return TrafficPattern("uniform_random", n_nodes, dest)


def memory_traffic(layout: Layout) -> TrafficPattern:
    """All nodes to uniformly-chosen memory-controller routers (hot spot)."""
    mcs = layout.mc_routers()
    mcs_arr = np.array(mcs)

    def dest(src: int, rng: np.random.Generator) -> int:
        choices = mcs_arr[mcs_arr != src]
        return int(choices[rng.integers(choices.size)])

    return TrafficPattern("memory", layout.n, dest)


def shuffle_pattern(n_nodes: int) -> TrafficPattern:
    """gem5's shuffle permutation (paper Section V-E)."""

    def dest(src: int, rng: np.random.Generator) -> int:
        if src < n_nodes // 2:
            d = 2 * src
        else:
            d = (2 * src + 1) % n_nodes
        # permutation may map a node to itself only if n is degenerate
        return d if d != src else (d + 1) % n_nodes

    return TrafficPattern("shuffle", n_nodes, dest)


def bit_complement(n_nodes: int) -> TrafficPattern:
    """Garnet's bit-complement permutation: ``dest = n-1-src``."""

    def dest(src: int, rng: np.random.Generator) -> int:
        d = n_nodes - 1 - src
        return d if d != src else (d + 1) % n_nodes

    return TrafficPattern("bit_complement", n_nodes, dest)


def transpose(layout: Layout) -> TrafficPattern:
    """Matrix-transpose pattern: (x, y) -> (y, x), clipped to the grid.

    On non-square grids out-of-range transposes wrap modulo the grid —
    the standard generalization used by Garnet for rectangular meshes.
    """
    n = layout.n

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = layout.position(src)
        d = layout.router_at(y % layout.cols, x % layout.rows)
        return d if d != src else (d + 1) % n

    return TrafficPattern("transpose", n, dest)


def tornado(layout: Layout) -> TrafficPattern:
    """Tornado: half-way around the row ring — the classic adversary for
    ring-like topologies (stresses long horizontal paths)."""
    n = layout.n

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = layout.position(src)
        d = layout.router_at((x + layout.cols // 2) % layout.cols, y)
        return d if d != src else (d + 1) % n

    return TrafficPattern("tornado", n, dest)


def neighbor(layout: Layout) -> TrafficPattern:
    """Nearest-neighbor: east neighbor with wraparound (best case for
    meshes; exposes topologies that sacrificed local links)."""
    n = layout.n

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = layout.position(src)
        return layout.router_at((x + 1) % layout.cols, y)

    return TrafficPattern("neighbor", n, dest)


def hotspot(n_nodes: int, hotspots: Sequence[int], hot_fraction: float = 0.5) -> TrafficPattern:
    """Mixture: ``hot_fraction`` of traffic to the given hotspot routers,
    the rest uniform (general-purpose stress pattern)."""
    hot = np.array(sorted(hotspots))

    def dest(src: int, rng: np.random.Generator) -> int:
        if rng.random() < hot_fraction:
            choices = hot[hot != src]
            if choices.size:
                return int(choices[rng.integers(choices.size)])
        d = int(rng.integers(n_nodes - 1))
        return d if d < src else d + 1

    return TrafficPattern("hotspot", n_nodes, dest)
