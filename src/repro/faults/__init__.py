"""Fault injection: declarative schedules, survivor re-routing, timelines."""

from .reroute import survivor_table
from .schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    central_link_faults,
    central_router_fault,
    parse_faults,
)
from .timeline import FaultEpoch, FaultTimeline, recovery_points

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultEpoch",
    "FaultTimeline",
    "central_link_faults",
    "central_router_fault",
    "parse_faults",
    "recovery_points",
    "survivor_table",
]
