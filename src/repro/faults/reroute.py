"""Survivor re-routing: a deadlock-free table for the degraded network.

Given a routed topology and the current dead link/router sets, build a
fresh :class:`~repro.routing.tables.RoutingTable` over the *surviving*
fabric:

* routes exist exactly for ordered pairs of live routers that remain
  mutually reachable over live links — unreachable flows are simply
  absent, and the engines count their traffic as lost;
* paths are deterministic BFS shortest paths (ascending-neighbor
  expansion, so the tie-break is the smallest-index predecessor): both
  engines, every worker process, and every cache rerun derive the same
  table;
* VC layers are re-assigned per epoch with the standard acyclic-CDG
  procedure (:func:`~repro.routing.vc_alloc.assign_vcs`), so the
  degraded network is deadlock-free by the same argument as the
  pristine one.

The table is built on the *original* topology object: ``next_hop`` and
``flow_vc`` are pure node-id maps, so the channel-id space of a fault
epoch's :class:`~repro.sim.fastnet.CompiledNetwork` lines up with the
pristine one — the fast engine swaps tables without renumbering any
queue state.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Tuple

from ..routing.paths import Path, PathSet
from ..routing.tables import RoutingTable, build_routing_table
from ..routing.vc_alloc import assign_vcs


def survivor_table(
    table: RoutingTable,
    dead_links: FrozenSet[Tuple[int, int]],
    dead_routers: FrozenSet[int],
    seed: int = 0,
    max_vcs: int = None,
) -> RoutingTable:
    """Re-route the live portion of ``table``'s topology."""
    topo = table.topology
    n = topo.n
    adj: List[List[int]] = [[] for _ in range(n)]
    for (u, v) in topo.directed_links:  # row-major sorted => ascending
        if u in dead_routers or v in dead_routers or (u, v) in dead_links:
            continue
        adj[u].append(v)

    live = [r for r in range(n) if r not in dead_routers]
    paths: Dict[Tuple[int, int], List[Path]] = {}
    for s in live:
        parent = [-1] * n
        dist = [-1] * n
        dist[s] = 0
        dq = deque([s])
        while dq:
            u = dq.popleft()
            du = dist[u]
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = du + 1
                    parent[v] = u
                    dq.append(v)
        for d in live:
            if d == s or dist[d] < 0:
                continue
            path = [d]
            while path[-1] != s:
                path.append(parent[path[-1]])
            path.reverse()
            paths[(s, d)] = [tuple(path)]

    if not paths:
        # Nothing survives (or nothing is mutually reachable): an empty
        # table with the base VC count — every flow counts as lost.
        return RoutingTable(
            topology=topo, next_hop={}, flow_vc={}, num_vcs=table.num_vcs
        )
    if max_vcs is None:
        max_vcs = max(8, table.num_vcs)
    routes = PathSet(topo, paths)
    vca = assign_vcs(routes, max_vcs=max_vcs, seed=seed)
    return build_routing_table(routes, vca)
