"""Survivor re-routing: a deadlock-free table for the degraded network.

Given a routed topology and the current dead link/router sets, build a
fresh :class:`~repro.routing.tables.RoutingTable` over the *surviving*
fabric:

* routes exist exactly for ordered pairs of live routers that remain
  mutually reachable over live links — unreachable flows are simply
  absent, and the engines count their traffic as lost;
* paths are deterministic BFS shortest paths (ascending-neighbor
  expansion, so the tie-break is the smallest-index predecessor): both
  engines, every worker process, and every cache rerun derive the same
  table;
* VC layers are re-assigned per epoch with the standard acyclic-CDG
  procedure (:func:`~repro.routing.vc_alloc.assign_vcs`), so the
  degraded network is deadlock-free by the same argument as the
  pristine one.

The table is built on the *original* topology object: ``next_hop`` and
``flow_vc`` are pure node-id maps, so the channel-id space of a fault
epoch's :class:`~repro.sim.fastnet.CompiledNetwork` lines up with the
pristine one — the fast engine swaps tables without renumbering any
queue state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from ..routing.paths import Path, PathSet
from ..routing.tables import RoutingTable, build_routing_table
from ..routing.vc_alloc import assign_vcs
from ..topology.csr import bfs_tree, build_csr


def survivor_table(
    table: RoutingTable,
    dead_links: FrozenSet[Tuple[int, int]],
    dead_routers: FrozenSet[int],
    seed: int = 0,
    max_vcs: int = None,
) -> RoutingTable:
    """Re-route the live portion of ``table``'s topology."""
    topo = table.topology
    n = topo.n
    # Surviving fabric as a CSR graph: mask dead endpoints/links on one
    # boolean matrix instead of building n Python adjacency lists (the
    # old per-source dict/list BFS held O(n) list objects live per
    # source at large n).  build_csr emits ascending neighbor ids per
    # row and bfs_tree expands FIFO, so the parent of every vertex is
    # its smallest-index earliest-frontier predecessor — the exact
    # tie-break of the historical deque BFS, keeping tables bit-equal.
    adj = topo.adj.copy()
    if dead_routers:
        dr = np.fromiter(dead_routers, dtype=np.int64)
        adj[dr, :] = False
        adj[:, dr] = False
    for (u, v) in dead_links:
        adj[u, v] = False
    indptr, indices = build_csr(adj)

    live = [r for r in range(n) if r not in dead_routers]
    paths: Dict[Tuple[int, int], List[Path]] = {}
    for s in live:
        _, parent_arr = bfs_tree(indptr, indices, s, n)
        parent = parent_arr.tolist()
        for d in live:
            if d == s or parent[d] < 0:
                continue
            path = [d]
            while path[-1] != s:
                path.append(parent[path[-1]])
            path.reverse()
            paths[(s, d)] = [tuple(path)]

    if not paths:
        # Nothing survives (or nothing is mutually reachable): an empty
        # table with the base VC count — every flow counts as lost.
        return RoutingTable(
            topology=topo, next_hop={}, flow_vc={}, num_vcs=table.num_vcs
        )
    if max_vcs is None:
        max_vcs = max(8, table.num_vcs)
    routes = PathSet(topo, paths)
    vca = assign_vcs(routes, max_vcs=max_vcs, seed=seed)
    return build_routing_table(routes, vca)
