"""Declarative fault schedules: link/router failures and recoveries.

A :class:`FaultSchedule` is a sorted tuple of :class:`FaultEvent`\\ s,
each "at cycle ``T``, this directed link (or router) goes down / comes
back up".  Events at cycle ``T`` take effect at the *start* of cycle
``T``, before that cycle's generation — both engines share this contract
(see ``docs/ARCHITECTURE.md``, "Robustness scenarios").

Schedules are pure data: they serialize canonically (``as_dict`` /
``from_dict``) so they can ride inside runner task payloads and key the
result cache, and :meth:`key` gives a hashable identity for in-process
memos (the per-table :class:`~repro.faults.timeline.FaultTimeline`).

Links are directed, matching :class:`~repro.topology.Topology`; the
convenience constructors and the CLI parser treat a link target as a
full-duplex resource and emit both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Sequence, Tuple

FAULT_KINDS = ("link_down", "link_up", "router_down", "router_up")

#: Cumulative network state at one fault epoch:
#: (start_cycle, dead directed links, dead routers).
EpochState = Tuple[int, FrozenSet[Tuple[int, int]], FrozenSet[int]]


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One state change: at ``cycle``, ``target`` changes to ``kind``.

    ``target`` is ``(u, v)`` for link events and ``(r,)`` for router
    events.
    """

    cycle: int
    kind: str
    target: Tuple[int, ...]

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}: expected one of {FAULT_KINDS}"
            )
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")
        want = 2 if self.kind.startswith("link") else 1
        if len(self.target) != want:
            raise ValueError(
                f"{self.kind} target must have {want} element(s), "
                f"got {self.target!r}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """A canonically-sorted, immutable sequence of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(sorted(self.events)))

    # -- constructors --------------------------------------------------------
    @classmethod
    def of(cls, events: Iterable[FaultEvent]) -> "FaultSchedule":
        return cls(events=tuple(events))

    @classmethod
    def link_outage(
        cls,
        links: Sequence[Tuple[int, int]],
        down_cycle: int = 0,
        up_cycle: int = None,
        duplex: bool = True,
    ) -> "FaultSchedule":
        """Links down at ``down_cycle`` (both directions when ``duplex``),
        optionally recovering at ``up_cycle``."""
        events: List[FaultEvent] = []
        for (u, v) in links:
            dirs = [(u, v), (v, u)] if duplex else [(u, v)]
            for d in dirs:
                events.append(FaultEvent(down_cycle, "link_down", d))
                if up_cycle is not None:
                    events.append(FaultEvent(up_cycle, "link_up", d))
        return cls.of(events)

    @classmethod
    def router_outage(
        cls, routers: Sequence[int], down_cycle: int = 0, up_cycle: int = None
    ) -> "FaultSchedule":
        events: List[FaultEvent] = []
        for r in routers:
            events.append(FaultEvent(down_cycle, "router_down", (r,)))
            if up_cycle is not None:
                events.append(FaultEvent(up_cycle, "router_up", (r,)))
        return cls.of(events)

    # -- identity ------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.events

    def key(self) -> tuple:
        return tuple((e.cycle, e.kind, e.target) for e in self.events)

    # -- (de)serialization ---------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "events": [
                [e.cycle, e.kind, list(e.target)] for e in self.events
            ]
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultSchedule":
        return cls.of(
            FaultEvent(int(c), str(k), tuple(int(t) for t in tgt))
            for c, k, tgt in d.get("events", [])
        )

    # -- epoch expansion -----------------------------------------------------
    def states(self) -> List[EpochState]:
        """Cumulative (start, dead_links, dead_routers) per fault epoch.

        Always begins with an epoch at cycle 0 (pristine unless events
        fire at cycle 0); subsequent entries appear at each distinct
        event cycle with the events applied in canonical order.
        """
        dead_links: set = set()
        dead_routers: set = set()
        out: List[EpochState] = []
        i = 0
        events = self.events
        if not events or events[0].cycle > 0:
            out.append((0, frozenset(), frozenset()))
        while i < len(events):
            cycle = events[i].cycle
            while i < len(events) and events[i].cycle == cycle:
                e = events[i]
                if e.kind == "link_down":
                    dead_links.add((e.target[0], e.target[1]))
                elif e.kind == "link_up":
                    dead_links.discard((e.target[0], e.target[1]))
                elif e.kind == "router_down":
                    dead_routers.add(e.target[0])
                else:  # router_up
                    dead_routers.discard(e.target[0])
                i += 1
            out.append((cycle, frozenset(dead_links), frozenset(dead_routers)))
        return out

    def validate(self, topology) -> None:
        """Raise if any event targets a link/router the topology lacks."""
        n = topology.n
        for e in self.events:
            if e.kind.startswith("link"):
                u, v = e.target
                if not (0 <= u < n and 0 <= v < n) or not topology.has_link(u, v):
                    raise ValueError(
                        f"fault event targets link ({u},{v}) absent from "
                        f"{topology.name!r}"
                    )
            else:
                (r,) = e.target
                if not 0 <= r < n:
                    raise ValueError(
                        f"fault event targets router {r} out of range for "
                        f"{topology.name!r} (n={n})"
                    )


def parse_faults(text: str) -> FaultSchedule:
    """Parse a CLI fault spec: ``CYCLE:KIND:TARGET[,...]``.

    ``TARGET`` is ``u-v`` for link events (expanded to both directions —
    full-duplex semantics) and a router id for router events.  Example:
    ``500:link_down:2-7,1500:link_up:2-7,800:router_down:4``.
    """
    events: List[FaultEvent] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            cycle_s, kind, target = part.split(":")
            cycle = int(cycle_s)
            if kind.startswith("link"):
                u, v = (int(x) for x in target.split("-"))
                events.append(FaultEvent(cycle, kind, (u, v)))
                events.append(FaultEvent(cycle, kind, (v, u)))
            else:
                events.append(FaultEvent(cycle, kind, (int(target),)))
        except ValueError as exc:
            raise ValueError(f"malformed fault event {part!r}: {exc}") from None
    return FaultSchedule.of(events)


def central_link_faults(topology, k: int = 1, cycle: int = 0) -> FaultSchedule:
    """The ``k`` most central full-duplex links down permanently.

    Centrality is the endpoint degree sum — the deterministic "worst
    link" pick used by the robustness experiment; ties break by link
    index.  Both directions of each chosen link go down.
    """
    deg = topology.out_degree() + topology.in_degree()
    pairs = sorted(
        {(min(u, v), max(u, v)) for (u, v) in topology.directed_links
         if topology.has_link(v, u)}
    )
    if not pairs:  # fully asymmetric topology: fall back to directed links
        pairs = sorted(topology.directed_links)
    ranked = sorted(pairs, key=lambda p: (-(int(deg[p[0]]) + int(deg[p[1]])), p))
    return FaultSchedule.link_outage(ranked[:k], down_cycle=cycle)


def central_router_fault(topology, cycle: int = 0) -> FaultSchedule:
    """The highest-degree router down permanently (ties break low)."""
    deg = topology.out_degree() + topology.in_degree()
    r = int(min(range(topology.n), key=lambda i: (-int(deg[i]), i)))
    return FaultSchedule.router_outage([r], down_cycle=cycle)
