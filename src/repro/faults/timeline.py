"""Fault timelines: per-epoch survivor tables and compiled networks.

A :class:`FaultTimeline` expands a (:class:`~repro.routing.tables.
RoutingTable`, :class:`~repro.faults.schedule.FaultSchedule`) pair into
the ordered list of :class:`FaultEpoch`\\ s a simulation walks through:
each epoch owns the survivor routing table for its cumulative dead sets
and (lazily) its :class:`~repro.sim.fastnet.CompiledNetwork`.

Two invariants make the engines' table swap cheap and bit-exact:

* **constant channel-id space** — every epoch table lives on the
  original topology object, so link ``k`` is channel ``k`` in every
  epoch's compile;
* **constant VC count** — all epoch tables (the pristine base included)
  are padded to the maximum ``num_vcs`` any epoch needs, so per-slot
  queue state survives swaps index-for-index.  Padding only happens when
  a schedule is actually present; unused VC layers hold no flows and are
  observationally inert.

Timelines memoize on the table object (like ``CompiledNetwork.
for_table``), so the ~8 probes of one saturation search build the epoch
tables once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Tuple

from ..routing.tables import RoutingTable
from .reroute import survivor_table
from .schedule import FaultSchedule


@dataclass
class FaultEpoch:
    """One contiguous span of constant network state."""

    start: int
    table: RoutingTable
    dead_links: FrozenSet[Tuple[int, int]]
    dead_routers: FrozenSet[int]
    #: Dead links as channel ids in the shared (pristine) id space.
    dead_channels: FrozenSet[int]

    @property
    def compiled(self):
        """This epoch's compiled network (memoized on the epoch table)."""
        from ..sim.fastnet import CompiledNetwork

        return CompiledNetwork.for_table(self.table)


class FaultTimeline:
    """The full epoch sequence for one (table, schedule) pair."""

    def __init__(self, table: RoutingTable, schedule: FaultSchedule, seed: int = 0):
        topo = table.topology
        schedule.validate(topo)
        n = topo.n
        ch_id = {lk: i for i, lk in enumerate(topo.directed_links)}
        states = schedule.states()

        tables: List[RoutingTable] = []
        for (_, dead_links, dead_routers) in states:
            if not dead_links and not dead_routers:
                tables.append(table)
            else:
                tables.append(
                    survivor_table(table, dead_links, dead_routers, seed=seed)
                )
        vmax = max(t.num_vcs for t in tables)
        tables = [
            t if t.num_vcs == vmax else replace(t, num_vcs=vmax)
            for t in tables
        ]

        self.table = table
        self.schedule = schedule
        self.num_vcs = vmax
        self.epochs: List[FaultEpoch] = [
            FaultEpoch(
                start=start,
                table=tbl,
                dead_links=dead_links,
                dead_routers=dead_routers,
                dead_channels=frozenset(
                    ch_id[lk] for lk in dead_links if lk in ch_id
                ),
            )
            for (start, dead_links, dead_routers), tbl in zip(states, tables)
        ]

    @classmethod
    def for_table(
        cls, table: RoutingTable, schedule: FaultSchedule
    ) -> "FaultTimeline":
        """The table's timeline for this schedule, built at most once."""
        memo = table.__dict__.setdefault("_fault_timelines", {})
        key = schedule.key()
        cached = memo.get(key)
        if cached is None:
            cached = cls(table, schedule)
            memo[key] = cached
        return cached


def recovery_points(schedule: FaultSchedule) -> Tuple:
    """The (first fault, last repair) cycle pair of a schedule.

    ``fault_cycle`` is the earliest ``*_down`` event and
    ``recovery_cycle`` the latest ``*_up`` event — the reference points
    the transient-recovery metrics measure from (baseline windows end
    before ``fault_cycle``; drain/settling clocks start at
    ``recovery_cycle``).  Either is ``None`` when the schedule has no
    event of that direction.
    """
    downs = [e.cycle for e in schedule.events if e.kind.endswith("_down")]
    ups = [e.cycle for e in schedule.events if e.kind.endswith("_up")]
    return (min(downs) if downs else None, max(ups) if ups else None)
