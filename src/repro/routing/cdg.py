"""Channel dependency graphs (Dally & Seitz deadlock theory, paper II-F).

A CDG node is a directed channel ``(i, j)``; an edge ``(a,b) -> (b,c)``
exists when some route occupies channel ``(a,b)`` and then ``(b,c)``.
Acyclic CDGs are sufficient for deadlock-free wormhole routing; the VC
allocator (:mod:`repro.routing.vc_alloc`) partitions routes into layers
whose per-layer CDGs are acyclic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .paths import Path, PathSet

Channel = Tuple[int, int]
Dependency = Tuple[Channel, Channel]


def path_dependencies(path: Path) -> List[Dependency]:
    """Consecutive channel pairs a route occupies."""
    chans = [(path[k], path[k + 1]) for k in range(len(path) - 1)]
    return [(chans[k], chans[k + 1]) for k in range(len(chans) - 1)]


def build_cdg(paths: Iterable[Path]) -> nx.DiGraph:
    """CDG of a set of routes; edges annotated with the inducing paths."""
    g = nx.DiGraph()
    for p in paths:
        for dep in path_dependencies(p):
            a, b = dep
            if g.has_edge(a, b):
                g[a][b]["paths"].append(p)
            else:
                g.add_edge(a, b, paths=[p])
    return g


def find_cycle(g: nx.DiGraph) -> Optional[List[Dependency]]:
    """One directed cycle as a list of CDG edges, or ``None`` if acyclic."""
    try:
        cyc = nx.find_cycle(g, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [(u, v) for u, v, _ in cyc]


def is_acyclic(g: nx.DiGraph) -> bool:
    return nx.is_directed_acyclic_graph(g)


def paths_are_deadlock_free(paths: Iterable[Path]) -> bool:
    """True when the routes' CDG is acyclic (single-VC deadlock freedom)."""
    return is_acyclic(build_cdg(list(paths)))
