"""Destination-tree BFS routing for large networks (the ``bfs`` policy).

Every policy predating this one materializes per-flow path lists and a
dict table — O(n² · avg_hops) entries — which is the memory wall at
256+ routers.  Destination-tree routing spends O(n²) total: for each
destination ``t``, one BFS on the *reversed* graph yields an in-tree
whose parent pointers are exactly "next hop toward ``t``", shared by
every source.  The result is destination-consistent by construction and
compiles straight into a :class:`~repro.routing.tables.CSRRoutingTable`.

Deadlock freedom comes from VC layering over whole destinations: flows
to one destination all ride one layer.  Within a single destination the
channel-dependency graph follows tree edges strictly toward the root, so
it is acyclic on its own; cycles can only arise between *different*
destinations sharing a layer.  A greedy first-fit packs destinations
into layers, accepting a destination iff the union dependency graph of
the layer stays acyclic (checked as "every strongly-connected component
is a single vertex" via :func:`scipy.sparse.csgraph.connected_components`).
Above ``layering_cutoff`` routers the layering is skipped entirely and
the table ships with ``num_vcs = 1``: radix-4 destination trees on
larger networks need more layers than the engine's occupancy-mask
tables support (measured: ~9-11 layers at 128 routers, 22+ at 256, even
flow-granular LASH-style eviction stays above 15 at 256), so the
evaluation pipeline stops cycle-accurate simulation at the same size
(see ``sim_cutoff`` in :func:`repro.pipeline.stages.evaluate_tables`)
and larger candidates are ranked on exact metrics alone.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from ..topology import Topology
from ..topology.csr import bfs_tree, build_csr
from .tables import CSRRoutingTable

#: Largest router count whose tables get a real deadlock-free VC
#: layering; larger networks are metrics-ranked only (never simulated)
#: and ship a trivial single-layer assignment.
LAYERING_CUTOFF = 128


def bfs_dest_hops(topo: Topology) -> np.ndarray:
    """Flat ``node*n + dst -> next hop`` array from per-dst BFS in-trees.

    The BFS parent of ``v`` on the reversed graph is the head of a
    forward link ``(v, parent)`` lying on a shortest ``v -> t`` path, so
    it *is* the next hop.  :func:`~repro.topology.csr.bfs_tree` expands
    FIFO with ascending-neighbor tie-breaks, making the tree (and hence
    the whole table) deterministic.
    """
    n = topo.n
    rindptr, rindices = build_csr(np.ascontiguousarray(topo.adj.T))
    next_dst = np.full(n * n, -1, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64) * n
    for t in range(n):
        _, parent = bfs_tree(rindptr, rindices, t, n)
        reach = parent >= 0
        next_dst[idx[reach] + t] = parent[reach]
    return next_dst


def _dest_dependency_edges(
    next_dst: np.ndarray, t: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Channel-dependency edges contributed by destination ``t``.

    Channels are flat link ids ``a*n + b``.  A packet at ``v`` holds
    channel ``(v, p(v))`` and next requests ``(p(v), p(p(v)))`` — unless
    ``p(v)`` is the destination, where it is consumed.
    """
    hops = next_dst[np.arange(n, dtype=np.int64) * n + t]
    v = np.nonzero(hops >= 0)[0]
    p = hops[v]
    inner = p != t
    v, p = v[inner], p[inner]
    pp = next_dst[p * n + t]
    return v * n + p, p * n + pp


def layer_destinations(
    next_dst: np.ndarray, n: int, max_vcs: int
) -> Tuple[np.ndarray, int]:
    """Greedy first-fit packing of destinations into acyclic VC layers.

    Returns ``(layer_of_dst, num_layers)``; raises if ``max_vcs`` layers
    cannot hold every destination (mirroring
    :func:`~repro.routing.vc_alloc.assign_vcs`'s contract).
    """
    layer_of = np.zeros(n, dtype=np.int64)
    # Accumulated (src_channel, dst_channel) edge arrays per layer.
    layers: List[List[np.ndarray]] = []

    def acyclic(heads: np.ndarray, tails: np.ndarray) -> bool:
        if heads.size == 0:
            return True
        chans, inv = np.unique(
            np.concatenate([heads, tails]), return_inverse=True
        )
        m = chans.size
        g = csr_matrix(
            (
                np.ones(heads.size, dtype=np.int8),
                (inv[: heads.size], inv[heads.size :]),
            ),
            shape=(m, m),
        )
        ncomp = connected_components(
            g, directed=True, connection="strong", return_labels=False
        )
        return ncomp == m  # every SCC trivial -> no dependency cycle

    for t in range(n):
        h, tl = _dest_dependency_edges(next_dst, t, n)
        placed = False
        for li, acc in enumerate(layers):
            trial_h = np.concatenate([acc[0], h])
            trial_t = np.concatenate([acc[1], tl])
            if acyclic(trial_h, trial_t):
                acc[0], acc[1] = trial_h, trial_t
                layer_of[t] = li
                placed = True
                break
        if not placed:
            if len(layers) >= max_vcs:
                raise ValueError(
                    f"destination layering needs more than {max_vcs} VC "
                    f"layers (stuck at destination {t})"
                )
            layers.append([h, tl])
            layer_of[t] = len(layers) - 1
    return layer_of, max(len(layers), 1)


def bfs_dest_table(
    topo: Topology,
    max_vcs: int = 8,
    seed: int = 0,
    layering_cutoff: int = LAYERING_CUTOFF,
) -> CSRRoutingTable:
    """Route ``topo`` with per-destination BFS trees into a CSR table.

    ``seed`` is accepted for call-site parity with the other policies
    but unused — the policy is fully deterministic.
    """
    del seed
    n = topo.n
    next_dst = bfs_dest_hops(topo)
    offdiag = ~np.eye(n, dtype=bool).reshape(n * n)
    missing = offdiag & (next_dst < 0)
    if missing.any():
        k = int(np.nonzero(missing)[0][0])
        raise ValueError(
            f"topology is not strongly connected: no route for flow "
            f"({k // n},{k % n})"
        )
    if n <= layering_cutoff:
        layer_of, num_vcs = layer_destinations(next_dst, n, max_vcs)
    else:
        layer_of, num_vcs = np.zeros(n, dtype=np.int64), 1
    flow_vc = np.tile(layer_of, n)  # flow (s, d) rides d's layer
    return CSRRoutingTable.from_hops(
        topo, next_dst, flow_vc, offdiag, num_vcs
    )
