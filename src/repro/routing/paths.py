"""Shortest-path enumeration (the static input to MCLB, paper III-D).

The set of all minimal paths between every source and destination is
computed from the topology: a BFS-distance pass builds the shortest-path
DAG toward each destination, then paths are enumerated by DFS over DAG
predecessors.  Pair path counts are bounded (``max_paths_per_pair``) with
deterministic selection so MCLB model sizes stay controlled; on the
paper's 20-to-84-router instances the cap is rarely hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..topology import Topology

Path = Tuple[int, ...]


@dataclass
class PathSet:
    """All candidate minimal routes, grouped per (source, destination)."""

    topology: Topology
    paths: Dict[Tuple[int, int], List[Path]] = field(default_factory=dict)

    def __getitem__(self, sd: Tuple[int, int]) -> List[Path]:
        return self.paths[sd]

    def pairs(self) -> List[Tuple[int, int]]:
        return sorted(self.paths)

    @property
    def total_paths(self) -> int:
        return sum(len(v) for v in self.paths.values())

    def flat(self) -> List[Tuple[Tuple[int, int], Path]]:
        """The paper's flat list P, tagged with its flow."""
        out = []
        for sd in self.pairs():
            for p in self.paths[sd]:
                out.append((sd, p))
        return out

    def links_of(self, path: Path) -> List[Tuple[int, int]]:
        return [(path[k], path[k + 1]) for k in range(len(path) - 1)]

    def validate(self) -> None:
        """Check every stored path is a genuine minimal route."""
        dist = self.topology.hop_matrix()
        for (s, d), plist in self.paths.items():
            if not plist:
                raise ValueError(f"no path stored for flow {s}->{d}")
            for p in plist:
                if p[0] != s or p[-1] != d:
                    raise ValueError(f"path {p} does not connect {s}->{d}")
                if len(p) - 1 != int(dist[s, d]):
                    raise ValueError(f"path {p} is not minimal for {s}->{d}")
                for a, b in self.links_of(p):
                    if not self.topology.has_link(a, b):
                        raise ValueError(f"path {p} uses missing link ({a},{b})")


def enumerate_shortest_paths(
    topo: Topology, max_paths_per_pair: int = 64
) -> PathSet:
    """All minimal paths for every ordered pair (Floyd–Warshall distances
    + DFS over the shortest-path DAG)."""
    dist = topo.hop_matrix()
    if not np.isfinite(dist).all():
        raise ValueError(f"{topo.name}: disconnected; cannot enumerate paths")
    n = topo.n
    out: Dict[Tuple[int, int], List[Path]] = {}
    # successor lists: next hops u->v on some shortest path to d
    for d in range(n):
        for s in range(n):
            if s == d:
                continue
            paths: List[Path] = []
            stack: List[List[int]] = [[s]]
            while stack and len(paths) < max_paths_per_pair:
                prefix = stack.pop()
                u = prefix[-1]
                if u == d:
                    paths.append(tuple(prefix))
                    continue
                # deterministic order for reproducibility
                for v in topo.neighbors_out(u):
                    if dist[u, d] == dist[v, d] + 1:
                        stack.append(prefix + [v])
            paths.sort()
            out[(s, d)] = paths
    return PathSet(topology=topo, paths=out)


def single_shortest_paths(topo: Topology, seed: int = 0) -> PathSet:
    """One uniformly random minimal path per pair (the paper's "random
    selection of paths amongst the valid choices")."""
    full = enumerate_shortest_paths(topo)
    rng = np.random.default_rng(seed)
    picked = {
        sd: [plist[int(rng.integers(len(plist)))]] for sd, plist in full.paths.items()
    }
    return PathSet(topology=topo, paths=picked)
