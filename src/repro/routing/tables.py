"""Table-based routing state for the simulator (paper II-E).

``RoutingTable`` is the deployable artifact NetSmith emits: for every
(current router, destination) it stores the next hop and, per flow, the
assigned VC layer.  Built from a single-path :class:`PathSet` plus a
:class:`VCAssignment`.

``CSRRoutingTable`` is its sparse sibling for large networks: next hops
live in CSR ``indptr``/``indices`` arrays keyed by ``(node, dst)`` —
valid whenever routing is *destination-consistent* (the hop at a router
depends only on the destination, true for every per-destination-tree
policy such as ``bfs`` and for fault-survivor BFS re-routes).  The two
forms round-trip losslessly (:meth:`CSRRoutingTable.from_table` /
:meth:`~CSRRoutingTable.to_table`), and the fast engine compiles either
directly (the CSR form without the dense per-(node, src, dst)
intermediate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..topology import Topology
from .paths import Path, PathSet
from .vc_alloc import VCAssignment


@dataclass
class RoutingTable:
    """Deterministic per-flow table routing with VC assignment."""

    topology: Topology
    next_hop: Dict[Tuple[int, int, int], int]  # (node, src, dst) -> next node
    flow_vc: Dict[Tuple[int, int], int]  # (src, dst) -> vc layer
    num_vcs: int

    def hop(self, node: int, src: int, dst: int) -> int:
        """Next router for a packet of flow (src, dst) at ``node``."""
        return self.next_hop[(node, src, dst)]

    def vc(self, src: int, dst: int) -> int:
        return self.flow_vc[(src, dst)]

    def route_of(self, src: int, dst: int) -> Path:
        """Reconstruct the full path of a flow from the table."""
        path = [src]
        node = src
        while node != dst:
            node = self.hop(node, src, dst)
            path.append(node)
            if len(path) > self.topology.n + 1:
                raise RuntimeError(f"routing loop for flow ({src},{dst})")
        return tuple(path)

    def validate(self) -> None:
        """Every flow must reach its destination over existing links."""
        n = self.topology.n
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                p = self.route_of(s, d)
                for k in range(len(p) - 1):
                    if not self.topology.has_link(p[k], p[k + 1]):
                        raise AssertionError(
                            f"table routes flow ({s},{d}) over missing link "
                            f"({p[k]},{p[k+1]})"
                        )


class CSRRoutingTable:
    """Destination-keyed sparse routing table (``indptr``/``indices``).

    Flat key ``node * n + dst`` indexes ``indptr``; the (at most one)
    next hop of that pair lives in ``indices[indptr[k]:indptr[k+1]]``.
    Per-flow VC layers and flow liveness are flat n² arrays.  Valid only
    for destination-consistent routing — :meth:`from_table` refuses
    tables where two flows to one destination diverge at a shared
    router.  Implements the same duck-typed surface as
    :class:`RoutingTable` (``hop``/``vc``/``route_of``/``validate``,
    ``topology``, ``num_vcs``); the ``dest_keyed`` attribute is what
    consumers dispatch on.
    """

    dest_keyed = True

    def __init__(
        self,
        topology: Topology,
        indptr: np.ndarray,
        indices: np.ndarray,
        flow_vc: np.ndarray,
        flow_mask: np.ndarray,
        num_vcs: int,
    ):
        n = topology.n
        if indptr.shape != (n * n + 1,):
            raise ValueError(f"indptr shape {indptr.shape} != ({n * n + 1},)")
        self.topology = topology
        self.indptr = indptr
        self.indices = indices
        self.flow_vc = flow_vc
        self.flow_mask = flow_mask
        self.num_vcs = int(num_vcs)

    # -- construction -------------------------------------------------
    @classmethod
    def from_hops(
        cls,
        topology: Topology,
        next_dst: np.ndarray,
        flow_vc: np.ndarray,
        flow_mask: np.ndarray,
        num_vcs: int,
    ) -> "CSRRoutingTable":
        """From a flat ``(node*n + dst) -> next hop`` array (-1 absent)."""
        n = topology.n
        next_dst = np.asarray(next_dst, dtype=np.int64).reshape(n * n)
        present = next_dst >= 0
        indptr = np.zeros(n * n + 1, dtype=np.int64)
        np.cumsum(present.astype(np.int64), out=indptr[1:])
        return cls(
            topology=topology,
            indptr=indptr,
            indices=next_dst[present],
            flow_vc=np.asarray(flow_vc, dtype=np.int64).reshape(n * n),
            flow_mask=np.asarray(flow_mask, dtype=bool).reshape(n * n),
            num_vcs=num_vcs,
        )

    @classmethod
    def from_table(cls, table: RoutingTable) -> "CSRRoutingTable":
        """Sparse form of a dict table; raises if not dest-consistent."""
        topo = table.topology
        n = topo.n
        next_dst = np.full(n * n, -1, dtype=np.int64)
        for (node, src, dst), hop in table.next_hop.items():
            k = node * n + dst
            known = next_dst[k]
            if known >= 0 and known != hop:
                raise ValueError(
                    f"table is not destination-consistent: router {node} "
                    f"sends dst {dst} to both {known} and {hop} depending "
                    "on source"
                )
            next_dst[k] = hop
        flow_vc = np.zeros(n * n, dtype=np.int64)
        flow_mask = np.zeros(n * n, dtype=bool)
        for (src, dst), vc in table.flow_vc.items():
            flow_vc[src * n + dst] = vc
            flow_mask[src * n + dst] = True
        return cls.from_hops(topo, next_dst, flow_vc, flow_mask, table.num_vcs)

    def to_table(self) -> RoutingTable:
        """Lossless dict form: walk every flow through the hop arrays.

        Dict tables only carry entries on actual flow paths, so walking
        each live flow from its source reconstructs ``next_hop`` and
        ``flow_vc`` exactly as :func:`build_routing_table` would have
        emitted them for the same routes.
        """
        n = self.topology.n
        next_hop: Dict[Tuple[int, int, int], int] = {}
        flow_vc: Dict[Tuple[int, int], int] = {}
        for k in np.nonzero(self.flow_mask)[0].tolist():
            src, dst = divmod(k, n)
            node = src
            while node != dst:
                nxt = self.hop(node, src, dst)
                next_hop[(node, src, dst)] = nxt
                node = nxt
                if len(next_hop) > n * n * n:  # pragma: no cover
                    raise RuntimeError(f"routing loop for flow ({src},{dst})")
            flow_vc[(src, dst)] = int(self.flow_vc[k])
        return RoutingTable(
            topology=self.topology,
            next_hop=next_hop,
            flow_vc=flow_vc,
            num_vcs=self.num_vcs,
        )

    # -- RoutingTable surface -----------------------------------------
    def next_matrix(self) -> np.ndarray:
        """Flat ``node*n + dst -> next hop`` int64 array (-1 = absent)."""
        n = self.topology.n
        out = np.full(n * n, -1, dtype=np.int64)
        counts = np.diff(self.indptr)
        out[counts > 0] = self.indices
        return out

    def hop(self, node: int, src: int, dst: int) -> int:
        """Next router for a packet of flow (src, dst) at ``node``."""
        k = node * self.topology.n + dst
        lo, hi = int(self.indptr[k]), int(self.indptr[k + 1])
        if lo == hi:
            raise KeyError((node, src, dst))
        return int(self.indices[lo])

    def vc(self, src: int, dst: int) -> int:
        k = src * self.topology.n + dst
        if not self.flow_mask[k]:
            raise KeyError((src, dst))
        return int(self.flow_vc[k])

    def route_of(self, src: int, dst: int) -> Path:
        """Reconstruct the full path of a flow from the table."""
        path = [src]
        node = src
        while node != dst:
            node = self.hop(node, src, dst)
            path.append(node)
            if len(path) > self.topology.n + 1:
                raise RuntimeError(f"routing loop for flow ({src},{dst})")
        return tuple(path)

    def validate(self) -> None:
        """Every flow must reach its destination over existing links."""
        n = self.topology.n
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                p = self.route_of(s, d)
                for k in range(len(p) - 1):
                    if not self.topology.has_link(p[k], p[k + 1]):
                        raise AssertionError(
                            f"table routes flow ({s},{d}) over missing link "
                            f"({p[k]},{p[k+1]})"
                        )


def build_routing_table(
    routes: PathSet, vca: Optional[VCAssignment] = None
) -> RoutingTable:
    """Compile a single-path route set (+ VC assignment) into a table."""
    next_hop: Dict[Tuple[int, int, int], int] = {}
    flow_vc: Dict[Tuple[int, int], int] = {}
    for sd in routes.pairs():
        plist = routes[sd]
        if len(plist) != 1:
            raise ValueError(f"flow {sd} has {len(plist)} routes; expected one")
        p = plist[0]
        s, d = sd
        for k in range(len(p) - 1):
            next_hop[(p[k], s, d)] = p[k + 1]
        flow_vc[sd] = vca.vc_of(s, d) if vca is not None else 0
    num_vcs = vca.num_vcs if vca is not None else 1
    return RoutingTable(
        topology=routes.topology,
        next_hop=next_hop,
        flow_vc=flow_vc,
        num_vcs=num_vcs,
    )
