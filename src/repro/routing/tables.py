"""Table-based routing state for the simulator (paper II-E).

``RoutingTable`` is the deployable artifact NetSmith emits: for every
(current router, destination) it stores the next hop and, per flow, the
assigned VC layer.  Built from a single-path :class:`PathSet` plus a
:class:`VCAssignment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..topology import Topology
from .paths import Path, PathSet
from .vc_alloc import VCAssignment


@dataclass
class RoutingTable:
    """Deterministic per-flow table routing with VC assignment."""

    topology: Topology
    next_hop: Dict[Tuple[int, int, int], int]  # (node, src, dst) -> next node
    flow_vc: Dict[Tuple[int, int], int]  # (src, dst) -> vc layer
    num_vcs: int

    def hop(self, node: int, src: int, dst: int) -> int:
        """Next router for a packet of flow (src, dst) at ``node``."""
        return self.next_hop[(node, src, dst)]

    def vc(self, src: int, dst: int) -> int:
        return self.flow_vc[(src, dst)]

    def route_of(self, src: int, dst: int) -> Path:
        """Reconstruct the full path of a flow from the table."""
        path = [src]
        node = src
        while node != dst:
            node = self.hop(node, src, dst)
            path.append(node)
            if len(path) > self.topology.n + 1:
                raise RuntimeError(f"routing loop for flow ({src},{dst})")
        return tuple(path)

    def validate(self) -> None:
        """Every flow must reach its destination over existing links."""
        n = self.topology.n
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                p = self.route_of(s, d)
                for k in range(len(p) - 1):
                    if not self.topology.has_link(p[k], p[k + 1]):
                        raise AssertionError(
                            f"table routes flow ({s},{d}) over missing link "
                            f"({p[k]},{p[k+1]})"
                        )


def build_routing_table(
    routes: PathSet, vca: Optional[VCAssignment] = None
) -> RoutingTable:
    """Compile a single-path route set (+ VC assignment) into a table."""
    next_hop: Dict[Tuple[int, int, int], int] = {}
    flow_vc: Dict[Tuple[int, int], int] = {}
    for sd in routes.pairs():
        plist = routes[sd]
        if len(plist) != 1:
            raise ValueError(f"flow {sd} has {len(plist)} routes; expected one")
        p = plist[0]
        s, d = sd
        for k in range(len(p) - 1):
            next_hop[(p[k], s, d)] = p[k + 1]
        flow_vc[sd] = vca.vc_of(s, d) if vca is not None else 0
    num_vcs = vca.num_vcs if vca is not None else 1
    return RoutingTable(
        topology=routes.topology,
        next_hop=next_hop,
        flow_vc=flow_vc,
        num_vcs=num_vcs,
    )
