"""Routing substrate: path enumeration, NDBT, CDG/VC deadlock machinery,
channel-load analysis, and deployable routing tables."""

from .paths import Path, PathSet, enumerate_shortest_paths, single_shortest_paths
from .ndbt import doubles_back_horizontally, ndbt_paths, ndbt_route
from .cdg import (
    build_cdg,
    find_cycle,
    is_acyclic,
    path_dependencies,
    paths_are_deadlock_free,
)
from .vc_alloc import VCAssignment, assign_vcs, validate_assignment
from .channel_load import (
    LoadAnalysis,
    ThroughputBounds,
    channel_loads,
    throughput_bounds,
)
from .tables import RoutingTable, build_routing_table

__all__ = [
    "Path",
    "PathSet",
    "enumerate_shortest_paths",
    "single_shortest_paths",
    "ndbt_paths",
    "ndbt_route",
    "doubles_back_horizontally",
    "build_cdg",
    "find_cycle",
    "is_acyclic",
    "path_dependencies",
    "paths_are_deadlock_free",
    "VCAssignment",
    "assign_vcs",
    "validate_assignment",
    "LoadAnalysis",
    "channel_loads",
    "ThroughputBounds",
    "throughput_bounds",
    "RoutingTable",
    "build_routing_table",
]
