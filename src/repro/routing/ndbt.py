"""NDBT routing: shortest paths with "no double-back turns" (paper II-E).

The expert-designed topologies (Kite, Butter Donut, Double Butterfly,
Folded Torus) all use shortest-path routing restricted by a turn rule: no
route may double back along the horizontal axis — once a path has moved
in the +x direction it may never move in -x, and vice versa.  Vertical
movement is unconstrained.  Deadlock freedom then follows from the usual
turn-model argument with a small number of escape VCs.

Among the remaining valid choices, paths are selected uniformly at random
(the paper's stated policy).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..topology import Topology
from .paths import Path, PathSet, enumerate_shortest_paths


def doubles_back_horizontally(topo: Topology, path: Path) -> bool:
    """True if the path reverses its horizontal direction at any point."""
    direction = 0  # 0 = undecided, +1 = east, -1 = west
    for k in range(len(path) - 1):
        xa, _ = topo.layout.position(path[k])
        xb, _ = topo.layout.position(path[k + 1])
        dx = xb - xa
        if dx == 0:
            continue
        step = 1 if dx > 0 else -1
        if direction == 0:
            direction = step
        elif step != direction:
            return True
    return False


def ndbt_paths(topo: Topology, max_paths_per_pair: int = 64) -> PathSet:
    """All minimal paths satisfying the no-double-back rule.

    Pairs whose *every* minimal path doubles back keep their full path set
    (the rule only prunes when alternatives exist — otherwise the network
    would be unroutable; the expert topologies are designed so this case
    does not arise, but machine topologies routed with NDBT need the
    fallback).
    """
    full = enumerate_shortest_paths(topo, max_paths_per_pair=max_paths_per_pair)
    filtered: Dict[Tuple[int, int], List[Path]] = {}
    for sd, plist in full.paths.items():
        kept = [p for p in plist if not doubles_back_horizontally(topo, p)]
        filtered[sd] = kept if kept else plist
    return PathSet(topology=topo, paths=filtered)


def ndbt_route(topo: Topology, seed: int = 0, max_paths_per_pair: int = 64) -> PathSet:
    """One random NDBT-valid minimal path per flow (the evaluation policy)."""
    candidates = ndbt_paths(topo, max_paths_per_pair=max_paths_per_pair)
    rng = np.random.default_rng(seed)
    picked = {
        sd: [plist[int(rng.integers(len(plist)))]]
        for sd, plist in candidates.paths.items()
    }
    return PathSet(topology=topo, paths=picked)
