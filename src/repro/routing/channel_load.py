"""Channel-load analysis and throughput bounds (paper II-D and Fig. 7).

Given a single-path route set under uniform all-to-all traffic, the load
on a channel is the number of flows crossing it.  The maximum channel
load yields the routed network's saturation bound: with every node
injecting ``x`` flits/cycle spread over its ``n-1`` flows, a channel
carrying ``f`` flows sees ``x * f / (n-1)`` flits/cycle of demand against
1 flit/cycle of capacity, so ``x_sat = (n-1) / max_load``.

The module also exposes the topology-level cut and occupancy bounds that
Fig. 7 plots as solid reference lines, re-exported from
:mod:`repro.topology.metrics` for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..topology import (
    Topology,
    cut_throughput_bound,
    occupancy_throughput_bound,
)
from .paths import PathSet

Channel = Tuple[int, int]


@dataclass
class LoadAnalysis:
    """Channel loads of a routed network under uniform traffic."""

    loads: Dict[Channel, int]
    max_load: int
    mean_load: float
    num_flows: int

    def saturation_injection(self, n_nodes: int) -> float:
        """Max-channel-load saturation bound, flits/node/cycle."""
        if self.max_load == 0:
            return float("inf")
        return (n_nodes - 1) / self.max_load


def channel_loads(routes: PathSet, weights: Optional[np.ndarray] = None) -> LoadAnalysis:
    """Per-channel flow counts for a single-path route set.

    ``weights[s, d]`` scales each flow's contribution (uniform all-to-all
    when omitted); fractional weights model non-uniform traffic such as
    the memory pattern.
    """
    loads: Dict[Channel, float] = {}
    nflows = 0
    for sd in routes.pairs():
        plist = routes[sd]
        if len(plist) != 1:
            raise ValueError(f"flow {sd} has {len(plist)} routes; expected one")
        w = 1.0 if weights is None else float(weights[sd[0], sd[1]])
        if w == 0.0:
            continue
        nflows += 1
        for link in routes.links_of(plist[0]):
            loads[link] = loads.get(link, 0.0) + w
    if not loads:
        return LoadAnalysis({}, 0, 0.0, 0)
    vals = np.array(list(loads.values()))
    int_loads = {k: int(round(v)) for k, v in loads.items()}
    return LoadAnalysis(
        loads=int_loads if weights is None else loads,  # type: ignore[arg-type]
        max_load=int(np.ceil(vals.max())),
        mean_load=float(vals.mean()),
        num_flows=nflows,
    )


@dataclass
class ThroughputBounds:
    """The three bounds of paper Section II-D for one routed topology."""

    cut_bound: float  # sparsest-cut bound (topology property)
    occupancy_bound: float  # shortest-path link-occupancy bound
    routed_bound: float  # max-channel-load bound of the actual routes

    @property
    def analytical(self) -> float:
        """The tighter of the two topology-level bounds."""
        return min(self.cut_bound, self.occupancy_bound)

    @property
    def binding(self) -> str:
        """Which topology bound binds (``"cut"`` or ``"occupancy"``)."""
        return "cut" if self.cut_bound <= self.occupancy_bound else "occupancy"


def throughput_bounds(topo: Topology, routes: PathSet, **cut_kw) -> ThroughputBounds:
    """All saturation bounds, flits/node/cycle (Fig. 7's reference lines)."""
    analysis = channel_loads(routes)
    return ThroughputBounds(
        cut_bound=cut_throughput_bound(topo, **cut_kw),
        occupancy_bound=occupancy_throughput_bound(topo),
        routed_bound=analysis.saturation_injection(topo.n),
    )
