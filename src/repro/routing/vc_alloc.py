"""Deadlock-free VC assignment by acyclic CDG layering (paper IV-A).

Implements the DFSSSP-style procedure the paper applies (Domke et al.
[15]): all routes start in VC 0; while the layer's channel dependency
graph has a cycle, pick one back-edge of the cycle at random and evict
every route inducing that dependency to the next VC; repeat per layer.
The result is a partition of routes into layers whose per-layer CDGs are
acyclic, hence deadlock-free with one escape VC per layer.

Layers are then load-balanced using path-length-weighted VC occupancy
(a path traversing three links has weight three), matching Section IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cdg import build_cdg, find_cycle, is_acyclic
from .paths import Path, PathSet


@dataclass
class VCAssignment:
    """Maps each flow's route to a virtual channel layer."""

    num_vcs: int
    assignment: Dict[Tuple[int, int], int]  # flow (s,d) -> vc
    layers: List[List[Path]] = field(default_factory=list)

    def vc_of(self, s: int, d: int) -> int:
        return self.assignment[(s, d)]

    def layer_weights(self) -> List[int]:
        """Path-length-weighted occupancy per VC (the balancing metric)."""
        return [sum(len(p) - 1 for p in layer) for layer in self.layers]


def assign_vcs(
    routes: PathSet,
    max_vcs: int = 8,
    seed: int = 0,
    attempts: int = 3,
) -> VCAssignment:
    """Partition single-path routes into acyclic VC layers.

    ``routes`` must contain exactly one path per flow (e.g. from
    :func:`repro.routing.ndbt.ndbt_route` or MCLB).  Because the back-edge
    choice is randomized (paper IV-A), ``attempts`` independent runs are
    made and the fewest-layer assignment kept.  Raises if every attempt
    needs more than ``max_vcs`` layers (does not occur for the paper's
    configurations: 4 VCs suffice for every 20-router case, with Folded
    Torus the 4-VC outlier; 48-router irregular networks may need more).
    """
    best: Optional[VCAssignment] = None
    last_err: Optional[Exception] = None
    for k in range(max(1, attempts)):
        try:
            cand = _assign_vcs_once(routes, max_vcs=max_vcs, seed=seed + 7919 * k)
        except RuntimeError as e:
            last_err = e
            continue
        if best is None or cand.num_vcs < best.num_vcs:
            best = cand
    if best is None:
        raise last_err if last_err is not None else RuntimeError("VC assignment failed")
    return best


def _assign_vcs_once(
    routes: PathSet,
    max_vcs: int,
    seed: int,
) -> VCAssignment:
    rng = np.random.default_rng(seed)
    flows: List[Tuple[Tuple[int, int], Path]] = []
    for sd in routes.pairs():
        plist = routes[sd]
        if len(plist) != 1:
            raise ValueError(
                f"flow {sd} has {len(plist)} routes; VC assignment needs one"
            )
        flows.append((sd, plist[0]))

    remaining = list(flows)
    layers: List[List[Tuple[Tuple[int, int], Path]]] = []
    while remaining:
        if len(layers) >= max_vcs:
            raise RuntimeError(
                f"VC assignment exceeded {max_vcs} layers; routes are too cyclic"
            )
        layer = list(remaining)
        evicted: List[Tuple[Tuple[int, int], Path]] = []
        g = build_cdg([p for _, p in layer])
        while True:
            cycle = find_cycle(g)
            if cycle is None:
                break
            # random back-edge selection (paper: "simple, random selection
            # of the cycle-forming back edge ... gave sufficiently low
            # required virtual channels")
            dep = cycle[int(rng.integers(len(cycle)))]
            inducing = list(g[dep[0]][dep[1]]["paths"])
            inducing_set = set(inducing)
            moved = [fl for fl in layer if fl[1] in inducing_set]
            layer = [fl for fl in layer if fl[1] not in inducing_set]
            evicted.extend(moved)
            g = build_cdg([p for _, p in layer])
        layers.append(layer)
        remaining = evicted

    layers = _balance_layers(layers, rng)

    assignment = {}
    path_layers: List[List[Path]] = []
    for vc, layer in enumerate(layers):
        path_layers.append([p for _, p in layer])
        for sd, _ in layer:
            assignment[sd] = vc
    return VCAssignment(
        num_vcs=len(layers), assignment=assignment, layers=path_layers
    )


def _balance_layers(
    layers: List[List[Tuple[Tuple[int, int], Path]]],
    rng: np.random.Generator,
) -> List[List[Tuple[Tuple[int, int], Path]]]:
    """Greedy re-balancing by path-length weight, preserving acyclicity.

    Moves routes from the heaviest layer to lighter layers when the move
    keeps the receiving layer's CDG acyclic.
    """
    if len(layers) <= 1:
        return layers

    def weight(layer):
        return sum(len(p) - 1 for _, p in layer)

    changed = True
    while changed:
        changed = False
        weights = [weight(l) for l in layers]
        src = int(np.argmax(weights))
        order = sorted(range(len(layers)), key=lambda k: weights[k])
        for flow in sorted(layers[src], key=lambda fl: -(len(fl[1]) - 1)):
            for dst in order:
                if dst == src:
                    continue
                if weights[dst] + (len(flow[1]) - 1) >= weights[src]:
                    continue
                trial = [p for _, p in layers[dst]] + [flow[1]]
                if is_acyclic(build_cdg(trial)):
                    layers[dst].append(flow)
                    layers[src].remove(flow)
                    changed = True
                    break
            if changed:
                break
    return layers


def validate_assignment(routes: PathSet, vca: VCAssignment) -> None:
    """Assert every layer's CDG is acyclic and every flow is assigned."""
    for vc, layer in enumerate(vca.layers):
        if not is_acyclic(build_cdg(layer)):
            raise AssertionError(f"VC layer {vc} has a cyclic CDG")
    for sd in routes.pairs():
        if sd not in vca.assignment:
            raise AssertionError(f"flow {sd} unassigned")
