"""repro — a reproduction of NetSmith (Green & Thottethodi, ICPP 2024).

NetSmith is an optimization framework that *discovers* network-on-
interposer topologies for general-purpose chiplet multicores via MILP,
then routes them (MCLB) and assigns deadlock-free virtual channels.

Quickstart::

    from repro import NetSmithConfig, generate_latop, LAYOUT_4X5

    cfg = NetSmithConfig(layout=LAYOUT_4X5, link_class="medium")
    result = generate_latop(cfg, time_limit=120)
    print(result.topology.num_links, result.objective)

Subpackages:

* :mod:`repro.milp` — MILP modeling layer + solvers (Gurobi substitute)
* :mod:`repro.topology` — layouts, Topology, metrics, expert baselines
* :mod:`repro.routing` — path enumeration, NDBT, CDG/VC machinery
* :mod:`repro.core` — NetSmith LatOp/SCOp/ShufOpt, MCLB, LPBT baseline
* :mod:`repro.sim` — flit-serialized NoI simulator + traffic patterns
* :mod:`repro.fullsys` — PARSEC profiles + closed-loop speedup model
* :mod:`repro.power` — DSENT-substitute power/area model
* :mod:`repro.experiments` — per-table/figure reproduction harness
* :mod:`repro.runner` — parallel experiment runner + on-disk result cache
* :mod:`repro.pipeline` — design-space exploration (declarative design
  points, staged cached generate/route/evaluate, ranked sweeps)
"""

from .core import (
    GenerationResult,
    LPBTConfig,
    MCLBResult,
    NetSmithConfig,
    anneal_topology,
    generate_latop,
    generate_lpbt,
    generate_scop,
    generate_shufopt,
    mclb_route,
    netsmith_topology,
)
from .routing import (
    assign_vcs,
    build_routing_table,
    enumerate_shortest_paths,
    ndbt_route,
)
from .topology import (
    LAYOUT_4X5,
    LAYOUT_6X5,
    LAYOUT_8X6,
    Layout,
    Topology,
    average_hops,
    bisection_bandwidth,
    diameter,
    expert_topology,
    sparsest_cut,
    standard_layout,
    summarize,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "NetSmithConfig",
    "GenerationResult",
    "generate_latop",
    "generate_scop",
    "generate_shufopt",
    "generate_lpbt",
    "LPBTConfig",
    "mclb_route",
    "MCLBResult",
    "anneal_topology",
    "netsmith_topology",
    "Topology",
    "Layout",
    "standard_layout",
    "LAYOUT_4X5",
    "LAYOUT_6X5",
    "LAYOUT_8X6",
    "average_hops",
    "diameter",
    "bisection_bandwidth",
    "sparsest_cut",
    "summarize",
    "expert_topology",
    "enumerate_shortest_paths",
    "ndbt_route",
    "assign_vcs",
    "build_routing_table",
]
