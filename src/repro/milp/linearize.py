"""Linearization helpers: big-M encodings of logic the paper writes as
Gurobi "general constraints" (if-then, min-equality, AND).

NetSmith's Table I uses two non-linear idioms:

* **C4** (if-then): ``O(i,j) = 1 if M(i,j) else INF`` — encoded here as an
  affine expression ``O = INF - (INF-1)*M``, exact because ``M`` is binary.
* **C5** (min-equality): ``D(i,j) = min_k (D(i,k) + O(k,j))`` — encoded with
  one upper-bound inequality per ``k`` plus indicator binaries asserting at
  least one term is attained (:func:`add_min_equality`).

These are the standard big-M constructions; correctness requires that ``M``
dominates the spread of every operand, which callers guarantee by bounding
distances with the diameter constraint (paper's C8).
"""

from __future__ import annotations

from typing import List, Sequence, Union

from .expressions import BINARY, LinExpr, Var, quicksum
from .model import Model

ExprLike = Union[LinExpr, Var, float, int]


def _expr(x: ExprLike) -> LinExpr:
    if isinstance(x, Var):
        return x.expr()
    if isinstance(x, LinExpr):
        return x
    return LinExpr({}, float(x))


def affine_if_then(indicator: Var, then_value: float, else_value: float) -> LinExpr:
    """Exact affine encoding of ``then_value if indicator else else_value``.

    Only valid when ``indicator`` is binary.  This is how the paper's C4
    (one-hop distance = 1 or "infinity") is realised without extra rows.
    """
    if indicator.domain != BINARY:
        raise ValueError("affine_if_then requires a binary indicator")
    return LinExpr({indicator.index: then_value - else_value}, else_value)


def add_min_equality(
    model: Model,
    target: Var,
    terms: Sequence[ExprLike],
    big_m: float,
    name: str = "min",
) -> List[Var]:
    """Constrain ``target == min(terms)`` using big-M indicators.

    Adds, for each term ``t_k``:

    * ``target <= t_k``                      (target is a lower bound), and
    * ``target >= t_k - big_m * (1 - z_k)``  (attained when ``z_k`` is set),

    with ``sum_k z_k >= 1`` so at least one term is attained.  Returns the
    indicator variables for callers that want to inspect the argmin.
    """
    if not terms:
        raise ValueError("min over an empty set")
    zs = []
    for k, t in enumerate(terms):
        te = _expr(t)
        model.add_constr(target <= te, name=f"{name}_ub[{k}]")
        z = model.add_binary(name=f"{name}_z[{k}]")
        # target >= t - M*(1-z)
        model.add_constr(target >= te - big_m * (1 - z), name=f"{name}_lb[{k}]")
        zs.append(z)
    model.add_constr(quicksum(zs) >= 1, name=f"{name}_attain")
    return zs


def add_max_equality(
    model: Model,
    target: Var,
    terms: Sequence[ExprLike],
    big_m: float,
    name: str = "max",
) -> List[Var]:
    """Constrain ``target == max(terms)`` (dual of :func:`add_min_equality`)."""
    if not terms:
        raise ValueError("max over an empty set")
    zs = []
    for k, t in enumerate(terms):
        te = _expr(t)
        model.add_constr(target >= te, name=f"{name}_lb[{k}]")
        z = model.add_binary(name=f"{name}_z[{k}]")
        model.add_constr(target <= te + big_m * (1 - z), name=f"{name}_ub[{k}]")
        zs.append(z)
    model.add_constr(quicksum(zs) >= 1, name=f"{name}_attain")
    return zs


def add_max_upper_bound(
    model: Model, target: Var, terms: Sequence[ExprLike], name: str = "maxub"
) -> None:
    """Constrain ``target >= max(terms)`` (sufficient when minimizing target).

    This is the standard min-max trick used by MCLB's objective O1: the
    equality half is unnecessary because the optimizer pushes ``target``
    down onto the largest term.
    """
    for k, t in enumerate(terms):
        model.add_constr(target >= _expr(t), name=f"{name}[{k}]")


def add_and_equality(model: Model, target: Var, operands: Sequence[Var], name: str = "and") -> None:
    """Constrain binary ``target == AND(operands)`` (all binary).

    Used by MCLB's C3 (``path_used = product of link_used``).
    """
    for k, v in enumerate(operands):
        model.add_constr(target <= v, name=f"{name}_le[{k}]")
    model.add_constr(
        target >= quicksum(operands) - (len(operands) - 1), name=f"{name}_ge"
    )


def add_implication(model: Model, antecedent: Var, consequent: ExprLike, name: str = "imp") -> None:
    """Constrain ``antecedent == 1  =>  consequent >= 0`` via big-M-free form
    when consequent's negative part is bounded by its own constant.

    General form: callers should pass ``expr`` such that ``expr >= -M`` holds
    structurally; we add ``expr >= -M * (1 - antecedent)`` with M inferred
    from variable bounds when finite, else raise.
    """
    e = _expr(consequent)
    # Conservative M from variable bounds.
    m = abs(e.const)
    for idx, coef in e.coeffs.items():
        v = model.variables[idx]
        lo = v.lb if coef > 0 else v.ub
        if not (lo == lo and abs(lo) != float("inf")):
            raise ValueError("cannot infer big-M: unbounded variable in implication")
        m += abs(coef) * max(abs(v.lb), abs(v.ub))
    model.add_constr(e >= -m * (1 - antecedent), name=name)
