"""Linear-expression algebra for the MILP modeling layer.

This module provides the small algebra (:class:`Var`, :class:`LinExpr`,
:class:`Constraint`) that :class:`repro.milp.model.Model` builds matrices
from.  Expressions are stored as ``{var_index: coefficient}`` dictionaries
plus a constant, which keeps construction of models with tens of thousands
of terms cheap (no symbolic tree walking at matrix-build time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Union

Number = Union[int, float]

#: Variable domains.
CONTINUOUS = "continuous"
INTEGER = "integer"
BINARY = "binary"

#: Constraint senses.
LE = "<="
GE = ">="
EQ = "=="


class LinExpr:
    """A linear expression ``sum(coef[i] * var[i]) + const``.

    Supports ``+``, ``-``, ``*`` (by scalar), and comparison operators that
    produce :class:`Constraint` objects, mirroring the Gurobi/PuLP API the
    paper's artifact would have used.
    """

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Dict[int, float] | None = None, const: float = 0.0):
        self.coeffs: Dict[int, float] = coeffs if coeffs is not None else {}
        self.const = float(const)

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def from_var(index: int, coef: float = 1.0) -> "LinExpr":
        return LinExpr({index: float(coef)})

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.const)

    # -- algebra ---------------------------------------------------------------
    def _iadd_expr(self, other: "LinExpr", sign: float) -> "LinExpr":
        for idx, c in other.coeffs.items():
            new = self.coeffs.get(idx, 0.0) + sign * c
            if new == 0.0:
                self.coeffs.pop(idx, None)
            else:
                self.coeffs[idx] = new
        self.const += sign * other.const
        return self

    def __add__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        out = self.copy()
        return out.__iadd__(other)

    def __iadd__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        if isinstance(other, Var):
            other = other.expr()
        if isinstance(other, LinExpr):
            return self._iadd_expr(other, 1.0)
        self.const += float(other)
        return self

    def __radd__(self, other: Number) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        out = self.copy()
        return out.__isub__(other)

    def __isub__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        if isinstance(other, Var):
            other = other.expr()
        if isinstance(other, LinExpr):
            return self._iadd_expr(other, -1.0)
        self.const -= float(other)
        return self

    def __rsub__(self, other: Number) -> "LinExpr":
        out = self.__mul__(-1.0)
        out.const += float(other)
        return out

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    def __mul__(self, scalar: Number) -> "LinExpr":
        s = float(scalar)
        return LinExpr({i: c * s for i, c in self.coeffs.items()}, self.const * s)

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self.__mul__(scalar)

    # -- comparisons -> constraints ---------------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - _as_expr(other), LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - _as_expr(other), GE)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - _as_expr(other), EQ)

    __hash__ = None  # type: ignore[assignment]

    def value(self, solution) -> float:
        """Evaluate the expression at a solution vector."""
        return sum(c * solution[i] for i, c in self.coeffs.items()) + self.const

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms} + {self.const:g})"


@dataclass
class Var:
    """A decision variable handle.

    The model owns the actual storage (bounds, domain); ``Var`` is a light
    index wrapper that participates in expression algebra.
    """

    index: int
    name: str
    domain: str = CONTINUOUS
    lb: float = 0.0
    ub: float = float("inf")

    def expr(self) -> LinExpr:
        return LinExpr.from_var(self.index)

    # algebra delegates to LinExpr
    def __add__(self, other):
        return self.expr() + other

    def __radd__(self, other):
        return self.expr() + other

    def __sub__(self, other):
        return self.expr() - other

    def __rsub__(self, other):
        return (-1.0 * self.expr()) + other

    def __neg__(self):
        return -1.0 * self.expr()

    def __mul__(self, scalar):
        return self.expr() * scalar

    def __rmul__(self, scalar):
        return self.expr() * scalar

    def __le__(self, other):
        return self.expr() <= other

    def __ge__(self, other):
        return self.expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Var) and other is self:
            return True
        return self.expr() == other

    def __hash__(self):
        return hash(("Var", self.index))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Var({self.name}#{self.index})"


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` in normalized form.

    Built by comparing two expressions; the right-hand side is folded into
    the expression constant, so the stored form is always against zero.
    """

    expr: LinExpr
    sense: str
    name: str = ""

    def bounds(self) -> tuple:
        """Return ``(lower, upper)`` for ``sum(coeffs*x)`` with const removed."""
        rhs = -self.expr.const
        if self.sense == LE:
            return (-float("inf"), rhs)
        if self.sense == GE:
            return (rhs, float("inf"))
        return (rhs, rhs)


def _as_expr(x: Union[LinExpr, Var, Number]) -> LinExpr:
    if isinstance(x, LinExpr):
        return x
    if isinstance(x, Var):
        return x.expr()
    return LinExpr({}, float(x))


def quicksum(items: Iterable[Union[LinExpr, Var, Number]]) -> LinExpr:
    """Sum many expressions/vars in O(total terms); mirrors ``gurobipy.quicksum``."""
    out = LinExpr()
    for it in items:
        out += it
    return out
