"""MILP model container and solve orchestration.

:class:`Model` is a thin, Gurobi-flavoured modeling object.  It accumulates
variables and linear constraints, and dispatches to one of two backends:

* ``"scipy"`` — :func:`scipy.optimize.milp` (HiGHS), the fast default;
* ``"bnb"`` — :mod:`repro.milp.branch_and_bound`, our own LP-relaxation
  branch-and-bound, which exposes incumbent/bound progress callbacks used
  to regenerate the paper's Fig. 5 solver-progress curves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse

from .expressions import (
    BINARY,
    CONTINUOUS,
    EQ,
    GE,
    INTEGER,
    LE,
    Constraint,
    LinExpr,
    Var,
    quicksum,
)

MINIMIZE = "min"
MAXIMIZE = "max"

#: Solve status codes.
OPTIMAL = "optimal"
FEASIBLE = "feasible"  # time limit hit with an incumbent
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
NO_SOLUTION = "no_solution"  # time limit hit with no incumbent


@dataclass
class ProgressEvent:
    """One sample of solver progress (for objective-bounds-gap curves)."""

    time_s: float
    incumbent: Optional[float]
    bound: float
    gap: float
    nodes: int


@dataclass
class SolveResult:
    """Outcome of :meth:`Model.solve`."""

    status: str
    objective: Optional[float]
    x: Optional[np.ndarray]
    mip_gap: float
    solve_time_s: float
    progress: List[ProgressEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status in (OPTIMAL, FEASIBLE)

    def value(self, item) -> float:
        """Value of a :class:`Var` or :class:`LinExpr` in the solution."""
        if self.x is None:
            raise ValueError("no solution available")
        if isinstance(item, Var):
            return float(self.x[item.index])
        if isinstance(item, LinExpr):
            return float(item.value(self.x))
        raise TypeError(f"cannot evaluate {type(item)!r}")


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model", sense: str = MINIMIZE):
        self.name = name
        self.sense = sense
        self._vars: List[Var] = []
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        #: callback(ProgressEvent) invoked by backends that support it
        self.progress_callback: Optional[Callable[[ProgressEvent], None]] = None

    # -- variables ------------------------------------------------------------
    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = float("inf"),
        domain: str = CONTINUOUS,
    ) -> Var:
        idx = len(self._vars)
        if domain == BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        v = Var(index=idx, name=name or f"x{idx}", domain=domain, lb=lb, ub=ub)
        self._vars.append(v)
        return v

    def add_binary(self, name: str = "") -> Var:
        return self.add_var(name=name, lb=0.0, ub=1.0, domain=BINARY)

    def add_integer(self, name: str = "", lb: float = 0.0, ub: float = float("inf")) -> Var:
        return self.add_var(name=name, lb=lb, ub=ub, domain=INTEGER)

    def add_vars(self, count: int, prefix: str = "x", **kw) -> List[Var]:
        return [self.add_var(name=f"{prefix}[{i}]", **kw) for i in range(count)]

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def variables(self) -> Sequence[Var]:
        return tuple(self._vars)

    # -- constraints ------------------------------------------------------------
    def add_constr(self, constr: Constraint, name: str = "") -> Constraint:
        if not isinstance(constr, Constraint):
            raise TypeError(
                "expected a Constraint (did you compare two expressions?), "
                f"got {type(constr)!r}"
            )
        if name:
            constr.name = name
        self._constraints.append(constr)
        return constr

    def add_constrs(self, constrs) -> List[Constraint]:
        return [self.add_constr(c) for c in constrs]

    # -- objective ---------------------------------------------------------------
    def set_objective(self, expr, sense: Optional[str] = None) -> None:
        if isinstance(expr, Var):
            expr = expr.expr()
        self._objective = expr
        if sense is not None:
            self.sense = sense

    # -- matrix assembly -----------------------------------------------------------
    def to_arrays(self):
        """Build ``(c, c0, A, lb_con, ub_con, integrality, lb_var, ub_var)``.

        ``A`` is a CSR sparse matrix; senses are folded into per-row bounds
        as HiGHS expects.  The objective is always returned in *minimize*
        orientation (negated if the model maximizes) with constant ``c0``.
        """
        n = len(self._vars)
        c = np.zeros(n)
        for i, coef in self._objective.coeffs.items():
            c[i] = coef
        c0 = self._objective.const
        if self.sense == MAXIMIZE:
            c = -c
            c0 = -c0

        rows, cols, data = [], [], []
        lo = np.empty(len(self._constraints))
        hi = np.empty(len(self._constraints))
        for r, con in enumerate(self._constraints):
            l, u = con.bounds()
            lo[r], hi[r] = l, u
            for i, coef in con.expr.coeffs.items():
                rows.append(r)
                cols.append(i)
                data.append(coef)
        A = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self._constraints), n)
        )

        integrality = np.array(
            [0 if v.domain == CONTINUOUS else 1 for v in self._vars], dtype=np.uint8
        )
        lb_var = np.array([v.lb for v in self._vars])
        ub_var = np.array([v.ub for v in self._vars])
        return c, c0, A, lo, hi, integrality, lb_var, ub_var

    # -- solve ---------------------------------------------------------------------
    def solve(
        self,
        backend: str = "scipy",
        time_limit: Optional[float] = None,
        mip_rel_gap: float = 1e-6,
        **backend_kw,
    ) -> SolveResult:
        """Solve the model and return a :class:`SolveResult`.

        Objective values in the result are reported in the model's own
        orientation (i.e. maximization objectives come back un-negated).
        """
        start = time.monotonic()
        if backend == "scipy":
            from .scipy_backend import solve_scipy

            result = solve_scipy(
                self, time_limit=time_limit, mip_rel_gap=mip_rel_gap, **backend_kw
            )
        elif backend == "bnb":
            from .branch_and_bound import solve_bnb

            result = solve_bnb(
                self, time_limit=time_limit, mip_rel_gap=mip_rel_gap, **backend_kw
            )
        else:
            raise ValueError(f"unknown backend {backend!r}")
        result.solve_time_s = time.monotonic() - start
        return result

    # -- export ----------------------------------------------------------------------
    def to_lp_string(self) -> str:
        """Serialize in CPLEX LP format (debugging / external solvers).

        Covers the subset this layer produces: linear objective, linear
        constraints, bounds, binaries and general integers.
        """
        lines = ["\\ " + self.name, ""]
        lines.append("Minimize" if self.sense == MINIMIZE else "Maximize")

        def expr_str(e: LinExpr) -> str:
            terms = []
            for idx in sorted(e.coeffs):
                c = e.coeffs[idx]
                name = self._vars[idx].name.replace("[", "(").replace("]", ")").replace(",", "_").replace(" ", "")
                sign = "+" if c >= 0 else "-"
                terms.append(f"{sign} {abs(c):g} {name}")
            return " ".join(terms) if terms else "0"

        lines.append(f" obj: {expr_str(self._objective)}")
        lines.append("Subject To")
        for k, con in enumerate(self._constraints):
            lo, hi = con.bounds()
            body = expr_str(con.expr)
            cname = (con.name or f"c{k}").replace("[", "(").replace("]", ")").replace(",", "_").replace(" ", "")
            if lo == hi:
                lines.append(f" {cname}: {body} = {lo:g}")
            elif hi != float("inf"):
                lines.append(f" {cname}: {body} <= {hi:g}")
            else:
                lines.append(f" {cname}: {body} >= {lo:g}")
        lines.append("Bounds")
        for v in self._vars:
            name = v.name.replace("[", "(").replace("]", ")").replace(",", "_").replace(" ", "")
            ub = "+inf" if v.ub == float("inf") else f"{v.ub:g}"
            lines.append(f" {v.lb:g} <= {name} <= {ub}")
        bins = [v for v in self._vars if v.domain == BINARY]
        ints = [v for v in self._vars if v.domain == INTEGER]
        if bins:
            lines.append("Binaries")
            lines.append(" " + " ".join(
                v.name.replace("[", "(").replace("]", ")").replace(",", "_").replace(" ", "") for v in bins
            ))
        if ints:
            lines.append("Generals")
            lines.append(" " + " ".join(
                v.name.replace("[", "(").replace("]", ")").replace(",", "_").replace(" ", "") for v in ints
            ))
        lines.append("End")
        return "\n".join(lines)

    def write_lp(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_lp_string())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Model({self.name!r}, {self.sense}, vars={self.num_vars}, "
            f"constrs={self.num_constraints})"
        )


__all__ = [
    "Model",
    "SolveResult",
    "ProgressEvent",
    "MINIMIZE",
    "MAXIMIZE",
    "OPTIMAL",
    "FEASIBLE",
    "INFEASIBLE",
    "UNBOUNDED",
    "NO_SOLUTION",
    "quicksum",
]
