"""LP-relaxation branch-and-bound MILP solver.

This is the "Gurobi substitute" used where the paper relies on observing
solver internals: it emits :class:`~repro.milp.model.ProgressEvent` samples
(incumbent objective, best bound, objective-bounds gap, node count) through
``Model.progress_callback``, which powers the Fig. 5 reproduction.

The algorithm is textbook best-bound branch-and-bound:

* each node is an LP relaxation with tightened variable bounds, solved by
  HiGHS through :func:`scipy.optimize.linprog`;
* node selection is best-bound (min-heap on the parent relaxation value),
  which makes the reported global bound monotonically tighten;
* branching picks the integer variable whose fractional part is closest
  to 0.5 (most-fractional rule);
* a simple rounding heuristic is tried at the root to seed an incumbent.

It is deliberately simple — no cuts, no presolve — because its role is to
be a *transparent* exact solver whose convergence curve we can sample, not
to beat HiGHS.  For large models prefer ``backend="scipy"``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from .model import (
    FEASIBLE,
    INFEASIBLE,
    MAXIMIZE,
    NO_SOLUTION,
    OPTIMAL,
    UNBOUNDED,
    Model,
    ProgressEvent,
    SolveResult,
)

_INT_TOL = 1e-6


def _is_integral(x: np.ndarray, int_mask: np.ndarray) -> bool:
    xi = x[int_mask]
    return bool(np.all(np.abs(xi - np.round(xi)) <= _INT_TOL))


def _most_fractional(x: np.ndarray, int_idx: np.ndarray) -> Optional[int]:
    frac = np.abs(x[int_idx] - np.round(x[int_idx]))
    cand = np.where(frac > _INT_TOL)[0]
    if cand.size == 0:
        return None
    dist_to_half = np.abs(frac[cand] - 0.5)
    return int(int_idx[cand[np.argmin(dist_to_half)]])


def solve_bnb(
    model: Model,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 1e-6,
    max_nodes: int = 200_000,
    progress_interval: float = 0.25,
    initial_incumbent: Optional[float] = None,
) -> SolveResult:
    """Solve ``model`` by branch and bound, emitting progress events.

    ``initial_incumbent`` seeds the incumbent *objective* (in the model's
    own orientation) from an external heuristic — like handing Gurobi a
    MIP start.  It tightens pruning and makes the reported gap finite
    from the first sample; if the search never finds a better integral
    point, the returned solution vector is ``None``.
    """
    c, c0, A, lo, hi, integrality, lb, ub = model.to_arrays()
    n = c.size
    int_mask = integrality.astype(bool)
    int_idx = np.where(int_mask)[0]
    sign = -1.0 if model.sense == MAXIMIZE else 1.0

    # Split two-sided row bounds for linprog (A_ub x <= b_ub, A_eq x == b_eq).
    eq_rows = np.isfinite(lo) & np.isfinite(hi) & (lo == hi)
    ub_rows = np.isfinite(hi) & ~eq_rows
    lb_rows = np.isfinite(lo) & ~eq_rows
    A_eq = A[eq_rows] if eq_rows.any() else None
    b_eq = hi[eq_rows] if eq_rows.any() else None
    if ub_rows.any() or lb_rows.any():
        import scipy.sparse as sp

        parts, rhs = [], []
        if ub_rows.any():
            parts.append(A[ub_rows])
            rhs.append(hi[ub_rows])
        if lb_rows.any():
            parts.append(-A[lb_rows])
            rhs.append(-lo[lb_rows])
        A_ub = sp.vstack(parts).tocsr()
        b_ub = np.concatenate(rhs)
    else:
        A_ub, b_ub = None, None

    def solve_lp(vlb: np.ndarray, vub: np.ndarray):
        res = linprog(
            c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            bounds=np.column_stack([vlb, vub]),
            method="highs",
        )
        if res.status == 0:
            return float(res.fun), np.asarray(res.x)
        if res.status == 3:
            return -np.inf, None  # unbounded relaxation
        return None, None  # infeasible

    start = time.monotonic()
    progress: List[ProgressEvent] = []
    last_emit = [start - progress_interval]

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = np.inf  # minimize orientation
    if initial_incumbent is not None:
        incumbent_obj = sign * float(initial_incumbent) - c0
    nodes_expanded = 0

    def gap_of(inc: float, bound: float) -> float:
        if not np.isfinite(inc):
            return np.inf
        denom = max(abs(inc), 1e-9)
        return max(0.0, (inc - bound) / denom)

    def emit(bound: float, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - last_emit[0] < progress_interval:
            return
        last_emit[0] = now
        inc = None if not np.isfinite(incumbent_obj) else sign * (incumbent_obj + c0)
        ev = ProgressEvent(
            time_s=now - start,
            incumbent=inc,
            bound=sign * (bound + c0),
            gap=gap_of(incumbent_obj, bound),
            nodes=nodes_expanded,
        )
        progress.append(ev)
        if model.progress_callback is not None:
            model.progress_callback(ev)

    # Root relaxation.
    root_obj, root_x = solve_lp(lb, ub)
    if root_obj is None:
        return SolveResult(INFEASIBLE, None, None, np.inf, 0.0, progress)
    if root_x is None:
        return SolveResult(UNBOUNDED, None, None, np.inf, 0.0, progress)

    # Rounding heuristic at the root: clamp integers, re-solve continuous part.
    if int_idx.size and not _is_integral(root_x, int_mask):
        rlb, rub = lb.copy(), ub.copy()
        rounded = np.round(root_x[int_idx])
        rounded = np.clip(rounded, lb[int_idx], ub[int_idx])
        rlb[int_idx] = rounded
        rub[int_idx] = rounded
        h_obj, h_x = solve_lp(rlb, rub)
        if h_obj is not None and h_x is not None:
            incumbent_obj, incumbent_x = h_obj, h_x

    counter = itertools.count()
    # Heap entries: (parent_bound, tiebreak, var_lb, var_ub)
    heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (root_obj, next(counter), lb.copy(), ub.copy()))

    status = OPTIMAL
    best_bound = root_obj
    while heap:
        if time_limit is not None and time.monotonic() - start > time_limit:
            status = FEASIBLE if incumbent_x is not None else NO_SOLUTION
            break
        if nodes_expanded >= max_nodes:
            status = FEASIBLE if incumbent_x is not None else NO_SOLUTION
            break

        parent_bound, _, vlb, vub = heapq.heappop(heap)
        best_bound = parent_bound
        if parent_bound >= incumbent_obj - _INT_TOL:
            # Everything remaining is dominated; best-bound order => done.
            best_bound = incumbent_obj
            break
        if gap_of(incumbent_obj, best_bound) <= mip_rel_gap:
            break

        obj, x = solve_lp(vlb, vub)
        nodes_expanded += 1
        emit(best_bound)
        if obj is None or x is None or obj >= incumbent_obj - _INT_TOL:
            continue

        branch_var = _most_fractional(x, int_idx) if int_idx.size else None
        if branch_var is None:
            # Integral: new incumbent.
            incumbent_obj = obj
            incumbent_x = x
            emit(best_bound, force=True)
            continue

        fval = x[branch_var]
        down_ub = vub.copy()
        down_ub[branch_var] = np.floor(fval)
        up_lb = vlb.copy()
        up_lb[branch_var] = np.ceil(fval)
        if down_ub[branch_var] >= vlb[branch_var]:
            heapq.heappush(heap, (obj, next(counter), vlb.copy(), down_ub))
        if up_lb[branch_var] <= vub[branch_var]:
            heapq.heappush(heap, (obj, next(counter), up_lb, vub.copy()))

    if not heap and status == OPTIMAL:
        best_bound = incumbent_obj

    emit(best_bound, force=True)

    if incumbent_x is None:
        if initial_incumbent is not None:
            # Seeded incumbent never improved upon: report the gap against
            # the seed (progress curves stay meaningful) but no vector.
            return SolveResult(
                NO_SOLUTION,
                sign * (incumbent_obj + c0),
                None,
                gap_of(incumbent_obj, best_bound),
                0.0,
                progress,
            )
        final = INFEASIBLE if status == OPTIMAL else NO_SOLUTION
        return SolveResult(final, None, None, np.inf, 0.0, progress)

    final_gap = gap_of(incumbent_obj, best_bound)
    if final_gap <= mip_rel_gap:
        status = OPTIMAL
    return SolveResult(
        status=status,
        objective=sign * (incumbent_obj + c0),
        x=incumbent_x,
        mip_gap=final_gap,
        solve_time_s=0.0,
        progress=progress,
    )
