"""MILP modeling layer and solvers (the repo's Gurobi substitute).

Public surface::

    from repro.milp import Model, quicksum, BINARY, INTEGER, CONTINUOUS

    m = Model("example")
    x = m.add_binary("x")
    y = m.add_integer("y", ub=10)
    m.add_constr(x + 2 * y <= 7)
    m.set_objective(-(x + y))          # minimize
    res = m.solve(backend="scipy")     # or backend="bnb" for progress curves
"""

from .expressions import (
    BINARY,
    CONTINUOUS,
    EQ,
    GE,
    INTEGER,
    LE,
    Constraint,
    LinExpr,
    Var,
    quicksum,
)
from .linearize import (
    add_and_equality,
    add_implication,
    add_max_equality,
    add_max_upper_bound,
    add_min_equality,
    affine_if_then,
)
from .model import (
    FEASIBLE,
    INFEASIBLE,
    MAXIMIZE,
    MINIMIZE,
    NO_SOLUTION,
    OPTIMAL,
    UNBOUNDED,
    Model,
    ProgressEvent,
    SolveResult,
)

__all__ = [
    "Model",
    "SolveResult",
    "ProgressEvent",
    "Var",
    "LinExpr",
    "Constraint",
    "quicksum",
    "BINARY",
    "INTEGER",
    "CONTINUOUS",
    "LE",
    "GE",
    "EQ",
    "MINIMIZE",
    "MAXIMIZE",
    "OPTIMAL",
    "FEASIBLE",
    "INFEASIBLE",
    "UNBOUNDED",
    "NO_SOLUTION",
    "add_min_equality",
    "add_max_equality",
    "add_max_upper_bound",
    "add_and_equality",
    "add_implication",
    "affine_if_then",
]
