"""HiGHS backend via :func:`scipy.optimize.milp`."""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import (
    FEASIBLE,
    INFEASIBLE,
    MAXIMIZE,
    NO_SOLUTION,
    OPTIMAL,
    UNBOUNDED,
    Model,
    SolveResult,
)

# scipy.optimize.milp status codes
_SCIPY_OPTIMAL = 0
_SCIPY_INFEASIBLE = 2
_SCIPY_UNBOUNDED = 3
_SCIPY_TIME_LIMIT = 1


def solve_scipy(
    model: Model,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 1e-6,
    node_limit: Optional[int] = None,
    presolve: bool = True,
) -> SolveResult:
    """Solve ``model`` with HiGHS and translate the result."""
    c, c0, A, lo, hi, integrality, lb, ub = model.to_arrays()

    options: dict = {"mip_rel_gap": mip_rel_gap, "presolve": presolve}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if node_limit is not None:
        options["node_limit"] = int(node_limit)

    constraints = []
    if A.shape[0] > 0:
        constraints.append(LinearConstraint(A, lo, hi))

    res = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )

    sign = -1.0 if model.sense == MAXIMIZE else 1.0

    if res.status == _SCIPY_OPTIMAL and res.x is not None:
        obj = sign * (float(res.fun) + c0)
        return SolveResult(
            status=OPTIMAL,
            objective=obj,
            x=np.asarray(res.x),
            mip_gap=float(getattr(res, "mip_gap", 0.0) or 0.0),
            solve_time_s=0.0,
        )
    if res.status == _SCIPY_TIME_LIMIT and res.x is not None:
        obj = sign * (float(res.fun) + c0)
        return SolveResult(
            status=FEASIBLE,
            objective=obj,
            x=np.asarray(res.x),
            mip_gap=float(getattr(res, "mip_gap", np.inf) or np.inf),
            solve_time_s=0.0,
        )
    if res.status == _SCIPY_INFEASIBLE:
        return SolveResult(INFEASIBLE, None, None, np.inf, 0.0)
    if res.status == _SCIPY_UNBOUNDED:
        return SolveResult(UNBOUNDED, None, None, np.inf, 0.0)
    return SolveResult(NO_SOLUTION, None, None, np.inf, 0.0)
