"""Design-space sweeps: run many design points end to end and rank them.

``explore()`` drives the staged pipeline over a list of
:class:`~repro.pipeline.DesignPoint`\\ s — generate (portfolio-expanded),
route, evaluate — and returns a ranked :class:`ExploreResult`.  Every
stage is cached runner work, so an interrupted sweep resumes and an
immediate re-run is 100% cache hits; per-point JSON artifacts (topology
+ metrics + provenance) land in ``out_dir`` for downstream tooling.

Points that are infeasible by construction (the sparsest-cut objective
above the exact-enumeration limit) are skipped up front and reported,
not errored: a sweep over a big grid should degrade, not die.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from ..runner.hashing import config_hash
from ..runner.orchestrator import Runner
from ..topology.io import to_dict as topology_to_dict
from .design import MAX_SCOP_ROUTERS, DesignPoint
from .stages import (
    SIM_CUTOFF,
    PointEvaluation,
    evaluate_tables,
    generate_points,
    route_topologies,
)

#: Ranking orders: (attribute, reverse).
RANK_KEYS = {
    "saturation": ("saturation_ns", True),
    "hops": ("avg_hops", False),
    "cut": ("sparsest_cut", True),
    "robustness": ("robustness", True),
}


@dataclass
class ExploreRow:
    """One fully evaluated design point."""

    point: DesignPoint
    name: str
    status: str  # solve status: optimal/feasible/heuristic/frozen
    objective: float
    solve_time_s: float
    evaluation: PointEvaluation

    @property
    def avg_hops(self) -> float:
        return self.evaluation.avg_hops

    @property
    def sparsest_cut(self) -> float:
        return self.evaluation.sparsest_cut

    @property
    def saturation_ns(self) -> float:
        return self.evaluation.saturation_ns

    @property
    def robustness(self) -> Optional[float]:
        return self.evaluation.robustness


@dataclass
class ExploreResult:
    """A ranked design-space sweep."""

    rows: List[ExploreRow]
    skipped: List[Tuple[DesignPoint, str]] = field(default_factory=list)

    def ranked(self, by: str = "saturation") -> List[ExploreRow]:
        attr, rev = RANK_KEYS[by]

        def key(r: ExploreRow):
            value = getattr(r.evaluation, attr)
            # robustness is None when the sweep didn't evaluate it, and
            # saturation is NaN above the simulation size cutoff;
            # unmeasured points sink to the bottom of the ranking.
            if value is None or (isinstance(value, float) and value != value):
                value = float("-inf") if rev else float("inf")
            # avg hops breaks saturation/cut ties toward low latency
            return (value, -r.avg_hops)

        return sorted(self.rows, key=key, reverse=rev)

    def format_table(self, by: str = "saturation") -> str:
        with_rob = any(r.robustness is not None for r in self.rows)
        rob_head = f" {'robust':>6}" if with_rob else ""
        lines = [
            f"{'#':>3} {'design point':<34} {'topology':<22} {'hops':>6} "
            f"{'diam':>4} {'cut':>7} {'sat/ns':>7}{rob_head} {'status':<9}",
            "-" * (98 + (7 if with_rob else 0)),
        ]
        for rank, r in enumerate(self.ranked(by), start=1):
            e = r.evaluation
            rob = (
                ""
                if not with_rob
                else f" {'-':>6}" if e.robustness is None
                else f" {e.robustness:>6.3f}"
            )
            lines.append(
                f"{rank:>3} {r.point.label():<34} {r.name:<22} "
                f"{e.avg_hops:>6.2f} {e.diameter:>4} {e.sparsest_cut:>7.4f} "
                f"{e.saturation_ns:>7.3f}{rob} {r.status:<9}"
            )
        for point, reason in self.skipped:
            lines.append(f"  - skipped {point.label()}: {reason}")
        return "\n".join(lines)

    def best(self, by: str = "saturation") -> Optional[ExploreRow]:
        ranked = self.ranked(by)
        return ranked[0] if ranked else None


def point_artifact_path(
    out_dir: str, point: DesignPoint, eval_config: Optional[dict] = None
) -> str:
    """Stable per-point artifact location (short content-hash suffix).

    The hash covers the routing/evaluation configuration too, so sweeps
    differing only in ``--policy`` or measurement budgets write separate
    artifacts instead of silently overwriting each other.
    """
    digest = config_hash({
        "point": point.as_dict(), "eval": eval_config or {},
    })[:12]
    safe = point.label().replace("/", "_")
    return os.path.join(out_dir, f"{safe}-{digest}.json")


def _num(value: Optional[float]) -> Optional[float]:
    """NaN -> ``null`` in artifacts, keeping them strict JSON (NaN marks
    metrics the sweep skipped, e.g. saturation above the sim cutoff)."""
    if value is not None and isinstance(value, float) and value != value:
        return None
    return value


def _write_artifact(
    out_dir: str, row: ExploreRow, table: Any, eval_config: dict
) -> str:
    path = point_artifact_path(out_dir, row.point, eval_config)
    e = row.evaluation
    doc = {
        "point": row.point.as_dict(),
        "evaluation_config": eval_config,
        "topology": topology_to_dict(table.topology),
        "generation": {
            "status": row.status,
            "objective": row.objective,
            "solve_time_s": row.solve_time_s,
        },
        "metrics": {
            "avg_hops": e.avg_hops,
            "diameter": e.diameter,
            "sparsest_cut": e.sparsest_cut,
            "saturation_packets_node_cycle": _num(e.saturation),
            "saturation_packets_node_ns": _num(e.saturation_ns),
            "robustness": e.robustness,
        },
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def explore(
    points: Sequence[DesignPoint],
    runner: Optional[Runner] = None,
    policy: str = "mclb",
    route_seed: int = 0,
    route_time_limit: float = 60.0,
    eval_warmup: int = 300,
    eval_measure: int = 900,
    eval_iters: int = 5,
    out_dir: Optional[str] = None,
    engine: Optional[str] = None,
    rank_by: str = "saturation",
    robustness: bool = False,
    sim_cutoff: int = SIM_CUTOFF,
) -> ExploreResult:
    """Run a design-space sweep end to end and rank the results.

    ``rank_by`` (``saturation``/``hops``/``cut``/``robustness``) orders
    the written ``ranking*.json`` files and is recorded in them, so
    on-disk rankings agree with what the caller displayed.

    ``robustness=True`` (implied by ``rank_by="robustness"``) adds a
    degraded saturation search per point — the most-central full-duplex
    link down — and records retained capacity as the ``robustness``
    metric (see :func:`~repro.pipeline.stages.evaluate_tables`).

    Points above ``sim_cutoff`` routers are generated, routed, and
    ranked on exact graph metrics but never simulated (saturation
    ``NaN``); ``sim_cutoff=0`` turns the whole sweep metrics-only.
    """
    robustness = robustness or rank_by == "robustness"
    todo: List[DesignPoint] = []
    skipped: List[Tuple[DesignPoint, str]] = []
    for p in points:
        if p.objective == "sparsest_cut" and p.n > MAX_SCOP_ROUTERS:
            skipped.append((
                p,
                f"sparsest-cut objective needs exact cuts "
                f"(n <= {MAX_SCOP_ROUTERS}, point has {p.n})",
            ))
        else:
            todo.append(p)

    if not todo:
        return ExploreResult(rows=[], skipped=skipped)

    generations = generate_points(todo, runner=runner)
    tables = route_topologies(
        [g.topology for g in generations],
        policy=policy,
        seed=route_seed,
        time_limit=route_time_limit,
        runner=runner,
    )
    evaluations = evaluate_tables(
        tables,
        [p.link_class for p in todo],
        seed=route_seed,
        warmup=eval_warmup,
        measure=eval_measure,
        iters=eval_iters,
        runner=runner,
        engine=engine,
        robustness=robustness,
        sim_cutoff=sim_cutoff,
    )

    rows = [
        ExploreRow(
            point=p,
            name=g.topology.name,
            status=g.status,
            objective=float(g.objective),
            solve_time_s=float(g.solve_time_s),
            evaluation=e,
        )
        for p, g, e in zip(todo, generations, evaluations)
    ]
    result = ExploreResult(rows=rows, skipped=skipped)

    if out_dir is not None:
        eval_config = {
            "policy": policy,
            "route_seed": route_seed,
            "route_time_limit": route_time_limit,
            "eval_warmup": eval_warmup,
            "eval_measure": eval_measure,
            "eval_iters": eval_iters,
            "engine": engine,
            "robustness": robustness,
            "sim_cutoff": sim_cutoff,
        }
        os.makedirs(out_dir, exist_ok=True)
        for row, table in zip(rows, tables):
            _write_artifact(out_dir, row, table, eval_config)
        ranking_doc = {
            "evaluation_config": eval_config,
            "rank_by": rank_by,
            "ranking": [
                {
                    "point": r.point.as_dict(),
                    "name": r.name,
                    "avg_hops": r.avg_hops,
                    "sparsest_cut": r.sparsest_cut,
                    "saturation_ns": _num(r.saturation_ns),
                    "robustness": r.robustness,
                }
                for r in result.ranked(rank_by)
            ],
            "skipped": [
                {"point": p.as_dict(), "reason": reason}
                for p, reason in skipped
            ],
        }
        # One ranking per sweep configuration (never overwritten by a
        # differently-configured sweep), plus `ranking.json` as the
        # always-current convenience pointer to the latest run.
        digest = config_hash({
            "points": [p.as_dict() for p in points], "eval": eval_config,
        })[:12]
        for name in (f"ranking-{digest}.json", "ranking.json"):
            with open(os.path.join(out_dir, name), "w") as fh:
                json.dump(ranking_doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
    return result
