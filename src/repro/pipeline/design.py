"""Design points: the declarative unit of design-space exploration.

A :class:`DesignPoint` pins everything that determines one generated
topology — grid shape, link class, objective, strategy, radix, diameter
bound, seed, and solve budgets — as pure data.  That makes a point:

* **hashable** — its dict encoding keys the runner's content-addressed
  cache, so a MILP solve or annealing run is never repeated;
* **transportable** — payloads fan across worker processes;
* **reproducible** — ``point.generate()`` on any machine produces the
  same topology as a direct :func:`~repro.core.netsmith.generate_latop`
  / :func:`~repro.core.scop.generate_scop` /
  :func:`~repro.core.search.anneal_topology` call with the same
  configuration (the differential tests pin this).

Strategies:

* ``"milp"`` — the exact formulation on ``backend`` (HiGHS via scipy by
  default);
* ``"sa"`` — simulated annealing (the scalability strategy);
* ``"portfolio"`` — both, staged: SA first, then the exact solve warm-
  started from the SA result (``initial_incumbent`` for distance
  objectives through :func:`repro.milp.branch_and_bound.solve_bnb`, an
  initial lazy cut for SCOp), with a best-wins merge.  Portfolio points
  are expanded by :mod:`repro.pipeline.stages`; the worker only ever
  sees atomic ``sa``/``milp`` units;
* ``"hierarchical"`` — exact clusters replicated across the grid with
  an annealed inter-cluster stitch (:mod:`repro.pipeline.hierarchy`),
  the scale strategy for 256-1024-router points.  Atomic: it runs as a
  single wave-1 unit, never portfolio-expanded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..topology import Layout, parse_layout

#: Objective names and their frozen-registry kinds.
OBJECTIVES = ("latency", "sparsest_cut", "shuffle")
_OBJECTIVE_KIND = {"latency": "latop", "sparsest_cut": "scop", "shuffle": "shufopt"}

STRATEGIES = ("milp", "sa", "portfolio", "hierarchical")

#: Exact sparsest-cut separation (and therefore SCOp and the SA
#: sparsest-cut objective) is enumeration-bound.
MAX_SCOP_ROUTERS = 22


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration in the design space."""

    rows: int
    cols: int
    link_class: str = "medium"
    objective: str = "latency"
    strategy: str = "portfolio"
    radix: int = 4
    symmetric: bool = False
    diameter_bound: Optional[int] = None
    seed: int = 0
    #: Exact-solve budget in seconds (per lazy iteration for SCOp).
    time_limit: float = 60.0
    #: Annealing steps for the ``sa`` strategy / portfolio phase 1.
    sa_steps: int = 8000
    #: SCOp lazy-cut iteration cap.
    max_iterations: int = 25
    #: Exact-solve backend: ``"scipy"`` (HiGHS) or ``"bnb"`` (the in-repo
    #: branch-and-bound, the only backend that accepts a MIP start).
    backend: str = "scipy"
    #: Serve the frozen registry when the point matches a standard
    #: configuration (same semantics as
    #: :func:`repro.core.pregenerated.netsmith_topology`).
    use_frozen: bool = True
    #: Cluster tile shape for the ``hierarchical`` strategy; ``None``
    #: auto-picks divisors of the grid near 4 per side.  Ignored (and
    #: neutralized by :meth:`canonical`) for every other strategy.
    cluster_rows: Optional[int] = None
    cluster_cols: Optional[int] = None

    # -- derived -------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.rows * self.cols

    @property
    def layout(self) -> Layout:
        return Layout(rows=self.rows, cols=self.cols)

    @property
    def kind(self) -> str:
        """The frozen-registry kind for this objective (latop/scop/shufopt)."""
        return _OBJECTIVE_KIND[self.objective]

    def label(self) -> str:
        return (
            f"{self.rows}x{self.cols}/{self.link_class}/{self.objective}"
            f"/{self.strategy}/s{self.seed}"
        )

    def validate(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"objective must be one of {OBJECTIVES}, got {self.objective!r}"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.objective == "sparsest_cut" and self.n > MAX_SCOP_ROUTERS:
            raise ValueError(
                f"sparsest-cut objective needs exact cuts "
                f"(n <= {MAX_SCOP_ROUTERS}); {self.rows}x{self.cols} has {self.n}"
            )
        if self.strategy == "hierarchical":
            from .hierarchy import cluster_shape

            if self.objective != "latency":
                raise ValueError(
                    "hierarchical strategy supports the latency objective "
                    f"only, got {self.objective!r}"
                )
            if self.symmetric:
                raise ValueError(
                    "hierarchical strategy needs asymmetric links (the "
                    "stitching moves are directed)"
                )
            if self.diameter_bound is not None:
                raise ValueError(
                    "hierarchical strategy does not honor diameter_bound"
                )
            if self.radix < 3:
                raise ValueError(
                    "hierarchical strategy needs radix >= 3 (one in/out "
                    "port per router is reserved for inter-cluster links)"
                )
            cluster_shape(self)  # raises with guidance on bad tilings
        self.build_config().validate()

    def build_config(self):
        """The :class:`~repro.core.netsmith.NetSmithConfig` of this point.

        The shuffle objective's traffic weights are derived from the
        layout on demand (never serialized), so the encoding stays small
        and canonical.
        """
        from ..core.netsmith import NetSmithConfig, shuffle_weights

        weights = (
            shuffle_weights(self.layout) if self.objective == "shuffle" else None
        )
        return NetSmithConfig(
            layout=self.layout,
            link_class=self.link_class,
            radix=self.radix,
            symmetric=self.symmetric,
            diameter_bound=self.diameter_bound,
            traffic_weights=weights,
        )

    def canonical(self) -> "DesignPoint":
        """An equivalent point with fields its strategy never reads
        neutralized, so cache keys don't fracture on irrelevant budgets.

        An SA unit ignores the exact-solve budget/backend; an exact unit
        ignores ``sa_steps``, the RNG ``seed``, and (off the sparsest-cut
        objective) ``max_iterations``.  Two points differing only in
        ignored fields generate identically, so they must hash
        identically — ``generate()`` on the canonical point is
        byte-equivalent to ``generate()`` on the original.
        """
        if self.strategy == "sa":
            return replace(
                self, time_limit=0.0, max_iterations=0, backend="scipy",
                cluster_rows=None, cluster_cols=None,
            )
        if self.strategy == "milp":
            neutral = replace(
                self, sa_steps=0, seed=0, cluster_rows=None, cluster_cols=None
            )
            if self.objective != "sparsest_cut":
                neutral = replace(neutral, max_iterations=0)
            return neutral
        if self.strategy == "hierarchical":
            # Reads the exact budget (cluster solve), SA budget + seed
            # (stitch), backend, and the cluster shape; never lazy cuts.
            return replace(self, max_iterations=0)
        return self

    # -- codecs --------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "rows": int(self.rows),
            "cols": int(self.cols),
            "link_class": self.link_class,
            "objective": self.objective,
            "strategy": self.strategy,
            "radix": int(self.radix),
            "symmetric": bool(self.symmetric),
            "diameter_bound": (
                None if self.diameter_bound is None else int(self.diameter_bound)
            ),
            "seed": int(self.seed),
            "time_limit": float(self.time_limit),
            "sa_steps": int(self.sa_steps),
            "max_iterations": int(self.max_iterations),
            "backend": self.backend,
            "use_frozen": bool(self.use_frozen),
            "cluster_rows": (
                None if self.cluster_rows is None else int(self.cluster_rows)
            ),
            "cluster_cols": (
                None if self.cluster_cols is None else int(self.cluster_cols)
            ),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "DesignPoint":
        return cls(
            rows=int(doc["rows"]),
            cols=int(doc["cols"]),
            link_class=str(doc["link_class"]),
            objective=str(doc["objective"]),
            strategy=str(doc["strategy"]),
            radix=int(doc.get("radix", 4)),
            symmetric=bool(doc.get("symmetric", False)),
            diameter_bound=(
                None if doc.get("diameter_bound") is None
                else int(doc["diameter_bound"])
            ),
            seed=int(doc.get("seed", 0)),
            time_limit=float(doc.get("time_limit", 60.0)),
            sa_steps=int(doc.get("sa_steps", 8000)),
            max_iterations=int(doc.get("max_iterations", 25)),
            backend=str(doc.get("backend", "scipy")),
            use_frozen=bool(doc.get("use_frozen", True)),
            cluster_rows=(
                None if doc.get("cluster_rows") is None
                else int(doc["cluster_rows"])
            ),
            cluster_cols=(
                None if doc.get("cluster_cols") is None
                else int(doc["cluster_cols"])
            ),
        )

    # -- worker-side generation ----------------------------------------------
    def _frozen_result(self):
        """The frozen registry's topology for this point, if it matches.

        Frozen designs were produced for the paper's standard
        configurations; a point only qualifies when it asks for exactly
        that configuration (default radix, asymmetric links, no custom
        diameter bound, the canonical grid for its router count).
        """
        from ..core import pregenerated
        from ..topology import standard_layout

        if not self.use_frozen:
            return None
        if self.radix != 4 or self.symmetric or self.diameter_bound is not None:
            return None
        try:
            std = standard_layout(self.n)
        except ValueError:
            return None
        if (std.rows, std.cols) != (self.rows, self.cols):
            return None
        links = pregenerated.lookup(self.kind, self.link_class, self.n)
        if links is None:
            return None

        from ..core.netsmith import GenerationResult
        from ..topology import Topology, sparsest_cut

        name = f"{pregenerated._KIND_LABEL[self.kind]}-{self.link_class}"
        topo = Topology(self.layout, links, name=name, link_class=self.link_class)
        if self.objective == "sparsest_cut":
            objective = sparsest_cut(topo, exact=True).value
        else:
            from ..core.search import _total_hops

            objective = _total_hops(topo, self.build_config().traffic_weights)
        return GenerationResult(
            topology=topo,
            objective=float(objective),
            mip_gap=0.0,
            status="frozen",
            solve_time_s=0.0,
            result=None,
        )

    def generate(
        self,
        seed_incumbent: Optional[float] = None,
        seed_links: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        """Run this point's generation and return a
        :class:`~repro.core.netsmith.GenerationResult`.

        Dispatches to exactly the direct entry points
        (``generate_latop``/``generate_shufopt``/``generate_scop``/
        ``anneal_topology``) with this point's configuration, so staged
        results are bit-identical to direct calls.  Portfolio warm
        starts: ``seed_incumbent`` feeds ``solve_bnb``'s
        ``initial_incumbent`` hook when the backend is ``bnb`` (HiGHS
        via scipy has no MIP-start surface, so it runs cold as the
        complementary exact strategy); for SCOp, ``seed_links``'s exact
        sparsest cut joins the initial lazy cuts on either backend.
        """
        if self.strategy == "hierarchical":
            # Never served frozen: the registry holds flat designs for
            # the paper's standard small configurations only.
            from .hierarchy import generate_hierarchical

            return generate_hierarchical(self)

        frozen = self._frozen_result()
        if frozen is not None:
            return frozen

        from ..core.netsmith import generate_latop, generate_shufopt
        from ..core.scop import generate_scop
        from ..core.search import anneal_topology

        config = self.build_config()
        config.validate()

        if self.strategy == "sa":
            sa_objective = (
                "sparsest_cut" if self.objective == "sparsest_cut" else "latency"
            )
            result = anneal_topology(
                config, objective=sa_objective, steps=self.sa_steps, seed=self.seed
            )
            if self.objective == "shuffle":
                # The annealer names by its internal objective (LatOp for
                # any weighted-hops run); relabel so shuffle points are
                # distinguishable in rankings and artifacts.
                from ..topology import Topology

                result.topology = Topology(
                    self.layout,
                    result.topology.directed_links,
                    name=f"NS-SA-ShufOpt-{self.link_class}",
                    link_class=self.link_class,
                )
            return result
        if self.strategy != "milp":
            raise ValueError(
                f"cannot generate strategy {self.strategy!r} directly; "
                "portfolio points are expanded by repro.pipeline.stages"
            )

        if self.objective == "sparsest_cut":
            initial_cuts = None
            if seed_links is not None:
                from ..topology import Topology, sparsest_cut

                seed_topo = Topology(
                    self.layout, seed_links, link_class=self.link_class
                )
                initial_cuts = [sparsest_cut(seed_topo, exact=True).members]
            gen, _diag = generate_scop(
                config,
                time_limit=self.time_limit,
                backend=self.backend,
                max_iterations=self.max_iterations,
                initial_cuts=initial_cuts,
            )
            return gen

        solve_kw: Dict[str, Any] = {}
        if seed_incumbent is not None and self.backend == "bnb":
            # The only backend that accepts a MIP start.
            solve_kw["initial_incumbent"] = float(seed_incumbent)
        entry = generate_shufopt if self.objective == "shuffle" else generate_latop
        return entry(
            config, time_limit=self.time_limit, backend=self.backend, **solve_kw
        )


def design_grid(
    layouts: Iterable[Union[str, Tuple[int, int], Layout]],
    link_classes: Iterable[str] = ("medium",),
    objectives: Iterable[str] = ("latency",),
    strategies: Iterable[str] = ("portfolio",),
    seeds: Iterable[int] = (0,),
    **common: Any,
) -> List[DesignPoint]:
    """The cross product of layouts x classes x objectives x strategies x
    seeds as design points; ``common`` sets shared fields (budgets,
    radix, ...).  Layouts may be ``"RxC"`` strings, ``(rows, cols)``
    tuples, or :class:`~repro.topology.Layout` objects."""
    resolved: List[Layout] = []
    for spec in layouts:
        if isinstance(spec, Layout):
            resolved.append(spec)
        elif isinstance(spec, str):
            resolved.append(parse_layout(spec))
        else:
            rows, cols = spec
            resolved.append(Layout(rows=int(rows), cols=int(cols)))
    return [
        DesignPoint(
            rows=lay.rows,
            cols=lay.cols,
            link_class=cls,
            objective=obj,
            strategy=strat,
            seed=seed,
            **common,
        )
        for lay, cls, obj, strat, seed in itertools.product(
            resolved, link_classes, objectives, strategies, seeds
        )
    ]
