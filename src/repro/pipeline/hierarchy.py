"""Hierarchical generation: exact clusters + annealed stitching.

The exact formulation tops out in the low tens of routers and flat SA
needs ever more steps as the design space grows, so 256- and 1024-router
points are generated hierarchically:

1. the grid is tiled into identical ``cluster_rows x cluster_cols``
   clusters (auto-chosen divisors near 4 per side when unset);
2. one *representative* cluster is solved with the exact LatOp
   formulation at ``radix - 1`` — reserving one in- and one out-port on
   every router for inter-cluster wiring — falling back to annealing
   when the exact solve fails within budget;
3. the solved cluster is replicated by translation (valid-link sets are
   translation-invariant, so every copy is feasible), and adjacent
   clusters are seeded with bidirectional links between their
   mid-border routers, which makes the cluster graph — and therefore
   the whole network — strongly connected;
4. a stitching SA refines only the inter-cluster links (intra-cluster
   links are frozen), reusing :class:`~repro.core.apsp.IncrementalAPSP`
   so each move costs an affected-slice update instead of a full APSP.

The result is a :class:`~repro.core.netsmith.GenerationResult` with
status ``"hierarchical"``; the topology is named
``NS-HIER-LatOp-<class>``.
"""

from __future__ import annotations

import math
import time
from typing import List, Tuple, TYPE_CHECKING

import numpy as np

from ..core.apsp import IncrementalAPSP
from ..core.netsmith import GenerationResult, NetSmithConfig
from ..topology import Layout, Topology

if TYPE_CHECKING:  # pragma: no cover
    from .design import DesignPoint

#: Auto cluster sizing aims near this many routers per cluster side —
#: big enough that the exact solver shapes real structure, small enough
#: that the cluster solve stays in the exact-tractable regime.
_PREFERRED_SIDE = 4
_MAX_SIDE = 8

Link = Tuple[int, int]


def _auto_side(extent: int, axis: str) -> int:
    """The divisor of ``extent`` in [2, 8] closest to the preferred side
    (ties to the larger), so clusters tile the grid exactly."""
    divisors = [d for d in range(2, _MAX_SIDE + 1) if extent % d == 0]
    if not divisors:
        raise ValueError(
            f"no cluster {axis} in [2, {_MAX_SIDE}] divides {extent}; pass "
            f"cluster_rows/cluster_cols explicitly"
        )
    return min(divisors, key=lambda d: (abs(d - _PREFERRED_SIDE), -d))


def cluster_shape(point: "DesignPoint") -> Tuple[int, int]:
    """Resolved ``(cluster_rows, cluster_cols)`` for a hierarchical point.

    Explicit values must divide the grid; unset values are auto-chosen.
    """
    cr = point.cluster_rows
    cc = point.cluster_cols
    if cr is None:
        cr = _auto_side(point.rows, "rows")
    elif not (2 <= cr <= point.rows and point.rows % cr == 0):
        raise ValueError(
            f"cluster_rows={cr} must divide rows={point.rows} (and be >= 2)"
        )
    if cc is None:
        cc = _auto_side(point.cols, "cols")
    elif not (2 <= cc <= point.cols and point.cols % cc == 0):
        raise ValueError(
            f"cluster_cols={cc} must divide cols={point.cols} (and be >= 2)"
        )
    if (point.rows // cr) * (point.cols // cc) < 2:
        raise ValueError(
            f"hierarchical generation needs at least 2 clusters; "
            f"{point.rows}x{point.cols} with {cr}x{cc} clusters has one — "
            "use a flat strategy"
        )
    return cr, cc


def _solve_cluster(
    point: "DesignPoint", cluster_layout: Layout
) -> GenerationResult:
    """Solve the representative cluster at ``radix - 1``.

    Exact LatOp first; annealing fallback when the solver cannot
    produce an incumbent within the point's budget (large clusters or
    tight limits), so a hierarchical point degrades rather than fails.
    """
    from ..core.netsmith import generate_latop
    from ..core.search import anneal_topology

    cfg = NetSmithConfig(
        layout=cluster_layout,
        link_class=point.link_class,
        radix=point.radix - 1,
    )
    try:
        return generate_latop(
            cfg, time_limit=point.time_limit, backend=point.backend
        )
    except (RuntimeError, ValueError):
        return anneal_topology(
            cfg, objective="latency", steps=point.sa_steps, seed=point.seed
        )


def _replicate(
    layout: Layout,
    cluster: Topology,
    kr: int,
    kc: int,
) -> List[Link]:
    """Translate the representative cluster's links to every tile."""
    cl = cluster.layout
    links: List[Link] = []
    for gy in range(kr):
        for gx in range(kc):
            ox, oy = gx * cl.cols, gy * cl.rows
            for a, b in cluster.directed_links:
                ax, ay = cl.position(a)
                bx, by = cl.position(b)
                links.append((
                    layout.router_at(ox + ax, oy + ay),
                    layout.router_at(ox + bx, oy + by),
                ))
    return links


def _seed_cross_links(
    layout: Layout,
    cr: int,
    cc: int,
    kr: int,
    kc: int,
    out_deg: np.ndarray,
    in_deg: np.ndarray,
    radix: int,
) -> List[Link]:
    """Bidirectional mid-border links between adjacent clusters.

    Unit-length (so valid in every link class) and placed on the middle
    one-or-two border routers, which the ``radix - 1`` cluster solve
    left with port headroom; the resulting cluster graph is the (k_r x
    k_c) grid graph, hence connected, hence the network is strongly
    connected before stitching begins.
    """
    links: List[Link] = []

    def add_pair(a: int, b: int) -> None:
        if out_deg[a] < radix and in_deg[b] < radix:
            links.append((a, b))
            out_deg[a] += 1
            in_deg[b] += 1
        if out_deg[b] < radix and in_deg[a] < radix:
            links.append((b, a))
            out_deg[b] += 1
            in_deg[a] += 1

    for gy in range(kr):
        for gx in range(kc):
            if gx + 1 < kc:  # horizontal neighbor
                ax = gx * cc + cc - 1
                bx = (gx + 1) * cc
                for ry in sorted({(cr - 1) // 2, cr // 2}):
                    y = gy * cr + ry
                    add_pair(layout.router_at(ax, y), layout.router_at(bx, y))
            if gy + 1 < kr:  # vertical neighbor
                ay = gy * cr + cr - 1
                by = (gy + 1) * cr
                for rx in sorted({(cc - 1) // 2, cc // 2}):
                    x = gx * cc + rx
                    add_pair(layout.router_at(x, ay), layout.router_at(x, by))
    return links


def _stitch(
    layout: Layout,
    intra: List[Link],
    cross: List[Link],
    allowed_cross: List[Link],
    radix: int,
    steps: int,
    seed: int,
    t0: float = 8.0,
    t1: float = 0.02,
) -> Tuple[List[Link], float]:
    """Anneal the inter-cluster links only; returns (links, total hops).

    The move loop mirrors :func:`~repro.core.search.anneal_topology`
    (drop one current cross link, add one valid cross link with radix
    headroom, Metropolis accept) but the droppable set and the candidate
    pool both exclude intra-cluster links, and the hop matrix is
    maintained incrementally across moves.
    """
    n = layout.n
    rng = np.random.default_rng(seed)

    adj = np.zeros((n, n), dtype=bool)
    out_deg = np.zeros(n, dtype=np.intp)
    in_deg = np.zeros(n, dtype=np.intp)
    for a, b in intra:
        adj[a, b] = True
        out_deg[a] += 1
        in_deg[b] += 1
    for a, b in cross:
        adj[a, b] = True
        out_deg[a] += 1
        in_deg[b] += 1

    allowed_arr = np.asarray(allowed_cross, dtype=np.intp)
    a_src, a_dst = allowed_arr[:, 0], allowed_arr[:, 1]
    allowed_idx = {l: k for k, l in enumerate(allowed_cross)}
    in_cur = np.zeros(len(allowed_cross), dtype=bool)
    for l in cross:
        in_cur[allowed_idx[l]] = True

    def cost_of(d: np.ndarray) -> float:
        return float(d.sum()) if np.isfinite(d).all() else float("inf")

    cur = list(cross)
    tracker = IncrementalAPSP(adj)
    cur_cost = cost_of(tracker.dist)
    best, best_cost = list(cur), cur_cost

    for step in range(steps):
        if not cur:
            break  # nothing stitchable (degenerate tiny instances)
        temp = t0 * (t1 / t0) ** (step / max(steps - 1, 1))
        drop_idx = int(rng.integers(len(cur)))
        da, db = dropped = cur[drop_idx]
        ok = (
            ~in_cur
            & (out_deg[a_src] - (a_src == da) < radix)
            & (in_deg[a_dst] - (a_dst == db) < radix)
        )
        cands = np.nonzero(ok)[0]
        if cands.size == 0:
            continue
        added_k = int(cands[int(rng.integers(cands.size))])
        aa, ab = added = allowed_cross[added_k]
        adj[da, db] = False
        adj[aa, ab] = True
        c = cost_of(tracker.candidate(adj, dropped, added))
        if c < cur_cost or rng.random() < math.exp(
            -(c - cur_cost) / max(temp, 1e-9)
        ):
            tracker.commit()
            cur = cur[:drop_idx] + cur[drop_idx + 1 :] + [added]
            cur_cost = c
            out_deg[da] -= 1
            in_deg[db] -= 1
            out_deg[aa] += 1
            in_deg[ab] += 1
            in_cur[allowed_idx[dropped]] = False
            in_cur[added_k] = True
            if c < best_cost:
                best, best_cost = list(cur), c
        else:
            adj[aa, ab] = False
            adj[da, db] = True

    return best, best_cost


def generate_hierarchical(point: "DesignPoint") -> GenerationResult:
    """Generate a hierarchical topology for a large design point."""
    started = time.perf_counter()
    cr, cc = cluster_shape(point)
    layout = point.layout
    kr, kc = point.rows // cr, point.cols // cc

    cluster = _solve_cluster(point, Layout(rows=cr, cols=cc))
    intra = _replicate(layout, cluster.topology, kr, kc)

    n = layout.n
    out_deg = np.zeros(n, dtype=np.intp)
    in_deg = np.zeros(n, dtype=np.intp)
    for a, b in intra:
        out_deg[a] += 1
        in_deg[b] += 1
    cross = _seed_cross_links(
        layout, cr, cc, kr, kc, out_deg, in_deg, point.radix
    )

    def cluster_of(r: int) -> Tuple[int, int]:
        x, y = layout.position(r)
        return (y // cr, x // cc)

    allowed_cross = [
        (a, b)
        for a, b in layout.valid_links(point.link_class)
        if cluster_of(a) != cluster_of(b)
    ]
    stitched, total_hops = _stitch(
        layout,
        intra,
        cross,
        allowed_cross,
        point.radix,
        steps=point.sa_steps,
        seed=point.seed,
    )
    if not math.isfinite(total_hops):
        raise RuntimeError(
            f"hierarchical stitch left {point.rows}x{point.cols} "
            "disconnected; raise sa_steps or radix"
        )

    topo = Topology(
        layout,
        intra + stitched,
        name=f"NS-HIER-LatOp-{point.link_class}",
        link_class=point.link_class,
    )
    topo.check(radix=point.radix, link_class=point.link_class)
    return GenerationResult(
        topology=topo,
        objective=float(total_hops),
        mip_gap=float("nan"),
        status="hierarchical",
        solve_time_s=time.perf_counter() - started,
        result=None,
    )
